#!/usr/bin/env sh
# Run the workspace static-analysis pass (the same gate CI runs).
#
#   scripts/vet.sh            human-readable findings, exit 1 if any
#   scripts/vet.sh --json     JSON report on stdout (the CI artifact)
#
# Findings print as `file:line rule message`. Justified survivors live
# in vet.allow (rule | path | needle | reason — see DESIGN.md §10);
# stale or reasonless entries fail the run just like real findings.
set -eu
cd "$(dirname "$0")/.."

exec cargo run -q -p iixml-vet -- check "$@"
