#!/usr/bin/env sh
# Vendor all external dependencies into ./vendor for fully-offline
# builds. Today the workspace has none, so this script is a no-op that
# exists as the paved road: if a dependency is ever added, run it once
# with network access, commit the vendor/ directory, and uncomment the
# source replacement in .cargo/config.toml.
set -eu
cd "$(dirname "$0")/.."

external="$(grep -c '^name = ' Cargo.lock || true)"
internal="$(grep -c '^name = "iixml' Cargo.lock || true)"
if [ "$external" = "$internal" ]; then
    echo "Cargo.lock lists only workspace crates — nothing to vendor."
    exit 0
fi

echo "Vendoring external dependencies into ./vendor ..."
cargo vendor vendor
echo
echo "Now commit ./vendor and enable the [source] replacement stanza in"
echo ".cargo/config.toml so offline builds use it."
