//! Robustness fuzzing of every text parser: arbitrary input must yield
//! `Ok` or `Err`, never a panic — and everything that parses must
//! re-serialize and re-parse to the same thing.

use iixml_core::io::{parse_incomplete_xml, write_incomplete_xml};
use iixml_gen::rng::DetRng;
use iixml_gen::testkit::check_with;
use iixml_query::parse::parse_ps_query;
use iixml_tree::xmlio::parse_tree;
use iixml_tree::Alphabet;
use iixml_values::parse::parse_cond;
use iixml_values::Rat;

/// A printable string of length `0..=max_len`: mostly ASCII printable,
/// with occasional multi-byte characters and syntax-significant
/// punctuation to keep the parsers honest.
fn arb_string(rng: &mut DetRng, max_len: usize) -> String {
    let len = rng.range_usize(0, max_len + 1);
    (0..len)
        .map(|_| match rng.below(8) {
            0..=5 => char::from_u32(rng.range_usize(0x20, 0x7f) as u32).unwrap(),
            6 => *rng.choose(&['é', 'λ', '√', '日', '\u{1F333}']),
            _ => *rng.choose(&['<', '>', '"', '/', '{', '}', '[', ']', '=', '!', '&', '|']),
        })
        .collect()
}

/// A string over an explicit character set.
fn string_over(rng: &mut DetRng, charset: &[char], lo: usize, hi: usize) -> String {
    let len = rng.range_usize(lo, hi + 1);
    (0..len).map(|_| *rng.choose(charset)).collect()
}

#[test]
fn cond_parser_never_panics() {
    check_with("cond_parser_never_panics", 300, |rng| {
        let s = arb_string(rng, 40);
        let _ = parse_cond(&s);
    });
}

#[test]
fn rat_parser_never_panics() {
    check_with("rat_parser_never_panics", 300, |rng| {
        let s = arb_string(rng, 20);
        let _ = s.parse::<Rat>();
    });
}

#[test]
fn query_parser_never_panics() {
    check_with("query_parser_never_panics", 300, |rng| {
        let s = arb_string(rng, 60);
        let mut alpha = Alphabet::new();
        let _ = parse_ps_query(&s, &mut alpha);
    });
}

#[test]
fn tree_parser_never_panics() {
    check_with("tree_parser_never_panics", 300, |rng| {
        let s = arb_string(rng, 80);
        let mut alpha = Alphabet::new();
        let _ = parse_tree(&s, &mut alpha);
    });
}

#[test]
fn incomplete_parser_never_panics() {
    check_with("incomplete_parser_never_panics", 300, |rng| {
        let s = arb_string(rng, 120);
        let mut alpha = Alphabet::new();
        let _ = parse_incomplete_xml(&s, &mut alpha);
    });
}

/// Structured-ish fuzzing: near-valid condition inputs.
#[test]
fn cond_parser_on_near_valid() {
    check_with("cond_parser_on_near_valid", 300, |rng| {
        let op = string_over(rng, &['=', '<', '>', '!', '&', '|', '(', ')'], 0, 6);
        let n = rng.range_i64(-999, 999);
        let s = format!("{op} {n}");
        if let Ok(c) = parse_cond(&s) {
            // What parses must round-trip through display.
            let again = parse_cond(&c.to_string()).unwrap();
            assert!(c.equivalent(&again));
        }
    });
}

/// Structured-ish fuzzing: near-valid query inputs.
#[test]
fn query_parser_on_near_valid() {
    check_with("query_parser_on_near_valid", 300, |rng| {
        let nparts = rng.range_usize(1, 4);
        let parts: Vec<String> = (0..nparts)
            .map(|_| string_over(rng, &['a', 'b', 'c'], 1, 3))
            .collect();
        let deco = string_over(
            rng,
            &['!', '/', '{', '}', ',', '[', ']', '<', '5', ' '],
            0,
            6,
        );
        let s = format!("{}{}", parts.join("/"), deco);
        let mut alpha = Alphabet::new();
        if let Ok(q) = parse_ps_query(&s, &mut alpha) {
            let text = q.to_text(&alpha);
            let q2 = parse_ps_query(&text, &mut alpha).unwrap();
            assert_eq!(q.len(), q2.len());
        }
    });
}

#[test]
fn incomplete_xml_rejects_mutations_gracefully() {
    // Take a valid document and corrupt it in many positions: each
    // variant must parse or fail cleanly.
    let (it, alpha) = {
        use iixml_core::{ConditionalTreeType, Disjunction, IncompleteTree, SAtom, SymTarget};
        use iixml_tree::{Label, Mult, Nid};
        use iixml_values::IntervalSet;
        let alpha = Alphabet::from_names(["root", "a"]);
        let mut nodes = std::collections::BTreeMap::new();
        nodes.insert(
            Nid(0),
            iixml_core::NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        let a = ty.add_symbol("a", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(a, Mult::Star)])));
        ty.set_mu(a, Disjunction::leaf());
        ty.add_root(r);
        (IncompleteTree::new(nodes, ty).unwrap(), alpha)
    };
    let xml = write_incomplete_xml(&it, &alpha);
    // Delete each line in turn; truncate at each quarter.
    let lines: Vec<&str> = xml.lines().collect();
    for skip in 0..lines.len() {
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let mut a2 = alpha.clone();
        let _ = parse_incomplete_xml(&mutated, &mut a2);
    }
    for q in 1..4 {
        let cut = xml.len() * q / 4;
        let mut a2 = alpha.clone();
        let _ = parse_incomplete_xml(&xml[..cut], &mut a2);
    }
    // And the original still parses.
    let mut a2 = alpha.clone();
    assert!(parse_incomplete_xml(&xml, &mut a2).is_ok());
}

// ---- durable-store binary formats (journal records, snapshots, WAL) ----

use iixml_store::{Record, Snapshot};

/// Arbitrary bytes, occasionally salted with the store's magic numbers
/// so decoders get past their first gate.
fn arb_bytes(rng: &mut DetRng, max_len: usize) -> Vec<u8> {
    let len = rng.range_usize(0, max_len + 1);
    let mut out: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
    if rng.bool(0.3) {
        // The deref is load-bearing: without it inference picks
        // `T = [u8]`, which is unsized (clippy's auto-deref hint lies).
        #[allow(clippy::explicit_auto_deref)]
        let magic: &[u8] = *rng.choose(&[&b"IIXJWAL"[..], &b"IIXSNAP"[..], &b"REC!"[..]]);
        let fit = magic.len().min(out.len());
        out[..fit].copy_from_slice(&magic[..fit]);
    }
    out
}

/// A random (structurally valid) journal record.
fn arb_record(rng: &mut DetRng) -> Record {
    match rng.below(5) {
        0 => Record::Open {
            alpha: (0..rng.range_usize(0, 4))
                .map(|_| arb_string(rng, 8))
                .collect(),
            initial: arb_string(rng, 40),
        },
        1 => Record::Refine {
            query: arb_string(rng, 30),
            answer_tree: if rng.bool(0.5) {
                Some(arb_string(rng, 40))
            } else {
                None
            },
            provenance: (0..rng.range_usize(0, 4))
                .map(|_| (rng.below(100), rng.bool(0.5), rng.below(50) as u32))
                .collect(),
        },
        2 => Record::SourceUpdate,
        3 => Record::Quarantine,
        _ => Record::SnapshotRef {
            seq: rng.below(1000),
            file: arb_string(rng, 20),
            crc: rng.next_u64() as u32,
        },
    }
}

#[test]
fn journal_record_roundtrips() {
    check_with("journal_record_roundtrips", 300, |rng| {
        let rec = arb_record(rng);
        let decoded = Record::decode(&rec.encode()).expect("own encoding must decode");
        assert_eq!(decoded, rec);
    });
}

#[test]
fn journal_record_decoder_never_panics() {
    check_with("journal_record_decoder_never_panics", 600, |rng| {
        let bytes = if rng.bool(0.5) {
            // Mutated valid encoding: flip one bit somewhere.
            let mut b = arb_record(rng).encode();
            if !b.is_empty() {
                let i = rng.range_usize(0, b.len());
                b[i] ^= 1 << rng.below(8);
            }
            b
        } else {
            arb_bytes(rng, 80)
        };
        // Ok or Err, never a panic (and no unbounded allocation).
        let _ = Record::decode(&bytes);
    });
}

#[test]
fn snapshot_decoder_never_panics() {
    let path = std::path::Path::new("fuzz.snap");
    check_with("snapshot_decoder_never_panics", 600, |rng| {
        let bytes = if rng.bool(0.5) {
            // A well-formed snapshot with one bit flipped.
            let snap = Snapshot {
                seq: rng.below(100),
                alpha: (0..rng.range_usize(0, 3))
                    .map(|_| arb_string(rng, 6))
                    .collect(),
                initial: if rng.bool(0.5) {
                    Some(arb_string(rng, 40))
                } else {
                    None
                },
                knowledge: arb_string(rng, 60),
            };
            let payload_roundtrip = Snapshot::decode(path, &snap_bytes(&snap));
            assert_eq!(payload_roundtrip.expect("own encoding must decode"), snap);
            let mut b = snap_bytes(&snap);
            let i = rng.range_usize(0, b.len());
            b[i] ^= 1 << rng.below(8);
            b
        } else {
            arb_bytes(rng, 120)
        };
        let _ = Snapshot::decode(path, &bytes);
    });
}

/// Snapshot file bytes without touching the filesystem (header + payload,
/// same layout `Snapshot::write` produces).
fn snap_bytes(snap: &Snapshot) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("iixml-fuzz-snap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (name, _) = snap.write(&dir).unwrap();
    let bytes = std::fs::read(dir.join(name)).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

#[test]
fn wal_scan_never_panics_on_arbitrary_segments() {
    use iixml_store::wal;
    let dir = std::env::temp_dir().join(format!("iixml-fuzz-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    check_with("wal_scan_never_panics", 300, |rng| {
        // One or two segment files of arbitrary bytes; a valid header
        // is prepended half the time so the scanner reaches the frames.
        let nsegs = rng.range_usize(1, 3);
        for i in 0..nsegs {
            let mut bytes = Vec::new();
            if rng.bool(0.5) {
                bytes.extend_from_slice(b"IIXJWAL\x01");
            }
            bytes.extend_from_slice(&arb_bytes(rng, 200));
            std::fs::write(dir.join(format!("seg-{i:06}.wal")), &bytes).unwrap();
        }
        // Ok with frames, or a typed damage report — never a panic.
        let _ = wal::scan(&dir);
        for (_, p) in wal::Wal::segments(&dir).unwrap() {
            std::fs::remove_file(p).unwrap();
        }
    });
    let _ = std::fs::remove_dir_all(&dir);
}
