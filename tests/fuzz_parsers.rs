//! Robustness fuzzing of every text parser: arbitrary input must yield
//! `Ok` or `Err`, never a panic — and everything that parses must
//! re-serialize and re-parse to the same thing.

use iixml_core::io::{parse_incomplete_xml, write_incomplete_xml};
use iixml_query::parse::parse_ps_query;
use iixml_tree::xmlio::{parse_tree, write_tree};
use iixml_tree::Alphabet;
use iixml_values::parse::parse_cond;
use iixml_values::Rat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn cond_parser_never_panics(s in "\\PC{0,40}") {
        let _ = parse_cond(&s);
    }

    #[test]
    fn rat_parser_never_panics(s in "\\PC{0,20}") {
        let _ = s.parse::<Rat>();
    }

    #[test]
    fn query_parser_never_panics(s in "\\PC{0,60}") {
        let mut alpha = Alphabet::new();
        let _ = parse_ps_query(&s, &mut alpha);
    }

    #[test]
    fn tree_parser_never_panics(s in "\\PC{0,80}") {
        let mut alpha = Alphabet::new();
        let _ = parse_tree(&s, &mut alpha);
    }

    #[test]
    fn incomplete_parser_never_panics(s in "\\PC{0,120}") {
        let mut alpha = Alphabet::new();
        let _ = parse_incomplete_xml(&s, &mut alpha);
    }

    /// Structured-ish fuzzing: near-valid condition inputs.
    #[test]
    fn cond_parser_on_near_valid(op in "[=<>!&|()]{0,6}", n in -999i64..999) {
        let s = format!("{op} {n}");
        if let Ok(c) = parse_cond(&s) {
            // What parses must round-trip through display.
            let again = parse_cond(&c.to_string()).unwrap();
            prop_assert!(c.equivalent(&again));
        }
    }

    /// Structured-ish fuzzing: near-valid query inputs.
    #[test]
    fn query_parser_on_near_valid(parts in proptest::collection::vec("[a-c]{1,3}", 1..4), deco in "[!/{},\\[\\]<5 ]{0,6}") {
        let s = format!("{}{}", parts.join("/"), deco);
        let mut alpha = Alphabet::new();
        if let Ok(q) = parse_ps_query(&s, &mut alpha) {
            let text = q.to_text(&alpha);
            let q2 = parse_ps_query(&text, &mut alpha).unwrap();
            prop_assert_eq!(q.len(), q2.len());
        }
    }
}

#[test]
fn incomplete_xml_rejects_mutations_gracefully() {
    // Take a valid document and corrupt it in many positions: each
    // variant must parse or fail cleanly.
    let (it, alpha) = {
        use iixml_core::{ConditionalTreeType, Disjunction, IncompleteTree, SAtom, SymTarget};
        use iixml_tree::{Label, Mult, Nid};
        use iixml_values::IntervalSet;
        let alpha = Alphabet::from_names(["root", "a"]);
        let mut nodes = std::collections::BTreeMap::new();
        nodes.insert(
            Nid(0),
            iixml_core::NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol("r", SymTarget::Node(Nid(0)), IntervalSet::all());
        let a = ty.add_symbol("a", SymTarget::Lab(Label(1)), IntervalSet::all());
        ty.set_mu(r, Disjunction::single(SAtom::new(vec![(a, Mult::Star)])));
        ty.set_mu(a, Disjunction::leaf());
        ty.add_root(r);
        (IncompleteTree::new(nodes, ty).unwrap(), alpha)
    };
    let xml = write_incomplete_xml(&it, &alpha);
    // Delete each line in turn; truncate at each quarter.
    let lines: Vec<&str> = xml.lines().collect();
    for skip in 0..lines.len() {
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let mut a2 = alpha.clone();
        let _ = parse_incomplete_xml(&mutated, &mut a2);
    }
    for q in 1..4 {
        let cut = xml.len() * q / 4;
        let mut a2 = alpha.clone();
        let _ = parse_incomplete_xml(&xml[..cut], &mut a2);
    }
    // And the original still parses.
    let mut a2 = alpha.clone();
    assert!(parse_incomplete_xml(&xml, &mut a2).is_ok());
}
