//! The determinism matrix for the parallel execution layer: every
//! parallelized path must produce *byte-identical* results at any
//! worker width. `iixml_par::par_map` places results by input index, so
//! this holds by construction — these tests pin the contract end-to-end
//! through the real hot paths (Algorithm Refine's intersect, bisimulation
//! minimization, mediated completion, and the webhouse fan-out), at
//! widths 1 (the sequential fallback through the same code path) and 4.
//!
//! CI additionally runs the whole suite under `IIXML_PAR_THREADS=1` and
//! `=4` (the thread-matrix job), so any width-dependent behavior that
//! slips past these targeted checks still fails the build.

use iixml_core::io::write_incomplete_xml;
use iixml_core::Refiner;
use iixml_gen::{blowup_queries, catalog, catalog_query_price_below, testkit};
use iixml_query::Answer;
use iixml_tree::Alphabet;
use iixml_webhouse::{FaultPlan, FaultySource, LocalAnswer, Session, Source, Webhouse};

/// Serializes the final knowledge of the Example 3.2 Refine chain —
/// the intersect-heavy workload — at a given worker width.
fn refine_chain_serialized(width: usize, n: usize) -> String {
    iixml_par::set_threads(Some(width));
    let mut alpha = Alphabet::from_names(["root", "a", "b"]);
    let queries = blowup_queries(&mut alpha, n);
    let mut refiner = Refiner::new(&alpha);
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
    }
    let out = write_incomplete_xml(refiner.current(), &alpha);
    iixml_par::set_threads(None);
    out
}

#[test]
fn refine_chain_is_byte_identical_across_widths() {
    let seq = refine_chain_serialized(1, 5);
    let par = refine_chain_serialized(4, 5);
    assert_eq!(seq, par, "intersect/minimize diverged between widths");
    // And distinct chain lengths genuinely differ (the serializer is
    // not constant).
    assert_ne!(seq, refine_chain_serialized(1, 4));
}

/// Minimization of a large product at a given width.
fn minimized_product_serialized(width: usize) -> String {
    iixml_par::set_threads(Some(width));
    let mut alpha = Alphabet::from_names(["root", "a", "b"]);
    let queries = blowup_queries(&mut alpha, 4);
    let mut refiner = Refiner::new(&alpha);
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
    }
    let t = refiner.current();
    let product = iixml_core::refine::intersect(t, t).unwrap();
    let out = write_incomplete_xml(&product.minimize(), &alpha);
    iixml_par::set_threads(None);
    out
}

#[test]
fn minimization_is_byte_identical_across_widths() {
    assert_eq!(
        minimized_product_serialized(1),
        minimized_product_serialized(4)
    );
}

/// One catalog mediation session (fetch a view, mediate a follow-up),
/// returning serialized knowledge plus the exact answer's rendering.
fn mediation_outcome(width: usize) -> (String, String) {
    iixml_par::set_threads(Some(width));
    let mut cat = catalog(10, testkit::base_seed() ^ 0x9A9);
    let q_view = catalog_query_price_below(&mut cat.alpha, 250);
    let q_cheap = catalog_query_price_below(&mut cat.alpha, 120);
    let mut session = Session::open(
        cat.alpha.clone(),
        Source::new(cat.doc.clone(), Some(cat.ty.clone())),
    );
    session.fetch(&q_view).unwrap();
    let exact = session.answer_with_mediation(&q_cheap).unwrap();
    // Render the answer by preorder walk (Debug would leak internal
    // hash-map ordering, which is nondeterministic per instance).
    let rendered = exact.map_or("<empty>".to_string(), |t| {
        t.preorder()
            .iter()
            .map(|&r| format!("{}:{}={};", t.nid(r).0, t.label(r).0, t.value(r)))
            .collect()
    });
    let out = (
        write_incomplete_xml(session.knowledge(), &cat.alpha),
        rendered,
    );
    iixml_par::set_threads(None);
    out
}

#[test]
fn mediated_completion_is_byte_identical_across_widths() {
    assert_eq!(mediation_outcome(1), mediation_outcome(4));
}

/// Fans a query out over faulty sources and renders every outcome —
/// variant, answer shape, and per-session fault accounting — into one
/// comparable transcript.
fn fanout_transcript(width: usize) -> String {
    iixml_par::set_threads(Some(width));
    let mut cat = catalog(6, testkit::base_seed() ^ 0xFA9);
    let q = catalog_query_price_below(&mut cat.alpha, 300);
    let mut wh: Webhouse<FaultySource> = Webhouse::new();
    for i in 0..8u64 {
        // Per-source fault seed: each session replays its own fault
        // stream regardless of which worker runs it.
        let src = Source::new(cat.doc.clone(), Some(cat.ty.clone()));
        wh.register(
            format!("src{i}"),
            cat.alpha.clone(),
            FaultySource::new(src, FaultPlan::uniform(0.15), 0xC0FFEE ^ i),
        );
    }
    let mut lines = Vec::new();
    for (name, outcome) in wh.fan_out(&q) {
        let desc = match outcome {
            LocalAnswer::Complete(t) => {
                format!("complete:{}", t.map_or(0, |t| t.len()))
            }
            LocalAnswer::Degraded { partial, .. } => {
                format!("degraded:possible={}", partial.possible_nonempty())
            }
            LocalAnswer::Partial(_) => "partial".to_string(),
        };
        let faults = wh.session(&name).unwrap().source().faults;
        lines.push(format!("{name} {desc} faults={}", faults.total()));
    }
    iixml_par::set_threads(None);
    lines.join("\n")
}

#[test]
fn faulty_fanout_is_deterministic_across_widths() {
    let seq = fanout_transcript(1);
    let par = fanout_transcript(4);
    assert_eq!(seq, par, "fan-out outcomes depend on worker width");
    // The transcript covers all eight sessions in name order.
    assert_eq!(seq.lines().count(), 8);
}
