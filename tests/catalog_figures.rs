//! Reproduction of the paper's running example: Figures 1–6 (the catalog
//! tree type, Queries 1–4 and their answers) and the semantic content of
//! Figures 8–9 (the incomplete trees after Query 1 and Query 2).
//!
//! Value coding: `cat` elec = 1 (others ≥ 2); `subcat` camera = 10,
//! cdplayer = 11; names and pictures are numeric ids.

use iixml::prelude::*;
use iixml_query::PsQuery;

const ELEC: i64 = 1;
const CAMERA: i64 = 10;
const CDPLAYER: i64 = 11;

/// Figure 1: the catalog tree type.
fn figure1(alpha: &mut Alphabet) -> TreeType {
    TreeTypeBuilder::new(alpha)
        .root("catalog")
        .rule("catalog", &[("product", Mult::Plus)])
        .rule(
            "product",
            &[
                ("name", Mult::One),
                ("price", Mult::One),
                ("cat", Mult::One),
                ("picture", Mult::Star),
            ],
        )
        .rule("cat", &[("subcat", Mult::One)])
        .build()
        .unwrap()
}

/// The source document behind Figure 6: Canon (120, camera, pic),
/// Nikon (199, camera, no pic), Sony (175, cdplayer, no pic),
/// Olympus (250, camera, pic).
fn source(alpha: &Alphabet) -> DataTree {
    let mut t = DataTree::new(Nid(0), alpha.get("catalog").unwrap(), Rat::ZERO);
    let mut next = 1u64;
    let mut add = |t: &mut DataTree, name: i64, price: i64, sub: i64, pics: &[i64]| -> Nid {
        let root = t.root();
        let pid = Nid(next);
        let p = t
            .add_child(root, pid, alpha.get("product").unwrap(), Rat::ZERO)
            .unwrap();
        next += 1;
        t.add_child(p, Nid(next), alpha.get("name").unwrap(), Rat::from(name))
            .unwrap();
        next += 1;
        t.add_child(p, Nid(next), alpha.get("price").unwrap(), Rat::from(price))
            .unwrap();
        next += 1;
        let c = t
            .add_child(p, Nid(next), alpha.get("cat").unwrap(), Rat::from(ELEC))
            .unwrap();
        next += 1;
        t.add_child(c, Nid(next), alpha.get("subcat").unwrap(), Rat::from(sub))
            .unwrap();
        next += 1;
        for &v in pics {
            t.add_child(p, Nid(next), alpha.get("picture").unwrap(), Rat::from(v))
                .unwrap();
            next += 1;
        }
        pid
    };
    add(&mut t, 100, 120, CAMERA, &[501]); // Canon
    add(&mut t, 101, 199, CAMERA, &[]); // Nikon
    add(&mut t, 102, 175, CDPLAYER, &[]); // Sony
    add(&mut t, 103, 250, CAMERA, &[502]); // Olympus
    t
}

/// Figure 2 / Query 1: name, price, subcategory of elec products < 200.
fn query1(alpha: &mut Alphabet) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::from(ELEC))).unwrap();
    b.child(c, "subcat", Cond::True).unwrap();
    b.build()
}

/// Figure 3 / Query 2: name and picture of cameras with pictures.
fn query2(alpha: &mut Alphabet) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::from(ELEC))).unwrap();
    b.child(c, "subcat", Cond::eq(Rat::from(CAMERA))).unwrap();
    b.child(p, "picture", Cond::True).unwrap();
    b.build()
}

/// Figure 4 / Query 3: name, price, pictures of cameras under 100 with
/// at least one picture.
fn query3(alpha: &mut Alphabet) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    b.child(p, "price", Cond::lt(Rat::from(100))).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::from(ELEC))).unwrap();
    b.child(c, "subcat", Cond::eq(Rat::from(CAMERA))).unwrap();
    b.child(p, "picture", Cond::True).unwrap();
    b.build()
}

/// Figure 5 / Query 4: list all cameras.
fn query4(alpha: &mut Alphabet) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::from(ELEC))).unwrap();
    b.child(c, "subcat", Cond::eq(Rat::from(CAMERA))).unwrap();
    b.build()
}

#[test]
fn figure1_type_validates_the_source() {
    let mut alpha = Alphabet::new();
    let ty = figure1(&mut alpha);
    let doc = source(&alpha);
    assert!(ty.accepts(&doc));
    let rendered = ty.display(&alpha).to_string();
    assert!(rendered.contains("catalog -> product+"));
    assert!(rendered.contains("cat -> subcat"));
}

#[test]
fn figure6_answers() {
    let mut alpha = Alphabet::new();
    let _ty = figure1(&mut alpha);
    let doc = source(&alpha);
    // Query 1 answer: Canon, Nikon, Sony (price < 200, elec) — each
    // contributing product, name, price, cat, subcat.
    let a1 = query1(&mut alpha).eval(&doc);
    assert_eq!(a1.len(), 1 + 3 * 5);
    // Query 2 answer: Canon and Olympus (cameras with pictures) — each
    // contributing product, name, cat, subcat, picture.
    let a2 = query2(&mut alpha).eval(&doc);
    assert_eq!(a2.len(), 1 + 2 * 5);
    // Persistent ids: the Canon product node appears in both answers
    // with the same id (Remark 2.4).
    let canon = Nid(1);
    assert!(a1.tree.as_ref().unwrap().by_nid(canon).is_some());
    assert!(a2.tree.as_ref().unwrap().by_nid(canon).is_some());
}

/// Figure 8: after Query 1, the incomplete tree knows the three cheap
/// elec products and classifies the missing ones as product1
/// (non-elec) or product2 (elec, price ≥ 200).
#[test]
fn figure8_incomplete_tree_after_query1() {
    let mut alpha = Alphabet::new();
    let ty = figure1(&mut alpha);
    let doc = source(&alpha);
    let q1 = query1(&mut alpha);
    let mut refiner = Refiner::new(&alpha);
    refiner.refine(&alpha, &q1, &q1.eval(&doc)).unwrap();
    let known = iixml_core::type_intersect::restrict_to_type(refiner.current(), &ty);

    assert!(known.contains(&doc), "the true source stays represented");
    // The data tree holds exactly the answer to Query 1.
    let td = known.data_tree().unwrap();
    assert_eq!(td.len(), 1 + 3 * 5);

    // Semantic content of the product1/product2 split: adding a
    // non-elec product is fine...
    let mut w1 = doc.clone();
    let root = w1.root();
    let p = w1
        .add_child(root, Nid(900), alpha.get("product").unwrap(), Rat::ZERO)
        .unwrap();
    w1.add_child(p, Nid(901), alpha.get("name").unwrap(), Rat::from(7))
        .unwrap();
    w1.add_child(p, Nid(902), alpha.get("price").unwrap(), Rat::from(50))
        .unwrap();
    let c = w1
        .add_child(p, Nid(903), alpha.get("cat").unwrap(), Rat::from(3))
        .unwrap();
    w1.add_child(c, Nid(904), alpha.get("subcat").unwrap(), Rat::from(20))
        .unwrap();
    assert!(known.contains(&w1), "a non-elec product may be missing");

    // ...adding an expensive elec product is fine...
    let mut w2 = doc.clone();
    let root = w2.root();
    let p = w2
        .add_child(root, Nid(900), alpha.get("product").unwrap(), Rat::ZERO)
        .unwrap();
    w2.add_child(p, Nid(901), alpha.get("name").unwrap(), Rat::from(7))
        .unwrap();
    w2.add_child(p, Nid(902), alpha.get("price").unwrap(), Rat::from(999))
        .unwrap();
    let c = w2
        .add_child(p, Nid(903), alpha.get("cat").unwrap(), Rat::from(ELEC))
        .unwrap();
    w2.add_child(c, Nid(904), alpha.get("subcat").unwrap(), Rat::from(CAMERA))
        .unwrap();
    assert!(
        known.contains(&w2),
        "an expensive elec product may be missing"
    );

    // ...but a cheap elec product would have been in the answer.
    let mut w3 = doc.clone();
    let root = w3.root();
    let p = w3
        .add_child(root, Nid(900), alpha.get("product").unwrap(), Rat::ZERO)
        .unwrap();
    w3.add_child(p, Nid(901), alpha.get("name").unwrap(), Rat::from(7))
        .unwrap();
    w3.add_child(p, Nid(902), alpha.get("price").unwrap(), Rat::from(99))
        .unwrap();
    let c = w3
        .add_child(p, Nid(903), alpha.get("cat").unwrap(), Rat::from(ELEC))
        .unwrap();
    w3.add_child(c, Nid(904), alpha.get("subcat").unwrap(), Rat::from(CAMERA))
        .unwrap();
    assert!(
        !known.contains(&w3),
        "a cheap elec product cannot be missing"
    );
}

/// Figure 9: after Queries 1 and 2, information is merged per node
/// (Canon from both queries) and inferred (Nikon, returned by Query 1
/// but not Query 2, must be a camera *without pictures*).
#[test]
fn figure9_incomplete_tree_after_query2() {
    let mut alpha = Alphabet::new();
    let ty = figure1(&mut alpha);
    let doc = source(&alpha);
    let q1 = query1(&mut alpha);
    let q2 = query2(&mut alpha);
    let mut refiner = Refiner::new(&alpha);
    refiner.refine(&alpha, &q1, &q1.eval(&doc)).unwrap();
    refiner.refine(&alpha, &q2, &q2.eval(&doc)).unwrap();
    let known = iixml_core::type_intersect::restrict_to_type(refiner.current(), &ty);

    assert!(known.contains(&doc));
    // The merged data tree: Query 1's 16 nodes + Olympus (product,
    // name, cat, subcat, picture = 5) + Canon's picture.
    let td = known.data_tree().unwrap();
    assert_eq!(td.len(), 16 + 5 + 1);
    // Canon (node 1) has both price (from q1) and picture (from q2).
    let canon = td.by_nid(Nid(1)).unwrap();
    assert_eq!(td.children(canon).len(), 4);

    // Nikon (p-nikon in Figure 9): returned by Query 1 as a camera, not
    // by Query 2 => it certainly has no picture. A world giving Nikon a
    // picture is excluded.
    let mut w = doc.clone();
    let nikon = w.by_nid(Nid(7)).unwrap(); // Nikon product node
    w.add_child(
        nikon,
        Nid(950),
        alpha.get("picture").unwrap(),
        Rat::from(777),
    )
    .unwrap();
    assert!(!known.contains(&w), "Nikon with a picture contradicts q2");

    // Olympus (p2-olympus): known camera with picture, price unknown
    // but >= 200. A world where Olympus costs 150 is excluded (q1 would
    // have returned it)...
    let mut w = source_with_olympus_price(&alpha, 150);
    assert!(!known.contains(&w));
    // ...but 250 (the true price) and 300 are both fine.
    w = source_with_olympus_price(&alpha, 250);
    assert!(known.contains(&w));
    w = source_with_olympus_price(&alpha, 300);
    assert!(known.contains(&w));

    // Missing products (the black nodes of Figure 9): an expensive
    // camera WITH a picture would have matched Query 2.
    let mut w = doc.clone();
    let root = w.root();
    let p = w
        .add_child(root, Nid(900), alpha.get("product").unwrap(), Rat::ZERO)
        .unwrap();
    w.add_child(p, Nid(901), alpha.get("name").unwrap(), Rat::from(7))
        .unwrap();
    w.add_child(p, Nid(902), alpha.get("price").unwrap(), Rat::from(500))
        .unwrap();
    let c = w
        .add_child(p, Nid(903), alpha.get("cat").unwrap(), Rat::from(ELEC))
        .unwrap();
    w.add_child(c, Nid(904), alpha.get("subcat").unwrap(), Rat::from(CAMERA))
        .unwrap();
    w.add_child(p, Nid(905), alpha.get("picture").unwrap(), Rat::from(888))
        .unwrap();
    assert!(
        !known.contains(&w),
        "expensive camera with picture would match q2"
    );
    // Without the picture it is a legitimate missing product
    // (product2c in Figure 9).
    let mut w = doc.clone();
    let root = w.root();
    let p = w
        .add_child(root, Nid(900), alpha.get("product").unwrap(), Rat::ZERO)
        .unwrap();
    w.add_child(p, Nid(901), alpha.get("name").unwrap(), Rat::from(7))
        .unwrap();
    w.add_child(p, Nid(902), alpha.get("price").unwrap(), Rat::from(500))
        .unwrap();
    let c = w
        .add_child(p, Nid(903), alpha.get("cat").unwrap(), Rat::from(ELEC))
        .unwrap();
    w.add_child(c, Nid(904), alpha.get("subcat").unwrap(), Rat::from(CAMERA))
        .unwrap();
    assert!(
        known.contains(&w),
        "expensive picture-less camera may be missing"
    );
}

/// Rebuilds the source with a different Olympus price (used to probe
/// what Figure 9's p2-olympus type allows).
fn source_with_olympus_price(alpha: &Alphabet, price: i64) -> DataTree {
    let mut t = source(alpha);
    let olympus_price = t.by_nid(Nid(19)).unwrap();
    assert_eq!(t.label(olympus_price), alpha.get("price").unwrap());
    t.set_value(olympus_price, Rat::from(price));
    t
}

/// Example 3.4: Query 3 is fully answerable after Queries 1 and 2;
/// Query 4 is not, and the partial answer describes the sure part.
#[test]
fn example_3_4_query_answering() {
    let mut alpha = Alphabet::new();
    let ty = figure1(&mut alpha);
    let doc = source(&alpha);
    let q1 = query1(&mut alpha);
    let q2 = query2(&mut alpha);
    let q3 = query3(&mut alpha);
    let q4 = query4(&mut alpha);
    let mut refiner = Refiner::new(&alpha);
    refiner.refine(&alpha, &q1, &q1.eval(&doc)).unwrap();
    refiner.refine(&alpha, &q2, &q2.eval(&doc)).unwrap();
    let known = iixml_core::type_intersect::restrict_to_type(refiner.current(), &ty);

    // "Clearly, we can answer this query fully using just the
    // information available locally."
    let ans3 = known.query(&q3);
    assert!(
        ans3.fully_answerable(),
        "Query 3 answerable from local info"
    );
    // The locally computed answer equals the source's.
    let local = ans3.the_answer();
    let direct = q3.eval(&doc).tree;
    match (local, direct) {
        (Some(a), Some(b)) => assert!(a.same_tree(&b)),
        (a, b) => assert_eq!(a.is_none(), b.is_none()),
    }

    // "While we are not able to provide the complete answer [to Query
    // 4]": expensive picture-less cameras may exist.
    let ans4 = known.query(&q4);
    assert!(!ans4.fully_answerable());
    assert!(ans4.certain_nonempty(), "the known cameras are sure");

    // The sure part contains Canon and Nikon (cheap cameras) and
    // Olympus (camera with picture).
    let mut sure = DataTree::new(Nid(0), alpha.get("catalog").unwrap(), Rat::ZERO);
    let root = sure.root();
    sure.add_child(root, Nid(1), alpha.get("product").unwrap(), Rat::ZERO)
        .unwrap();
    assert!(
        ans4.certain_answer_prefix(&sure),
        "Canon surely answers Query 4"
    );
}
