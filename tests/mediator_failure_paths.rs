//! Failure paths of completion execution: every error must leave the
//! already-known tree byte-for-byte unchanged (execution is
//! transactional — all answers graft or none do), and the webhouse
//! session must reject partial answers before they reach the knowledge.

use iixml_mediator::{Completion, CompletionError, LocalQuery};
use iixml_query::{PsQuery, PsQueryBuilder};
use iixml_tree::{Alphabet, DataTree, Nid};
use iixml_values::{Cond, Rat};
use iixml_webhouse::{
    FaultPlan, FaultySource, LocalAnswer, RetryPolicy, Session, Source, SourceError,
    ValidationError, WebhouseError,
};

fn doc(alpha: &mut Alphabet) -> DataTree {
    let r = alpha.intern("root");
    let a = alpha.intern("a");
    let b = alpha.intern("b");
    let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
    let n1 = t.add_child(t.root(), Nid(1), a, Rat::from(5)).unwrap();
    t.add_child(n1, Nid(3), b, Rat::from(30)).unwrap();
    t.add_child(t.root(), Nid(2), a, Rat::from(9)).unwrap();
    t
}

fn query_all(alpha: &mut Alphabet) -> PsQuery {
    let mut bld = PsQueryBuilder::new(alpha, "root", Cond::True);
    let root = bld.root();
    bld.child(root, "a", Cond::True).unwrap();
    bld.build()
}

#[test]
fn missing_anchor_fails_and_leaves_known_untouched() {
    let mut alpha = Alphabet::new();
    let source = doc(&mut alpha);
    let q = query_all(&mut alpha);
    let mut known = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
    let snapshot = known.clone();
    let completion = Completion {
        queries: vec![LocalQuery {
            query: q,
            at: Some(Nid(999)), // no such node at the source
        }],
    };
    match completion.execute(&source, &mut known) {
        Err(CompletionError::MissingAnchor(n)) => assert_eq!(n, Nid(999)),
        other => panic!("expected MissingAnchor, got {other:?}"),
    }
    assert!(known.same_tree(&snapshot));
}

#[test]
fn graft_conflict_fails_and_leaves_known_untouched() {
    let mut alpha = Alphabet::new();
    let source = doc(&mut alpha);
    let q = query_all(&mut alpha);
    // The warehouse "knows" node 1 with a *different* value than the
    // source now ships: the graft must refuse the contradiction.
    let mut known = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
    known
        .add_child(known.root(), Nid(1), alpha.get("a").unwrap(), Rat::from(77))
        .unwrap();
    let snapshot = known.clone();
    let completion = Completion {
        queries: vec![LocalQuery { query: q, at: None }],
    };
    match completion.execute(&source, &mut known) {
        Err(CompletionError::Graft { reason }) => {
            assert!(reason.contains("disagrees"), "unexpected reason: {reason}")
        }
        other => panic!("expected a graft failure, got {other:?}"),
    }
    assert!(known.same_tree(&snapshot));
}

#[test]
fn late_failure_rolls_back_earlier_grafts() {
    // Transactionality proper: the first local query succeeds and would
    // graft new nodes, the second fails — the known tree must come out
    // exactly as it went in, with no half-applied answers.
    let mut alpha = Alphabet::new();
    let source = doc(&mut alpha);
    let q_ok = query_all(&mut alpha);
    let q_bad = query_all(&mut alpha);
    let mut known = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
    let snapshot = known.clone();
    let completion = Completion {
        queries: vec![
            LocalQuery {
                query: q_ok,
                at: None,
            },
            LocalQuery {
                query: q_bad,
                at: Some(Nid(999)),
            },
        ],
    };
    assert!(completion.execute(&source, &mut known).is_err());
    assert!(
        known.same_tree(&snapshot),
        "first query's graft leaked through a failed completion"
    );
}

#[test]
fn truncated_answers_are_rejected_before_the_knowledge() {
    // A source that always truncates (dropping a subtree, sometimes
    // leaving its provenance dangling) must never get a partial answer
    // past the session: either validation rejects it (sloppy truncation)
    // or — for the locally undetectable consistent truncation — the
    // answer grafts but the data tree stays a prefix of the source.
    // Here we pin the sloppy case and check the knowledge is untouched.
    let mut alpha = Alphabet::new();
    let source_doc = doc(&mut alpha);
    let q = query_all(&mut alpha);
    let plan = FaultPlan {
        truncate: 1.0,
        ..FaultPlan::none()
    };
    let mut saw_rejection = false;
    for seed in 0..16 {
        let faulty = FaultySource::new(Source::new(source_doc.clone(), None), plan, seed);
        let mut session = Session::open(alpha.clone(), faulty);
        session.set_retry(RetryPolicy::none());
        let before = session.data_tree();
        match session.answer_with_mediation(&q) {
            Err(WebhouseError::Source(SourceError::InvalidAnswer(v))) => {
                assert!(
                    matches!(
                        v,
                        ValidationError::DanglingProvenance(_)
                            | ValidationError::MissingProvenance(_)
                    ),
                    "unexpected validation error: {v}"
                );
                saw_rejection = true;
                // Nothing was grafted: the knowledge's data tree is
                // exactly what it was.
                match (before, session.data_tree()) {
                    (None, None) => {}
                    (Some(a), Some(b)) => assert!(a.same_tree(&b)),
                    _ => panic!("knowledge changed across a rejected answer"),
                }
            }
            Ok(_) => {
                // Consistent truncation slipped through (locally
                // undetectable by design); the knowledge still must be
                // well-formed.
                session.knowledge().well_formed().unwrap();
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(
        saw_rejection,
        "no seed in 0..16 produced a sloppy truncation — injector broken?"
    );
}

#[test]
fn degraded_answers_keep_the_prior_knowledge() {
    // End-to-end: fetch a view, kill the source, ask something new via
    // the resilient path — the degraded answer must be served from the
    // *intact* pre-failure knowledge.
    let mut alpha = Alphabet::new();
    let source_doc = doc(&mut alpha);
    let q = query_all(&mut alpha);
    let q_b = {
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        let a = bld.child(root, "a", Cond::True).unwrap();
        bld.child(a, "b", Cond::True).unwrap();
        bld.build()
    };
    let faulty = FaultySource::new(Source::new(source_doc, None), FaultPlan::none(), 1);
    let mut session = Session::open(alpha, faulty);
    session.fetch(&q).unwrap();
    let before = session.data_tree().expect("view pinned data nodes");
    session.source_mut().set_plan(FaultPlan {
        timeout: 1.0,
        ..FaultPlan::none()
    });
    match session.answer_resilient(&q_b) {
        LocalAnswer::Degraded { .. } => {}
        other => panic!("expected degradation, got {other:?}"),
    }
    assert!(session.data_tree().unwrap().same_tree(&before));
    assert_eq!(session.quarantines, 0);
}
