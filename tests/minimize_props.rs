//! Property tests for bisimulation minimization: it must preserve `rep`
//! exactly on incomplete trees arising from real Refine chains, while
//! never growing the representation.

use iixml_core::refine::{intersect, query_answer_tree};
use iixml_gen::testkit::check_with;
use iixml_gen::{
    catalog, catalog_query_camera_pictures, catalog_query_price_below, random_queries,
};
use iixml_oracle::mutations;

/// Membership agrees before and after minimization on dozens of
/// probes (the source, its mutations, and witnesses).
#[test]
fn minimization_preserves_membership() {
    check_with("minimization_preserves_membership", 12, |rng| {
        let seed = rng.below(400);
        let nq = rng.range_usize(1, 3);
        let c = catalog(3, seed);
        let root = c.alpha.get("catalog").unwrap();
        let queries = random_queries(&c.alpha, &c.ty, root, nq, 300, seed ^ 0x5A5A);
        // Build WITHOUT the Refiner (which minimizes internally): raw
        // intersection chain.
        let labels: Vec<_> = c.alpha.labels().collect();
        let names: Vec<&str> = labels.iter().map(|&l| c.alpha.name(l)).collect();
        let mut cur = iixml_core::IncompleteTree::universal(&labels, &names);
        for q in &queries {
            let tqa = query_answer_tree(q, &q.eval(&c.doc), &c.alpha).unwrap();
            cur = intersect(&cur, &tqa).unwrap().trim();
        }
        let minimized = cur.minimize();
        assert!(minimized.size() <= cur.size(), "never grows");
        let mut probes = mutations(&c.doc, &labels);
        probes.push(c.doc.clone());
        probes.truncate(40);
        for p in &probes {
            assert_eq!(
                cur.contains(p),
                minimized.contains(p),
                "membership changed by minimization"
            );
        }
        // Witnesses cross over.
        let mut gen = iixml_tree::NidGen::starting_at(2_000_000);
        if let Some(w) = cur.witness(&mut gen) {
            assert!(minimized.contains(&w));
        }
        if let Some(w) = minimized.witness(&mut gen) {
            assert!(cur.contains(&w));
        }
    });
}

/// Minimization commutes with the prefix predicates.
#[test]
fn minimization_preserves_prefix_predicates() {
    check_with("minimization_preserves_prefix_predicates", 12, |rng| {
        let seed = rng.below(400);
        let mut c = catalog(3, seed);
        let q1 = catalog_query_price_below(&mut c.alpha, 250);
        let q2 = catalog_query_camera_pictures(&mut c.alpha);
        let labels: Vec<_> = c.alpha.labels().collect();
        let names: Vec<&str> = labels.iter().map(|&l| c.alpha.name(l)).collect();
        let mut cur = iixml_core::IncompleteTree::universal(&labels, &names);
        for q in [&q1, &q2] {
            let tqa = query_answer_tree(q, &q.eval(&c.doc), &c.alpha).unwrap();
            cur = intersect(&cur, &tqa).unwrap().trim();
        }
        let minimized = cur.minimize();
        if let Some(td) = cur.data_tree() {
            assert_eq!(cur.certain_prefix(&td), minimized.certain_prefix(&td));
            assert_eq!(cur.possible_prefix(&td), minimized.possible_prefix(&td));
            for m in mutations(&td, &labels).into_iter().take(15) {
                assert_eq!(
                    cur.possible_prefix(&m),
                    minimized.possible_prefix(&m),
                    "possible_prefix changed"
                );
                assert_eq!(
                    cur.certain_prefix(&m),
                    minimized.certain_prefix(&m),
                    "certain_prefix changed"
                );
            }
        }
    });
}
