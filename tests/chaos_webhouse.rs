//! Chaos test for the fault-tolerant webhouse loop: thousands of
//! completions against sources injecting timeouts, transient errors,
//! truncated and poisoned answers, and mid-session document updates —
//! every fault kind at well above 10%. The loop's end-to-end guarantee:
//! every query completes or degrades (never panics, never hangs), the
//! knowledge stays well-formed (Definition 2.7) after every single
//! step, and lies the validator cannot catch locally are eventually
//! caught as contradictions and quarantined.
//!
//! Fully deterministic: all fault decisions and backoff jitter derive
//! from `IIXML_TEST_SEED` (see CONTRIBUTING.md). CI runs this twice —
//! once with the pinned seed, once with a seed rotated from the commit
//! SHA — so the fault space is explored over time while every failure
//! stays replayable.

use iixml_gen::rng::DetRng;
use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below, testkit};
use iixml_query::PsQuery;
use iixml_webhouse::{FaultPlan, FaultySource, LocalAnswer, RetryPolicy, Session, Source};

const SESSIONS: u64 = 8;
const STEPS_PER_SESSION: usize = 250;

struct Outcomes {
    complete: usize,
    degraded: usize,
    quarantines: usize,
    faults: usize,
}

/// Mutates one random node's value in the live document *without*
/// telling the webhouse — the external drift every remote document has
/// (the injector's own `update` fault only fires on source contact).
fn external_drift(session: &mut Session<FaultySource>, rng: &mut DetRng) {
    let inner = session.source_mut().inner_mut();
    let mut doc = inner.document().clone();
    let nodes = doc.preorder();
    let victim = nodes[rng.range_usize(0, nodes.len())];
    let bumped = doc.value(victim) + iixml_values::Rat::from(rng.range_i64(1, 400));
    doc.set_value(victim, bumped);
    // Value drift never violates the declared type (labels and
    // multiplicities are untouched).
    inner.try_update(doc).expect("drift preserves the type");
}

/// Drives one faulty session for `STEPS_PER_SESSION` resilient queries,
/// asserting the invariants after every step.
fn storm(session_seed: u64) -> Outcomes {
    let mut c = catalog(8, session_seed ^ 0xCA7A106);
    let src = Source::new(c.doc.clone(), Some(c.ty.clone()));
    // Every fault kind at 12% — above the 10% the fault model promises
    // to survive.
    let faulty = FaultySource::new(src, FaultPlan::uniform(0.12), session_seed);
    let mut session = Session::open(c.alpha.clone(), faulty);
    session.set_backoff_seed(session_seed ^ 0xB0FF);
    session.set_retry(RetryPolicy::default());
    // Bound degraded-answer cost on blown-up knowledge (§3.2 relax).
    session.set_relax_target(Some(400));

    let mut rng = DetRng::new(session_seed);
    let (mut complete, mut degraded) = (0usize, 0usize);
    for step in 0..STEPS_PER_SESSION {
        // Knowledge TTL: periodically forget and re-crawl, as a real
        // warehouse does — otherwise a fully-pinned catalog answers
        // everything locally and the source (and its faults) goes idle.
        if step % 25 == 24 {
            session.reinitialize();
        }
        // External drift: the document changes whether or not we look.
        if rng.bool(0.10) {
            external_drift(&mut session, &mut rng);
        }
        // Randomized bounds keep fresh queries arriving that the
        // accumulated views do not yet subsume.
        let q: PsQuery = if rng.bool(0.2) {
            catalog_query_camera_pictures(&mut c.alpha)
        } else {
            catalog_query_price_below(&mut c.alpha, rng.range_i64(20, 600))
        };
        match session.answer_resilient(&q) {
            LocalAnswer::Complete(_) => complete += 1,
            LocalAnswer::Degraded { .. } => degraded += 1,
            LocalAnswer::Partial(_) => {
                panic!("resilient answers never stay partial (seed {session_seed}, step {step})")
            }
        }
        // The knowledge must be a well-formed incomplete tree after
        // every recovery, whatever path was taken.
        session.knowledge().well_formed().unwrap_or_else(|e| {
            panic!("ill-formed knowledge after step {step} (seed {session_seed}): {e}")
        });
    }
    assert_eq!(complete + degraded, STEPS_PER_SESSION);
    Outcomes {
        complete,
        degraded,
        quarantines: session.quarantines,
        faults: session.source().faults.total(),
    }
}

#[test]
fn faulty_sources_never_break_the_loop() {
    iixml_obs::set_enabled(true);
    let base = testkit::base_seed();
    let mut totals = Outcomes {
        complete: 0,
        degraded: 0,
        quarantines: 0,
        faults: 0,
    };
    for i in 0..SESSIONS {
        let o = storm(DetRng::new(base).fork(i).next_u64());
        totals.complete += o.complete;
        totals.degraded += o.degraded;
        totals.quarantines += o.quarantines;
        totals.faults += o.faults;
    }
    let steps = SESSIONS as usize * STEPS_PER_SESSION;
    println!(
        "chaos: {steps} queries -> {} complete, {} degraded, {} quarantines, {} faults injected",
        totals.complete, totals.degraded, totals.quarantines, totals.faults
    );
    // With 12% per-kind fault rates, a run that exercises no recovery
    // path means the injector (or the accounting) is broken — these
    // hold for any seed.
    assert!(totals.faults > steps / 10, "injector barely fired");
    assert!(totals.complete > 0, "nothing ever completed");
    assert!(totals.degraded > 0, "nothing ever degraded");
    assert!(totals.quarantines > 0, "no lie was ever caught");

    // The fault-model metrics must be visible in the snapshot
    // (`iixml --stats` prints this same registry).
    let snap = iixml_obs::snapshot();
    for key in [
        "webhouse.retries",
        "webhouse.source_errors",
        "webhouse.validation_rejects",
        "webhouse.degraded_answers",
        "webhouse.quarantines",
    ] {
        assert!(
            snap.counter(key).unwrap_or(0) > 0,
            "metric {key} never incremented"
        );
    }
    let backoff = snap
        .histogram("webhouse.backoff_ns")
        .expect("backoff histogram present");
    assert!(backoff.count > 0, "no backoff was ever recorded");
}

#[test]
fn chaos_storm_is_thread_count_invariant() {
    // The full 2000-query storm (8 sessions x 250 steps), replayed at
    // worker widths 1 and 4: the parallel execution layer must not
    // change a single decision anywhere in the loop — outcome counts
    // summarize the entire per-step trajectory (every retry, backoff,
    // quarantine, and refine result), so equal counts per session mean
    // the decision sequences matched.
    let base = testkit::base_seed();
    let run_all = |width: usize| -> Vec<(usize, usize, usize, usize)> {
        iixml_par::set_threads(Some(width));
        let out = (0..SESSIONS)
            .map(|i| {
                let o = storm(DetRng::new(base).fork(i).next_u64());
                (o.complete, o.degraded, o.quarantines, o.faults)
            })
            .collect();
        iixml_par::set_threads(None);
        out
    };
    assert_eq!(
        run_all(1),
        run_all(4),
        "storm trajectories diverged between worker widths"
    );
}

#[test]
fn chaos_runs_replay_deterministically() {
    // Same seed, same storm: outcome counts (and therefore the entire
    // decision sequence they summarize) must match exactly.
    let seed = testkit::base_seed() ^ 0xDE7E6;
    let a = storm(seed);
    let b = storm(seed);
    assert_eq!(
        (a.complete, a.degraded, a.quarantines, a.faults),
        (b.complete, b.degraded, b.quarantines, b.faults)
    );
    // And a different seed explores a different trajectory (fault
    // totals colliding exactly across 250 steps would be a frozen RNG).
    let c = storm(seed ^ 1);
    assert_ne!(
        (a.complete, a.degraded, a.quarantines, a.faults),
        (c.complete, c.degraded, c.quarantines, c.faults),
        "distinct seeds produced identical storms"
    );
}
