//! Crash-recovery invariants of the durable session journal under
//! seeded fault injection.
//!
//! The invariant (the tentpole's acceptance bar): recovering a journal
//! that suffered torn writes and bit flips either reproduces the exact
//! serialized knowledge the session had after the surviving record
//! prefix, or reports `Recovered { dropped_records > 0 }` — it never
//! panics and never silently diverges. Over a thousand seeded
//! injury cases drive that claim; `IIXML_TEST_SEED` rotates them.

use iixml_core::io::write_incomplete_xml;
use iixml_core::{IncompleteTree, Refiner};
use iixml_gen::rng::DetRng;
use iixml_gen::testkit;
use iixml_query::PsQuery;
use iixml_store::{recover, Corruptor, Injury, RecoveryMode, RecoveryStatus, SessionJournal};
use iixml_tree::Alphabet;
use std::path::{Path, PathBuf};

const FAMILIES: usize = 20;
const CASES_PER_FAMILY: usize = 52;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-storerec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn ser(refiner: &Refiner, alpha: &Alphabet) -> String {
    write_incomplete_xml(refiner.current(), alpha)
}

/// One journaled session history: the journal directory plus the
/// serialized knowledge after every record (`states[k]` = state once
/// `k` records are durable), built at the store level so the snapshot
/// cadence can be varied per family.
struct Family {
    dir: PathBuf,
    states: Vec<String>,
}

fn build_family(f: usize, seed: u64) -> Family {
    let mut rng = DetRng::new(seed);
    let mut cat = iixml_gen::catalog(2, rng.next_u64());
    // Pre-generate the query pool so the alphabet is complete (frozen)
    // before the Open record spells it out.
    let queries: Vec<PsQuery> = (0..6)
        .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
        .collect();
    let alpha = cat.alpha.clone();

    let dir = scratch(&format!("fam{f}"));
    let mut journal = SessionJournal::create(&dir).unwrap();
    journal.set_snapshot_every(*rng.choose(&[None, Some(2), Some(4)]));
    let mut refiner = Refiner::new(&alpha);
    let initial: IncompleteTree = refiner.current().clone();
    journal.log_open(&alpha, &initial).unwrap();
    // states[0] is the never-observable pre-open state; recovery always
    // reflects at least the Open record.
    let mut states = vec![String::new(), ser(&refiner, &alpha)];

    for _ in 0..rng.range_usize(4, 9) {
        match rng.below(10) {
            0 => {
                refiner = Refiner::from_tree(initial.clone());
                journal.log_quarantine().unwrap();
            }
            1 => {
                refiner = Refiner::from_tree(initial.clone());
                journal.log_source_update().unwrap();
            }
            _ => {
                let q = rng.choose(&queries).clone();
                let ans = q.eval(&cat.doc);
                refiner.refine(&alpha, &q, &ans).unwrap();
                journal.log_refine(&alpha, &q, &ans).unwrap();
            }
        }
        states.push(ser(&refiner, &alpha));
        if journal.maybe_snapshot(&alpha, refiner.current()).unwrap() {
            // The SnapshotRef record changes no state.
            states.push(ser(&refiner, &alpha));
        }
        assert_eq!(journal.seq() as usize, states.len() - 1);
    }
    Family { dir, states }
}

/// Flips one random byte of a random snapshot file, so recovery's
/// fall-back-past-corrupt-snapshots path gets exercised too (the
/// `Corruptor` itself only injures WAL segments).
fn maybe_injure_snapshot(rng: &mut DetRng, dir: &Path) {
    let snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "snap")).then_some(p)
        })
        .collect();
    if snaps.is_empty() || !rng.bool(0.3) {
        return;
    }
    let path = rng.choose(&snaps);
    let mut bytes = std::fs::read(path).unwrap();
    if bytes.is_empty() {
        return;
    }
    let i = rng.range_usize(0, bytes.len());
    bytes[i] ^= 1 << rng.below(8);
    std::fs::write(path, &bytes).unwrap();
}

// The acceptance floor: the injection sweep is at least a thousand cases.
const _: () = assert!(FAMILIES * CASES_PER_FAMILY >= 1000);

#[test]
fn recovery_never_diverges_under_seeded_injection() {
    let base = testkit::base_seed();
    let mut recovered_ok = 0usize;
    let mut typed_errors = 0usize;
    for f in 0..FAMILIES {
        let fam_seed = DetRng::new(base).fork(f as u64).next_u64();
        let fam = build_family(f, fam_seed);
        let total = fam.states.len() - 1;
        let case_dir = scratch(&format!("fam{f}-case"));
        for c in 0..CASES_PER_FAMILY {
            let case_seed = DetRng::new(fam_seed).fork(c as u64).next_u64();
            let ctx = format!(
                "family {f} case {c} — replay with IIXML_TEST_SEED={base} \
                 (family seed {fam_seed}, case seed {case_seed})"
            );
            copy_dir(&fam.dir, &case_dir);
            let mut rng = DetRng::new(case_seed);
            let mut corruptor = Corruptor::new(case_seed);
            let injuries: Vec<Injury> = (0..rng.range_usize(1, 3))
                .map(|_| corruptor.injure(&case_dir).unwrap())
                .collect();
            maybe_injure_snapshot(&mut rng, &case_dir);
            // A truncation landing exactly on a frame boundary is
            // indistinguishable from a shorter log (records the
            // recoverer never heard of cannot be missed) — so only
            // then may a clean recovery come up short without a torn
            // tail. Bit flips must never be silent.
            let tore = injuries
                .iter()
                .any(|i| matches!(i, Injury::Truncated { .. }));

            let rec = match recover(&case_dir, RecoveryMode::Degrade) {
                Ok(rec) => rec,
                Err(_) => {
                    // A typed error (journal destroyed beyond any sound
                    // prefix) is an acceptable outcome; a panic is not.
                    typed_errors += 1;
                    continue;
                }
            };
            recovered_ok += 1;
            assert!(
                rec.replayed >= 1 && rec.replayed <= total,
                "{ctx}: replayed {} of {total} records",
                rec.replayed
            );
            let got = ser(&rec.refiner, &rec.alpha);
            assert_eq!(
                got, fam.states[rec.replayed],
                "{ctx}: recovered state is not the state after {} records",
                rec.replayed
            );
            // Never silently diverge: losing durable records must be
            // visible — as a drop count, or as the torn tail that
            // legitimately ate the end of the log.
            match rec.status {
                RecoveryStatus::Clean => assert!(
                    rec.replayed == total || rec.torn_tail || tore,
                    "{ctx}: clean recovery lost {} records with no torn tail",
                    total - rec.replayed
                ),
                RecoveryStatus::Recovered { dropped_records } => assert!(
                    dropped_records > 0,
                    "{ctx}: Recovered with a zero drop count"
                ),
            }
            // Recovery repairs as it goes, so recovering again must
            // converge: same prefix, same bytes.
            let has_journal = rec.journal.is_some();
            let replayed = rec.replayed;
            drop(rec);
            let again = recover(&case_dir, RecoveryMode::Degrade)
                .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
            assert_eq!(again.replayed, replayed, "{ctx}: second recovery drifted");
            assert_eq!(
                ser(&again.refiner, &again.alpha),
                got,
                "{ctx}: second recovery changed the state"
            );
            if has_journal {
                assert_eq!(
                    again.status,
                    RecoveryStatus::Clean,
                    "{ctx}: repaired log still reports damage"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&fam.dir);
        let _ = std::fs::remove_dir_all(&case_dir);
    }
    // The harness must actually be recovering most of the time, not
    // hiding behind the typed-error escape hatch.
    assert!(
        recovered_ok >= FAMILIES * CASES_PER_FAMILY / 2,
        "only {recovered_ok} of {} cases recovered ({typed_errors} typed errors)",
        FAMILIES * CASES_PER_FAMILY
    );
}

/// Group-commit crash matrix: torn tails landing *inside* a batched
/// flush must recover to (at least) the last fully-fsynced batch, and
/// concurrent recovery of the whole case set through
/// `Webhouse::recover_sessions` must be byte-identical at par widths 1
/// and 4.
#[test]
fn torn_group_commit_batches_recover_to_last_synced_batch() {
    use iixml_store::FlushPolicy;
    use iixml_webhouse::{Source, Webhouse};

    const CASES: usize = 24;
    let base = testkit::base_seed();

    // Build the case set once: each case is a journaled history written
    // under a batch-everything policy, with one explicit sync() barrier
    // at a seeded point, then a crash tearing the final batch at a
    // seeded byte — the exact artifact of a process killed mid-flush.
    struct Case {
        name: String,
        dir: PathBuf,
        doc: iixml_tree::DataTree,
        states: Vec<String>,
        synced: usize,
        total: usize,
    }
    let mut cases: Vec<Case> = Vec::with_capacity(CASES);
    for c in 0..CASES {
        let seed = DetRng::new(base ^ 0xBA7C).fork(c as u64).next_u64();
        let mut rng = DetRng::new(seed);
        let mut cat = iixml_gen::catalog(2, rng.next_u64());
        let queries: Vec<PsQuery> = (0..5)
            .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
            .collect();
        let alpha = cat.alpha.clone();

        let dir = scratch(&format!("gcm-c{c}"));
        let mut journal = SessionJournal::create(&dir).unwrap();
        journal.set_snapshot_every(None);
        journal
            .set_flush_policy(FlushPolicy {
                max_batch_bytes: u64::MAX,
                max_batch_records: u64::MAX,
                max_linger_ticks: u64::MAX,
            })
            .unwrap();
        let mut refiner = Refiner::new(&alpha);
        let initial: IncompleteTree = refiner.current().clone();
        journal.log_open(&alpha, &initial).unwrap();
        let mut states = vec![String::new(), ser(&refiner, &alpha)];

        let steps = rng.range_usize(4, 8);
        let sync_after = rng.range_usize(1, steps); // refines durable at the barrier
        let mut synced_len = 0u64;
        for i in 0..steps {
            let q = rng.choose(&queries).clone();
            let ans = q.eval(&cat.doc);
            refiner.refine(&alpha, &q, &ans).unwrap();
            journal.log_refine(&alpha, &q, &ans).unwrap();
            states.push(ser(&refiner, &alpha));
            if i + 1 == sync_after {
                journal.sync().unwrap();
                let (_, seg) = iixml_store::wal::Wal::segments(&dir)
                    .unwrap()
                    .pop()
                    .unwrap();
                synced_len = std::fs::metadata(seg).unwrap().len();
            }
        }
        let synced = 1 + sync_after; // open + synced refines
        let total = 1 + steps;
        assert!(
            journal.pending_records() > 0,
            "case {c}: nothing left buffered — the tear would not land in a batch"
        );
        drop(journal); // drop flushes the rest; the tear below undoes part of it
        let (_, seg) = iixml_store::wal::Wal::segments(&dir)
            .unwrap()
            .pop()
            .unwrap();
        let full_len = std::fs::metadata(&seg).unwrap().len();
        assert!(full_len > synced_len, "case {c}: final batch wrote nothing");
        // Tear inside the final (unsynced) batch.
        let cut = synced_len + 1 + (rng.next_u64() % (full_len - synced_len));
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();
        cases.push(Case {
            name: format!("case-{c:02}"),
            dir,
            doc: cat.doc.clone(),
            states,
            synced,
            total,
        });
    }

    // Recover the whole fleet concurrently at widths 1 and 4. The first
    // pass repairs the torn tails; the invariant (and the bytes) must
    // hold on every pass at every width.
    let mut per_width: Vec<Vec<String>> = Vec::new();
    for &width in &[1usize, 4] {
        iixml_par::set_threads(Some(width));
        let mut house: Webhouse<Source> = Webhouse::new();
        let journals: Vec<(String, PathBuf, Source)> = cases
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    c.dir.clone(),
                    Source::new(c.doc.clone(), None),
                )
            })
            .collect();
        let reports = house
            .recover_sessions(journals)
            .expect("torn batches are benign; recovery must not error");
        assert_eq!(reports.len(), CASES);
        let mut knowledge = Vec::with_capacity(CASES);
        for (case, (name, report)) in cases.iter().zip(&reports) {
            assert_eq!(&case.name, name, "name order broke");
            assert_eq!(
                report.status,
                RecoveryStatus::Clean,
                "{name} width {width}: a torn batch is the benign crash shape"
            );
            assert!(
                report.replayed >= case.synced,
                "{name} width {width}: lost a record acknowledged by sync() \
                 (replayed {} < {} synced)",
                report.replayed,
                case.synced
            );
            assert!(report.replayed <= case.total, "{name}: replayed too much");
            let session = house.session(name).unwrap();
            let alpha = session.alphabet().clone();
            let got = write_incomplete_xml(session.knowledge(), &alpha);
            assert_eq!(
                got, case.states[report.replayed],
                "{name} width {width}: state is not the state after {} records",
                report.replayed
            );
            knowledge.push(got);
        }
        per_width.push(knowledge);
    }
    iixml_par::set_threads(None);
    assert_eq!(
        per_width[0], per_width[1],
        "recovery width changed the recovered bytes"
    );
    for case in &cases {
        let _ = std::fs::remove_dir_all(&case.dir);
    }
}

/// Segment compaction: once snapshots cover the old segments they are
/// retired (file-level GC), and recovery of the compacted journal —
/// which no longer starts with its Open record — re-anchors on a
/// SnapshotRef and comes back `Clean` in both modes, byte-identical to
/// the uncompacted history.
#[test]
fn compacted_journals_recover_clean_from_the_anchor() {
    let base = testkit::base_seed();
    let mut rng = DetRng::new(base ^ 0xC0DA);
    let mut cat = iixml_gen::catalog(2, rng.next_u64());
    let queries: Vec<PsQuery> = (0..6)
        .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
        .collect();
    let alpha = cat.alpha.clone();

    let dir = scratch("compact");
    let mut journal = SessionJournal::create(&dir).unwrap();
    journal.set_segment_bytes(512); // roll often so compaction has prey
    journal.set_snapshot_every(Some(4));
    let mut refiner = Refiner::new(&alpha);
    let initial: IncompleteTree = refiner.current().clone();
    journal.log_open(&alpha, &initial).unwrap();
    let mut states = vec![String::new(), ser(&refiner, &alpha)];
    for _ in 0..24 {
        match rng.below(8) {
            0 => {
                refiner = Refiner::from_tree(initial.clone());
                journal.log_quarantine().unwrap();
            }
            _ => {
                let q = rng.choose(&queries).clone();
                let ans = q.eval(&cat.doc);
                refiner.refine(&alpha, &q, &ans).unwrap();
                journal.log_refine(&alpha, &q, &ans).unwrap();
            }
        }
        states.push(ser(&refiner, &alpha));
        if journal.maybe_snapshot(&alpha, refiner.current()).unwrap() {
            states.push(ser(&refiner, &alpha));
        }
    }
    let total = journal.seq() as usize;
    assert_eq!(total, states.len() - 1);
    drop(journal);

    let segs = iixml_store::wal::Wal::segments(&dir).unwrap();
    assert!(
        segs[0].0 > 0,
        "no segment was retired — compaction never ran (segments: {segs:?})"
    );
    assert!(
        std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".retired")),
        "a retirement tombstone survived"
    );

    for mode in [RecoveryMode::Strict, RecoveryMode::Degrade] {
        let rec = recover(&dir, mode).expect("compacted journal must recover");
        assert_eq!(
            rec.status,
            RecoveryStatus::Clean,
            "{mode:?}: a retired prefix is GC, not loss"
        );
        assert_eq!(rec.replayed, total, "{mode:?}: replayed the wrong count");
        assert!(rec.from_snapshot.is_some(), "{mode:?}: did not re-anchor");
        assert!(rec.journal.is_some(), "{mode:?}: journal not continuable");
        assert_eq!(
            ser(&rec.refiner, &rec.alpha),
            states[total],
            "{mode:?}: compacted recovery diverged"
        );
        assert!(
            rec.initial.is_some(),
            "{mode:?}: initial knowledge lost (quarantine replay would break)"
        );
    }

    // A torn tail on top of the compacted journal stays benign.
    let (_, seg) = iixml_store::wal::Wal::segments(&dir)
        .unwrap()
        .pop()
        .unwrap();
    let len = std::fs::metadata(&seg).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&seg)
        .unwrap()
        .set_len(len - 3)
        .unwrap();
    let rec = recover(&dir, RecoveryMode::Degrade).expect("torn compacted journal");
    assert_eq!(rec.status, RecoveryStatus::Clean);
    assert!(rec.torn_tail);
    assert!(rec.replayed < total && rec.replayed >= 1);
    assert_eq!(ser(&rec.refiner, &rec.alpha), states[rec.replayed]);
    // And the repaired journal continues: append + snapshot + compact
    // again, then one more clean recovery.
    let mut journal = rec.journal.expect("continuable");
    journal.log_quarantine().unwrap();
    let refiner = Refiner::from_tree(rec.initial.clone().unwrap());
    let after = ser(&refiner, &rec.alpha);
    journal.snapshot_now(&rec.alpha, refiner.current()).unwrap();
    let reseq = journal.seq() as usize;
    drop(journal);
    drop(refiner);
    let again = recover(&dir, RecoveryMode::Strict).expect("recovery after continuation");
    assert_eq!(again.status, RecoveryStatus::Clean);
    assert_eq!(again.replayed, reseq);
    assert_eq!(ser(&again.refiner, &again.alpha), after);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chaos storm (PR 2's unreliable source) on a journaled session,
/// crashed at a seeded step and recovered: the recovered knowledge must
/// be byte-identical to the uncrashed run at the crash point, at
/// parallel widths 1 and 4 — and the whole trajectory must not depend
/// on the width.
#[test]
fn chaos_storm_crash_recovery_is_byte_identical_across_widths() {
    use iixml_webhouse::{FaultPlan, FaultySource, Session, Source};

    let base = testkit::base_seed();
    let steps = 24usize;
    let crash_at = (DetRng::new(base).fork(0xC4A5).next_u64() % steps as u64) as usize;
    let mut trajectories: Vec<Vec<String>> = Vec::new();

    for &width in &[1usize, 4] {
        iixml_par::set_threads(Some(width));
        let mut cat = iixml_gen::catalog(3, base ^ 0x5709);
        let mut queries: Vec<PsQuery> = [150i64, 200, 250, 300, 400, 500]
            .iter()
            .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
            .collect();
        queries.push(iixml_gen::catalog_query_camera_pictures(&mut cat.alpha));
        let alpha = cat.alpha.clone();
        let make_source = || {
            FaultySource::new(
                Source::new(cat.doc.clone(), Some(cat.ty.clone())),
                FaultPlan::uniform(0.2),
                base ^ 0xFA17,
            )
        };

        let dir = scratch(&format!("chaos-w{width}"));
        let crash_dir = scratch(&format!("chaos-w{width}-crash"));
        let mut session =
            Session::open_journaled(alpha.clone(), make_source(), &dir).expect("journaled open");
        session.set_backoff_seed(base);
        let mut states = Vec::with_capacity(steps);
        for (i, q) in queries.iter().cycle().take(steps).enumerate() {
            let _ = session.answer_resilient(q);
            assert!(
                session.journal_fault().is_none(),
                "journal fault during an uninjured storm"
            );
            states.push(write_incomplete_xml(session.knowledge(), &alpha));
            if i == crash_at {
                // The crash image: every acknowledged record is already
                // synced, so a copy of the directory is exactly what a
                // killed process would leave behind.
                copy_dir(&dir, &crash_dir);
            }
        }

        let (recovered, report) =
            Session::recover(&crash_dir, make_source()).expect("recovery of the crash image");
        assert_eq!(report.status, RecoveryStatus::Clean, "width {width}");
        assert!(
            !report.rebased,
            "width {width}: clean image forced a rebase"
        );
        assert_eq!(
            write_incomplete_xml(recovered.knowledge(), &alpha),
            states[crash_at],
            "width {width}: recovered knowledge diverged from the uncrashed run at step {crash_at}"
        );

        // The full (uncrashed) journal recovers to the final state too.
        drop(session);
        let (full, full_report) =
            Session::recover(&dir, make_source()).expect("recovery of the full journal");
        assert_eq!(full_report.status, RecoveryStatus::Clean, "width {width}");
        assert_eq!(
            write_incomplete_xml(full.knowledge(), &alpha),
            states[steps - 1],
            "width {width}: full-journal recovery diverged from the final state"
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
        trajectories.push(states);
    }
    iixml_par::set_threads(None);
    assert_eq!(
        trajectories[0], trajectories[1],
        "thread width changed the session trajectory"
    );
}

/// ENOSPC mid-compaction: the fault strikes while retirement is
/// tearing down a snapshot-covered segment. The error must propagate
/// (never `.ok()`-swallowed), the `.retired` tombstone stays behind for
/// the sweep, the journal is *not* poisoned (only write-path faults
/// are), and recovery comes back `Clean` with every record — then
/// sweeps the tombstone.
#[test]
fn enospc_mid_compaction_propagates_and_recovery_sweeps_the_tombstone() {
    use iixml_store::{Fault, IoOp, StoreIo};

    let base = testkit::base_seed();
    let mut rng = DetRng::new(base ^ 0xE05C);
    let mut cat = iixml_gen::catalog(2, rng.next_u64());
    let queries: Vec<PsQuery> = (0..6)
        .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
        .collect();
    let alpha = cat.alpha.clone();

    let dir = scratch("enospc-compact");
    let io = StoreIo::faulty(base, 0.0); // injector with no random faults
    let mut journal = SessionJournal::create_with_io(&dir, io.clone()).unwrap();
    journal.set_segment_bytes(512); // roll often so compaction has prey
    journal.set_snapshot_every(Some(4));
    // The only Remove the store issues on a healthy run is retirement's
    // final unlink, so this one-shot waits for compaction to reach it.
    io.inject_once(IoOp::Remove, Fault::Enospc);

    let mut refiner = Refiner::new(&alpha);
    journal.log_open(&alpha, refiner.current()).unwrap();
    let mut states = vec![String::new(), ser(&refiner, &alpha)];
    let mut struck = false;
    for _ in 0..24 {
        let q = rng.choose(&queries).clone();
        let ans = q.eval(&cat.doc);
        refiner.refine(&alpha, &q, &ans).unwrap();
        journal.log_refine(&alpha, &q, &ans).unwrap();
        states.push(ser(&refiner, &alpha));
        match journal.maybe_snapshot(&alpha, refiner.current()) {
            Ok(true) => states.push(ser(&refiner, &alpha)),
            Ok(false) => {}
            Err(e) => {
                // snapshot_now appends the SnapshotRef (and syncs it)
                // before compaction runs, so the ref is in the log.
                assert!(
                    e.to_string().contains("No space left"),
                    "unexpected error mid-compaction: {e}"
                );
                states.push(ser(&refiner, &alpha));
                struck = true;
                break;
            }
        }
    }
    assert!(struck, "compaction never reached a retirement");
    let tombstones = || {
        std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".retired")
            })
            .count()
    };
    assert!(tombstones() > 0, "retirement failed without a tombstone");
    // A compaction fault is not a write-path fault: the journal is not
    // poisoned and keeps accepting records.
    assert!(
        journal.fault().is_none(),
        "compaction fault poisoned the writer"
    );
    let q = rng.choose(&queries).clone();
    let ans = q.eval(&cat.doc);
    refiner.refine(&alpha, &q, &ans).unwrap();
    journal.log_refine(&alpha, &q, &ans).unwrap();
    states.push(ser(&refiner, &alpha));
    let total = journal.seq() as usize;
    assert_eq!(total, states.len() - 1);
    drop(journal);

    for mode in [RecoveryMode::Strict, RecoveryMode::Degrade] {
        let rec = recover(&dir, mode).expect("journal with a stuck tombstone must recover");
        assert_eq!(
            rec.status,
            RecoveryStatus::Clean,
            "{mode:?}: GC debris is not loss"
        );
        assert_eq!(rec.replayed, total, "{mode:?}: replayed the wrong count");
        assert_eq!(
            ser(&rec.refiner, &rec.alpha),
            states[total],
            "{mode:?}: recovery diverged"
        );
    }
    assert_eq!(tombstones(), 0, "recovery did not sweep the tombstone");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fsync-failure-then-crash: a batched journal hits the fsyncgate
/// shape — the flush's fsync fails and the kernel drops the unsynced
/// pages. The sync must report the fault, the writer must stay
/// poisoned, and recovery must land exactly on the last acknowledged
/// barrier: nothing synced is lost, nothing unsynced is resurrected.
#[test]
fn fsync_failure_then_crash_recovers_exactly_the_acknowledged_barrier() {
    use iixml_store::{take_drop_fault, Fault, FlushPolicy, IoOp, StoreIo};

    let base = testkit::base_seed();
    let mut rng = DetRng::new(base ^ 0xF5BC);
    let mut cat = iixml_gen::catalog(2, rng.next_u64());
    let queries: Vec<PsQuery> = (0..6)
        .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
        .collect();
    let alpha = cat.alpha.clone();

    let dir = scratch("fsyncgate");
    let io = StoreIo::faulty(base, 0.0);
    let mut journal = SessionJournal::create_with_io(&dir, io.clone()).unwrap();
    journal.set_snapshot_every(None);
    journal
        .set_flush_policy(FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: u64::MAX,
            max_linger_ticks: u64::MAX,
        })
        .unwrap();
    let mut refiner = Refiner::new(&alpha);
    journal.log_open(&alpha, refiner.current()).unwrap();
    let mut states = vec![String::new(), ser(&refiner, &alpha)];
    for _ in 0..3 {
        let q = rng.choose(&queries).clone();
        let ans = q.eval(&cat.doc);
        refiner.refine(&alpha, &q, &ans).unwrap();
        journal.log_refine(&alpha, &q, &ans).unwrap();
        states.push(ser(&refiner, &alpha));
    }
    journal.sync().unwrap(); // the barrier: open + 3 refines durable
    let barrier = journal.seq() as usize;
    assert_eq!(barrier, 4);

    for _ in 0..3 {
        let q = rng.choose(&queries).clone();
        let ans = q.eval(&cat.doc);
        refiner.refine(&alpha, &q, &ans).unwrap();
        journal.log_refine(&alpha, &q, &ans).unwrap();
    }
    io.inject_once(IoOp::Sync, Fault::FsyncLoss);
    let err = journal.sync().expect_err("the injected fsync must fail");
    assert!(
        journal.fault().is_some(),
        "a failed fsync must poison the writer"
    );
    // Sticky: the journal refuses further records with the same fault.
    let q = rng.choose(&queries).clone();
    let ans = q.eval(&cat.doc);
    let again = journal
        .log_refine(&alpha, &q, &ans)
        .expect_err("poisoned journal accepted a record");
    assert_eq!(
        again.to_string(),
        err.to_string(),
        "the sticky fault drifted"
    );
    drop(journal); // crash; an already-poisoned writer drops quietly
    assert!(
        take_drop_fault().is_none(),
        "a poisoned writer re-reported its fault at drop"
    );

    let rec = recover(&dir, RecoveryMode::Strict).expect("the barrier prefix must recover");
    assert_eq!(
        rec.status,
        RecoveryStatus::Clean,
        "fsyncgate left no damage"
    );
    assert_eq!(
        rec.replayed, barrier,
        "recovery must land exactly on the acknowledged barrier"
    );
    assert_eq!(
        ser(&rec.refiner, &rec.alpha),
        states[barrier],
        "recovered state is not the barrier state"
    );
    assert!(
        rec.journal.is_some(),
        "journal not continuable after fsyncgate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
