//! Crash-recovery invariants of the durable session journal under
//! seeded fault injection.
//!
//! The invariant (the tentpole's acceptance bar): recovering a journal
//! that suffered torn writes and bit flips either reproduces the exact
//! serialized knowledge the session had after the surviving record
//! prefix, or reports `Recovered { dropped_records > 0 }` — it never
//! panics and never silently diverges. Over a thousand seeded
//! injury cases drive that claim; `IIXML_TEST_SEED` rotates them.

use iixml_core::io::write_incomplete_xml;
use iixml_core::{IncompleteTree, Refiner};
use iixml_gen::rng::DetRng;
use iixml_gen::testkit;
use iixml_query::PsQuery;
use iixml_store::{recover, Corruptor, Injury, RecoveryMode, RecoveryStatus, SessionJournal};
use iixml_tree::Alphabet;
use std::path::{Path, PathBuf};

const FAMILIES: usize = 20;
const CASES_PER_FAMILY: usize = 52;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-storerec-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn ser(refiner: &Refiner, alpha: &Alphabet) -> String {
    write_incomplete_xml(refiner.current(), alpha)
}

/// One journaled session history: the journal directory plus the
/// serialized knowledge after every record (`states[k]` = state once
/// `k` records are durable), built at the store level so the snapshot
/// cadence can be varied per family.
struct Family {
    dir: PathBuf,
    states: Vec<String>,
}

fn build_family(f: usize, seed: u64) -> Family {
    let mut rng = DetRng::new(seed);
    let mut cat = iixml_gen::catalog(2, rng.next_u64());
    // Pre-generate the query pool so the alphabet is complete (frozen)
    // before the Open record spells it out.
    let queries: Vec<PsQuery> = (0..6)
        .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
        .collect();
    let alpha = cat.alpha.clone();

    let dir = scratch(&format!("fam{f}"));
    let mut journal = SessionJournal::create(&dir).unwrap();
    journal.set_snapshot_every(*rng.choose(&[None, Some(2), Some(4)]));
    let mut refiner = Refiner::new(&alpha);
    let initial: IncompleteTree = refiner.current().clone();
    journal.log_open(&alpha, &initial).unwrap();
    // states[0] is the never-observable pre-open state; recovery always
    // reflects at least the Open record.
    let mut states = vec![String::new(), ser(&refiner, &alpha)];

    for _ in 0..rng.range_usize(4, 9) {
        match rng.below(10) {
            0 => {
                refiner = Refiner::from_tree(initial.clone());
                journal.log_quarantine().unwrap();
            }
            1 => {
                refiner = Refiner::from_tree(initial.clone());
                journal.log_source_update().unwrap();
            }
            _ => {
                let q = rng.choose(&queries).clone();
                let ans = q.eval(&cat.doc);
                refiner.refine(&alpha, &q, &ans).unwrap();
                journal.log_refine(&alpha, &q, &ans).unwrap();
            }
        }
        states.push(ser(&refiner, &alpha));
        if journal.maybe_snapshot(&alpha, refiner.current()).unwrap() {
            // The SnapshotRef record changes no state.
            states.push(ser(&refiner, &alpha));
        }
        assert_eq!(journal.seq() as usize, states.len() - 1);
    }
    Family { dir, states }
}

/// Flips one random byte of a random snapshot file, so recovery's
/// fall-back-past-corrupt-snapshots path gets exercised too (the
/// `Corruptor` itself only injures WAL segments).
fn maybe_injure_snapshot(rng: &mut DetRng, dir: &Path) {
    let snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            (p.extension().is_some_and(|x| x == "snap")).then_some(p)
        })
        .collect();
    if snaps.is_empty() || !rng.bool(0.3) {
        return;
    }
    let path = rng.choose(&snaps);
    let mut bytes = std::fs::read(path).unwrap();
    if bytes.is_empty() {
        return;
    }
    let i = rng.range_usize(0, bytes.len());
    bytes[i] ^= 1 << rng.below(8);
    std::fs::write(path, &bytes).unwrap();
}

// The acceptance floor: the injection sweep is at least a thousand cases.
const _: () = assert!(FAMILIES * CASES_PER_FAMILY >= 1000);

#[test]
fn recovery_never_diverges_under_seeded_injection() {
    let base = testkit::base_seed();
    let mut recovered_ok = 0usize;
    let mut typed_errors = 0usize;
    for f in 0..FAMILIES {
        let fam_seed = DetRng::new(base).fork(f as u64).next_u64();
        let fam = build_family(f, fam_seed);
        let total = fam.states.len() - 1;
        let case_dir = scratch(&format!("fam{f}-case"));
        for c in 0..CASES_PER_FAMILY {
            let case_seed = DetRng::new(fam_seed).fork(c as u64).next_u64();
            let ctx = format!(
                "family {f} case {c} — replay with IIXML_TEST_SEED={base} \
                 (family seed {fam_seed}, case seed {case_seed})"
            );
            copy_dir(&fam.dir, &case_dir);
            let mut rng = DetRng::new(case_seed);
            let mut corruptor = Corruptor::new(case_seed);
            let injuries: Vec<Injury> = (0..rng.range_usize(1, 3))
                .map(|_| corruptor.injure(&case_dir).unwrap())
                .collect();
            maybe_injure_snapshot(&mut rng, &case_dir);
            // A truncation landing exactly on a frame boundary is
            // indistinguishable from a shorter log (records the
            // recoverer never heard of cannot be missed) — so only
            // then may a clean recovery come up short without a torn
            // tail. Bit flips must never be silent.
            let tore = injuries
                .iter()
                .any(|i| matches!(i, Injury::Truncated { .. }));

            let rec = match recover(&case_dir, RecoveryMode::Degrade) {
                Ok(rec) => rec,
                Err(_) => {
                    // A typed error (journal destroyed beyond any sound
                    // prefix) is an acceptable outcome; a panic is not.
                    typed_errors += 1;
                    continue;
                }
            };
            recovered_ok += 1;
            assert!(
                rec.replayed >= 1 && rec.replayed <= total,
                "{ctx}: replayed {} of {total} records",
                rec.replayed
            );
            let got = ser(&rec.refiner, &rec.alpha);
            assert_eq!(
                got, fam.states[rec.replayed],
                "{ctx}: recovered state is not the state after {} records",
                rec.replayed
            );
            // Never silently diverge: losing durable records must be
            // visible — as a drop count, or as the torn tail that
            // legitimately ate the end of the log.
            match rec.status {
                RecoveryStatus::Clean => assert!(
                    rec.replayed == total || rec.torn_tail || tore,
                    "{ctx}: clean recovery lost {} records with no torn tail",
                    total - rec.replayed
                ),
                RecoveryStatus::Recovered { dropped_records } => assert!(
                    dropped_records > 0,
                    "{ctx}: Recovered with a zero drop count"
                ),
            }
            // Recovery repairs as it goes, so recovering again must
            // converge: same prefix, same bytes.
            let has_journal = rec.journal.is_some();
            let replayed = rec.replayed;
            drop(rec);
            let again = recover(&case_dir, RecoveryMode::Degrade)
                .unwrap_or_else(|e| panic!("{ctx}: second recovery failed: {e}"));
            assert_eq!(again.replayed, replayed, "{ctx}: second recovery drifted");
            assert_eq!(
                ser(&again.refiner, &again.alpha),
                got,
                "{ctx}: second recovery changed the state"
            );
            if has_journal {
                assert_eq!(
                    again.status,
                    RecoveryStatus::Clean,
                    "{ctx}: repaired log still reports damage"
                );
            }
        }
        let _ = std::fs::remove_dir_all(&fam.dir);
        let _ = std::fs::remove_dir_all(&case_dir);
    }
    // The harness must actually be recovering most of the time, not
    // hiding behind the typed-error escape hatch.
    assert!(
        recovered_ok >= FAMILIES * CASES_PER_FAMILY / 2,
        "only {recovered_ok} of {} cases recovered ({typed_errors} typed errors)",
        FAMILIES * CASES_PER_FAMILY
    );
}

/// A chaos storm (PR 2's unreliable source) on a journaled session,
/// crashed at a seeded step and recovered: the recovered knowledge must
/// be byte-identical to the uncrashed run at the crash point, at
/// parallel widths 1 and 4 — and the whole trajectory must not depend
/// on the width.
#[test]
fn chaos_storm_crash_recovery_is_byte_identical_across_widths() {
    use iixml_webhouse::{FaultPlan, FaultySource, Session, Source};

    let base = testkit::base_seed();
    let steps = 24usize;
    let crash_at = (DetRng::new(base).fork(0xC4A5).next_u64() % steps as u64) as usize;
    let mut trajectories: Vec<Vec<String>> = Vec::new();

    for &width in &[1usize, 4] {
        iixml_par::set_threads(Some(width));
        let mut cat = iixml_gen::catalog(3, base ^ 0x5709);
        let mut queries: Vec<PsQuery> = [150i64, 200, 250, 300, 400, 500]
            .iter()
            .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
            .collect();
        queries.push(iixml_gen::catalog_query_camera_pictures(&mut cat.alpha));
        let alpha = cat.alpha.clone();
        let make_source = || {
            FaultySource::new(
                Source::new(cat.doc.clone(), Some(cat.ty.clone())),
                FaultPlan::uniform(0.2),
                base ^ 0xFA17,
            )
        };

        let dir = scratch(&format!("chaos-w{width}"));
        let crash_dir = scratch(&format!("chaos-w{width}-crash"));
        let mut session =
            Session::open_journaled(alpha.clone(), make_source(), &dir).expect("journaled open");
        session.set_backoff_seed(base);
        let mut states = Vec::with_capacity(steps);
        for (i, q) in queries.iter().cycle().take(steps).enumerate() {
            let _ = session.answer_resilient(q);
            assert!(
                session.journal_fault().is_none(),
                "journal fault during an uninjured storm"
            );
            states.push(write_incomplete_xml(session.knowledge(), &alpha));
            if i == crash_at {
                // The crash image: every acknowledged record is already
                // synced, so a copy of the directory is exactly what a
                // killed process would leave behind.
                copy_dir(&dir, &crash_dir);
            }
        }

        let (recovered, report) =
            Session::recover(&crash_dir, make_source()).expect("recovery of the crash image");
        assert_eq!(report.status, RecoveryStatus::Clean, "width {width}");
        assert!(
            !report.rebased,
            "width {width}: clean image forced a rebase"
        );
        assert_eq!(
            write_incomplete_xml(recovered.knowledge(), &alpha),
            states[crash_at],
            "width {width}: recovered knowledge diverged from the uncrashed run at step {crash_at}"
        );

        // The full (uncrashed) journal recovers to the final state too.
        drop(session);
        let (full, full_report) =
            Session::recover(&dir, make_source()).expect("recovery of the full journal");
        assert_eq!(full_report.status, RecoveryStatus::Clean, "width {width}");
        assert_eq!(
            write_incomplete_xml(full.knowledge(), &alpha),
            states[steps - 1],
            "width {width}: full-journal recovery diverged from the final state"
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&crash_dir);
        trajectories.push(states);
    }
    iixml_par::set_threads(None);
    assert_eq!(
        trajectories[0], trajectories[1],
        "thread width changed the session trajectory"
    );
}
