//! Property tests for Algorithm Refine's defining equation:
//!
//! `T0 ∈ rep(Refine chain for (q1,A1)…(qk,Ak))`  ⟺  `qi(T0) = Ai ∀i`
//!
//! This is checked *without any enumeration*: candidate trees are random
//! catalogs and mutations thereof, and membership is compared against
//! direct re-evaluation of every query. This pins down the strong
//! representation property on realistic workloads.

use iixml_core::Refiner;
use iixml_gen::testkit::check_with;
use iixml_gen::{
    catalog, catalog_query_camera_pictures, catalog_query_price_below, random_queries,
};
use iixml_oracle::mutations;
use iixml_query::PsQuery;
use iixml_tree::DataTree;

/// Do two answers coincide (as unordered id-labeled trees)?
fn same_answer(a: &Option<DataTree>, b: &Option<DataTree>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.same_tree(y),
        _ => false,
    }
}

fn check_chain(
    doc: &DataTree,
    alpha: &iixml_tree::Alphabet,
    queries: &[PsQuery],
    probes: &[DataTree],
) {
    let mut refiner = Refiner::new(alpha);
    let answers: Vec<_> = queries
        .iter()
        .map(|q| {
            let a = q.eval(doc);
            refiner
                .refine(alpha, q, &a)
                .expect("true answers are consistent");
            a
        })
        .collect();
    let knowledge = refiner.current();
    // The source itself must be represented.
    assert!(knowledge.contains(doc));
    // Every probe: membership iff all answers re-evaluate identically.
    for probe in probes {
        let expected = queries
            .iter()
            .zip(&answers)
            .all(|(q, a)| same_answer(&q.eval(probe).tree, &a.tree));
        let got = knowledge.contains(probe);
        assert_eq!(
            got, expected,
            "membership disagrees with the definition on a probe"
        );
    }
}

#[test]
fn paper_queries_on_catalogs() {
    for seed in 0..5 {
        let mut c = catalog(4, seed);
        let q1 = catalog_query_price_below(&mut c.alpha, 200);
        let q2 = catalog_query_camera_pictures(&mut c.alpha);
        let labels: Vec<_> = c.alpha.labels().collect();
        let probes = mutations(&c.doc, &labels);
        check_chain(&c.doc, &c.alpha, &[q1, q2], &probes);
    }
}

/// Random catalogs + random type-shaped queries: the Refine chain's
/// membership tracks the definition on dozens of mutated probes.
#[test]
fn random_query_chains() {
    check_with("random_query_chains", 12, |rng| {
        let seed = rng.below(500);
        let nq = rng.range_usize(1, 4);
        let c = catalog(3, seed);
        let root = c.alpha.get("catalog").unwrap();
        let queries = random_queries(&c.alpha, &c.ty, root, nq, 300, seed.wrapping_add(99));
        let labels: Vec<_> = c.alpha.labels().collect();
        // Keep the probe set modest for speed.
        let mut probes = mutations(&c.doc, &labels[..3.min(labels.len())]);
        probes.truncate(40);
        check_chain(&c.doc, &c.alpha, &queries, &probes);
    });
}

/// Witnesses of the refined tree reproduce every recorded answer.
#[test]
fn witnesses_reproduce_answers() {
    check_with("witnesses_reproduce_answers", 12, |rng| {
        let seed = rng.below(500);
        let mut c = catalog(3, seed);
        let q1 = catalog_query_price_below(&mut c.alpha, 150 + (seed % 200) as i64);
        let q2 = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        let a1 = q1.eval(&c.doc);
        let a2 = q2.eval(&c.doc);
        refiner.refine(&c.alpha, &q1, &a1).unwrap();
        refiner.refine(&c.alpha, &q2, &a2).unwrap();
        let mut gen = iixml_tree::NidGen::starting_at(1_000_000);
        let w = refiner.current().witness(&mut gen).expect("nonempty");
        assert!(same_answer(&q1.eval(&w).tree, &a1.tree));
        assert!(same_answer(&q2.eval(&w).tree, &a2.tree));
    });
}

/// The accumulated data tree is always a certain prefix, and certain
/// prefixes are possible prefixes.
#[test]
fn data_tree_is_certain_prefix() {
    check_with("data_tree_is_certain_prefix", 12, |rng| {
        let seed = rng.below(500);
        let mut c = catalog(3, seed);
        let q1 = catalog_query_price_below(&mut c.alpha, 250);
        let mut refiner = Refiner::new(&c.alpha);
        let a1 = q1.eval(&c.doc);
        refiner.refine(&c.alpha, &q1, &a1).unwrap();
        if let Some(td) = refiner.data_tree() {
            assert!(refiner.current().certain_prefix(&td));
            assert!(refiner.current().possible_prefix(&td));
        }
    });
}

/// Re-refining with the same query-answer pair is a semantic no-op
/// (`rep ∩ q⁻¹(A) ∩ q⁻¹(A) = rep ∩ q⁻¹(A)`) and the minimized
/// representation does not balloon.
#[test]
fn refine_is_idempotent() {
    check_with("refine_is_idempotent", 12, |rng| {
        let seed = rng.below(500);
        let mut c = catalog(3, seed);
        let q = catalog_query_price_below(&mut c.alpha, 250);
        let a = q.eval(&c.doc);
        let mut refiner = Refiner::new(&c.alpha);
        refiner.refine(&c.alpha, &q, &a).unwrap();
        let once = refiner.current().clone();
        refiner.refine(&c.alpha, &q, &a).unwrap();
        let twice = refiner.current();
        // Identical membership on probes.
        let labels: Vec<_> = c.alpha.labels().collect();
        for p in mutations(&c.doc, &labels).into_iter().take(25) {
            assert_eq!(once.contains(&p), twice.contains(&p));
        }
        assert!(twice.contains(&c.doc));
        // No significant growth (minimization keeps the fixpoint tight).
        assert!(
            twice.size() <= 2 * once.size(),
            "re-refinement ballooned: {} -> {}",
            once.size(),
            twice.size()
        );
    });
}

/// Unambiguity is preserved along Refine chains (Definition 3.1 —
/// the invariant Lemma 3.3 relies on).
#[test]
fn chains_stay_unambiguous() {
    check_with("chains_stay_unambiguous", 12, |rng| {
        let seed = rng.below(500);
        let mut c = catalog(2, seed);
        let q1 = catalog_query_price_below(&mut c.alpha, 200);
        let q2 = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        for q in [&q1, &q2] {
            let a = q.eval(&c.doc);
            refiner.refine(&c.alpha, q, &a).unwrap();
            assert!(refiner.current().is_unambiguous());
            assert!(refiner.current().well_formed().is_ok());
        }
    });
}
