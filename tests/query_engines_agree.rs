//! Differential testing of the two query evaluators: on patterns
//! expressible in both languages (plain ps-queries — no branching,
//! optional, negation, joins, or path regexes), the Section 2 evaluator
//! and the Section 4 extended evaluator must produce identical answers.

use iixml_extensions::xquery::{Modality, XQuery, XQueryBuilder};
use iixml_gen::testkit::check_with;
use iixml_gen::{catalog, random_queries, sample_tree};
use iixml_query::PsQuery;
use iixml_tree::{Alphabet, DataTree};

/// Full translation with the name snapshot taken up front.
fn translate(q: &PsQuery, alpha: &Alphabet) -> XQuery {
    let names: Vec<String> = alpha.labels().map(|l| alpha.name(l).to_string()).collect();
    let mut a2 = alpha.clone();
    let root_name = names[q.label(q.root()).index()].clone();
    let mut b = XQueryBuilder::new(&mut a2, &root_name, q.cond(q.root()).clone());
    fn copy(
        q: &PsQuery,
        m: iixml_query::QNodeRef,
        b: &mut XQueryBuilder,
        at: iixml_extensions::xquery::XNodeRef,
        names: &[String],
    ) {
        for &c in q.children(m) {
            let name = &names[q.label(c).index()];
            let node = if q.barred(c) {
                b.barred_child(at, name, q.cond(c).clone())
            } else {
                b.child(at, name, q.cond(c).clone(), Modality::Plain)
            };
            copy(q, c, b, node, names);
        }
    }
    let broot = b.root();
    copy(q, q.root(), &mut b, broot, &names);
    b.build()
}

fn answers_agree(ps: Option<&DataTree>, x: Option<&DataTree>) -> bool {
    match (ps, x) {
        (None, None) => true,
        (Some(a), Some(b)) => a.same_tree(b),
        _ => false,
    }
}

#[test]
fn evaluators_agree_on_plain_queries() {
    check_with("evaluators_agree_on_plain_queries", 20, |rng| {
        let seed = rng.below(1000);
        let nq = rng.range_usize(1, 4);
        let c = catalog(4, seed);
        let root = c.alpha.get("catalog").unwrap();
        let queries = random_queries(&c.alpha, &c.ty, root, nq, 300, seed ^ 0xD1FF);
        for q in &queries {
            let xq = translate(q, &c.alpha);
            let ps_ans = q.eval(&c.doc).tree;
            let x_ans = xq.eval(&c.doc);
            assert!(
                answers_agree(ps_ans.as_ref(), x_ans.as_ref()),
                "engines disagree on {}",
                q.to_text(&c.alpha)
            );
        }
    });
}

#[test]
fn evaluators_agree_on_random_trees() {
    check_with("evaluators_agree_on_random_trees", 20, |rng| {
        let seed = rng.below(1000);
        let c = catalog(1, 0);
        let root = c.alpha.get("catalog").unwrap();
        let t = sample_tree(&c.ty, root, 3, 40, 4, seed);
        let queries = random_queries(&c.alpha, &c.ty, root, 3, 40, seed ^ 0xFACE);
        for q in &queries {
            let xq = translate(q, &c.alpha);
            assert!(
                answers_agree(q.eval(&t).tree.as_ref(), xq.eval(&t).as_ref()),
                "engines disagree on {}",
                q.to_text(&c.alpha)
            );
        }
    });
}

#[test]
fn barred_queries_agree() {
    let mut c = catalog(6, 12);
    // catalog/product{price[< 200], picture!}
    let q = iixml_query::parse_ps_query("catalog/product{price[< 200], picture!}", &mut c.alpha)
        .unwrap();
    let xq = translate(&q, &c.alpha);
    assert!(answers_agree(
        q.eval(&c.doc).tree.as_ref(),
        xq.eval(&c.doc).as_ref()
    ));
}
