//! Round-trip property tests for the XML-ish serialization (the paper
//! notes incomplete information "can be itself naturally represented and
//! browsed as an XML document") and for the condition text syntax.

use iixml_gen::testkit::check_with;
use iixml_gen::{catalog, sample_tree};
use iixml_tree::xmlio::{parse_tree, write_tree};
use iixml_tree::Alphabet;
use iixml_values::parse::parse_cond;
use iixml_values::{Cond, Rat};

#[test]
fn tree_roundtrip() {
    check_with("tree_roundtrip", 24, |rng| {
        let seed = rng.below(10_000);
        let n = rng.range_usize(1, 12);
        let c = catalog(n, seed);
        let text = write_tree(&c.doc, &c.alpha);
        // A fresh alphabet interns labels in a different order, so
        // compare by re-serializing: the text must be reproduced.
        let mut fresh = Alphabet::new();
        let back = parse_tree(&text, &mut fresh).unwrap();
        assert_eq!(write_tree(&back, &fresh), text);
        // With the original alphabet the round trip is exact.
        let mut alpha = c.alpha.clone();
        let back2 = parse_tree(&text, &mut alpha).unwrap();
        assert!(back2.same_tree(&c.doc));
    });
}

#[test]
fn sampled_tree_roundtrip() {
    check_with("sampled_tree_roundtrip", 24, |rng| {
        let seed = rng.below(10_000);
        let fanout = rng.range_usize(1, 4);
        let c = catalog(1, 0);
        let root = c.alpha.get("catalog").unwrap();
        let t = sample_tree(&c.ty, root, fanout, 100, 4, seed);
        let text = write_tree(&t, &c.alpha);
        let mut alpha = c.alpha.clone();
        let back = parse_tree(&text, &mut alpha).unwrap();
        assert!(back.same_tree(&t));
    });
}

/// Condition display/parse round trip preserves semantics.
#[test]
fn condition_roundtrip() {
    check_with("condition_roundtrip", 24, |rng| {
        let len = rng.range_usize(1, 5);
        let mut cond = Cond::True;
        for _ in 0..len {
            let v = rng.range_i64(-50, 50);
            let atom = match rng.below(6) {
                0 => Cond::eq(Rat::from(v)),
                1 => Cond::ne(Rat::from(v)),
                2 => Cond::lt(Rat::from(v)),
                3 => Cond::le(Rat::from(v)),
                4 => Cond::gt(Rat::from(v)),
                _ => Cond::ge(Rat::from(v)),
            };
            cond = if v % 2 == 0 {
                cond.and(atom)
            } else {
                cond.or(atom)
            };
        }
        let text = cond.to_string();
        let back = parse_cond(&text).unwrap();
        assert!(back.equivalent(&cond), "{text}");
        // The interval normal form also round-trips through Cond.
        let set = cond.to_intervals();
        let rebuilt = Cond::from_intervals(&set);
        assert_eq!(rebuilt.to_intervals(), set);
    });
}
