//! Property tests for conjunctive incomplete trees (Theorem 3.8):
//! Refine⁺'s membership must coincide with Algorithm Refine's on shared
//! workloads (both compute `{T | qᵢ(T) = Aᵢ ∀i}`), and with the
//! definition directly.

use iixml_core::{ConjunctiveTree, Refiner};
use iixml_gen::testkit::check_with;
use iixml_gen::{catalog, library, random_queries};
use iixml_oracle::mutations;

fn check_agreement(c: &iixml_gen::Catalog, queries: &[iixml_query::PsQuery]) {
    let mut refiner = Refiner::new(&c.alpha);
    let mut conj = ConjunctiveTree::new(&c.alpha);
    let answers: Vec<_> = queries
        .iter()
        .map(|q| {
            let a = q.eval(&c.doc);
            refiner.refine(&c.alpha, q, &a).unwrap();
            conj.refine(&c.alpha, q, &a).unwrap();
            a
        })
        .collect();
    let labels: Vec<_> = c.alpha.labels().collect();
    let mut probes = mutations(&c.doc, &labels);
    probes.push(c.doc.clone());
    probes.truncate(40);
    for p in &probes {
        let by_definition =
            queries
                .iter()
                .zip(&answers)
                .all(|(q, a)| match (q.eval(p).tree, &a.tree) {
                    (None, None) => true,
                    (Some(x), Some(y)) => x.same_tree(y),
                    _ => false,
                });
        assert_eq!(
            conj.contains(p),
            by_definition,
            "conjunctive membership diverges from the definition"
        );
        assert_eq!(
            refiner.current().contains(p),
            conj.contains(p),
            "Refine and Refine+ disagree"
        );
    }
    // The expanded product agrees too (on a few probes — expansion can
    // be large).
    let expanded = conj.to_incomplete_tree().unwrap();
    for p in probes.iter().take(8) {
        assert_eq!(expanded.contains(p), conj.contains(p));
    }
    assert!(!conj.is_empty(), "the true source witnesses nonemptiness");
}

#[test]
fn conjunctive_matches_refine_on_catalogs() {
    check_with("conjunctive_matches_refine_on_catalogs", 10, |rng| {
        let seed = rng.below(400);
        let nq = rng.range_usize(1, 4);
        let c = catalog(3, seed);
        let root = c.alpha.get("catalog").unwrap();
        let queries = random_queries(&c.alpha, &c.ty, root, nq, 300, seed ^ 0xC0);
        check_agreement(&c, &queries);
    });
}

#[test]
fn conjunctive_matches_refine_on_libraries() {
    check_with("conjunctive_matches_refine_on_libraries", 10, |rng| {
        let seed = rng.below(400);
        let nq = rng.range_usize(1, 3);
        let l = library(3, seed);
        let root = l.alpha.get("library").unwrap();
        let queries = random_queries(&l.alpha, &l.ty, root, nq, 3000, seed ^ 0xC1);
        check_agreement(&l, &queries);
    });
}
