//! The mediator at catalog scale (Theorem 3.19): completions answer
//! exactly, avoid refetching known nodes, and never overlap.

use iixml_core::Refiner;
use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_mediator::Mediator;
use iixml_tree::Nid;
use std::collections::HashSet;

#[test]
fn completions_answer_exactly_across_scales() {
    for (n, seed) in [(5usize, 0u64), (20, 1), (60, 2)] {
        let mut c = catalog(n, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, 200);
        let q_ask = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let med = Mediator::new(refiner.current());
        let completion = med.complete(&q_ask);
        let mut known = refiner
            .data_tree()
            .unwrap_or_else(|| panic!("view answered something at n={n}"));
        completion.execute(&c.doc, &mut known).unwrap();
        let on_known = q_ask.eval(&known).tree;
        let on_source = q_ask.eval(&c.doc).tree;
        match (on_known, on_source) {
            (Some(a), Some(b)) => assert!(a.same_tree(&b), "n={n}"),
            (a, b) => assert_eq!(a.is_none(), b.is_none(), "n={n}"),
        }
    }
}

#[test]
fn completion_avoids_refetching_known_subtrees() {
    let mut c = catalog(30, 9);
    let q_view = catalog_query_price_below(&mut c.alpha, 10_000); // everything except pictures
    let q_ask = catalog_query_camera_pictures(&mut c.alpha);
    let mut refiner = Refiner::new(&c.alpha);
    refiner
        .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
        .unwrap();
    let med = Mediator::new(refiner.current());
    let completion = med.complete(&q_ask);
    // Total nodes fetched by the completion vs. re-asking q_ask at the
    // root: the completion must be cheaper or equal, and must not
    // include price nodes (they are known and irrelevant to q_ask) —
    // actually q_ask never selects prices; the sharper check: each
    // local query's answer size summed is at most the full answer size.
    let full = q_ask.eval(&c.doc).len();
    let mut fetched = 0usize;
    for lq in &completion.queries {
        let a = match lq.at {
            None => lq.query.eval(&c.doc),
            Some(nid) => lq.query.eval_at(&c.doc, nid).unwrap(),
        };
        fetched += a.len();
    }
    assert!(
        fetched <= full + completion.queries.len(),
        "fetched {fetched} vs full {full} (+anchors)"
    );
}

#[test]
fn completion_nonoverlap_on_generated_catalogs() {
    for seed in 0..4 {
        let mut c = catalog(15, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, 180);
        let q_ask = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let med = Mediator::new(refiner.current());
        let completion = med.complete(&q_ask);
        let mut seen: HashSet<Nid> = HashSet::new();
        for lq in &completion.queries {
            let a = match lq.at {
                None => lq.query.eval(&c.doc),
                Some(nid) => lq.query.eval_at(&c.doc, nid).unwrap(),
            };
            if let Some(t) = a.tree {
                for r in t.preorder() {
                    let nid = t.nid(r);
                    if Some(nid) == lq.at || nid == t.nid(t.root()) {
                        continue; // anchors repeat by design
                    }
                    assert!(seen.insert(nid), "overlap at node {nid} (seed {seed})");
                }
            }
        }
    }
}
