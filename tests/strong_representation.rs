//! Property tests for Theorem 3.14 — incomplete trees are a *strong
//! representation system*: `rep(q(T)) = q(rep(T))` — and its corollaries
//! (full answerability / answering queries using views, Corollary 3.15;
//! certain/possible non-emptiness, Corollary 3.18).
//!
//! The forward inclusion is probed with concrete worlds (members of
//! `rep(T)` built by mutation and witness sampling); the backward
//! inclusion with witnesses of `q(T)`.

use iixml_core::Refiner;
use iixml_gen::testkit::check_with;
use iixml_gen::{
    catalog, catalog_query_camera_pictures, catalog_query_price_below, random_queries,
};
use iixml_oracle::mutations;
use iixml_tree::NidGen;

/// Forward direction: for every represented world `w`, `q(w)` is a
/// represented answer (or empty with `empty_possible`).
#[test]
fn answers_of_worlds_are_represented() {
    check_with("answers_of_worlds_are_represented", 10, |rng| {
        let seed = rng.below(300);
        let nq = rng.range_usize(1, 3);
        let mut c = catalog(3, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, 220);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let knowledge = refiner.current();
        let root = c.alpha.get("catalog").unwrap();
        let queries = random_queries(&c.alpha, &c.ty, root, nq, 300, seed ^ 0xABCD);
        let labels: Vec<_> = c.alpha.labels().collect();
        let mut worlds: Vec<_> = mutations(&c.doc, &labels)
            .into_iter()
            .filter(|w| knowledge.contains(w))
            .collect();
        worlds.push(c.doc.clone());
        worlds.truncate(12);
        for q in &queries {
            let described = knowledge.query(q);
            for w in &worlds {
                match q.eval(w).tree {
                    None => assert!(
                        described.empty_possible,
                        "world answers empty but empty_possible is false"
                    ),
                    Some(ans) => assert!(
                        described.tree.contains(&ans),
                        "a concrete answer is not represented by q(T)"
                    ),
                }
            }
        }
    });
}

/// Backward direction: witnesses of `q(T)` are genuine answers —
/// re-evaluating the query on them reproduces them exactly.
#[test]
fn witnesses_of_answer_trees_are_answers() {
    check_with("witnesses_of_answer_trees_are_answers", 10, |rng| {
        let seed = rng.below(300);
        let mut c = catalog(3, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, 220);
        let q_ask = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let described = refiner.current().query(&q_ask);
        if !described.tree.is_empty() {
            let w = described
                .tree
                .witness(&mut NidGen::starting_at(5_000_000))
                .expect("nonempty");
            let again = q_ask.eval(&w).tree.expect("witness answers nonempty");
            assert!(again.same_tree(&w), "answers are fixpoints of the query");
        }
    });
}

/// Corollary 3.15: when the query is declared fully answerable, the
/// computed answer equals the source's answer; when it is not, some
/// represented world disagrees with the data-tree answer or the
/// answer involves unknown nodes.
#[test]
fn full_answerability_is_sound() {
    check_with("full_answerability_is_sound", 10, |rng| {
        let seed = rng.below(300);
        let bound = rng.range_i64(150, 400);
        let mut c = catalog(4, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, bound);
        let q_ask = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let described = refiner.current().query(&q_ask);
        if described.fully_answerable() {
            let computed = described.the_answer();
            let direct = q_ask.eval(&c.doc).tree;
            match (&computed, &direct) {
                (Some(a), Some(b)) => assert!(a.same_tree(b)),
                (a, b) => assert_eq!(a.is_none(), b.is_none()),
            }
        }
    });
}

/// The constructive sure answer is always a certain prefix of every
/// answer, and in particular of the true source's answer.
#[test]
fn sure_answers_are_certain() {
    check_with("sure_answers_are_certain", 10, |rng| {
        let seed = rng.below(300);
        let bound = rng.range_i64(150, 400);
        let mut c = catalog(4, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, bound);
        let q_ask = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let described = refiner.current().query(&q_ask);
        if let Some(sure) = described.sure_answer() {
            assert!(described.certain_answer_prefix(&sure));
            // The true answer must extend the sure part.
            let truth = q_ask.eval(&c.doc).tree.expect("sure implies nonempty");
            let pinned = sure.preorder().iter().map(|&n| sure.nid(n)).collect();
            assert!(iixml_tree::is_prefix_of(&sure, &truth, &pinned));
        }
    });
}

/// Corollary 3.18 consistency: certain nonempty implies possible
/// nonempty; the true source's behavior is within the envelope.
#[test]
fn nonemptiness_modalities() {
    check_with("nonemptiness_modalities", 10, |rng| {
        let seed = rng.below(300);
        let mut c = catalog(3, seed);
        let q_view = catalog_query_price_below(&mut c.alpha, 250);
        let q_ask = catalog_query_camera_pictures(&mut c.alpha);
        let mut refiner = Refiner::new(&c.alpha);
        refiner
            .refine(&c.alpha, &q_view, &q_view.eval(&c.doc))
            .unwrap();
        let described = refiner.current().query(&q_ask);
        if described.certain_nonempty() {
            assert!(described.possible_nonempty());
            assert!(q_ask.eval(&c.doc).tree.is_some());
        }
        if q_ask.eval(&c.doc).tree.is_some() {
            assert!(described.possible_nonempty());
        } else {
            assert!(described.empty_possible);
        }
    });
}
