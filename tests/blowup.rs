//! Example 3.2 and the size landscape of Section 3.2:
//!
//! * Algorithm Refine's incomplete tree grows **exponentially** on the
//!   adversarial family `root{a=i, b=i}` with empty answers;
//! * conjunctive trees (Refine⁺) stay **linear** (Corollary 3.9);
//! * linear (single-path) queries stay **polynomial** (Lemma 3.12);
//! * the auxiliary queries of Proposition 3.13 tame the same adversarial
//!   family;
//! * the lossy relaxation heuristic shrinks the tree while keeping
//!   `rep` a superset.

use iixml_core::{ConjunctiveTree, Refiner};
use iixml_gen::{blowup_queries, linear_queries};
use iixml_mediator::{auxiliary_queries, relax};
use iixml_query::Answer;
use iixml_tree::{Alphabet, DataTree, Nid};
use iixml_values::Rat;

fn alphabet() -> Alphabet {
    Alphabet::from_names(["root", "a", "b"])
}

/// Sizes of the Refine chain on the Example 3.2 family for n = 1..=max.
fn refine_sizes(max: usize) -> Vec<usize> {
    let mut alpha = alphabet();
    let queries = blowup_queries(&mut alpha, max);
    let mut refiner = Refiner::new(&alpha);
    queries
        .iter()
        .map(|q| {
            refiner.refine(&alpha, q, &Answer::empty()).unwrap();
            refiner.current().size()
        })
        .collect()
}

#[test]
fn refine_blows_up_exponentially() {
    let sizes = refine_sizes(7);
    // Successive growth *factors* do not decay: the representation at
    // least doubles-ish each step after the initial ones.
    let tail_ratio = sizes[6] as f64 / sizes[4] as f64;
    assert!(
        tail_ratio > 3.0,
        "expected ~4x over two steps, got {tail_ratio} ({sizes:?})"
    );
    // Per-step growth factor approaches 2 (the size is Θ(2^n)).
    let r1 = sizes[5] as f64 / sizes[4] as f64;
    let r2 = sizes[6] as f64 / sizes[5] as f64;
    assert!(r1 > 1.8 && r2 > 1.8, "expected doubling: {sizes:?}");
}

#[test]
fn conjunctive_trees_stay_linear() {
    let mut alpha = alphabet();
    let queries = blowup_queries(&mut alpha, 12);
    let mut conj = ConjunctiveTree::new(&alpha);
    let mut sizes = Vec::new();
    for q in &queries {
        conj.refine(&alpha, q, &Answer::empty()).unwrap();
        sizes.push(conj.size());
    }
    // Constant per-step growth.
    let d = sizes[1] - sizes[0];
    for w in sizes.windows(2) {
        assert_eq!(w[1] - w[0], d, "{sizes:?}");
    }
    assert!(!conj.is_empty());
}

#[test]
fn conjunctive_and_refine_agree_semantically() {
    // On the blowup family (small n), the exponential and the linear
    // representations describe the same world set.
    let mut alpha = alphabet();
    let n = 4;
    let queries = blowup_queries(&mut alpha, n);
    let mut refiner = Refiner::new(&alpha);
    let mut conj = ConjunctiveTree::new(&alpha);
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
        conj.refine(&alpha, q, &Answer::empty()).unwrap();
    }
    let (root, a, b) = (
        alpha.get("root").unwrap(),
        alpha.get("a").unwrap(),
        alpha.get("b").unwrap(),
    );
    for av in 0..=n as i64 + 1 {
        for bv in 0..=n as i64 + 1 {
            let mut t = DataTree::new(Nid(0), root, Rat::ZERO);
            t.add_child(t.root(), Nid(1), a, Rat::from(av)).unwrap();
            t.add_child(t.root(), Nid(2), b, Rat::from(bv)).unwrap();
            assert_eq!(
                refiner.current().contains(&t),
                conj.contains(&t),
                "disagreement at a={av} b={bv}"
            );
            // Ground truth: excluded iff some query would answer
            // nonempty, i.e. av == bv <= n.
            let excluded = av == bv && av >= 1 && av <= n as i64;
            assert_eq!(conj.contains(&t), !excluded);
        }
    }
}

#[test]
fn linear_queries_stay_polynomial() {
    let mut alpha = alphabet();
    let queries = linear_queries(&mut alpha, 12);
    let mut refiner = Refiner::new(&alpha);
    let mut sizes = Vec::new();
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
        sizes.push(refiner.current().size());
    }
    // Quadratic-ish at worst: growth increments grow at most linearly.
    let increments: Vec<i64> = sizes
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    for w in increments.windows(2) {
        assert!(
            w[1] - w[0] <= 16,
            "super-linear increment growth: {sizes:?}"
        );
    }
    assert!(sizes[11] < 3000, "polynomial bound breached: {sizes:?}");
}

#[test]
fn auxiliary_queries_tame_the_blowup() {
    // Proposition 3.13: asking the path queries (with true conditions)
    // alongside each adversarial query keeps the tree small — the data
    // values get pinned as data nodes, eliminating the case analysis.
    let mut alpha = alphabet();
    let n = 6;
    let queries = blowup_queries(&mut alpha, n);
    // The source world: root with a=100, b=200 (no query ever matches).
    let (root, a, b) = (
        alpha.get("root").unwrap(),
        alpha.get("a").unwrap(),
        alpha.get("b").unwrap(),
    );
    let mut doc = DataTree::new(Nid(0), root, Rat::ZERO);
    doc.add_child(doc.root(), Nid(1), a, Rat::from(100))
        .unwrap();
    doc.add_child(doc.root(), Nid(2), b, Rat::from(200))
        .unwrap();

    // Plain chain.
    let mut plain = Refiner::new(&alpha);
    for q in &queries {
        plain.refine(&alpha, q, &q.eval(&doc)).unwrap();
    }
    // Chain with auxiliary value-fetching queries first.
    let mut aided = Refiner::new(&alpha);
    for aux in auxiliary_queries(&queries[0]) {
        aided.refine(&alpha, &aux, &aux.eval(&doc)).unwrap();
    }
    for q in &queries {
        aided.refine(&alpha, q, &q.eval(&doc)).unwrap();
    }
    assert!(
        aided.current().size() < plain.current().size(),
        "auxiliary queries should shrink the tree: {} vs {}",
        aided.current().size(),
        plain.current().size()
    );
    // Both still represent the source.
    assert!(plain.current().contains(&doc));
    assert!(aided.current().contains(&doc));
}

#[test]
fn relaxation_bounds_size() {
    let mut alpha = alphabet();
    let queries = blowup_queries(&mut alpha, 6);
    let mut refiner = Refiner::new(&alpha);
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
    }
    let big = refiner.current();
    let target = big.size() / 4;
    let small = relax(big, target);
    assert!(small.size() < big.size());
    // Soundness: a world of the original remains represented.
    let mut gen = iixml_tree::NidGen::starting_at(1_000);
    if let Some(w) = big.witness(&mut gen) {
        assert!(small.contains(&w));
    }
}
