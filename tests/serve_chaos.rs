//! The serve fault-model acceptance tests (PR 7): a seeded
//! misbehaving-client storm over a live multi-tenant server, and the
//! kill -9 durability contract.
//!
//! The properties under test are exactly the server's promises:
//!
//! * a storm of garbage frames, partial frames, slow-loris drips,
//!   half-closes, mid-request disconnects, and over-quota floods
//!   degrades only the offending connections — the server stays live,
//!   honest tenants see zero transport errors and bounded p99;
//! * every surviving session's knowledge is `well_formed()` and
//!   serializes byte-identically across `iixml-par` widths 1 and 4;
//! * kill -9 (modeled by [`Server::crash`], which drops all state
//!   without flushing) loses nothing acknowledged before the last
//!   `sync()` barrier: restart recovery lands each session exactly on
//!   the barrier knowledge, byte-identically, at any recovery width.

use iixml_bench::loadgen::{run_chaos, run_load, LoadConfig};
use iixml_core::io::write_incomplete_xml;
use iixml_gen::rng::DetRng;
use iixml_gen::{catalog, testkit};
use iixml_query::parse::parse_ps_query;
use iixml_serve::{Client, ServeConfig, Server};
use iixml_webhouse::{Session, Source};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-servechaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A server config with quotas sized so honest tenants never shed;
/// admission is the chaos tests' subject only where they flood.
fn server_cfg(journal_root: &Path) -> ServeConfig {
    let mut cfg = ServeConfig {
        port: 0,
        journal_root: Some(journal_root.to_path_buf()),
        batched_journal: true,
        ..ServeConfig::default()
    };
    cfg.admission.max_sessions = 1024;
    cfg.admission.max_inflight = 128;
    cfg.admission.quota_burst = 1_000_000;
    cfg.admission.quota_refill = 1_000_000;
    cfg
}

/// Serializes every live session's knowledge, checking well-formedness
/// on the way: `scoped name -> incomplete-tree XML`.
fn harvest(server: &Server) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    for scoped in server.session_names() {
        let (tenant, session) = scoped.split_once('/').expect("scoped name");
        let xml = server
            .with_session(tenant, session, |sess| {
                sess.knowledge().well_formed().unwrap_or_else(|e| {
                    panic!("{scoped}: knowledge not well-formed after the storm: {e:?}")
                });
                write_incomplete_xml(sess.knowledge(), sess.alphabet())
            })
            .expect("session listed but not present");
        out.insert(scoped, xml);
    }
    out
}

/// One full storm at a given par width: an honest load of 32 sessions
/// x 64 requests runs while two 48-connection chaos storms misbehave
/// (up to 8 + 2 x 32 concurrent connections). Returns the honest
/// tenants' knowledge for the cross-width comparison.
fn storm_at_width(width: usize) -> BTreeMap<String, String> {
    iixml_par::set_threads(Some(width));
    let root = scratch(&format!("storm-w{width}"));
    let server = Server::start(server_cfg(&root)).expect("server start");
    let port = server.port();

    // All seeds fork off IIXML_TEST_SEED: CI pins it for a replayable
    // trajectory and runs a second pass with a commit-derived value so
    // the fault space is explored over time. Within one run both widths
    // see the same seeds — that is what makes the byte comparison fair.
    let base = testkit::base_seed();
    let mut forks = DetRng::new(base);
    let (seed_honest, seed_a, seed_b) = (forks.next_u64(), forks.next_u64(), forks.next_u64());
    eprintln!("serve chaos storm: IIXML_TEST_SEED={base} (width {width})");

    let cfg = LoadConfig {
        port,
        tenants: 4,
        sessions: 32,
        requests_per_session: 64,
        products: 3,
        seed: seed_honest,
        concurrency: 8,
        sync_at_end: true,
        close_at_end: false,
        ..LoadConfig::default()
    };
    let (honest, storm_a, storm_b) = std::thread::scope(|s| {
        let a = s.spawn(|| run_chaos(port, 48, seed_a, 32));
        let b = s.spawn(|| run_chaos(port, 48, seed_b, 32));
        let honest = run_load(&cfg);
        (
            honest,
            a.join().expect("storm a"),
            b.join().expect("storm b"),
        )
    });

    // The storm was big enough to mean something...
    assert!(
        honest.requests + storm_a.requests_issued + storm_b.requests_issued >= 2000,
        "storm too small: {} honest + {} + {} chaos requests",
        honest.requests,
        storm_a.requests_issued,
        storm_b.requests_issued
    );
    // ...and the server outlived it.
    assert!(storm_a.server_alive && storm_b.server_alive, "server died");
    let mut probe = Client::connect(port, "probe", 2000, 2000).expect("post-storm connect");
    probe.ping().expect("post-storm ping");

    // Honest tenants were isolated from the faults: no transport
    // errors, no sheds (their quotas were never the scarce resource),
    // and p99 bounded well under the connection deadlines.
    assert_eq!(honest.errors, 0, "honest load hit transport errors");
    assert_eq!(honest.shed, 0, "honest load was shed");
    assert_eq!(honest.sessions_done, 32, "honest sessions did not finish");
    assert!(
        honest.p99_us < 2_000_000.0,
        "honest p99 {}us not bounded under chaos",
        honest.p99_us
    );

    let mut knowledge = harvest(&server);
    // Chaos connections may or may not get an Open processed before
    // their disconnect lands; only honest tenants' sessions are part of
    // the determinism contract.
    knowledge.retain(|name, _| !name.starts_with("chaos"));
    let drain = server.shutdown();
    assert!(drain.faults.is_empty(), "drain faults: {:?}", drain.faults);
    let _ = std::fs::remove_dir_all(&root);
    knowledge
}

#[test]
fn chaos_storm_degrades_only_the_misbehaving_connections() {
    let at1 = storm_at_width(1);
    let at4 = storm_at_width(4);
    iixml_par::set_threads(None);
    assert_eq!(at1.len(), 32, "expected every honest session to survive");
    assert_eq!(
        at1, at4,
        "honest sessions' knowledge must be byte-identical across par widths"
    );
}

/// The queries the crash test drives, in order. The first
/// `SYNC_BARRIER` are fetched before the explicit `sync()`; the rest
/// are acknowledged but only group-commit-buffered when the server
/// dies.
const CRASH_BOUNDS: [i64; 8] = [150, 200, 250, 300, 400, 500, 175, 225];
const SYNC_BARRIER: usize = 5;

#[test]
fn kill_minus_9_recovers_every_session_to_its_last_sync_barrier() {
    iixml_par::set_threads(None);
    let root = scratch("crash");
    let server = Server::start(server_cfg(&root)).expect("server start");
    let port = server.port();

    // Six sessions across two tenants, each driven through the same
    // fetch sequence with a sync() barrier partway.
    let sessions: Vec<(String, String, u64)> = (0..6)
        .map(|i| {
            (
                format!("t{:02}", i % 2),
                format!("s{i:03}"),
                0xBA5E + i as u64,
            )
        })
        .collect();
    for (tenant, session, seed) in &sessions {
        let mut c = Client::connect(port, tenant, 5000, 5000).expect("connect");
        let resp = c.open(session, 3, *seed).expect("open");
        assert!(resp.body.starts_with("created"), "{}", resp.body);
        for (k, bound) in CRASH_BOUNDS.iter().enumerate() {
            if k == SYNC_BARRIER {
                c.sync(session).expect("sync barrier");
            }
            let q = format!("catalog/product{{name, price[< {bound}]}}");
            c.fetch(session, &q).expect("fetch");
        }
        // No sync after the tail: those records sit in the group-commit
        // buffer when the power goes out.
    }

    // kill -9: all in-memory state dropped, nothing flushed.
    server.crash();

    // The contract: recovery lands on the barrier. Build each session's
    // expected knowledge by replaying exactly the synced prefix against
    // a fresh source.
    let mut want = BTreeMap::new();
    for (tenant, session, seed) in &sessions {
        let cat = catalog(3, *seed);
        let mut alpha = cat.alpha.clone();
        let mut reference = Session::open(cat.alpha, Source::new(cat.doc, Some(cat.ty)));
        for bound in &CRASH_BOUNDS[..SYNC_BARRIER] {
            let q = format!("catalog/product{{name, price[< {bound}]}}");
            let q = parse_ps_query(&q, &mut alpha).expect("query");
            reference.fetch(&q).expect("reference fetch");
        }
        want.insert(
            format!("{tenant}/{session}"),
            write_incomplete_xml(reference.knowledge(), &alpha),
        );
    }

    // Restart and compare, at recovery width 1 and width 4: both must
    // land on the same bytes.
    let mut recovered = Vec::new();
    for width in [1usize, 4] {
        iixml_par::set_threads(Some(width));
        let server = Server::start(server_cfg(&root)).expect("restart");
        let got = harvest(&server);
        // Reconnecting clients see the recovery marker, not a fault.
        let (tenant, session, _) = &sessions[0];
        let mut c = Client::connect(server.port(), tenant, 5000, 5000).expect("reconnect");
        let resp = c.open(session, 3, sessions[0].2).expect("reattach");
        assert!(
            resp.body.starts_with("attached"),
            "expected attach, got {}",
            resp.body
        );
        let marker = resp.marker().unwrap_or_default();
        assert!(
            marker == "ok" || marker.starts_with("recovered:"),
            "expected a clean or recovered marker, got {marker:?}"
        );
        drop(c);
        let drain = server.shutdown();
        assert!(drain.faults.is_empty(), "drain faults: {:?}", drain.faults);
        recovered.push(got);
    }
    iixml_par::set_threads(None);

    assert_eq!(
        recovered[0], recovered[1],
        "recovery must be byte-identical across par widths"
    );
    assert_eq!(
        recovered[0], want,
        "recovery must land exactly on each session's last sync() barrier"
    );
    let _ = std::fs::remove_dir_all(&root);
}
