//! Theorem 3.5 cross-check: the restriction of an incomplete tree to a
//! tree type must agree with the naive semantics
//! `rep(T) ∩ rep(ρ)` on every probe (membership implies both, and
//! conversely).

use iixml_core::refine::query_answer_tree;
use iixml_core::type_intersect::restrict_to_type;
use iixml_gen::testkit::check_with;
use iixml_gen::{catalog, random_queries};
use iixml_oracle::mutations;

#[test]
fn restriction_matches_intersection_semantics() {
    check_with("restriction_matches_intersection_semantics", 16, |rng| {
        let seed = rng.below(500);
        let c = catalog(3, seed);
        let root = c.alpha.get("catalog").unwrap();
        let queries = random_queries(&c.alpha, &c.ty, root, 1, 300, seed ^ 0xBEEF);
        let q = &queries[0];
        let tqa = query_answer_tree(q, &q.eval(&c.doc), &c.alpha).unwrap();
        let restricted = restrict_to_type(&tqa, &c.ty);

        let labels: Vec<_> = c.alpha.labels().collect();
        let mut probes = mutations(&c.doc, &labels);
        probes.push(c.doc.clone());
        probes.truncate(50);
        for p in &probes {
            let naive = tqa.contains(p) && c.ty.accepts(p);
            let got = restricted.contains(p);
            assert_eq!(got, naive, "restriction semantics diverge");
        }
        // Witnesses of the restriction satisfy both sides.
        let mut gen = iixml_tree::NidGen::starting_at(3_000_000);
        if let Some(w) = restricted.witness(&mut gen) {
            assert!(c.ty.accepts(&w));
            assert!(tqa.contains(&w));
        }
    });
}
