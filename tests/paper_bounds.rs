//! Direct checks of the quantitative bounds stated by the paper's
//! lemmas, beyond asymptotic shape:
//!
//! * Lemma 2.3 — a condition's interval normal form is linear in the
//!   condition (`#intervals <= #atoms + 1`);
//! * Lemma 3.2 — `T_{q,A}` has size `O((|q| + |A|) · |Σ|)`;
//! * Theorem 3.8 — one Refine⁺ step adds `O((|q| + |A|) · |Σ|)`;
//! * Corollary 2.6 — useful-symbol detection agrees with bounded
//!   enumeration (a symbol is useful iff some bounded world uses it —
//!   checked one-sided, since enumeration is bounded).

use iixml_core::refine::query_answer_tree;
use iixml_core::ConjunctiveTree;
use iixml_gen::testkit::check_with;
use iixml_gen::{catalog, random_queries};
use iixml_values::{Cond, Rat};

/// Lemma 2.3: the normal form is linear in the number of atoms.
#[test]
fn interval_normal_form_is_linear() {
    check_with("interval_normal_form_is_linear", 30, |rng| {
        let len = rng.range_usize(1, 12);
        let mut cond = Cond::True;
        let mut atoms = 0usize;
        for i in 0..len {
            let v = rng.range_i64(-30, 30);
            let atom = match i % 6 {
                0 => Cond::eq(Rat::from(v)),
                1 => Cond::ne(Rat::from(v)),
                2 => Cond::lt(Rat::from(v)),
                3 => Cond::le(Rat::from(v)),
                4 => Cond::gt(Rat::from(v)),
                _ => Cond::ge(Rat::from(v)),
            };
            atoms += 1;
            cond = if i % 2 == 0 {
                cond.and(atom)
            } else {
                cond.or(atom)
            };
        }
        let set = cond.to_intervals();
        assert!(
            set.intervals().len() <= atoms + 1,
            "{} intervals from {atoms} atoms",
            set.intervals().len()
        );
    });
}

/// Lemma 3.2: |T_{q,A}| = O((|q| + |A|) · |Σ|). The constant here is
/// generous but fixed — a regression in the construction (e.g.
/// accidentally quadratic) would trip it.
#[test]
fn tqa_size_bound() {
    check_with("tqa_size_bound", 30, |rng| {
        let seed = rng.below(500);
        let nq = rng.range_usize(1, 3);
        let c = catalog(4, seed);
        let root = c.alpha.get("catalog").unwrap();
        let sigma = c.alpha.len();
        for q in random_queries(&c.alpha, &c.ty, root, nq, 300, seed ^ 0x77) {
            let ans = q.eval(&c.doc);
            let tqa = query_answer_tree(&q, &ans, &c.alpha).unwrap();
            let budget = 8 * (q.len() + ans.len() + 2) * sigma;
            assert!(
                tqa.size() <= budget,
                "|Tqa| = {} exceeds O((|q|+|A|)·|Σ|) = {budget}",
                tqa.size()
            );
        }
    });
}

/// Theorem 3.8: a Refine⁺ step grows the conjunctive tree by at most
/// O((|q| + |A|) · |Σ|).
#[test]
fn refine_plus_step_bound() {
    check_with("refine_plus_step_bound", 30, |rng| {
        let seed = rng.below(500);
        let c = catalog(4, seed);
        let root = c.alpha.get("catalog").unwrap();
        let sigma = c.alpha.len();
        let mut conj = ConjunctiveTree::new(&c.alpha);
        let mut prev = conj.size();
        for q in random_queries(&c.alpha, &c.ty, root, 3, 300, seed ^ 0x88) {
            let ans = q.eval(&c.doc);
            conj.refine(&c.alpha, &q, &ans).unwrap();
            let delta = conj.size() - prev;
            let budget = 8 * (q.len() + ans.len() + 2) * sigma;
            assert!(delta <= budget, "step grew by {delta} > {budget}");
            prev = conj.size();
        }
    });
}

/// Corollary 2.6 (usefulness): every symbol surviving `trim` appears in
/// some enumerated bounded world's typing — checked indirectly: trimming
/// never changes membership, and the trimmed symbol count is minimal
/// under repeated trims.
#[test]
fn trim_is_stable_and_semantics_preserving() {
    for seed in 0..6u64 {
        let c = catalog(3, seed);
        let root = c.alpha.get("catalog").unwrap();
        let q = &random_queries(&c.alpha, &c.ty, root, 1, 300, seed)[0];
        let tqa = query_answer_tree(q, &q.eval(&c.doc), &c.alpha).unwrap();
        let t1 = tqa.trim();
        let t2 = t1.trim();
        assert_eq!(t1.ty().sym_count(), t2.ty().sym_count(), "trim idempotent");
        assert_eq!(tqa.contains(&c.doc), t1.contains(&c.doc));
        // Usefulness flags of the trimmed tree are all true.
        let useful = t1.ty().useful();
        assert!(useful.iter().all(|&u| u), "trim leaves only useful symbols");
    }
}
