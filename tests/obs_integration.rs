//! Integration test for the observability layer: driving Algorithm
//! Refine over the Example 3.2 blowup family (plus an eval and a world
//! enumeration) must emit the documented metric keys with sane values.
//!
//! Metric names come from the `iixml_obs::keys` registry — never string
//! literals — and the test closes the loop in both directions: every
//! key this scenario emits must be registered, and every registry key
//! the scenario is expected to exercise must show up in the snapshot.
//!
//! Kept as a single test function: the obs registry is process-global,
//! and one linear scenario keeps the asserted counts deterministic.

use iixml_core::Refiner;
use iixml_obs::keys;
use iixml_oracle::{enumerate_rep, Bounds};
use iixml_query::Answer;
use iixml_tree::Alphabet;
use iixml_webhouse::{Session, Source};

#[test]
fn refine_pipeline_emits_expected_metrics() {
    iixml_obs::reset();
    iixml_obs::set_enabled(true);

    // The Example 3.2 blowup: 4 empty-answer steps square the disjunct
    // count each time.
    let mut alpha = Alphabet::from_names(["root", "a", "b"]);
    let queries = iixml_gen::blowup_queries(&mut alpha, 4);
    let mut refiner = Refiner::new(&alpha);
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
    }

    // A mediated session: the mediator's decomposed local queries drive
    // the ⋊⋉ join into genuine multi-way fan-out.
    let mut cat = iixml_gen::catalog(4, 42);
    let q_view = iixml_gen::catalog_query_price_below(&mut cat.alpha, 250);
    let q_cam = iixml_gen::catalog_query_camera_pictures(&mut cat.alpha);
    let mut session = Session::open(
        cat.alpha.clone(),
        Source::new(cat.doc.clone(), Some(cat.ty.clone())),
    );
    session.fetch(&q_view).unwrap();
    let _ = session.answer_with_mediation(&q_cam).unwrap();

    // One direct evaluation and one bounded enumeration so the query
    // and oracle families show up too.
    let _ans = q_view.eval(&cat.doc);
    let en = enumerate_rep(
        refiner.current(),
        Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 16,
            values_per_interval: 1,
        },
    );

    let snap = iixml_obs::snapshot();

    // Registry conformance, emitted → declared: nothing in the snapshot
    // may bypass iixml_obs::keys (a typo'd key would silently mint a
    // fresh metric; the iixml-vet `metrics` rule enforces the same
    // property statically).
    for name in snap.counters.keys() {
        assert!(keys::is_registered(name), "unregistered counter {name:?}");
    }
    for name in snap.histograms.keys() {
        assert!(keys::is_registered(name), "unregistered histogram {name:?}");
    }
    // And declared → well-formed: the registry itself must only hold
    // names that pass its own membership test.
    for name in keys::COUNTERS.iter().chain(keys::HISTOGRAMS) {
        assert!(
            keys::is_registered(name),
            "registry rejects its own {name:?}"
        );
    }

    // Refine instrumentation (Theorem 3.4's loop): 4 blowup steps plus
    // at least one session-side refinement.
    let steps = snap.counter(keys::CORE_REFINE_STEPS).unwrap_or(0);
    assert!(steps >= 5, "expected >= 5 refine steps, saw {steps}");
    let fanout = snap
        .histogram(keys::CORE_REFINE_JOIN_FANOUT)
        .expect("join fan-out histogram present");
    assert!(fanout.count > 0 && fanout.max >= 2, "the ⋊⋉ join fans out");
    assert!(
        snap.counter(keys::CORE_REFINE_DISJUNCTIVE_EXPANSIONS)
            .unwrap_or(0)
            >= 1,
        "the mediated chain must trigger disjunctive expansion"
    );
    // Every registered core-pipeline histogram this scenario drives.
    for key in [
        keys::CORE_REFINE_TQA_SIZE,
        keys::CORE_REFINE_STEP_SIZE,
        keys::CORE_REFINE_INTERSECT_NS,
        keys::CORE_REFINE_TRIM_NS,
        keys::CORE_REFINE_MINIMIZE_NS,
        keys::CORE_TYPE_INTERSECT_RESTRICT_NS,
        keys::CORE_MINIMIZE_CALL_NS,
    ] {
        let h = snap
            .histogram(key)
            .unwrap_or_else(|| panic!("missing {key}"));
        assert!(h.count > 0, "{key} never observed");
    }
    // Step sizes are recorded post-minimization, one per refine step,
    // and the blowup's final tree is the largest thing seen.
    let sizes = snap.histogram(keys::CORE_REFINE_STEP_SIZE).unwrap();
    assert_eq!(sizes.count, steps);
    assert!(sizes.max as usize >= refiner.current().size());

    // Query evaluation.
    assert!(snap.counter(keys::QUERY_EVAL_CALLS).unwrap_or(0) >= 1);
    let vals = snap
        .histogram(keys::QUERY_EVAL_VALUATIONS)
        .expect("valuation histogram present");
    assert!(vals.count >= 1);

    // Oracle enumeration.
    let worlds = snap
        .histogram(keys::ORACLE_ENUMERATE_WORLDS)
        .expect("world-count histogram present");
    assert_eq!(worlds.count, 1);
    assert_eq!(worlds.max as usize, en.worlds.len());

    // Mediator / webhouse instrumentation.
    assert!(snap.counter(keys::MEDIATOR_LOCAL_QUERIES).unwrap_or(0) >= 1);
    assert!(snap.histogram(keys::MEDIATOR_EXECUTE_NS).is_some());
    assert!(
        snap.histogram(&keys::webhouse_fetch_ns("anon")).is_some(),
        "per-source fetch latency present (label defaults to 'anon')"
    );

    // Disabled mode records nothing further.
    iixml_obs::set_enabled(false);
    let before = iixml_obs::snapshot().counter(keys::CORE_REFINE_STEPS);
    let mut r2 = Refiner::new(&alpha);
    r2.refine(&alpha, &queries[0], &Answer::empty()).unwrap();
    assert_eq!(
        iixml_obs::snapshot().counter(keys::CORE_REFINE_STEPS),
        before
    );
}
