//! End-to-end Webhouse scenarios (Section 1's motivating use case):
//! sessions over generated catalogs, local answering, mediation,
//! reinitialization on source updates, and the accounting that the
//! experiments report (fraction of queries answered without contacting
//! the source).

use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_webhouse::{LocalAnswer, Session, Source, Webhouse};

#[test]
fn progressive_refinement_increases_local_answering() {
    let mut c = catalog(12, 42);
    let q_cheap = catalog_query_price_below(&mut c.alpha, 150);
    let q_mid = catalog_query_price_below(&mut c.alpha, 300);
    let q_all = catalog_query_price_below(&mut c.alpha, 10_000);
    let q_cam = catalog_query_camera_pictures(&mut c.alpha);

    let mut session = Session::open(
        c.alpha.clone(),
        Source::new(c.doc.clone(), Some(c.ty.clone())),
    );

    // Nothing known: the camera query is not answerable locally.
    assert!(!session.answer_locally(&q_cam).is_complete());

    // Fetch the full price sweep; now narrower sweeps are answerable
    // locally (answering queries using views, Corollary 3.15).
    session.fetch(&q_all).unwrap();
    let served_before = session.source().queries_served;
    for q in [&q_cheap, &q_mid] {
        match session.answer_locally(q) {
            LocalAnswer::Complete(local) => {
                let direct = q.eval(&c.doc).tree;
                match (local, direct) {
                    (Some(a), Some(b)) => assert!(a.same_tree(&b)),
                    (a, b) => assert_eq!(a.is_none(), b.is_none()),
                }
            }
            LocalAnswer::Partial(_) => panic!("price sweep should subsume narrower sweeps"),
            LocalAnswer::Degraded { .. } => panic!("answer_locally never degrades"),
        }
    }
    assert_eq!(
        session.source().queries_served,
        served_before,
        "local answering must not contact the source"
    );
    assert_eq!(session.answered_locally, 2);
}

#[test]
fn mediation_fetches_only_what_is_missing() {
    let mut c = catalog(16, 7);
    let q_view = catalog_query_price_below(&mut c.alpha, 250);
    let q_cam = catalog_query_camera_pictures(&mut c.alpha);
    let mut session = Session::open(
        c.alpha.clone(),
        Source::new(c.doc.clone(), Some(c.ty.clone())),
    );
    session.fetch(&q_view).unwrap();

    let shipped_before = session.source().nodes_shipped;
    let ans = session.answer_with_mediation(&q_cam).unwrap();
    let direct = q_cam.eval(&c.doc).tree;
    match (&ans, &direct) {
        (Some(a), Some(b)) => assert!(a.same_tree(b)),
        (a, b) => assert_eq!(a.is_none(), b.is_none()),
    }
    let shipped_by_mediation = session.source().nodes_shipped - shipped_before;
    // The mediated fetch must ship fewer nodes than re-asking the
    // camera query from scratch would (it skips the known prefix).
    let full_cost = q_cam.eval(&c.doc).len();
    assert!(
        shipped_by_mediation <= full_cost,
        "mediation shipped {shipped_by_mediation} vs full {full_cost}"
    );

    // Afterwards the query is locally answerable and stays consistent.
    match session.answer_locally(&q_cam) {
        LocalAnswer::Complete(local) => match (local, direct) {
            (Some(a), Some(b)) => assert!(a.same_tree(&b)),
            (a, b) => assert_eq!(a.is_none(), b.is_none()),
        },
        LocalAnswer::Partial(_) => panic!("mediation should complete the knowledge"),
        LocalAnswer::Degraded { .. } => panic!("answer_locally never degrades"),
    }
}

#[test]
fn partial_answers_carry_sure_information() {
    let mut c = catalog(10, 99);
    let q_view = catalog_query_price_below(&mut c.alpha, 200);
    let q_cam = catalog_query_camera_pictures(&mut c.alpha);
    let mut session = Session::open(
        c.alpha.clone(),
        Source::new(c.doc.clone(), Some(c.ty.clone())),
    );
    session.fetch(&q_view).unwrap();
    match session.answer_locally(&q_cam) {
        LocalAnswer::Partial(p) => {
            // The envelope brackets the truth.
            let truth_nonempty = q_cam.eval(&c.doc).tree.is_some();
            if p.certain_nonempty() {
                assert!(truth_nonempty);
            }
            if !p.possible_nonempty() {
                assert!(!truth_nonempty);
            }
        }
        LocalAnswer::Complete(local) => {
            // Acceptable when the view already pinned everything.
            let direct = q_cam.eval(&c.doc).tree;
            match (local, direct) {
                (Some(a), Some(b)) => assert!(a.same_tree(&b)),
                (a, b) => assert_eq!(a.is_none(), b.is_none()),
            }
        }
        LocalAnswer::Degraded { .. } => panic!("answer_locally never degrades"),
    }
}

#[test]
fn webhouse_isolates_sources_and_survives_updates() {
    let c1 = catalog(5, 1);
    let c2 = catalog(8, 2);
    let mut wh = Webhouse::new();
    wh.register(
        "s1",
        c1.alpha.clone(),
        Source::new(c1.doc.clone(), Some(c1.ty.clone())),
    );
    wh.register(
        "s2",
        c2.alpha.clone(),
        Source::new(c2.doc.clone(), Some(c2.ty.clone())),
    );

    let mut a1 = c1.alpha.clone();
    let q = catalog_query_price_below(&mut a1, 400);
    wh.session("s1").unwrap().fetch(&q).unwrap();
    assert!(wh.session("s1").unwrap().data_tree().is_some());
    assert!(wh.session("s2").unwrap().data_tree().is_none());

    // Source update resets only the touched session.
    let replacement = catalog(3, 3).doc;
    wh.session("s1").unwrap().source_updated(replacement);
    assert!(wh.session("s1").unwrap().data_tree().is_none());
    // And querying afterwards reflects the new document.
    let a = wh.session("s1").unwrap().fetch(&q).unwrap();
    assert!(!a.is_empty());
}
