//! Figure 7 / Example 2.2: the paper's two hand-built incomplete trees —
//! `T` (the input knowledge) and `T′` (the description of `q`'s possible
//! answers) — and the claim `rep(T′) = q(rep(T))`.
//!
//! We build both exactly as in the paper, compute `q(T)` with the
//! Theorem 3.14 algorithm, and check three-way agreement by bounded
//! exhaustive enumeration (the oracle crate).

use iixml_core::{ConditionalTreeType, Disjunction, IncompleteTree, NodeInfo, SAtom, SymTarget};
use iixml_oracle::{enumerate_rep, Bounds};
use iixml_query::{PsQuery, PsQueryBuilder};
use iixml_tree::{Alphabet, Label, Mult, Nid};
use iixml_values::{Cond, IntervalSet, Rat};
use std::collections::BTreeMap;

const ROOT: Label = Label(0);
const A: Label = Label(1);
const B: Label = Label(2);

fn alphabet() -> Alphabet {
    Alphabet::from_names(["root", "a", "b"])
}

/// The incomplete tree `T` of Figure 7 (left).
fn paper_t() -> IncompleteTree {
    let mut nodes = BTreeMap::new();
    nodes.insert(
        Nid(0),
        NodeInfo {
            label: ROOT,
            value: Rat::ZERO,
        },
    );
    nodes.insert(
        Nid(1),
        NodeInfo {
            label: A,
            value: Rat::ZERO,
        },
    );
    let mut ty = ConditionalTreeType::new();
    let r = ty.add_symbol(
        "r",
        SymTarget::Node(Nid(0)),
        Cond::eq(Rat::ZERO).to_intervals(),
    );
    let n = ty.add_symbol(
        "n",
        SymTarget::Node(Nid(1)),
        Cond::eq(Rat::ZERO).to_intervals(),
    );
    let a = ty.add_symbol("a", SymTarget::Lab(A), Cond::ne(Rat::ZERO).to_intervals());
    let b = ty.add_symbol("b", SymTarget::Lab(B), IntervalSet::all());
    ty.set_mu(
        r,
        Disjunction::single(SAtom::new(vec![(n, Mult::One), (a, Mult::Star)])),
    );
    ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
    ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
    ty.set_mu(b, Disjunction::leaf());
    ty.add_root(r);
    IncompleteTree::new(nodes, ty).unwrap()
}

/// The paper's hand-built answer description `T′` (Example 2.2): roots
/// `r1` (the empty-answer placeholder, unsatisfiable) and `r2`; each
/// answered `a` has at least one `b` child.
fn paper_t_prime() -> IncompleteTree {
    let mut nodes = BTreeMap::new();
    nodes.insert(
        Nid(0),
        NodeInfo {
            label: ROOT,
            value: Rat::ZERO,
        },
    );
    nodes.insert(
        Nid(1),
        NodeInfo {
            label: A,
            value: Rat::ZERO,
        },
    );
    let mut ty = ConditionalTreeType::new();
    let r1 = ty.add_symbol("r1", SymTarget::Node(Nid(0)), IntervalSet::empty());
    let r2 = ty.add_symbol(
        "r2",
        SymTarget::Node(Nid(0)),
        Cond::eq(Rat::ZERO).to_intervals(),
    );
    let n = ty.add_symbol(
        "n",
        SymTarget::Node(Nid(1)),
        Cond::eq(Rat::ZERO).to_intervals(),
    );
    let a = ty.add_symbol("a", SymTarget::Lab(A), Cond::ne(Rat::ZERO).to_intervals());
    let b = ty.add_symbol("b", SymTarget::Lab(B), IntervalSet::all());
    ty.set_mu(r1, Disjunction::leaf());
    // µ′(r2) = n a⋆ ∨ a⁺.
    ty.set_mu(
        r2,
        Disjunction(vec![
            SAtom::new(vec![(n, Mult::One), (a, Mult::Star)]),
            SAtom::new(vec![(a, Mult::Plus)]),
        ]),
    );
    // µ′(a) = µ′(n) = b⁺.
    ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Plus)])));
    ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Plus)])));
    ty.set_mu(b, Disjunction::leaf());
    ty.add_root(r1);
    ty.add_root(r2);
    IncompleteTree::new(nodes, ty).unwrap()
}

/// The query of Figure 7 (right): root / a / b.
fn q(alpha: &mut Alphabet) -> PsQuery {
    let mut bld = PsQueryBuilder::new(alpha, "root", Cond::True);
    let root = bld.root();
    let a = bld.child(root, "a", Cond::True).unwrap();
    bld.child(a, "b", Cond::True).unwrap();
    bld.build()
}

fn bounds() -> Bounds {
    Bounds {
        star_cap: 2,
        max_depth: 3,
        max_worlds: 50_000,
        values_per_interval: 1,
    }
}

#[test]
fn computed_answer_tree_matches_papers_t_prime() {
    let mut alpha = alphabet();
    let t = paper_t();
    let query = q(&mut alpha);
    let computed = t.query(&query);
    let hand = paper_t_prime();

    // The paper's r1 encodes the empty answer: our flag captures it.
    assert!(computed.empty_possible);

    // Agreement on the nonempty answers, by exhaustive enumeration of
    // both descriptions.
    let ours = enumerate_rep(&computed.tree, bounds());
    let theirs = enumerate_rep(&hand, bounds());
    assert!(!ours.truncated && !theirs.truncated);
    assert!(!ours.worlds.is_empty());
    for w in &ours.worlds {
        assert!(
            hand.contains(w),
            "computed answer not covered by the paper's T′:\n{}",
            w.display(&alpha)
        );
    }
    for w in &theirs.worlds {
        assert!(
            computed.tree.contains(w),
            "paper answer not covered by computed q(T):\n{}",
            w.display(&alpha)
        );
    }
}

#[test]
fn answer_descriptions_match_actual_answers() {
    // Enumerate rep(T); evaluate q on each world; the set of nonempty
    // answers must agree (both directions) with rep(T′).
    let mut alpha = alphabet();
    let t = paper_t();
    let query = q(&mut alpha);
    let hand = paper_t_prime();
    let worlds = enumerate_rep(&t, bounds());
    assert!(!worlds.truncated);
    let mut saw_empty = false;
    let mut saw_nonempty = false;
    for w in &worlds.worlds {
        match query.eval(w).tree {
            None => saw_empty = true,
            Some(ans) => {
                saw_nonempty = true;
                assert!(
                    hand.contains(&ans),
                    "an actual answer is missing from T′:\n{}",
                    ans.display(&alpha)
                );
            }
        }
    }
    assert!(saw_empty, "some world answers empty (n without b)");
    assert!(saw_nonempty, "some world answers nonempty");

    // Converse: every enumerated member of T′ is the answer of some
    // constructed input (build it: the answer itself, possibly extended
    // by a b-less `a` child, is a valid input whose answer is itself).
    let members = enumerate_rep(&hand, bounds());
    for ans in &members.worlds {
        let again = query.eval(ans).tree.expect("answers match the query");
        assert!(again.same_tree(ans), "answers are fixpoints of the query");
        assert!(
            t.contains(ans) || {
                // Answers omitting node n (r2's second disjunct) are not
                // themselves in rep(T) — extend with node n to get a
                // legitimate input.
                let mut input = ans.clone();
                if input.by_nid(Nid(1)).is_none() {
                    let root = input.root();
                    input.add_child(root, Nid(1), A, Rat::ZERO).unwrap();
                }
                t.contains(&input)
            }
        );
    }
}

#[test]
fn paper_t_basics() {
    let t = paper_t();
    assert!(t.well_formed().is_ok());
    assert!(t.is_unambiguous());
    assert!(!t.is_empty());
    let td = t.data_tree().unwrap();
    assert_eq!(td.len(), 2);
}
