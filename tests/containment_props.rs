//! Seeded property tests for the containment analyzer (DESIGN §15).
//!
//! Two pinned contracts, each at worker widths 1 and 4:
//!
//! * **Verdict vs brute force** — on random catalogs and documents, a
//!   `Contained` verdict means replaying the subsuming query's answer
//!   tree reproduces the subsumed query's source answer byte-for-byte
//!   (same node ids, sibling order, and provenance), and on the
//!   price-bound family the verdict matches the arithmetic truth
//!   exactly (the check is complete there, not just sound).
//! * **Mediator equivalence matrix** — a session with the containment
//!   cache on walks the same query mix as one with it off and keeps
//!   *byte-identical* knowledge after every step, while contacting the
//!   source strictly fewer times on a subsumption-heavy mix.

use iixml_contain::{contained_in, AnswerCache, Verdict};
use iixml_core::io::write_incomplete_xml;
use iixml_gen::{catalog, catalog_query_price_below, random_queries, sample_tree, testkit};
use iixml_query::Answer;
use iixml_tree::DataTree;
use iixml_webhouse::{Session, Source};

/// Ordered rendering of an answer tree: node ids, labels, values and
/// child counts in preorder — exactly the content downstream
/// refinement is sensitive to. (`Debug` would leak internal hash-map
/// ordering.)
fn render(t: &Option<DataTree>) -> String {
    let Some(t) = t else {
        return String::from("<empty>");
    };
    let mut out = String::new();
    for n in t.preorder() {
        out.push_str(&format!(
            "{}:{}={}/{};",
            t.nid(n).0,
            t.label(n).0,
            t.value(n),
            t.children(n).len()
        ));
    }
    out
}

/// Full ordered rendering of an answer: tree plus sorted provenance.
fn render_answer(a: &Answer) -> String {
    let mut prov: Vec<_> = a
        .provenance
        .iter()
        .map(|(n, k)| format!("{}:{:?}", n.0, k))
        .collect();
    prov.sort();
    format!("{} | {}", render(&a.tree), prov.join(","))
}

/// The brute-force oracle: whenever the analyzer says `q1 ⊑ q2`,
/// evaluating `q1` against `q2`'s answer tree must equal evaluating
/// `q1` against the document itself — on every sampled document.
fn verdict_matches_replay_at_width(width: usize) {
    iixml_par::set_threads(Some(width));
    testkit::check_with("containment verdict agrees with brute force", 12, |rng| {
        let cat = catalog(rng.range_usize(3, 10), rng.next_u64());
        let root = cat.alpha.get("catalog").expect("catalog root");
        let queries = random_queries(&cat.alpha, &cat.ty, root, 5, 40, rng.next_u64());
        let docs: Vec<DataTree> = (0..3)
            .map(|_| sample_tree(&cat.ty, root, 3, 40, 4, rng.next_u64()))
            .collect();
        for q1 in &queries {
            for q2 in &queries {
                match contained_in(q1, q2) {
                    Verdict::ContainedEmpty => {
                        for d in &docs {
                            assert!(
                                q1.eval(d).is_empty(),
                                "unsatisfiable verdict but non-empty answer"
                            );
                        }
                    }
                    Verdict::Contained(_) => {
                        for d in &docs {
                            let sup = q2.eval(d);
                            let replay = match &sup.tree {
                                Some(t) => q1.eval(t),
                                None => Answer::empty(),
                            };
                            assert_eq!(
                                render_answer(&replay),
                                render_answer(&q1.eval(d)),
                                "contained verdict but replay diverged from the source"
                            );
                        }
                    }
                    Verdict::NotContained(_) => {
                        // Sound but silent: no per-document claim.
                    }
                }
            }
        }
        // The cache must agree with the raw procedure end-to-end.
        let mut cache = AnswerCache::new();
        let d = &docs[0];
        let p = &queries[0];
        cache.record(p, &p.eval(d));
        for q in &queries {
            if let Some(hit) = cache.lookup(q) {
                assert_eq!(render_answer(&hit), render_answer(&q.eval(d)));
            }
        }
    });
    iixml_par::set_threads(None);
}

#[test]
fn verdict_matches_replay_sequential() {
    verdict_matches_replay_at_width(1);
}

#[test]
fn verdict_matches_replay_parallel() {
    verdict_matches_replay_at_width(4);
}

/// On the price-bound family the decision procedure is *complete*:
/// `price[< b1] ⊑ price[< b2]` exactly when `b1 ≤ b2`.
#[test]
fn price_bound_family_is_decided_exactly() {
    testkit::check("price-bound containment is exact", |rng| {
        let mut cat = catalog(2, rng.next_u64());
        let b1 = rng.range_i64(10, 500);
        let b2 = rng.range_i64(10, 500);
        let q1 = catalog_query_price_below(&mut cat.alpha, b1);
        let q2 = catalog_query_price_below(&mut cat.alpha, b2);
        assert_eq!(
            contained_in(&q1, &q2).is_contained(),
            b1 <= b2,
            "price[< {b1}] ⊑ price[< {b2}] misdecided"
        );
    });
}

/// Runs the same query mix through a cache-on and a cache-off session
/// and checks knowledge bytes after every step, answers per call, and
/// the source-contact reduction at the end.
fn equivalence_matrix_at_width(width: usize) {
    iixml_par::set_threads(Some(width));
    testkit::check_with("cache on/off sessions stay byte-identical", 8, |rng| {
        let mut cat = catalog(rng.range_usize(4, 12), rng.next_u64());
        // A subsumption-heavy mix: a wide view first, then narrower
        // price slices (guaranteed cache hits), then random queries
        // shaped by the type (hit or miss as they fall).
        let root = cat.alpha.get("catalog").expect("catalog root");
        let mut mix = Vec::new();
        let mut bound = rng.range_i64(400, 500);
        for _ in 0..4 {
            mix.push(catalog_query_price_below(&mut cat.alpha, bound));
            bound -= rng.range_i64(40, 90);
        }
        mix.extend(random_queries(
            &cat.alpha,
            &cat.ty,
            root,
            4,
            40,
            rng.next_u64(),
        ));

        let source = || Source::new(cat.doc.clone(), Some(cat.ty.clone()));
        let mut on = Session::open(cat.alpha.clone(), source());
        let mut off = Session::open(cat.alpha.clone(), source());
        off.set_contain_cache(false);

        for (i, q) in mix.iter().enumerate() {
            if rng.bool(0.3) && i > 0 {
                let a = on.answer_with_mediation(q).expect("mediate (cache on)");
                let b = off.answer_with_mediation(q).expect("mediate (cache off)");
                assert_eq!(
                    render(&a),
                    render(&b),
                    "mediated answers diverged at step {i}"
                );
            } else {
                let a = on.fetch(q).expect("fetch (cache on)");
                let b = off.fetch(q).expect("fetch (cache off)");
                assert_eq!(
                    render_answer(&a),
                    render_answer(&b),
                    "fetched answers diverged at step {i}"
                );
            }
            assert_eq!(
                write_incomplete_xml(on.knowledge(), &cat.alpha),
                write_incomplete_xml(off.knowledge(), &cat.alpha),
                "knowledge diverged at step {i}"
            );
        }
        assert!(
            on.source().queries_served < off.source().queries_served,
            "subsumption-heavy mix produced no source-fetch reduction \
             ({} vs {})",
            on.source().queries_served,
            off.source().queries_served
        );
    });
    iixml_par::set_threads(None);
}

#[test]
fn equivalence_matrix_sequential() {
    equivalence_matrix_at_width(1);
}

#[test]
fn equivalence_matrix_parallel() {
    equivalence_matrix_at_width(4);
}
