//! Equivalence of the ID-interned kernel pipeline with the preserved
//! structural reference paths, over seeded random workloads.
//!
//! The shipping `refine::intersect` and `IncompleteTree::minimize` run
//! on interned `u32` ids (dense pair tables, hash-consed atom and
//! signature interners, chunked parallel maps with per-worker scratch);
//! the `*_reference` twins are the verbatim pre-interning code. The
//! determinism argument (DESIGN.md §13) says the two must agree to the
//! byte at every worker width — these properties pin that end-to-end on
//! random catalog chains, at widths 1 and 4, plus the id-stability leg:
//! rebuilding the intern tables from an identical type must reproduce
//! identical ids (allocation order is first-encounter in symbol order,
//! never hash-map iteration order).
//!
//! CI runs this file across the thread matrix (`IIXML_PAR_THREADS`
//! 1/4/8), so a width-dependent divergence that slips past the explicit
//! widths here still fails the build.

use iixml_core::intern::InternedType;
use iixml_core::io::write_incomplete_xml;
use iixml_core::refine::{intersect, intersect_reference, query_answer_tree};
use iixml_core::IncompleteTree;
use iixml_gen::testkit::check_with;
use iixml_gen::{catalog, random_queries, Catalog};
use iixml_query::PsQuery;

/// Runs the same random refine chain through both pipelines at one
/// worker width and serializes both final knowledge bases.
fn both_pipelines_serialized(width: usize, c: &Catalog, queries: &[PsQuery]) -> (String, String) {
    iixml_par::set_threads(Some(width));
    let labels: Vec<_> = c.alpha.labels().collect();
    let names: Vec<&str> = labels.iter().map(|&l| c.alpha.name(l)).collect();
    let mut fast = IncompleteTree::universal(&labels, &names);
    let mut slow = fast.clone();
    for q in queries {
        let tqa = query_answer_tree(q, &q.eval(&c.doc), &c.alpha).unwrap();
        fast = intersect(&fast, &tqa).unwrap().trim();
        slow = intersect_reference(&slow, &tqa).unwrap().trim();
    }
    let out = (
        write_incomplete_xml(&fast.minimize(), &c.alpha),
        write_incomplete_xml(&slow.minimize_reference(), &c.alpha),
    );
    iixml_par::set_threads(None);
    out
}

/// The interned intersect+minimize pipeline serializes byte-identically
/// to the structural reference path, at widths 1 and 4 — and the two
/// widths agree with each other.
#[test]
fn interned_pipeline_matches_reference_across_widths() {
    check_with(
        "interned_pipeline_matches_reference_across_widths",
        6,
        |rng| {
            let seed = rng.below(500);
            let nq = rng.range_usize(1, 4);
            let c = catalog(3, seed);
            let root = c.alpha.get("catalog").unwrap();
            let queries = random_queries(&c.alpha, &c.ty, root, nq, 300, seed ^ 0x1D5);
            let (fast1, slow1) = both_pipelines_serialized(1, &c, &queries);
            assert_eq!(fast1, slow1, "width 1: interned diverged from reference");
            let (fast4, slow4) = both_pipelines_serialized(4, &c, &queries);
            assert_eq!(fast4, slow4, "width 4: interned diverged from reference");
            assert_eq!(fast1, fast4, "interned pipeline diverged between widths");
            assert!(!fast1.is_empty());
        },
    );
}

/// Interner ids are a pure function of the input type: building the
/// intern tables twice — from the same tree and from an independently
/// reconstructed identical tree — yields identical atom/disjunction id
/// assignments, µ vectors included.
#[test]
fn interner_ids_are_stable_across_runs_with_same_seed() {
    check_with(
        "interner_ids_are_stable_across_runs_with_same_seed",
        6,
        |rng| {
            let seed = rng.below(500);
            let build_knowledge = || {
                let c = catalog(3, seed);
                let root = c.alpha.get("catalog").unwrap();
                let queries = random_queries(&c.alpha, &c.ty, root, 2, 300, seed ^ 0x5EED);
                let labels: Vec<_> = c.alpha.labels().collect();
                let names: Vec<&str> = labels.iter().map(|&l| c.alpha.name(l)).collect();
                let mut cur = IncompleteTree::universal(&labels, &names);
                for q in &queries {
                    let tqa = query_answer_tree(q, &q.eval(&c.doc), &c.alpha).unwrap();
                    cur = intersect(&cur, &tqa).unwrap().trim();
                }
                cur
            };
            let t1 = build_knowledge();
            let t2 = build_knowledge();
            let i1 = InternedType::build(t1.ty());
            let i2 = InternedType::build(t2.ty());
            // Same dense id spaces, same µ ids, same interned content.
            assert_eq!(i1.mu, i2.mu, "µ disjunction ids differ between runs");
            assert_eq!(i1.table.atom_count(), i2.table.atom_count());
            assert_eq!(i1.table.disj_count(), i2.table.disj_count());
            for (d1, d2) in i1.mu.iter().zip(&i2.mu) {
                let (a1s, a2s) = (i1.table.disj(*d1), i2.table.disj(*d2));
                assert_eq!(a1s, a2s, "atom id lists differ for equal µ ids");
                for (a1, a2) in a1s.iter().zip(a2s) {
                    assert_eq!(i1.table.atom(*a1), i2.table.atom(*a2));
                }
            }
            // And building from the *same* instance twice is trivially
            // stable too (no hidden global state in the interner).
            let again = InternedType::build(t1.ty());
            assert_eq!(i1.mu, again.mu);
        },
    );
}
