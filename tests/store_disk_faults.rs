//! Seeded disk-fault chaos matrix over the fail-safe durability
//! contract (the PR-9 tentpole's acceptance bar).
//!
//! Where `store_recovery.rs` injures bytes *at rest*, this matrix
//! injects faults on the *write path* itself — EIO, ENOSPC, short
//! writes, and fsync-failure-drops-buffered-pages — through the
//! [`StoreIo`] seam, then crashes and recovers with honest I/O. Two
//! invariants must hold on every one of the ≥1000 seeded cases:
//!
//! 1. **Every `sync()` that returned `Ok` is recoverable**: the
//!    recovered frame count never falls below the acknowledged count.
//! 2. **Every lost record corresponds to a reported fault**: a record
//!    accepted by `append` can only go missing if the writer returned
//!    an explicit error, the drop-fault slot holds one, or the crash
//!    took the never-acknowledged buffer with it. Silent loss fails.
//!
//! The second phase drives journaled sessions into injected faults and
//! recovers the fleet through `Webhouse::recover_sessions` at parallel
//! widths 1 and 4 — the recovered knowledge must be byte-identical.
//!
//! `IIXML_TEST_SEED` rotates the whole matrix; a failing case prints
//! the seeds that replay it.

use iixml_core::io::write_incomplete_xml;
use iixml_gen::rng::DetRng;
use iixml_gen::testkit;
use iixml_query::PsQuery;
use iixml_store::wal::{self, Wal};
use iixml_store::{take_drop_fault, FlushPolicy, GroupCommit, StoreIo};
use std::path::PathBuf;

const FAMILIES: usize = 26;
const CASES_PER_FAMILY: usize = 40;

// The acceptance floor: the fault sweep is at least a thousand cases.
const _: () = assert!(FAMILIES * CASES_PER_FAMILY >= 1000);

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-diskfault-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A family fixes the flush policy and segment size; its cases vary the
/// injector (rate-driven or fail-the-Nth), the operation schedule, and
/// the crash shape.
fn family_policy(f: usize, rng: &mut DetRng) -> (FlushPolicy, u64) {
    let seg_bytes = *rng.choose(&[192u64, 1024, Wal::DEFAULT_SEGMENT_BYTES]);
    let policy = match f % 4 {
        0 => FlushPolicy::default(), // fsync-per-record
        1 => FlushPolicy::batched(),
        2 => FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: rng.range_usize(2, 6) as u64,
            max_linger_ticks: 8,
        },
        // Never auto-flush: only explicit sync() barriers (and the
        // drop-time flush) move records to disk.
        _ => FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: u64::MAX,
            max_linger_ticks: u64::MAX,
        },
    };
    (policy, seg_bytes)
}

// Phase 1: the raw group-commit writer under seeded write-path faults.
// Both the matrix and the fleet phase share the process-global
// drop-fault slot, so they live in one sequential #[test].
#[test]
fn no_ok_sync_is_lost_and_no_loss_is_silent() {
    let base = testkit::base_seed();
    let mut faulted = 0usize;
    let mut clean_full = 0usize;
    let mut create_failed = 0usize;
    for f in 0..FAMILIES {
        let fam_seed = DetRng::new(base ^ 0xD15C).fork(f as u64).next_u64();
        let dir = scratch(&format!("fam{f}"));
        for c in 0..CASES_PER_FAMILY {
            let case_seed = DetRng::new(fam_seed).fork(c as u64).next_u64();
            let ctx = format!(
                "family {f} case {c} — replay with IIXML_TEST_SEED={base} \
                 (family seed {fam_seed}, case seed {case_seed})"
            );
            let mut rng = DetRng::new(case_seed);
            let (policy, seg_bytes) = family_policy(f, &mut rng);
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let _ = take_drop_fault(); // the slot is process-global; start clean

            let io = if rng.bool(0.5) {
                StoreIo::fail_at(case_seed, rng.range_usize(1, 40) as u64)
            } else {
                StoreIo::faulty(case_seed, *rng.choose(&[0.01, 0.03, 0.08, 0.2]))
            };
            let wal = match Wal::create_with(&dir, io.clone()) {
                Ok(w) => w,
                Err(_) => {
                    // The fault hit before the segment existed: nothing
                    // was ever acknowledged, so nothing can be lost.
                    assert!(!io.injected().is_empty(), "{ctx}: create failed uninjected");
                    create_failed += 1;
                    continue;
                }
            };
            let mut gc = GroupCommit::new(wal, policy);
            gc.set_segment_bytes(seg_bytes);

            let mut appended: Vec<Vec<u8>> = Vec::new();
            let mut acked = 0usize;
            let mut fault_seen = false;
            let steps = rng.range_usize(6, 30);
            for i in 0..steps {
                let op = rng.below(10);
                let result = if op < 7 {
                    let pad = "x".repeat(rng.range_usize(0, 40));
                    let payload = format!("fam{f}-case{c}-rec{i}-{pad}").into_bytes();
                    let r = gc.append(&payload);
                    // Even a failing append has already encoded its
                    // record into the batch: if the flush's write lands
                    // and only the fsync fails, those bytes can survive
                    // to recovery. Unacknowledged survival is not loss.
                    appended.push(payload);
                    r
                } else if op < 9 {
                    gc.tick()
                } else {
                    gc.sync()
                };
                match result {
                    Ok(()) => acked = appended.len() - gc.pending_records() as usize,
                    Err(e) => {
                        // First failure: the writer must be poisoned,
                        // permanently, with the same sticky fault.
                        fault_seen = true;
                        assert!(gc.fault().is_some(), "{ctx}: error without a sticky fault");
                        let again = gc.append(b"after-fault");
                        match again {
                            Ok(()) => panic!("{ctx}: poisoned writer accepted an append"),
                            Err(e2) => assert_eq!(
                                e2.to_string(),
                                e.to_string(),
                                "{ctx}: the sticky fault drifted"
                            ),
                        }
                        assert!(gc.sync().is_err(), "{ctx}: poisoned writer claimed a sync");
                        break;
                    }
                }
            }

            // Crash (forget: the buffer evaporates, as a killed process)
            // or orderly drop (the drop-time flush runs; its failure
            // must land in the drop-fault slot, never vanish).
            let pending = gc.pending_records() as usize;
            let crashed = rng.bool(0.5);
            if crashed {
                std::mem::forget(gc);
            } else {
                drop(gc);
            }
            let drop_fault = take_drop_fault();
            if fault_seen {
                assert!(
                    drop_fault.is_none(),
                    "{ctx}: an already-poisoned writer re-reported its fault at drop"
                );
            }

            // Recover with honest I/O and check the two invariants.
            let out = wal::scan(&dir).unwrap_or_else(|e| panic!("{ctx}: scan failed: {e}"));
            let recovered = out.frames.len();
            assert!(
                recovered <= appended.len(),
                "{ctx}: recovered {recovered} frames but only appended {}",
                appended.len()
            );
            for (k, frame) in out.frames.iter().enumerate() {
                assert_eq!(
                    frame.payload, appended[k],
                    "{ctx}: recovered record {k} is not the record appended"
                );
            }
            // Invariant 1: every sync() that returned Ok is recoverable.
            assert!(
                recovered >= acked,
                "{ctx}: lost an acknowledged record (recovered {recovered} < acked {acked})"
            );
            // Invariant 2: every lost record corresponds to a reported
            // fault (or to the never-acknowledged buffer a crash took).
            if recovered < appended.len() {
                let crash_accounted = crashed && appended.len() - recovered <= pending;
                assert!(
                    fault_seen || drop_fault.is_some() || crash_accounted,
                    "{ctx}: silently lost {} of {} records (no fault reported)",
                    appended.len() - recovered,
                    appended.len()
                );
            }
            // Write-path faults tear tails; they never damage the
            // durable middle of the log. And an undamaged log with no
            // fault anywhere means nothing was lost at all.
            if let Some(d) = &out.damage {
                assert!(
                    fault_seen || drop_fault.is_some(),
                    "{ctx}: damage on disk but no fault was ever reported"
                );
                assert!(
                    d.is_torn_tail(),
                    "{ctx}: a write-path fault produced mid-log damage: {:?}",
                    d.kind
                );
                // Repair converges: the torn tail truncates away and a
                // second scan sees the same frames, clean. When the
                // tear sat in the very first header (nothing durable
                // yet), repair removes the whole journal — allowed only
                // if nothing had been recovered.
                wal::repair(&dir, d).unwrap_or_else(|e| panic!("{ctx}: repair failed: {e}"));
                match wal::scan(&dir) {
                    Ok(again) => {
                        assert!(again.damage.is_none(), "{ctx}: repair left damage behind");
                        assert_eq!(
                            again.frames.len(),
                            recovered,
                            "{ctx}: repair changed the prefix"
                        );
                    }
                    Err(_) => assert_eq!(recovered, 0, "{ctx}: repair deleted verified frames"),
                }
            }
            if fault_seen || drop_fault.is_some() {
                faulted += 1;
            } else if recovered == appended.len() {
                clean_full += 1;
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let total = FAMILIES * CASES_PER_FAMILY;
    // The matrix must actually bite from both sides: plenty of injected
    // faults, and plenty of clean full recoveries (the injector must
    // not fault everything into the typed-error escape hatch).
    assert!(
        faulted >= total / 4,
        "only {faulted} of {total} cases saw a fault — the injector is not biting \
         ({create_failed} create failures)"
    );
    assert!(
        clean_full >= total / 10,
        "only {clean_full} of {total} cases recovered clean and full"
    );

    fleet_recovery_is_byte_identical_across_widths(base);
}

/// Phase 2: journaled sessions hit injected faults mid-run, crash, and
/// the whole fleet recovers through `Webhouse::recover_sessions` at
/// parallel widths 1 and 4 — byte-identical, with every acknowledged
/// refine replayed.
fn fleet_recovery_is_byte_identical_across_widths(base: u64) {
    use iixml_webhouse::{RecoveryStatus, Session, Source, Webhouse};

    const FLEET: usize = 8;
    struct Case {
        name: String,
        dir: PathBuf,
        doc: iixml_tree::DataTree,
        alpha: iixml_tree::Alphabet,
        /// `states[k]` = serialized knowledge once `k` records are
        /// replayed (open + refines; runs are short of the snapshot
        /// cadence, so no SnapshotRef records appear).
        states: Vec<String>,
        /// Records acknowledged as durable: open + every Ok fetch.
        acked: usize,
    }

    let mut cases: Vec<Case> = Vec::new();
    for c in 0..FLEET * 2 {
        if cases.len() == FLEET {
            break;
        }
        let seed = DetRng::new(base ^ 0xF1EE7).fork(c as u64).next_u64();
        let mut rng = DetRng::new(seed);
        let mut cat = iixml_gen::catalog(2, rng.next_u64());
        let queries: Vec<PsQuery> = (0..8)
            .map(|_| iixml_gen::catalog_query_price_below(&mut cat.alpha, rng.range_i64(50, 500)))
            .collect();
        let alpha = cat.alpha.clone();
        let dir = scratch(&format!("fleet-c{c}"));
        let _ = take_drop_fault();

        // Fail the Nth store operation; the default fsync-per-record
        // policy costs a handful of ops per fetch, so this lands the
        // fault anywhere from inside open to beyond the run.
        let io = StoreIo::fail_at(seed, rng.range_usize(4, 40) as u64);
        let mut session = match Session::open_journaled_with_io(
            alpha.clone(),
            Source::new(cat.doc.clone(), None),
            &dir,
            io,
        ) {
            Ok(s) => s,
            Err(_) => {
                // Open itself failed: there is no journal to
                // recover, and nothing was acknowledged.
                let _ = std::fs::remove_dir_all(&dir);
                continue;
            }
        };
        let mut refiner_states = vec![String::new()];
        refiner_states.push(write_incomplete_xml(session.knowledge(), &alpha));
        let mut acked = 1usize; // the open record
        for q in &queries {
            match session.fetch(q) {
                Ok(_) => {
                    acked += 1;
                    refiner_states.push(write_incomplete_xml(session.knowledge(), &alpha));
                }
                Err(_) => {
                    // The refine is applied in memory before the append
                    // fails, and its bytes may or may not have landed —
                    // recovery may legitimately replay one past `acked`.
                    refiner_states.push(write_incomplete_xml(session.knowledge(), &alpha));
                    break;
                }
            }
        }
        drop(session); // crash; a poisoned journal drops quietly
        let _ = take_drop_fault();
        cases.push(Case {
            name: format!("fleet-{c:02}"),
            dir,
            doc: cat.doc.clone(),
            alpha,
            states: refiner_states,
            acked,
        });
    }
    assert!(
        cases.len() >= FLEET / 2,
        "the fault schedule killed almost every open — the fleet phase is vacuous"
    );

    let mut per_width: Vec<Vec<String>> = Vec::new();
    for &width in &[1usize, 4] {
        iixml_par::set_threads(Some(width));
        let mut house: Webhouse<Source> = Webhouse::new();
        let journals: Vec<(String, PathBuf, Source)> = cases
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    c.dir.clone(),
                    Source::new(c.doc.clone(), None),
                )
            })
            .collect();
        let reports = house
            .recover_sessions(journals)
            .expect("a poisoned-then-crashed journal must still recover");
        assert_eq!(reports.len(), cases.len());
        let mut knowledge = Vec::with_capacity(cases.len());
        for (case, (name, report)) in cases.iter().zip(&reports) {
            assert_eq!(&case.name, name, "name order broke");
            assert_eq!(
                report.status,
                RecoveryStatus::Clean,
                "{name} width {width}: write-path faults tear tails, never durable bytes"
            );
            assert!(
                report.replayed >= case.acked,
                "{name} width {width}: lost an acknowledged record \
                 (replayed {} < {} acked)",
                report.replayed,
                case.acked
            );
            assert!(
                report.replayed < case.states.len(),
                "{name} width {width}: replayed records nobody appended"
            );
            let session = house.session(name).unwrap();
            let got = write_incomplete_xml(session.knowledge(), &case.alpha);
            assert_eq!(
                got, case.states[report.replayed],
                "{name} width {width}: state is not the state after {} records",
                report.replayed
            );
            knowledge.push(got);
        }
        per_width.push(knowledge);
    }
    iixml_par::set_threads(None);
    assert_eq!(
        per_width[0], per_width[1],
        "recovery width changed the recovered bytes"
    );
    for case in &cases {
        let _ = std::fs::remove_dir_all(&case.dir);
    }
}
