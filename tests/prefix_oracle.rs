//! Theorem 2.8's certain/possible prefix algorithms cross-checked
//! against bounded exhaustive enumeration of `rep(T)` — on incomplete
//! trees produced by real Refine chains, not just hand-built ones.

use iixml_core::Refiner;
use iixml_oracle::{
    enumerate_rep, mutations, oracle_certain_prefix, oracle_possible_prefix, Bounds,
};
use iixml_query::PsQueryBuilder;
use iixml_tree::{Alphabet, DataTree, Nid};
use iixml_values::{Cond, Rat};
use std::collections::HashSet;

/// A tiny world so that enumeration is exhaustive within bounds.
fn tiny_world(alpha: &mut Alphabet) -> DataTree {
    let r = alpha.intern("root");
    let a = alpha.intern("a");
    let b = alpha.intern("b");
    let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
    let x = t.add_child(t.root(), Nid(1), a, Rat::from(1)).unwrap();
    t.add_child(x, Nid(2), b, Rat::from(5)).unwrap();
    t.add_child(t.root(), Nid(3), a, Rat::from(9)).unwrap();
    t
}

#[test]
fn refined_tree_prefix_algorithms_match_oracle() {
    let mut alpha = Alphabet::new();
    let world = tiny_world(&mut alpha);
    // Refine with root/a[<5]/b (captures the a=1 branch).
    let q = {
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        let an = bld.child(root, "a", Cond::lt(Rat::from(5))).unwrap();
        bld.child(an, "b", Cond::True).unwrap();
        bld.build()
    };
    let mut refiner = Refiner::new(&alpha);
    refiner.refine(&alpha, &q, &q.eval(&world)).unwrap();
    let knowledge = refiner.current();

    let worlds = enumerate_rep(
        knowledge,
        Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 4_000,
            values_per_interval: 1,
        },
    );
    // The enumeration may be truncated; both checked directions below
    // remain sound (oracle-positive => algorithm-positive, and
    // algorithm-certain => certain-over-enumerated-subset).
    assert!(!worlds.worlds.is_empty());
    let pinned: HashSet<Nid> = knowledge.nodes().keys().copied().collect();

    // Candidate prefixes: the data tree, mutations of it, mutations of
    // the world, and the world itself.
    let td = knowledge.data_tree().unwrap();
    let labels: Vec<_> = alpha.labels().collect();
    let mut candidates = vec![td.clone(), world.clone()];
    candidates.extend(mutations(&td, &labels));
    candidates.extend(mutations(&world, &labels).into_iter().take(30));

    let mut checked_possible = 0;
    let mut checked_certain = 0;
    for t in &candidates {
        let alg_p = knowledge.possible_prefix(t);
        let oracle_p = oracle_possible_prefix(&worlds.worlds, t, &pinned);
        // The enumeration uses representative values only, so it can
        // miss possible worlds with other values; it can never invent
        // them. The certain direction is exact over the enumerated set.
        if oracle_p {
            assert!(alg_p, "oracle found an embedding the algorithm denies");
            checked_possible += 1;
        }
        let alg_c = knowledge.certain_prefix(t);
        let oracle_c = oracle_certain_prefix(&worlds.worlds, t, &pinned);
        if alg_c {
            assert!(
                oracle_c,
                "algorithm claims certain but an enumerated world refutes it"
            );
            checked_certain += 1;
        }
        // And the contrapositive with exhaustive-value candidates: if
        // the oracle refutes certainty with a world, the algorithm must
        // not claim it (already covered by the assert above).
    }
    assert!(checked_possible > 3, "test exercised possible prefixes");
    assert!(checked_certain >= 1, "test exercised certain prefixes");
}

#[test]
fn answer_prefix_modalities_match_direct_answers() {
    // Theorem 3.17: certain/possible prefixes of q(T) vs the actual
    // answers over enumerated worlds.
    let mut alpha = Alphabet::new();
    let world = tiny_world(&mut alpha);
    let q_view = {
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "a", Cond::lt(Rat::from(5))).unwrap();
        bld.build()
    };
    let mut refiner = Refiner::new(&alpha);
    refiner
        .refine(&alpha, &q_view, &q_view.eval(&world))
        .unwrap();
    let knowledge = refiner.current();

    // The follow-up query: root/a (all a's).
    let q_ask = {
        let mut bld = PsQueryBuilder::new(&mut alpha, "root", Cond::True);
        let root = bld.root();
        bld.child(root, "a", Cond::True).unwrap();
        bld.build()
    };
    let described = knowledge.query(&q_ask);

    let worlds = enumerate_rep(
        knowledge,
        Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 4_000,
            values_per_interval: 1,
        },
    );
    let answers: Vec<DataTree> = worlds
        .worlds
        .iter()
        .filter_map(|w| q_ask.eval(w).tree)
        .collect();
    assert!(!answers.is_empty());

    // The known data-node part of every answer: root + a(=1).
    let mut sure = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
    sure.add_child(sure.root(), Nid(1), alpha.get("a").unwrap(), Rat::from(1))
        .unwrap();
    assert!(described.certain_answer_prefix(&sure));
    let pinned: HashSet<Nid> = knowledge.nodes().keys().copied().collect();
    for a in &answers {
        assert!(
            iixml_tree::is_prefix_of(&sure, a, &pinned),
            "claimed-certain prefix missing from an actual answer"
        );
    }

    // A prefix with an extra unknown a-child: possible but not certain.
    // Use a value that actually occurs in some enumerated answer (the
    // oracle only instantiates representative values).
    let extra_value = answers
        .iter()
        .flat_map(|a| {
            let root = a.root();
            a.children(root)
                .iter()
                .map(|&c| (a.nid(c), a.value(c)))
                .collect::<Vec<_>>()
        })
        .find(|(nid, _)| *nid != Nid(1))
        .map(|(_, v)| v)
        .expect("some world has an extra a child");
    let mut maybe = sure.clone();
    maybe
        .add_child(maybe.root(), Nid(77), alpha.get("a").unwrap(), extra_value)
        .unwrap();
    assert!(described.possible_answer_prefix(&maybe));
    assert!(!described.certain_answer_prefix(&maybe));
    let some = answers
        .iter()
        .any(|a| iixml_tree::is_prefix_of(&maybe, a, &pinned));
    let all = answers
        .iter()
        .all(|a| iixml_tree::is_prefix_of(&maybe, a, &pinned));
    assert!(some, "oracle confirms possibility");
    assert!(!all, "oracle confirms non-certainty");
}
