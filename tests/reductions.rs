//! Randomized cross-checks of the Section 3.6/4 hardness constructions
//! against brute force: the reductions must *decide* their source
//! problems exactly.

use iixml_extensions::cfg::{Grammar, Production};
use iixml_extensions::dnf::{certain_prefix_root_val, Dnf};
use iixml_extensions::sat::{encode, Cnf};

/// Deterministic xorshift for reproducible "random" formulas.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn range(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn random_cnf(rng: &mut Rng, num_vars: usize, num_clauses: usize) -> Cnf {
    let clauses = (0..num_clauses)
        .map(|_| {
            let mut lits = [0i64; 3];
            for l in &mut lits {
                let v = rng.range(num_vars as u64) as i64 + 1;
                *l = if rng.range(2) == 0 { v } else { -v };
            }
            lits
        })
        .collect();
    Cnf { num_vars, clauses }
}

#[test]
fn sat_reduction_on_random_formulas() {
    let mut rng = Rng(0x1234_5678_9ABC_DEF0);
    let mut seen_sat = 0;
    let mut seen_unsat = 0;
    for _ in 0..10 {
        let cnf = random_cnf(&mut rng, 2, 3);
        let expected = cnf.brute_force_sat();
        let enc = encode(&cnf);
        assert_eq!(enc.possible_prefix_val1(), expected, "{cnf:?}");
        if expected {
            seen_sat += 1;
        } else {
            seen_unsat += 1;
        }
    }
    // Hand-picked hard cases to guarantee both outcomes are exercised.
    let unsat = Cnf {
        num_vars: 2,
        clauses: vec![[1, 1, 1], [-1, -1, -1]],
    };
    assert!(!encode(&unsat).possible_prefix_val1());
    seen_unsat += 1;
    let sat = Cnf {
        num_vars: 2,
        clauses: vec![[1, 2, 2]],
    };
    assert!(encode(&sat).possible_prefix_val1());
    seen_sat += 1;
    assert!(seen_sat >= 1 && seen_unsat >= 1);
}

#[test]
fn dnf_reduction_on_random_formulas() {
    let mut rng = Rng(0xFEED_FACE_CAFE_BEEF);
    for _ in 0..10 {
        let num_vars = 2 + rng.range(2) as usize;
        let num_disjuncts = 1 + rng.range(5) as usize;
        let disjuncts = (0..num_disjuncts)
            .map(|_| {
                let mut lits = [0i64; 3];
                for l in &mut lits {
                    let v = rng.range(num_vars as u64) as i64 + 1;
                    *l = if rng.range(2) == 0 { v } else { -v };
                }
                lits
            })
            .collect();
        let dnf = Dnf {
            num_vars,
            disjuncts,
        };
        assert_eq!(
            certain_prefix_root_val(&dnf),
            dnf.brute_force_valid(),
            "{dnf:?}"
        );
    }
}

#[test]
fn cfg_intersection_against_cyk() {
    // Two grammar families where intersection truth is known by CYK.
    let anbn = Grammar {
        start: "S".into(),
        rules: vec![
            ("S".into(), Production::Pair("A".into(), "X".into())),
            ("S".into(), Production::Pair("A".into(), "B".into())),
            ("X".into(), Production::Pair("S".into(), "B".into())),
            ("A".into(), Production::Term('a')),
            ("B".into(), Production::Term('b')),
        ],
    };
    // All words over {a,b} of even length >= 2 (E = two-of-anything).
    let even = Grammar {
        start: "E".into(),
        rules: vec![
            ("E".into(), Production::Pair("C".into(), "F".into())),
            ("F".into(), Production::Pair("E".into(), "C".into())),
            ("C".into(), Production::Term('a')),
            ("C".into(), Production::Term('b')),
            ("F".into(), Production::Term('a')),
            ("F".into(), Production::Term('b')),
        ],
    };
    // a^n b^n words are even-length: the intersection is nonempty.
    let witness = iixml_extensions::cfg::intersection_witness(&anbn, &even, 4);
    assert!(witness.is_some());
    let w = witness.unwrap();
    assert!(anbn.accepts(&w) && even.accepts(&w), "witness {w} in both");

    // a-only vs b-only: empty.
    let a_only = Grammar {
        start: "P".into(),
        rules: vec![
            ("P".into(), Production::Pair("Q".into(), "R".into())),
            ("Q".into(), Production::Term('a')),
            ("R".into(), Production::Term('a')),
            ("P".into(), Production::Term('a')),
        ],
    };
    let b_only = Grammar {
        start: "W".into(),
        rules: vec![
            ("W".into(), Production::Pair("Y".into(), "Z".into())),
            ("Y".into(), Production::Term('b')),
            ("Z".into(), Production::Term('b')),
            ("W".into(), Production::Term('b')),
        ],
    };
    assert!(iixml_extensions::cfg::intersection_witness(&a_only, &b_only, 3).is_none());
}

#[test]
fn sat_knowledge_size_scales_polynomially() {
    // Corollary 3.9 at reduction scale: knowledge size linear in the
    // number of queries, which is linear in vars + clauses.
    let mut sizes = Vec::new();
    for n in 1..=5 {
        let cnf = Cnf {
            num_vars: n,
            clauses: vec![[1, 1, 1]; n.min(3)],
        };
        let enc = encode(&cnf);
        sizes.push((enc.num_queries, enc.knowledge_size()));
    }
    for w in sizes.windows(2) {
        let (q0, s0) = w[0];
        let (q1, s1) = w[1];
        // Size per query is roughly constant.
        let per0 = s0 as f64 / q0 as f64;
        let per1 = s1 as f64 / q1 as f64;
        assert!((per1 / per0) < 1.5, "{sizes:?}");
    }
}
