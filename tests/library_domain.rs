//! The whole pipeline on a second domain (the library schema), whose
//! tree type uses `+` (author), `?` (isbn) and `⋆` (review)
//! multiplicities — exercising the Theorem 3.5 budget logic and the
//! prefix/answer algorithms beyond the catalog's shapes.

use iixml_core::type_intersect::restrict_to_type;
use iixml_core::Refiner;
use iixml_gen::{library, library_query_recent, library_query_well_reviewed, random_queries};
use iixml_oracle::mutations;
use iixml_webhouse::{LocalAnswer, Session, Source};

#[test]
fn refine_chain_on_library() {
    let mut l = library(12, 4);
    let q1 = library_query_recent(&mut l.alpha, 1980);
    let q2 = library_query_well_reviewed(&mut l.alpha, 8);
    let mut refiner = Refiner::new(&l.alpha);
    for q in [&q1, &q2] {
        let a = q.eval(&l.doc);
        refiner.refine(&l.alpha, q, &a).unwrap();
        assert!(refiner.current().contains(&l.doc));
        assert!(refiner.current().is_unambiguous());
    }
    let restricted = restrict_to_type(refiner.current(), &l.ty);
    assert!(restricted.contains(&l.doc));

    // Type violations are excluded: a book without authors (author+).
    let book = l.alpha.get("book").unwrap();
    let title = l.alpha.get("title").unwrap();
    let year = l.alpha.get("year").unwrap();
    let mut bad = l.doc.clone();
    let root = bad.root();
    let b = bad
        .add_child(root, iixml_tree::Nid(90_000), book, iixml_values::Rat::ZERO)
        .unwrap();
    bad.add_child(
        b,
        iixml_tree::Nid(90_001),
        title,
        iixml_values::Rat::from(1),
    )
    .unwrap();
    bad.add_child(
        b,
        iixml_tree::Nid(90_002),
        year,
        iixml_values::Rat::from(1700),
    )
    .unwrap();
    assert!(!l.ty.accepts(&bad));
    assert!(!restricted.contains(&bad));

    // Two isbn children violate isbn?.
    let isbn = l.alpha.get("isbn").unwrap();
    let mut bad2 = l.doc.clone();
    let first_book = bad2.children(bad2.root())[0];
    bad2.add_child(
        first_book,
        iixml_tree::Nid(90_010),
        isbn,
        iixml_values::Rat::from(1),
    )
    .unwrap();
    bad2.add_child(
        first_book,
        iixml_tree::Nid(90_011),
        isbn,
        iixml_values::Rat::from(2),
    )
    .unwrap();
    assert!(!l.ty.accepts(&bad2));
    assert!(!restricted.contains(&bad2));
}

#[test]
fn membership_tracks_definition_on_library() {
    for seed in 0..4u64 {
        let l = library(4, seed);
        let root = l.alpha.get("library").unwrap();
        let queries = random_queries(&l.alpha, &l.ty, root, 2, 3000, seed ^ 0x11);
        let mut refiner = Refiner::new(&l.alpha);
        let answers: Vec<_> = queries
            .iter()
            .map(|q| {
                let a = q.eval(&l.doc);
                refiner.refine(&l.alpha, q, &a).unwrap();
                a
            })
            .collect();
        let labels: Vec<_> = l.alpha.labels().collect();
        for probe in mutations(&l.doc, &labels).into_iter().take(30) {
            let expected =
                queries
                    .iter()
                    .zip(&answers)
                    .all(|(q, a)| match (q.eval(&probe).tree, &a.tree) {
                        (None, None) => true,
                        (Some(x), Some(y)) => x.same_tree(y),
                        _ => false,
                    });
            assert_eq!(
                refiner.current().contains(&probe),
                expected,
                "library membership diverges (seed {seed})"
            );
        }
    }
}

#[test]
fn library_webhouse_session() {
    let mut l = library(20, 8);
    let q_recent = library_query_recent(&mut l.alpha, 1990);
    let q_all = library_query_recent(&mut l.alpha, 0);
    let mut session = Session::open(
        l.alpha.clone(),
        Source::new(l.doc.clone(), Some(l.ty.clone())),
    );
    session.fetch(&q_all).unwrap();
    // Narrower year window answerable from the full sweep.
    match session.answer_locally(&q_recent) {
        LocalAnswer::Complete(local) => {
            let direct = q_recent.eval(&l.doc).tree;
            match (local, direct) {
                (Some(a), Some(b)) => assert!(a.same_tree(&b)),
                (a, b) => assert_eq!(a.is_none(), b.is_none()),
            }
        }
        LocalAnswer::Partial(_) => panic!("subsumed query should be answerable"),
        LocalAnswer::Degraded { .. } => panic!("answer_locally never degrades"),
    }
    // Reviews were never fetched: the review query mediates correctly.
    let q_rev = library_query_well_reviewed(&mut l.alpha, 7);
    let exact = session.answer_with_mediation(&q_rev).unwrap();
    let direct = q_rev.eval(&l.doc).tree;
    match (exact, direct) {
        (Some(a), Some(b)) => assert!(a.same_tree(&b)),
        (a, b) => assert_eq!(a.is_none(), b.is_none()),
    }
}
