//! Quickstart: build the paper's catalog, ask Query 1, keep the
//! incomplete tree, and answer a follow-up query without touching the
//! source.
//!
//! Run with `cargo run --example quickstart`.

use iixml::prelude::*;

fn main() {
    // 1. The catalog tree type of Figure 1.
    let mut alpha = Alphabet::new();
    let ty = TreeTypeBuilder::new(&mut alpha)
        .root("catalog")
        .rule("catalog", &[("product", Mult::Plus)])
        .rule(
            "product",
            &[
                ("name", Mult::One),
                ("price", Mult::One),
                ("cat", Mult::One),
                ("picture", Mult::Star),
            ],
        )
        .rule("cat", &[("subcat", Mult::One)])
        .build()
        .expect("well-formed type");

    // 2. A source document (normally a remote XML document; here built
    //    in memory — cat 1 = electronics, subcat 10 = camera).
    let mut gen = iixml_tree::NidGen::new();
    let mut doc = DataTree::new(gen.fresh(), alpha.get("catalog").unwrap(), Rat::ZERO);
    for (name, price, subcat, pictures) in
        [(100, 120, 10, 1usize), (101, 199, 10, 0), (102, 250, 10, 1)]
    {
        let root = doc.root();
        let p = doc
            .add_child(root, gen.fresh(), alpha.get("product").unwrap(), Rat::ZERO)
            .unwrap();
        doc.add_child(p, gen.fresh(), alpha.get("name").unwrap(), Rat::from(name))
            .unwrap();
        doc.add_child(
            p,
            gen.fresh(),
            alpha.get("price").unwrap(),
            Rat::from(price),
        )
        .unwrap();
        let c = doc
            .add_child(p, gen.fresh(), alpha.get("cat").unwrap(), Rat::ONE)
            .unwrap();
        doc.add_child(
            c,
            gen.fresh(),
            alpha.get("subcat").unwrap(),
            Rat::from(subcat),
        )
        .unwrap();
        for k in 0..pictures {
            doc.add_child(
                p,
                gen.fresh(),
                alpha.get("picture").unwrap(),
                Rat::from(500 + k as i64),
            )
            .unwrap();
        }
    }
    println!("== source document ==\n{}", doc.display(&alpha));

    // 3. Query 1: electronics under $200.
    let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::ONE)).unwrap();
    b.child(c, "subcat", Cond::True).unwrap();
    let q1 = b.build();
    println!("== Query 1 ==\n{}", q1.display(&alpha));

    let a1 = q1.eval(&doc);
    println!(
        "== answer ({} nodes) ==\n{}",
        a1.len(),
        a1.tree.as_ref().unwrap().display(&alpha)
    );

    // 4. Algorithm Refine accumulates the incomplete tree; fold in the
    //    DTD for extra knowledge (Theorem 3.5).
    let mut refiner = Refiner::new(&alpha);
    refiner.refine(&alpha, &q1, &a1).expect("consistent");
    let knowledge = iixml_core::type_intersect::restrict_to_type(refiner.current(), &ty);
    println!(
        "== incomplete tree: {} data nodes, {} specialized types ==",
        knowledge.nodes().len(),
        knowledge.ty().sym_count()
    );
    println!("{}", knowledge.ty().display(&alpha));

    // 5. Ask a follow-up: "cheap cameras" — answerable from the local
    //    incomplete tree alone (Corollary 3.15).
    let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    b.child(p, "price", Cond::lt(Rat::from(150))).unwrap();
    let c = b.child(p, "cat", Cond::eq(Rat::ONE)).unwrap();
    b.child(c, "subcat", Cond::eq(Rat::from(10))).unwrap();
    let q_cheap = b.build();

    let described = knowledge.query(&q_cheap);
    println!(
        "cheap-camera query: fully answerable from local info? {}",
        described.fully_answerable()
    );
    if let Some(ans) = described.the_answer() {
        println!("the answer (no source contact):\n{}", ans.display(&alpha));
    }

    // 6. The incomplete tree is itself an XML document (as the paper
    //    advertises): browse or persist it.
    println!(
        "== the knowledge as an XML document ==\n{}",
        iixml_core::io::write_incomplete_xml(&knowledge, &alpha)
    );
}
