//! A tour of Section 4: each query-language extension, the construction
//! behind its hardness result, and a live demonstration.
//!
//! Run with `cargo run --example hardness_tour`.

use iixml_extensions::cfg::{intersection_witness, Grammar, Production};
use iixml_extensions::dependencies::{satisfies_via_query, Dependency, Relation};
use iixml_extensions::dnf::{certain_prefix_root_val, Dnf};
use iixml_extensions::order::{merge_answers, MergeResult};
use iixml_extensions::pebble::{BinTree, PebbleAutomaton};
use iixml_extensions::regex::Regex;
use iixml_gen::catalog;
use iixml_tree::Label;
use iixml_values::Rat;

fn main() {
    println!("=== Section 4: what each extension costs ===\n");

    // Branching + optional subtrees: certain-prefix becomes co-NP-hard
    // (Theorem 4.1) — the reduction decides DNF validity.
    println!("-- Theorem 4.1: branching + optional => co-NP (DNF validity) --");
    let valid = Dnf {
        num_vars: 1,
        disjuncts: vec![[1, 1, 1], [-1, -1, -1]],
    };
    let invalid = Dnf {
        num_vars: 2,
        disjuncts: vec![[1, 2, 2]],
    };
    for (name, d) in [("x1 v ~x1", &valid), ("x1^x2 only", &invalid)] {
        println!(
            "  {name:<12} certain-prefix(root-val) = {}  (validity: {})",
            certain_prefix_root_val(d),
            d.brute_force_valid()
        );
    }

    // Branching + joins + negation: undecidability via FD+IND
    // implication (Theorem 4.5) — the violation queries are exact.
    println!("\n-- Theorem 4.5: joins + negation express FDs and INDs --");
    let rel = Relation {
        arity: 2,
        tuples: vec![
            vec![Rat::from(1), Rat::from(10)],
            vec![Rat::from(2), Rat::from(10)],
            vec![Rat::from(1), Rat::from(10)],
        ],
    };
    let fd = Dependency::Fd {
        lhs: vec![0],
        rhs: 1,
    };
    let ind = Dependency::Ind {
        lhs: vec![1],
        rhs: vec![0],
    };
    println!(
        "  R = {{(1,10),(2,10)}}: A0->A1 via query: {} | R[A1]⊆R[A0] via query: {}",
        satisfies_via_query(&rel, &fd),
        satisfies_via_query(&rel, &ind)
    );

    // Recursive path expressions + joins: undecidability via CFG
    // intersection (Theorem 4.7).
    println!("\n-- Theorem 4.7: path expressions + joins encode CFG intersection --");
    let anbn = Grammar {
        start: "S".into(),
        rules: vec![
            ("S".into(), Production::Pair("A".into(), "X".into())),
            ("S".into(), Production::Pair("A".into(), "B".into())),
            ("X".into(), Production::Pair("S".into(), "B".into())),
            ("A".into(), Production::Term('a')),
            ("B".into(), Production::Term('b')),
        ],
    };
    let ab = Grammar {
        start: "T".into(),
        rules: vec![
            ("T".into(), Production::Pair("C".into(), "D".into())),
            ("C".into(), Production::Term('a')),
            ("D".into(), Production::Term('b')),
        ],
    };
    match intersection_witness(&anbn, &ab, 4) {
        Some(w) => println!("  L(a^n b^n) ∩ L(ab) ∋ \"{w}\"  (found through the query encoding)"),
        None => println!("  intersection empty up to the bound"),
    }

    // k-pebble automata: the ordered-tree representation system
    // (Theorem 4.2) — powerful, but emptiness is non-elementary.
    println!("\n-- Theorem 4.2: k-pebble automata on binary encodings --");
    let c = catalog(8, 5);
    let bt = BinTree::from_unranked(&c.doc);
    let picture = c.alpha.get("picture").unwrap();
    println!(
        "  catalog({} nodes): ∃picture = {}, ∃two distinct pictures = {}",
        bt.len(),
        PebbleAutomaton::exists_label(picture).accepts(&bt),
        PebbleAutomaton::two_distinct_labeled(picture).accepts(&bt)
    );

    // Order: when can ordered answers be merged?
    println!("\n-- Section 4 (order): merging ordered answers --");
    let a = Label(0);
    let b = Label(1);
    let types: [(&str, Regex); 2] = [
        (
            "a*b*",
            Regex::cat(Regex::star(Regex::Sym(a)), Regex::star(Regex::Sym(b))),
        ),
        (
            "(a+b)*",
            Regex::star(Regex::alt(Regex::Sym(a), Regex::Sym(b))),
        ),
    ];
    for (name, ty) in &types {
        let res = merge_answers(ty, a, &[Rat::from(1)], b, &[Rat::from(2)]);
        let verdict = match res {
            MergeResult::Unique(_) => "unique merge: q3 answerable",
            MergeResult::Ambiguous(_) => "ambiguous: order info genuinely missing",
            MergeResult::Inconsistent => "inconsistent",
        };
        println!("  type {name:<8} -> {verdict}");
    }

    println!("\nEvery extension beyond the core cocktail costs tractability —");
    println!("which is the paper's argument for the core design (Section 5).");
}
