//! Answering queries using views (Remark 3.16 / Corollary 3.15): given a
//! set of materialized ps-query answers (the "views"), decide which new
//! queries can be answered without touching the source — and answer
//! them.
//!
//! Run with `cargo run --example answering_with_views`.

use iixml_core::Refiner;
use iixml_gen::{catalog, codes};
use iixml_query::{PsQuery, PsQueryBuilder};
use iixml_tree::Alphabet;
use iixml_values::{Cond, Rat};

fn price_query(alpha: &mut Alphabet, lo: Option<i64>, hi: i64) -> PsQuery {
    let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
    let root = b.root();
    let p = b.child(root, "product", Cond::True).unwrap();
    b.child(p, "name", Cond::True).unwrap();
    let cond = match lo {
        Some(lo) => Cond::ge(Rat::from(lo)).and(Cond::lt(Rat::from(hi))),
        None => Cond::lt(Rat::from(hi)),
    };
    b.child(p, "price", cond).unwrap();
    let c = b.child(p, "cat", Cond::True).unwrap();
    b.child(c, "subcat", Cond::True).unwrap();
    b.build()
}

fn main() {
    let mut c = catalog(40, 77);

    // The views: two price bands covering [0, 250).
    let v1 = price_query(&mut c.alpha, None, 120);
    let v2 = price_query(&mut c.alpha, Some(120), 250);
    let mut refiner = Refiner::new(&c.alpha);
    for (name, v) in [("band (-inf,120)", &v1), ("band [120,250)", &v2)] {
        let a = v.eval(&c.doc);
        refiner.refine(&c.alpha, v, &a).unwrap();
        println!("materialized view {name}: {} nodes", a.len());
    }
    let knowledge = refiner.current();

    // Candidate queries: which are answerable from the views alone?
    let candidates: Vec<(String, PsQuery)> = vec![
        (
            "price in [50,100)".into(),
            price_query(&mut c.alpha, Some(50), 100),
        ),
        (
            "price in [100,200)".into(),
            price_query(&mut c.alpha, Some(100), 200),
        ),
        (
            "price in [200,300)".into(),
            price_query(&mut c.alpha, Some(200), 300),
        ),
        ("cameras under 250".into(), {
            let mut b = PsQueryBuilder::new(&mut c.alpha, "catalog", Cond::True);
            let root = b.root();
            let p = b.child(root, "product", Cond::True).unwrap();
            b.child(p, "name", Cond::True).unwrap();
            b.child(p, "price", Cond::lt(Rat::from(250))).unwrap();
            let cc = b.child(p, "cat", Cond::True).unwrap();
            b.child(cc, "subcat", Cond::eq(Rat::from(codes::CAMERA)))
                .unwrap();
            b.build()
        }),
    ];

    for (name, q) in &candidates {
        let described = knowledge.query(q);
        if described.fully_answerable() {
            let ans = described.the_answer();
            let direct = q.eval(&c.doc).tree;
            let nodes = ans.as_ref().map_or(0, |t| t.len());
            let agree = match (&ans, &direct) {
                (Some(a), Some(b)) => a.same_tree(b),
                (a, b) => a.is_none() == b.is_none(),
            };
            println!("{name:<22} ANSWERABLE from views ({nodes} nodes, matches source: {agree})");
            assert!(agree);
        } else {
            println!(
                "{name:<22} not answerable (possible-nonempty: {})",
                described.possible_nonempty()
            );
        }
    }
}
