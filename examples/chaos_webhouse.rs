//! The webhouse loop under fire: a catalog session against a source
//! that times out, fails transiently, truncates and poisons answers,
//! and mutates its document mid-session — all driven by one seed, so a
//! run replays exactly.
//!
//! Run with `cargo run --example chaos_webhouse [rate] [seed]`
//! (defaults: rate 0.15 per fault kind, seed 0xA5EED).

use iixml_gen::rng::DetRng;
use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_webhouse::{
    DegradeCause, FaultPlan, FaultySource, LocalAnswer, RetryPolicy, Session, Source,
    SourceEndpoint,
};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(0.15);
    let seed: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(0xA5EED);

    let mut c = catalog(12, seed);
    println!(
        "source: {} products, {} nodes; fault rate {rate} per kind, seed {seed}",
        c.doc.children(c.doc.root()).len(),
        c.doc.len()
    );

    let src = Source::new(c.doc.clone(), Some(c.ty.clone()));
    let faulty = FaultySource::new(src, FaultPlan::uniform(rate), seed);
    let mut session = Session::open(c.alpha.clone(), faulty);
    session.set_backoff_seed(seed ^ 0xB0FF);
    session.set_retry(RetryPolicy::default());
    session.set_relax_target(Some(500));

    let mut rng = DetRng::new(seed ^ 0x57E9);
    let (mut complete, mut degraded) = (0usize, 0usize);
    for step in 0..100 {
        // Periodic knowledge TTL, so the source keeps being contacted.
        if step % 20 == 19 {
            session.reinitialize();
        }
        let q = if rng.bool(0.25) {
            catalog_query_camera_pictures(&mut c.alpha)
        } else {
            catalog_query_price_below(&mut c.alpha, rng.range_i64(50, 600))
        };
        match session.answer_resilient(&q) {
            LocalAnswer::Complete(ans) => {
                complete += 1;
                println!(
                    "step {step:3}: complete ({} nodes)",
                    ans.map_or(0, |t| t.len())
                );
            }
            LocalAnswer::Degraded { cause, partial } => {
                degraded += 1;
                let why = match cause {
                    DegradeCause::SourceUnavailable(e) => format!("source unavailable: {e}"),
                    DegradeCause::Quarantined(e) => format!("quarantined: {e}"),
                    DegradeCause::Durability(e) => format!("durability fault: {e}"),
                };
                println!(
                    "step {step:3}: DEGRADED ({why}); local envelope possible-nonempty={}",
                    partial.possible_nonempty()
                );
            }
            LocalAnswer::Partial(_) => unreachable!("resilient answers never stay partial"),
        }
        session
            .knowledge()
            .well_formed()
            .expect("knowledge stays well-formed through every recovery");
    }

    let f = session.source().faults;
    println!(
        "\n100 queries -> {complete} complete, {degraded} degraded, {} quarantines",
        session.quarantines
    );
    println!(
        "injected: {} timeouts, {} transients, {} truncations, {} poisoned answers, {} updates",
        f.timeouts, f.transients, f.truncated, f.poisoned, f.updates
    );
    println!(
        "source served {} queries, shipped {} nodes; every answer exact or explicitly degraded",
        session.source().queries_served(),
        session.source().nodes_shipped()
    );
}
