//! The Theorem 3.6 reduction in action: a 3-CNF formula becomes a tree
//! type plus a sequence of ps-query-answer pairs, and satisfiability
//! becomes a possible-prefix question. The accumulated knowledge is kept
//! conjunctively (Theorem 3.8), so it stays linear in the formula while
//! the question itself is NP-hard.
//!
//! Run with `cargo run --example sat_hardness`.

use iixml_extensions::sat::{encode, Cnf};

fn main() {
    let formulas = [
        (
            "(x1 v x2 v x3) & (~x1 v x2 v ~x3) & (~x2 v x3 v x3)",
            Cnf {
                num_vars: 3,
                clauses: vec![[1, 2, 3], [-1, 2, -3], [-2, 3, 3]],
            },
        ),
        (
            "(x1) & (~x1)  [padded to 3 literals]",
            Cnf {
                num_vars: 1,
                clauses: vec![[1, 1, 1], [-1, -1, -1]],
            },
        ),
        (
            "xor chain: (x1 v x2) & (~x1 v ~x2)",
            Cnf {
                num_vars: 2,
                clauses: vec![[1, 2, 2], [-1, -2, -2]],
            },
        ),
    ];

    for (text, cnf) in formulas {
        let enc = encode(&cnf);
        let possible = enc.possible_prefix_val1();
        let brute = cnf.brute_force_sat();
        println!("formula: {text}");
        println!(
            "  encoding: {} query-answer pairs, conjunctive knowledge size {}",
            enc.num_queries,
            enc.knowledge_size()
        );
        println!("  `root—val(=1)` possible prefix? {possible}   (brute-force SAT: {brute})");
        assert_eq!(possible, brute);
        println!();
    }
    println!("The possible-prefix question decided 3-SAT in every case —");
    println!("exactly the NP-hardness mechanism of Theorem 3.6.");
}
