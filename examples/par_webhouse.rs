//! The webhouse fan-out of Section 1, run concurrently: one catalog
//! query fanned out over 16 latency-simulating sources, sequentially
//! (worker width 1) and in parallel, printing the wall-time difference
//! and the `par.*` metrics snapshot.
//!
//! The speedup here comes from overlapping the simulated network
//! latency, not from CPU cores — it reproduces on a single-core host.
//!
//! Run with: `cargo run --release --example par_webhouse`

use iixml_gen::{catalog, catalog_query_price_below};
use iixml_webhouse::{LatentSource, Source, Webhouse};
use std::time::{Duration, Instant};

const SOURCES: usize = 16;
const LATENCY: Duration = Duration::from_millis(5);

fn build() -> (Webhouse<LatentSource<Source>>, iixml_query::PsQuery) {
    let mut cat = catalog(8, 42);
    let q = catalog_query_price_below(&mut cat.alpha, 250);
    let mut wh = Webhouse::new();
    for i in 0..SOURCES {
        wh.register(
            format!("src{i:02}"),
            cat.alpha.clone(),
            LatentSource::new(Source::new(cat.doc.clone(), Some(cat.ty.clone())), LATENCY),
        );
    }
    (wh, q)
}

fn timed_fanout(width: usize) -> (Duration, usize) {
    iixml_par::set_threads(Some(width));
    let (mut wh, q) = build();
    let t0 = Instant::now();
    let outcomes = wh.fan_out(&q);
    let elapsed = t0.elapsed();
    iixml_par::set_threads(None);
    assert!(outcomes.iter().all(|(_, a)| a.is_complete()));
    (elapsed, outcomes.len())
}

fn main() {
    iixml_obs::set_enabled(true);
    println!(
        "fan-out: {SOURCES} sources, {LATENCY:?} simulated latency per query, \
         host has {} hardware thread(s)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let (seq, n) = timed_fanout(1);
    println!("sequential (width 1): {n} sources answered in {seq:?}");
    for width in [2, 4, 8] {
        let (par, _) = timed_fanout(width);
        println!(
            "parallel  (width {width}): answered in {par:?}  ({:.2}x)",
            seq.as_secs_f64() / par.as_secs_f64()
        );
    }

    let snap = iixml_obs::snapshot();
    println!("\npar.* metrics snapshot:");
    println!("  par.tasks  = {}", snap.counter("par.tasks").unwrap_or(0));
    println!("  par.steals = {}", snap.counter("par.steals").unwrap_or(0));
    if let Some(h) = snap.histogram("par.threads") {
        println!(
            "  par.threads: {} invocations, widths {}..{}",
            h.count, h.min, h.max
        );
    }
}
