//! Observability demo: turn on `iixml-obs`, run the Example 3.2 blowup,
//! and print the resulting metric snapshot.
//!
//! ```text
//! cargo run --example obs_demo
//! ```
//!
//! The same snapshot is available from any binary via `IIXML_OBS=1` (or
//! the `iixml --stats` flag); this example shows the programmatic API:
//! enable, run the workload, read named metrics, render JSON.

use iixml_core::Refiner;
use iixml_query::Answer;
use iixml_tree::Alphabet;

fn main() {
    iixml_obs::set_enabled(true);

    // The adversarial family of Example 3.2: each empty-answer step
    // squares the number of disjuncts, and the obs layer watches it
    // happen (core.refine.join_fanout, core.refine.step_size).
    let mut alpha = Alphabet::from_names(["root", "a", "b"]);
    let queries = iixml_gen::blowup_queries(&mut alpha, 5);
    let mut refiner = Refiner::new(&alpha);
    for (i, q) in queries.iter().enumerate() {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
        println!(
            "step {}: representation size {}",
            i + 1,
            refiner.current().size()
        );
    }

    let snap = iixml_obs::snapshot();
    println!();
    println!(
        "refine steps observed: {}",
        snap.counter("core.refine.steps").unwrap_or(0)
    );
    if let Some(h) = snap.histogram("core.refine.join_fanout") {
        println!(
            "join fan-out: count {}, max {} (the blowup in one number)",
            h.count, h.max
        );
    }
    println!();
    println!("{}", snap.to_json_value().render_pretty());
}
