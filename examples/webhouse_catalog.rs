//! The full Webhouse scenario of the paper on a generated catalog:
//! successive queries enrich the incomplete tree; new queries are
//! answered locally when possible, and otherwise completed by the
//! mediator with non-redundant local queries (Example 3.4 at scale).
//!
//! Run with `cargo run --example webhouse_catalog`.

use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_oracle::log2_sized_worlds;
use iixml_webhouse::{LocalAnswer, Session, Source};

/// An uncertainty meter: the log2 of the number of possible-world
/// derivations with at most 200 nodes and integer values in 0..=10000
/// still compatible with the knowledge. More knowledge, fewer bits.
fn uncertainty_bits(session: &Session) -> f64 {
    log2_sized_worlds(session.knowledge(), 0, 10_000, 200)
}

fn main() {
    let mut c = catalog(25, 2024);
    println!(
        "source: {} products, {} nodes, type:\n{}",
        c.doc.children(c.doc.root()).len(),
        c.doc.len(),
        c.ty.display(&c.alpha)
    );

    let mut session = Session::open(
        c.alpha.clone(),
        Source::new(c.doc.clone(), Some(c.ty.clone())),
    );

    // Phase 1: the webhouse crawls with two price sweeps.
    let q_cheap = catalog_query_price_below(&mut c.alpha, 150);
    let q_mid = catalog_query_price_below(&mut c.alpha, 300);
    println!(
        "initial uncertainty: ~2^{:.0} bounded possible worlds",
        uncertainty_bits(&session)
    );
    for (name, q) in [("price<150", &q_cheap), ("price<300", &q_mid)] {
        let a = session.fetch(q).expect("consistent source");
        println!(
            "fetched {name}: {} nodes; knowledge size now {}; uncertainty ~2^{:.0}",
            a.len(),
            session.knowledge().size(),
            uncertainty_bits(&session)
        );
    }

    // Phase 2: user queries answered as best possible.
    let q_cheaper = catalog_query_price_below(&mut c.alpha, 100);
    match session.answer_locally(&q_cheaper) {
        LocalAnswer::Complete(ans) => println!(
            "price<100 answered LOCALLY with {} nodes (subsumed by the price<150 view)",
            ans.map_or(0, |t| t.len())
        ),
        LocalAnswer::Partial(_) => println!("price<100 only partially answerable"),
        LocalAnswer::Degraded { .. } => unreachable!("answer_locally never degrades"),
    }

    let q_cam = catalog_query_camera_pictures(&mut c.alpha);
    match session.answer_locally(&q_cam) {
        LocalAnswer::Complete(_) => println!("camera query answered locally"),
        LocalAnswer::Partial(p) => {
            println!(
                "camera query NOT fully answerable: possible-nonempty={}, certain-nonempty={}",
                p.possible_nonempty(),
                p.certain_nonempty()
            );
            // The sure modality: the part of the answer that holds in
            // every possible world.
            match p.sure_answer() {
                Some(sure) => println!(
                    "  sure part: {} nodes hold in every possible answer",
                    sure.len()
                ),
                None => println!("  no sure part (the empty answer is possible)"),
            }
        }
        LocalAnswer::Degraded { .. } => unreachable!("answer_locally never degrades"),
    }

    // Phase 3: mediation — fetch exactly the missing pieces.
    let before = session.source().nodes_shipped;
    let ans = session
        .answer_with_mediation(&q_cam)
        .expect("mediation succeeds");
    println!(
        "mediated camera answer: {} nodes; mediation shipped {} nodes ({} local queries)",
        ans.as_ref().map_or(0, |t| t.len()),
        session.source().nodes_shipped - before,
        session.mediator_queries,
    );

    // Phase 4: the same query is now free.
    let served = session.source().queries_served;
    assert!(session.answer_locally(&q_cam).is_complete());
    assert_eq!(session.source().queries_served, served);
    println!(
        "camera query now answered locally; stats: {} local answers, {} source queries total",
        session.answered_locally,
        session.source().queries_served
    );
}
