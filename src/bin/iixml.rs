//! `iixml` — a small command-line explorer for the library.
//!
//! ```text
//! iixml eval <doc.xml> <query>        evaluate a ps-query on a document
//! iixml demo                          generate a demo catalog to stdout
//! iixml session <doc.xml>             interactive incomplete-information session
//! iixml walkthrough                   run the paper's pipeline end to end
//! iixml serve                         multi-tenant session server (see iixml-serve)
//! iixml loadgen --port <p>            drive a running server, print a load report
//! iixml contain <q1> <q2>             decide query containment q1 ⊑ q2
//! ```
//!
//! The global `--stats` flag enables the observability layer
//! (`iixml-obs`) for the run and prints its metric snapshot as JSON when
//! the command finishes; setting `IIXML_OBS=1` enables collection
//! without the final dump.
//!
//! The global `--journal <dir>` flag makes `session` durable: every
//! session event is appended to a checksummed write-ahead journal in
//! `dir`, and reopening the same directory recovers the session by
//! snapshot load plus tail replay. For `walkthrough` it appends a
//! durability stage; `--crash-at <n>` additionally kills the journaled
//! session after `n` fetches and recovers it mid-run, and
//! `--crash-in-batch` runs the same crash under a batched flush policy,
//! tearing the WAL mid-batch and resuming from the last `sync()`
//! barrier.
//!
//! Documents use the XML-ish syntax of `iixml_tree::xmlio` (elements with
//! `nid`/`val` attributes — see `iixml demo`); queries use the text
//! syntax of `iixml_query::parse`, e.g.
//! `catalog/product{name, price[< 200], cat[= 1]/subcat}`.
//!
//! Session commands:
//!
//! ```text
//! fetch <query>     ask the source, refine local knowledge
//! ask <query>       answer from local knowledge only
//! mediate <query>   answer exactly, fetching only missing pieces
//! show              print the incomplete tree as XML
//! td                print the known data tree
//! stats             session statistics
//! quit
//! ```

use iixml_core::io::write_incomplete_xml;
use iixml_query::parse::parse_ps_query;
use iixml_tree::xmlio::{parse_tree, write_tree};
use iixml_tree::{Alphabet, DataTree};
use iixml_webhouse::{LocalAnswer, Session, Source};
use std::io::{BufRead, Write};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let stats = {
        let before = args.len();
        args.retain(|a| a != "--stats");
        before != args.len()
    };
    if stats {
        iixml_obs::set_enabled(true);
    }
    let journal = match args.iter().position(|a| a == "--journal") {
        Some(i) => {
            if i + 1 >= args.len() {
                eprintln!("error: --journal needs a directory");
                std::process::exit(2);
            }
            let dir = args.remove(i + 1);
            args.remove(i);
            Some(dir)
        }
        None => None,
    };
    let result = match args.get(1).map(String::as_str) {
        Some("eval") if args.len() == 4 => cmd_eval(&args[2], &args[3]),
        Some("demo") => cmd_demo(),
        Some("session") if args.len() == 3 => cmd_session(&args[2], journal.as_deref()),
        Some("walkthrough") => cmd_walkthrough(&args[2..], journal.as_deref()),
        Some("serve") => cmd_serve(journal.as_deref(), stats),
        Some("loadgen") => cmd_loadgen(&args[2..]),
        Some("contain") if args.len() == 4 => cmd_contain(&args[2], &args[3]),
        _ => {
            eprintln!(
                "usage:\n  iixml [--stats] eval <doc.xml> <query>\n  iixml [--stats] demo\n  iixml [--stats] [--journal <dir>] session <doc.xml>\n  iixml [--stats] [--journal <dir>] walkthrough [--chaos] [--chaos-rate <0..1>] [--chaos-seed <n>] [--crash-at <n>] [--crash-in-batch] [--disk-fault-at <n>]\n  iixml [--stats] [--journal <dir>] serve\n  iixml loadgen --port <p> [--tenants <n>] [--sessions <n>] [--requests <n>] [--products <n>] [--seed <n>] [--concurrency <n>] [--close] [--chaos <conns>] [--chaos-seed <n>]\n  iixml contain <query1> <query2>"
            );
            std::process::exit(2);
        }
    };
    if stats {
        println!("{}", iixml_obs::snapshot().to_json_value().render_pretty());
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Runs the paper's pipeline end to end on generated data, so that with
/// `--stats` every subsystem's metrics appear in one snapshot: Refine
/// (Theorem 3.4), the Example 3.2 blowup, bounded world enumeration,
/// and exact answering through the mediator (Theorem 3.19).
///
/// `--chaos` appends a fault-injection stage: the mediated session is
/// re-run against a [`FaultySource`] (rate `--chaos-rate`, default 0.15,
/// per fault kind; seed `--chaos-seed`, default 0xA5EED) and the
/// per-query outcomes — complete, degraded, quarantined — are printed
/// along with the injected fault counts.
///
/// `--journal <dir>` appends a durability stage: a fresh session runs a
/// fixed query sequence with every event journaled to `dir`.
/// `--crash-at <n>` kills that session after `n` fetches (leaving a
/// torn partial frame at the tail, as an interrupted write would),
/// recovers from the journal, finishes the remaining fetches, and
/// checks the final knowledge is byte-identical to an uncrashed run.
fn cmd_walkthrough(opts: &[String], journal: Option<&str>) -> Result<(), String> {
    use iixml_core::Refiner;
    use iixml_oracle::{enumerate_rep, Bounds};

    let mut chaos = false;
    let mut chaos_rate = 0.15f64;
    let mut chaos_seed = 0xA5EEDu64;
    let mut crash_at: Option<usize> = None;
    let mut crash_in_batch = false;
    let mut disk_fault_at: Option<u64> = None;
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--chaos" => chaos = true,
            "--chaos-rate" => {
                chaos = true;
                chaos_rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--chaos-rate needs a value in [0, 1]")?;
            }
            "--chaos-seed" => {
                chaos = true;
                chaos_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--chaos-seed needs an integer")?;
            }
            "--crash-at" => {
                crash_at = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--crash-at needs a step number")?,
                );
            }
            "--crash-in-batch" => crash_in_batch = true,
            "--disk-fault-at" => {
                disk_fault_at = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n > 0)
                        .ok_or("--disk-fault-at needs an operation number >= 1")?,
                );
            }
            other => return Err(format!("unknown walkthrough option: {other}")),
        }
    }
    if (crash_at.is_some() || crash_in_batch || disk_fault_at.is_some()) && journal.is_none() {
        return Err("--crash-at / --crash-in-batch / --disk-fault-at need --journal <dir>".into());
    }
    if [crash_at.is_some(), crash_in_batch, disk_fault_at.is_some()]
        .iter()
        .filter(|&&b| b)
        .count()
        > 1
    {
        return Err(
            "--crash-at, --crash-in-batch, and --disk-fault-at are mutually exclusive".into(),
        );
    }

    // 1. Answering with views: refine knowledge from a price view.
    let mut cat = iixml_gen::catalog(4, 42);
    let q_view = iixml_gen::catalog_query_price_below(&mut cat.alpha, 250);
    let ans = q_view.eval(&cat.doc);
    let mut refiner = Refiner::new(&cat.alpha);
    refiner
        .refine(&cat.alpha, &q_view, &ans)
        .map_err(|e| e.to_string())?;
    println!(
        "refined catalog knowledge from the price view: size {}",
        refiner.current().size()
    );

    // 2. The Example 3.2 adversarial family, four empty-answer steps.
    let mut alpha = Alphabet::from_names(["root", "a", "b"]);
    let queries = iixml_gen::blowup_queries(&mut alpha, 4);
    let mut blow = Refiner::new(&alpha);
    for q in &queries {
        blow.refine(&alpha, q, &iixml_query::Answer::empty())
            .map_err(|e| e.to_string())?;
    }
    println!(
        "Example 3.2 after 4 empty-answer steps: size {}",
        blow.current().size()
    );

    // 3. Bounded enumeration of the worlds the blowup tree represents.
    let en = enumerate_rep(
        blow.current(),
        Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 64,
            values_per_interval: 1,
        },
    );
    println!(
        "bounded world enumeration: {} worlds (truncated: {})",
        en.worlds.len(),
        en.truncated
    );

    // 4. A mediated session: answer a follow-up exactly, fetching only
    //    the missing pieces.
    let q_cam = iixml_gen::catalog_query_camera_pictures(&mut cat.alpha);
    let mut session = Session::open(
        cat.alpha.clone(),
        Source::new(cat.doc.clone(), Some(cat.ty.clone())),
    );
    session.fetch(&q_view).map_err(|e| e.to_string())?;
    let mediated = session
        .answer_with_mediation(&q_cam)
        .map_err(|e| e.to_string())?;
    println!(
        "mediated camera query: {} answer nodes; {} source queries, {} nodes shipped",
        mediated.map_or(0, |t| t.len()),
        session.source().queries_served,
        session.source().nodes_shipped
    );

    // 5. (--chaos) The same loop against an unreliable source: every
    //    query must still complete, degrade, or quarantine cleanly.
    if chaos {
        use iixml_webhouse::{FaultPlan, FaultySource, SourceEndpoint};
        let src = Source::new(cat.doc.clone(), Some(cat.ty.clone()));
        let faulty = FaultySource::new(src, FaultPlan::uniform(chaos_rate), chaos_seed);
        let mut chaotic = Session::open(cat.alpha.clone(), faulty);
        chaotic.set_backoff_seed(chaos_seed);
        let mut queries = vec![q_cam.clone()];
        for bound in [150, 200, 250, 300, 400, 500] {
            queries.push(iixml_gen::catalog_query_price_below(&mut cat.alpha, bound));
        }
        let (mut complete, mut degraded) = (0usize, 0usize);
        for q in queries.iter().cycle().take(60) {
            match chaotic.answer_resilient(q) {
                LocalAnswer::Complete(_) => complete += 1,
                LocalAnswer::Degraded { .. } => degraded += 1,
                // answer_resilient upgrades partial answers; count a
                // stray one as degraded rather than aborting the demo.
                LocalAnswer::Partial(_) => degraded += 1,
            }
        }
        let f = chaotic.source().faults;
        println!(
            "chaos stage (rate {chaos_rate}, seed {chaos_seed}): \
             60 queries -> {complete} complete, {degraded} degraded, {} quarantines; \
             injected {} faults ({} timeouts, {} transients, {} truncations, \
             {} poisoned, {} updates); {} source queries answered",
            chaotic.quarantines,
            f.total(),
            f.timeouts,
            f.transients,
            f.truncated,
            f.poisoned,
            f.updates,
            chaotic.source().queries_served(),
        );
    }

    // 6. (--journal) Durability: journal a fresh session's events,
    //    optionally crash partway through, recover, and finish.
    if let Some(dir) = journal {
        if let Some(n) = disk_fault_at {
            walkthrough_disk_fault(dir, n, &mut cat)?;
        } else if crash_in_batch {
            walkthrough_torn_batch(dir, &mut cat)?;
        } else {
            walkthrough_durability(dir, crash_at, &mut cat)?;
        }
    }
    Ok(())
}

/// The walkthrough's durability stage: runs a fixed sequence of fetches
/// with journaling on, optionally simulating a crash (process death plus
/// a torn partial frame at the WAL tail) after `crash_at` fetches, then
/// recovering and finishing. The final knowledge must serialize
/// byte-identically to an uncrashed in-memory run.
fn walkthrough_durability(
    dir: &str,
    crash_at: Option<usize>,
    cat: &mut iixml_gen::Catalog,
) -> Result<(), String> {
    use iixml_store::wal::Wal;
    use iixml_webhouse::RecoveryStatus;

    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if !Wal::segments(&dir).map_err(|e| e.to_string())?.is_empty() {
        return Err(format!(
            "{} already holds a journal; pass an empty directory \
             (or recover it with `iixml --journal {} session <doc.xml>`)",
            dir.display(),
            dir.display()
        ));
    }
    // Generate every query up front so the alphabet is complete before
    // the session freezes it (journaled sessions reject events whose
    // labels fall outside the alphabet recorded at open).
    let queries: Vec<_> = [150i64, 200, 250, 300, 350, 400, 450, 500]
        .iter()
        .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
        .collect();
    let alpha = cat.alpha.clone();
    let source = || Source::new(cat.doc.clone(), Some(cat.ty.clone()));

    // Reference: the same fetches, no journal, no crash.
    let mut reference = Session::open(alpha.clone(), source());
    for q in &queries {
        reference.fetch(q).map_err(|e| e.to_string())?;
    }
    let want = write_incomplete_xml(reference.knowledge(), &alpha);

    let mut session =
        Session::open_journaled(alpha.clone(), source(), &dir).map_err(|e| e.to_string())?;
    let crash = crash_at.unwrap_or(queries.len()).min(queries.len());
    for q in &queries[..crash] {
        session.fetch(q).map_err(|e| e.to_string())?;
    }
    let mut resume = crash;
    if crash < queries.len() {
        // Crash: the process dies mid-append. Dropping the session
        // models the death (every acknowledged record is already
        // synced); the stray half-frame models the interrupted write.
        drop(session);
        let (_, last_seg) = Wal::segments(&dir)
            .map_err(|e| e.to_string())?
            .into_iter()
            .next_back()
            .ok_or("journal vanished")?;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&last_seg)
            .map_err(|e| format!("{}: {e}", last_seg.display()))?;
        let mut half_frame = iixml_store::format::FRAME_MAGIC.to_vec();
        half_frame.extend_from_slice(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad]);
        f.write_all(&half_frame)
            .map_err(|e| format!("{}: {e}", last_seg.display()))?;
        let (rec, report) = Session::recover(&dir, source()).map_err(|e| e.to_string())?;
        session = rec;
        println!(
            "durability stage: crashed after {crash} of {} fetches; \
             recovery replayed {} records ({} refines), torn tail: {}, status: {}",
            queries.len(),
            report.replayed,
            report.refines,
            report.torn_tail,
            match report.status {
                RecoveryStatus::Clean => "clean".to_string(),
                RecoveryStatus::Recovered { dropped_records } =>
                    format!("recovered ({dropped_records} records dropped)"),
            },
        );
        // Resume with whatever the journal did not preserve: if a
        // record was dropped, the corresponding fetch is re-asked.
        resume = report.refines.min(crash);
    }
    for q in &queries[resume..] {
        session.fetch(q).map_err(|e| e.to_string())?;
    }
    let got = write_incomplete_xml(session.knowledge(), &alpha);
    println!(
        "durability stage: {} fetches journaled to {}; knowledge matches uncrashed run: {}",
        queries.len(),
        dir.display(),
        got == want
    );
    if got != want {
        return Err("recovered knowledge diverged from the uncrashed run".into());
    }
    Ok(())
}

/// The walkthrough's disk-fault stage (`--disk-fault-at <n>`): the same
/// journaled fetch sequence, but the journal writes through a seeded
/// fault injector that fails the Nth I/O operation. The fail-safe
/// contract on display: the fault surfaces as an *explicit* error (the
/// poisoned writer never retries-and-pretends), the session degrades
/// visibly, and recovery with honest I/O replays exactly the records
/// that were acknowledged as durable — re-asking the rest reconverges
/// to the uncrashed run, byte for byte. No silent loss at any N.
fn walkthrough_disk_fault(dir: &str, n: u64, cat: &mut iixml_gen::Catalog) -> Result<(), String> {
    use iixml_store::wal::Wal;
    use iixml_store::StoreIo;
    use iixml_webhouse::RecoveryStatus;

    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if !Wal::segments(&dir).map_err(|e| e.to_string())?.is_empty() {
        return Err(format!(
            "{} already holds a journal; pass an empty directory",
            dir.display()
        ));
    }
    let queries: Vec<_> = [150i64, 200, 250, 300, 350, 400, 450, 500]
        .iter()
        .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
        .collect();
    let alpha = cat.alpha.clone();
    let source = || Source::new(cat.doc.clone(), Some(cat.ty.clone()));

    // Reference: the same fetches, no journal, no faults.
    let mut reference = Session::open(alpha.clone(), source());
    for q in &queries {
        reference.fetch(q).map_err(|e| e.to_string())?;
    }
    let want = write_incomplete_xml(reference.knowledge(), &alpha);

    // The faulty run: the Nth store I/O operation fails.
    let io = StoreIo::fail_at(0xD15C, n);
    let mut session = match Session::open_journaled_with_io(alpha.clone(), source(), &dir, io) {
        Ok(s) => s,
        Err(e) => {
            // The fault hit before even the open record was durable:
            // nothing was acknowledged, nothing can be lost.
            println!(
                "disk-fault stage: operation {n} failed during open — \
                 explicit error, no journal, nothing acknowledged: {e}"
            );
            return Ok(());
        }
    };
    let mut fetched = 0usize;
    let mut fault: Option<String> = None;
    for q in &queries {
        match session.fetch(q) {
            Ok(_) => fetched += 1,
            Err(e) => {
                fault = Some(e.to_string());
                break;
            }
        }
    }
    match &fault {
        Some(e) => println!(
            "disk-fault stage: operation {n} failed after {fetched} of {} fetches — \
             journaling stopped with an explicit fault: {e}",
            queries.len()
        ),
        None => println!(
            "disk-fault stage: operation {n} fell beyond the run \
             ({} fetches journaled cleanly)",
            queries.len()
        ),
    }

    // Crash, then recover with honest I/O. The journal replays exactly
    // the acknowledged records; the session re-asks the rest.
    drop(session);
    let _ = iixml_store::take_drop_fault();
    let (mut session, report) = Session::recover(&dir, source()).map_err(|e| e.to_string())?;
    println!(
        "disk-fault stage: recovery replayed {} records ({} refines), status: {}",
        report.replayed,
        report.refines,
        match report.status {
            RecoveryStatus::Clean => "clean".to_string(),
            RecoveryStatus::Recovered { dropped_records } =>
                format!("recovered ({dropped_records} records dropped)"),
        },
    );
    if fault.is_none() && report.refines < queries.len() {
        return Err(format!(
            "silent loss: {} fetches acknowledged but only {} recovered",
            queries.len(),
            report.refines
        ));
    }
    for q in &queries[report.refines.min(queries.len())..] {
        session.fetch(q).map_err(|e| e.to_string())?;
    }
    let got = write_incomplete_xml(session.knowledge(), &alpha);
    println!(
        "disk-fault stage: knowledge matches the un-faulted run: {}",
        got == want
    );
    if got != want {
        return Err("recovered knowledge diverged from the un-faulted run".into());
    }
    Ok(())
}

/// The walkthrough's torn-batch stage (`--crash-in-batch`): the same
/// fetch sequence under a *batched* flush policy with an explicit
/// `sync()` barrier partway through, then a crash that tears the WAL
/// mid-batch. The group-commit contract says exactly this: fetches
/// acknowledged before the barrier survive; buffered ones after it may
/// be lost, and recovery reports how far the log got so the session
/// re-asks the rest. The final knowledge must still be byte-identical
/// to an uncrashed run.
fn walkthrough_torn_batch(dir: &str, cat: &mut iixml_gen::Catalog) -> Result<(), String> {
    use iixml_store::wal::Wal;
    use iixml_store::FlushPolicy;
    use iixml_webhouse::RecoveryStatus;

    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    if !Wal::segments(&dir).map_err(|e| e.to_string())?.is_empty() {
        return Err(format!(
            "{} already holds a journal; pass an empty directory",
            dir.display()
        ));
    }
    let queries: Vec<_> = [150i64, 200, 250, 300, 350, 400, 450, 500]
        .iter()
        .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
        .collect();
    let alpha = cat.alpha.clone();
    let source = || Source::new(cat.doc.clone(), Some(cat.ty.clone()));

    // Reference: the same fetches, no journal, no crash.
    let mut reference = Session::open(alpha.clone(), source());
    for q in &queries {
        reference.fetch(q).map_err(|e| e.to_string())?;
    }
    let want = write_incomplete_xml(reference.knowledge(), &alpha);

    let mut session =
        Session::open_journaled(alpha.clone(), source(), &dir).map_err(|e| e.to_string())?;
    session
        .set_journal_flush_policy(FlushPolicy::batched())
        .map_err(|e| e.to_string())?;
    let barrier = 4usize;
    for q in &queries[..barrier] {
        session.fetch(q).map_err(|e| e.to_string())?;
    }
    // The read-your-writes barrier: everything up to here is durable.
    session.sync_journal().map_err(|e| e.to_string())?;
    let (_, last_seg) = Wal::segments(&dir)
        .map_err(|e| e.to_string())?
        .into_iter()
        .next_back()
        .ok_or("journal vanished")?;
    let synced_len = std::fs::metadata(&last_seg)
        .map_err(|e| format!("{}: {e}", last_seg.display()))?
        .len();
    for q in &queries[barrier..] {
        session.fetch(q).map_err(|e| e.to_string())?;
    }
    // Crash: the drop flushes the buffered tail batch in one write;
    // truncating partway back into it models the power cut landing
    // mid-write — a prefix of the batch reached disk, the rest didn't.
    drop(session);
    let full_len = std::fs::metadata(&last_seg)
        .map_err(|e| format!("{}: {e}", last_seg.display()))?
        .len();
    let tear = synced_len + (full_len - synced_len) / 2;
    std::fs::OpenOptions::new()
        .write(true)
        .open(&last_seg)
        .and_then(|f| f.set_len(tear))
        .map_err(|e| format!("{}: {e}", last_seg.display()))?;

    let (mut session, report) = Session::recover(&dir, source()).map_err(|e| e.to_string())?;
    println!(
        "torn-batch stage: barrier after {barrier} of {} fetches, WAL torn mid-batch \
         ({} of {} post-barrier bytes survived); recovery replayed {} records \
         ({} refines), torn tail: {}, status: {}",
        queries.len(),
        tear - synced_len,
        full_len - synced_len,
        report.replayed,
        report.refines,
        report.torn_tail,
        match report.status {
            RecoveryStatus::Clean => "clean".to_string(),
            RecoveryStatus::Recovered { dropped_records } =>
                format!("recovered ({dropped_records} records dropped)"),
        },
    );
    if report.refines < barrier {
        return Err(format!(
            "recovery lost a fetch acknowledged before the sync() barrier \
             ({} refines < {barrier})",
            report.refines
        ));
    }
    let resume = report.refines.min(queries.len());
    for q in &queries[resume..] {
        session.fetch(q).map_err(|e| e.to_string())?;
    }
    let got = write_incomplete_xml(session.knowledge(), &alpha);
    println!(
        "torn-batch stage: resumed at fetch {resume}; knowledge matches uncrashed run: {}",
        got == want
    );
    if got != want {
        return Err("recovered knowledge diverged from the uncrashed run".into());
    }
    Ok(())
}

/// `iixml serve`: starts the multi-tenant session server (configured
/// from the `IIXML_SERVE_*` environment, see README) and serves until
/// stdin reaches EOF, then drains: every journaled session is synced to
/// its durability barrier before the process exits. `--journal <dir>`
/// sets the journal root and recovers any sessions already journaled
/// there; `--stats` prints the server's stats JSON (per-tenant
/// admission state, per-session durability markers) before draining.
fn cmd_serve(journal: Option<&str>, stats: bool) -> Result<(), String> {
    let mut cfg = iixml_serve::ServeConfig::from_env();
    if let Some(dir) = journal {
        cfg.journal_root = Some(std::path::PathBuf::from(dir));
    }
    let server = iixml_serve::Server::start(cfg).map_err(|e| e.to_string())?;
    let recovered = server.session_names();
    if !recovered.is_empty() {
        println!(
            "recovered {} journaled session(s): {}",
            recovered.len(),
            recovered.join(" ")
        );
    }
    println!("listening on 127.0.0.1:{}", server.port());
    let _ = std::io::stdout().flush();
    // Serve until stdin closes: `iixml serve </dev/null` drains
    // immediately after startup (the CI restart walkthrough uses this),
    // while piping a long-lived stdin keeps the server up until EOF or
    // a kill.
    let mut sink = String::new();
    let stdin = std::io::stdin();
    loop {
        sink.clear();
        match stdin.lock().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    if stats {
        println!("{}", server.stats_json());
    }
    let drain = server.shutdown();
    println!(
        "drained: {} session(s) synced, {} fault(s)",
        drain.synced,
        drain.faults.len()
    );
    for (name, fault) in &drain.faults {
        println!("drain fault {name}: {fault}");
    }
    if drain.faults.is_empty() {
        Ok(())
    } else {
        Err("drain left sessions unsynced".into())
    }
}

/// `iixml loadgen`: drives a running `iixml serve` with the seeded
/// honest workload of `iixml_bench::loadgen` and prints the load report
/// as JSON (p50/p99 latency, requests/sec, sessions/sec, sheds).
/// `--chaos <conns>` additionally runs the misbehaving-client storm and
/// reports whether the server survived it.
fn cmd_loadgen(opts: &[String]) -> Result<(), String> {
    use iixml_bench::loadgen::{run_chaos, run_load, LoadConfig};
    let mut cfg = LoadConfig {
        port: 0,
        ..LoadConfig::default()
    };
    let mut chaos_conns = 0usize;
    let mut chaos_seed = 0x57ABu64;
    let mut it = opts.iter();
    fn num<T: std::str::FromStr>(
        it: &mut std::slice::Iter<String>,
        flag: &str,
    ) -> Result<T, String> {
        it.next()
            .and_then(|v| v.parse().ok())
            .ok_or(format!("{flag} needs a number"))
    }
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--port" => cfg.port = num(&mut it, "--port")?,
            "--tenants" => cfg.tenants = num(&mut it, "--tenants")?,
            "--sessions" => cfg.sessions = num(&mut it, "--sessions")?,
            "--requests" => cfg.requests_per_session = num(&mut it, "--requests")?,
            "--products" => cfg.products = num(&mut it, "--products")?,
            "--seed" => cfg.seed = num(&mut it, "--seed")?,
            "--concurrency" => cfg.concurrency = num(&mut it, "--concurrency")?,
            "--close" => cfg.close_at_end = true,
            "--chaos" => chaos_conns = num(&mut it, "--chaos")?,
            "--chaos-seed" => chaos_seed = num(&mut it, "--chaos-seed")?,
            other => return Err(format!("unknown loadgen option: {other}")),
        }
    }
    if cfg.port == 0 {
        return Err("loadgen needs --port <p> (the port `iixml serve` printed)".into());
    }
    let report = run_load(&cfg);
    println!("{}", report.to_json().render_pretty());
    if chaos_conns > 0 {
        let storm = run_chaos(cfg.port, chaos_conns, chaos_seed, 16);
        println!(
            "chaos: {} connections, {} requests issued, server alive: {}",
            storm.connections, storm.requests_issued, storm.server_alive
        );
        if !storm.server_alive {
            return Err("server stopped answering during the chaos storm".into());
        }
    }
    if report.errors > 0 {
        return Err(format!("{} request(s) failed in transport", report.errors));
    }
    Ok(())
}

fn load_doc(path: &str, alpha: &mut Alphabet) -> Result<DataTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_tree(&text, alpha).map_err(|e| e.to_string())
}

/// `iixml contain <q1> <q2>`: decides `q1 ⊑ q2` with the DESIGN §15
/// procedure over a shared alphabet. Exit code 0 when contained (the
/// witness embedding is printed), 3 when not (the refusal reason is
/// printed), 2 on a query parse error.
fn cmd_contain(q1_text: &str, q2_text: &str) -> Result<(), String> {
    let mut alpha = Alphabet::new();
    let parse = |text: &str, which: &str, alpha: &mut Alphabet| match parse_ps_query(text, alpha) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("error: {which} query: {e}");
            std::process::exit(2);
        }
    };
    let q1 = parse(q1_text, "first", &mut alpha);
    let q2 = parse(q2_text, "second", &mut alpha);
    match iixml_contain::contained_in(&q1, &q2) {
        iixml_contain::Verdict::ContainedEmpty => {
            println!("contained (the first query is unsatisfiable: empty on every document)");
        }
        iixml_contain::Verdict::Contained(witness) => {
            println!("contained: every answer to the first query is an answer to the second");
            println!("witness embedding (first-query node -> second-query node):");
            for (m, w) in witness {
                println!(
                    "  {} #{} -> {} #{}",
                    alpha.name(q1.label(m)),
                    m.0,
                    alpha.name(q2.label(w)),
                    w.0
                );
            }
        }
        iixml_contain::Verdict::NotContained(why) => {
            match why {
                iixml_contain::Mismatch::Skeleton => {
                    println!("not contained: the label skeletons differ");
                }
                iixml_contain::Mismatch::Condition { sub, sup } => {
                    println!(
                        "not contained: condition on {} #{} does not imply the one on {} #{}",
                        alpha.name(q1.label(sub)),
                        sub.0,
                        alpha.name(q2.label(sup)),
                        sup.0
                    );
                }
                iixml_contain::Mismatch::Bar { sub, sup } => {
                    println!(
                        "not contained: {} #{} extracts a whole subtree but {} #{} does not",
                        alpha.name(q1.label(sub)),
                        sub.0,
                        alpha.name(q2.label(sup)),
                        sup.0
                    );
                }
            }
            std::process::exit(3);
        }
    }
    Ok(())
}

fn cmd_eval(path: &str, query: &str) -> Result<(), String> {
    let mut alpha = Alphabet::new();
    let doc = load_doc(path, &mut alpha)?;
    let q = parse_ps_query(query, &mut alpha).map_err(|e| e.to_string())?;
    match q.eval(&doc).tree {
        None => println!("(empty answer)"),
        Some(t) => print!("{}", write_tree(&t, &alpha)),
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let c = iixml_gen::catalog(5, 42);
    print!("{}", write_tree(&c.doc, &c.alpha));
    eprintln!(
        "# try: iixml eval demo.xml 'catalog/product{{name, price[< 250], cat[= 1]/subcat}}'"
    );
    Ok(())
}

fn cmd_session(path: &str, journal: Option<&str>) -> Result<(), String> {
    let mut alpha = Alphabet::new();
    let doc = load_doc(path, &mut alpha)?;
    let mut session = match journal {
        None => Session::open(alpha.clone(), Source::new(doc, None)),
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            let existing = iixml_store::wal::Wal::segments(&dir).map_err(|e| e.to_string())?;
            if existing.is_empty() {
                eprintln!("journaling session events to {}", dir.display());
                Session::open_journaled(alpha.clone(), Source::new(doc, None), &dir)
                    .map_err(|e| e.to_string())?
            } else {
                let (session, report) =
                    Session::recover(&dir, Source::new(doc, None)).map_err(|e| e.to_string())?;
                eprintln!(
                    "recovered session from {}: {} records replayed \
                     ({} refines, {} quarantines), from snapshot: {:?}, \
                     torn tail: {}, status: {:?}",
                    dir.display(),
                    report.replayed,
                    report.refines,
                    report.quarantines,
                    report.from_snapshot,
                    report.torn_tail,
                    report.status,
                );
                session
            }
        }
    };
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    eprintln!("session open; commands: fetch/ask/mediate <query>, show, td, stats, quit");
    loop {
        eprint!("> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(());
        }
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => return Ok(()),
            "show" => {
                let _ = write!(out, "{}", write_incomplete_xml(session.knowledge(), &alpha));
            }
            "td" => match session.data_tree() {
                Some(td) => {
                    let _ = write!(out, "{}", write_tree(&td, &alpha));
                }
                None => println!("(no data nodes yet)"),
            },
            "stats" => {
                println!(
                    "knowledge size: {}; answered locally: {}; source queries: {}; nodes shipped: {}",
                    session.knowledge().size(),
                    session.answered_locally,
                    session.source().queries_served,
                    session.source().nodes_shipped
                );
                if let Some(e) = session.journal_fault() {
                    println!("journal fault (journaling stopped): {e}");
                }
            }
            "fetch" | "ask" | "mediate" => {
                let mut a2 = alpha.clone();
                let q = match parse_ps_query(rest, &mut a2) {
                    Ok(q) => q,
                    Err(e) => {
                        println!("bad query: {e}");
                        continue;
                    }
                };
                if a2.len() != alpha.len() {
                    // New labels can never match the document; accept but
                    // extend the session alphabet for consistent display.
                    alpha = a2.clone();
                }
                match cmd {
                    "fetch" => match session.fetch(&q) {
                        Ok(ans) => match ans.tree {
                            Some(t) => {
                                let _ = write!(out, "{}", write_tree(&t, &alpha));
                            }
                            None => println!("(empty answer)"),
                        },
                        Err(e) => println!("refine failed: {e}"),
                    },
                    "ask" => match session.answer_locally(&q) {
                        LocalAnswer::Complete(Some(t)) => {
                            println!("# fully answerable from local knowledge:");
                            let _ = write!(out, "{}", write_tree(&t, &alpha));
                        }
                        LocalAnswer::Complete(None) => {
                            println!("# fully answerable: the answer is certainly empty")
                        }
                        LocalAnswer::Partial(p) => {
                            println!(
                                "# not fully answerable (possible nonempty: {}, certain nonempty: {})",
                                p.possible_nonempty(),
                                p.certain_nonempty()
                            );
                        }
                        // answer_locally never takes the degraded path
                        // (that is answer_resilient's job) — report a
                        // stray one instead of aborting the session.
                        LocalAnswer::Degraded { partial, .. } => {
                            println!(
                                "# degraded answer (possible nonempty: {}, certain nonempty: {})",
                                partial.possible_nonempty(),
                                partial.certain_nonempty()
                            );
                        }
                    },
                    _ => match session.answer_with_mediation(&q) {
                        Ok(Some(t)) => {
                            let _ = write!(out, "{}", write_tree(&t, &alpha));
                        }
                        Ok(None) => println!("(empty answer)"),
                        Err(e) => println!("mediation failed: {e}"),
                    },
                }
            }
            other => println!("unknown command: {other}"),
        }
    }
}
