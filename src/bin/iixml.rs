//! `iixml` — a small command-line explorer for the library.
//!
//! ```text
//! iixml eval <doc.xml> <query>        evaluate a ps-query on a document
//! iixml demo                          generate a demo catalog to stdout
//! iixml session <doc.xml>             interactive incomplete-information session
//! iixml walkthrough                   run the paper's pipeline end to end
//! ```
//!
//! The global `--stats` flag enables the observability layer
//! (`iixml-obs`) for the run and prints its metric snapshot as JSON when
//! the command finishes; setting `IIXML_OBS=1` enables collection
//! without the final dump.
//!
//! Documents use the XML-ish syntax of `iixml_tree::xmlio` (elements with
//! `nid`/`val` attributes — see `iixml demo`); queries use the text
//! syntax of `iixml_query::parse`, e.g.
//! `catalog/product{name, price[< 200], cat[= 1]/subcat}`.
//!
//! Session commands:
//!
//! ```text
//! fetch <query>     ask the source, refine local knowledge
//! ask <query>       answer from local knowledge only
//! mediate <query>   answer exactly, fetching only missing pieces
//! show              print the incomplete tree as XML
//! td                print the known data tree
//! stats             session statistics
//! quit
//! ```

use iixml_core::io::write_incomplete_xml;
use iixml_query::parse::parse_ps_query;
use iixml_tree::xmlio::{parse_tree, write_tree};
use iixml_tree::{Alphabet, DataTree};
use iixml_webhouse::{LocalAnswer, Session, Source};
use std::io::{BufRead, Write};

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    let stats = {
        let before = args.len();
        args.retain(|a| a != "--stats");
        before != args.len()
    };
    if stats {
        iixml_obs::set_enabled(true);
    }
    let result = match args.get(1).map(String::as_str) {
        Some("eval") if args.len() == 4 => cmd_eval(&args[2], &args[3]),
        Some("demo") => cmd_demo(),
        Some("session") if args.len() == 3 => cmd_session(&args[2]),
        Some("walkthrough") => cmd_walkthrough(&args[2..]),
        _ => {
            eprintln!(
                "usage:\n  iixml [--stats] eval <doc.xml> <query>\n  iixml [--stats] demo\n  iixml [--stats] session <doc.xml>\n  iixml [--stats] walkthrough [--chaos] [--chaos-rate <0..1>] [--chaos-seed <n>]"
            );
            std::process::exit(2);
        }
    };
    if stats {
        println!("{}", iixml_obs::snapshot().to_json_value().render_pretty());
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Runs the paper's pipeline end to end on generated data, so that with
/// `--stats` every subsystem's metrics appear in one snapshot: Refine
/// (Theorem 3.4), the Example 3.2 blowup, bounded world enumeration,
/// and exact answering through the mediator (Theorem 3.19).
///
/// `--chaos` appends a fault-injection stage: the mediated session is
/// re-run against a [`FaultySource`] (rate `--chaos-rate`, default 0.15,
/// per fault kind; seed `--chaos-seed`, default 0xA5EED) and the
/// per-query outcomes — complete, degraded, quarantined — are printed
/// along with the injected fault counts.
fn cmd_walkthrough(opts: &[String]) -> Result<(), String> {
    use iixml_core::Refiner;
    use iixml_oracle::{enumerate_rep, Bounds};

    let mut chaos = false;
    let mut chaos_rate = 0.15f64;
    let mut chaos_seed = 0xA5EEDu64;
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--chaos" => chaos = true,
            "--chaos-rate" => {
                chaos = true;
                chaos_rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or("--chaos-rate needs a value in [0, 1]")?;
            }
            "--chaos-seed" => {
                chaos = true;
                chaos_seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--chaos-seed needs an integer")?;
            }
            other => return Err(format!("unknown walkthrough option: {other}")),
        }
    }

    // 1. Answering with views: refine knowledge from a price view.
    let mut cat = iixml_gen::catalog(4, 42);
    let q_view = iixml_gen::catalog_query_price_below(&mut cat.alpha, 250);
    let ans = q_view.eval(&cat.doc);
    let mut refiner = Refiner::new(&cat.alpha);
    refiner
        .refine(&cat.alpha, &q_view, &ans)
        .map_err(|e| e.to_string())?;
    println!(
        "refined catalog knowledge from the price view: size {}",
        refiner.current().size()
    );

    // 2. The Example 3.2 adversarial family, four empty-answer steps.
    let mut alpha = Alphabet::from_names(["root", "a", "b"]);
    let queries = iixml_gen::blowup_queries(&mut alpha, 4);
    let mut blow = Refiner::new(&alpha);
    for q in &queries {
        blow.refine(&alpha, q, &iixml_query::Answer::empty())
            .map_err(|e| e.to_string())?;
    }
    println!(
        "Example 3.2 after 4 empty-answer steps: size {}",
        blow.current().size()
    );

    // 3. Bounded enumeration of the worlds the blowup tree represents.
    let en = enumerate_rep(
        blow.current(),
        Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 64,
            values_per_interval: 1,
        },
    );
    println!(
        "bounded world enumeration: {} worlds (truncated: {})",
        en.worlds.len(),
        en.truncated
    );

    // 4. A mediated session: answer a follow-up exactly, fetching only
    //    the missing pieces.
    let q_cam = iixml_gen::catalog_query_camera_pictures(&mut cat.alpha);
    let mut session = Session::open(
        cat.alpha.clone(),
        Source::new(cat.doc.clone(), Some(cat.ty.clone())),
    );
    session.fetch(&q_view).map_err(|e| e.to_string())?;
    let mediated = session
        .answer_with_mediation(&q_cam)
        .map_err(|e| e.to_string())?;
    println!(
        "mediated camera query: {} answer nodes; {} source queries, {} nodes shipped",
        mediated.map_or(0, |t| t.len()),
        session.source().queries_served,
        session.source().nodes_shipped
    );

    // 5. (--chaos) The same loop against an unreliable source: every
    //    query must still complete, degrade, or quarantine cleanly.
    if chaos {
        use iixml_webhouse::{FaultPlan, FaultySource, SourceEndpoint};
        let src = Source::new(cat.doc.clone(), Some(cat.ty.clone()));
        let faulty = FaultySource::new(src, FaultPlan::uniform(chaos_rate), chaos_seed);
        let mut chaotic = Session::open(cat.alpha.clone(), faulty);
        chaotic.set_backoff_seed(chaos_seed);
        let mut queries = vec![q_cam.clone()];
        for bound in [150, 200, 250, 300, 400, 500] {
            queries.push(iixml_gen::catalog_query_price_below(&mut cat.alpha, bound));
        }
        let (mut complete, mut degraded) = (0usize, 0usize);
        for q in queries.iter().cycle().take(60) {
            match chaotic.answer_resilient(q) {
                LocalAnswer::Complete(_) => complete += 1,
                LocalAnswer::Degraded { .. } => degraded += 1,
                LocalAnswer::Partial(_) => unreachable!("resilient answers never stay partial"),
            }
        }
        let f = chaotic.source().faults;
        println!(
            "chaos stage (rate {chaos_rate}, seed {chaos_seed}): \
             60 queries -> {complete} complete, {degraded} degraded, {} quarantines; \
             injected {} faults ({} timeouts, {} transients, {} truncations, \
             {} poisoned, {} updates); {} source queries answered",
            chaotic.quarantines,
            f.total(),
            f.timeouts,
            f.transients,
            f.truncated,
            f.poisoned,
            f.updates,
            chaotic.source().queries_served(),
        );
    }
    Ok(())
}

fn load_doc(path: &str, alpha: &mut Alphabet) -> Result<DataTree, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_tree(&text, alpha).map_err(|e| e.to_string())
}

fn cmd_eval(path: &str, query: &str) -> Result<(), String> {
    let mut alpha = Alphabet::new();
    let doc = load_doc(path, &mut alpha)?;
    let q = parse_ps_query(query, &mut alpha).map_err(|e| e.to_string())?;
    match q.eval(&doc).tree {
        None => println!("(empty answer)"),
        Some(t) => print!("{}", write_tree(&t, &alpha)),
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let c = iixml_gen::catalog(5, 42);
    print!("{}", write_tree(&c.doc, &c.alpha));
    eprintln!(
        "# try: iixml eval demo.xml 'catalog/product{{name, price[< 250], cat[= 1]/subcat}}'"
    );
    Ok(())
}

fn cmd_session(path: &str) -> Result<(), String> {
    let mut alpha = Alphabet::new();
    let doc = load_doc(path, &mut alpha)?;
    let mut session = Session::open(alpha.clone(), Source::new(doc, None));
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    eprintln!("session open; commands: fetch/ask/mediate <query>, show, td, stats, quit");
    loop {
        eprint!("> ");
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| e.to_string())?
            == 0
        {
            return Ok(());
        }
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "quit" | "exit" => return Ok(()),
            "show" => {
                let _ = write!(out, "{}", write_incomplete_xml(session.knowledge(), &alpha));
            }
            "td" => match session.data_tree() {
                Some(td) => {
                    let _ = write!(out, "{}", write_tree(&td, &alpha));
                }
                None => println!("(no data nodes yet)"),
            },
            "stats" => {
                println!(
                    "knowledge size: {}; answered locally: {}; source queries: {}; nodes shipped: {}",
                    session.knowledge().size(),
                    session.answered_locally,
                    session.source().queries_served,
                    session.source().nodes_shipped
                );
            }
            "fetch" | "ask" | "mediate" => {
                let mut a2 = alpha.clone();
                let q = match parse_ps_query(rest, &mut a2) {
                    Ok(q) => q,
                    Err(e) => {
                        println!("bad query: {e}");
                        continue;
                    }
                };
                if a2.len() != alpha.len() {
                    // New labels can never match the document; accept but
                    // extend the session alphabet for consistent display.
                    alpha = a2.clone();
                }
                match cmd {
                    "fetch" => match session.fetch(&q) {
                        Ok(ans) => match ans.tree {
                            Some(t) => {
                                let _ = write!(out, "{}", write_tree(&t, &alpha));
                            }
                            None => println!("(empty answer)"),
                        },
                        Err(e) => println!("refine failed: {e}"),
                    },
                    "ask" => match session.answer_locally(&q) {
                        LocalAnswer::Complete(Some(t)) => {
                            println!("# fully answerable from local knowledge:");
                            let _ = write!(out, "{}", write_tree(&t, &alpha));
                        }
                        LocalAnswer::Complete(None) => {
                            println!("# fully answerable: the answer is certainly empty")
                        }
                        LocalAnswer::Partial(p) => {
                            println!(
                                "# not fully answerable (possible nonempty: {}, certain nonempty: {})",
                                p.possible_nonempty(),
                                p.certain_nonempty()
                            );
                        }
                        // answer_locally never takes the degraded path
                        // (that is answer_resilient's job).
                        LocalAnswer::Degraded { .. } => unreachable!(),
                    },
                    _ => match session.answer_with_mediation(&q) {
                        Ok(Some(t)) => {
                            let _ = write!(out, "{}", write_tree(&t, &alpha));
                        }
                        Ok(None) => println!("(empty answer)"),
                        Err(e) => println!("mediation failed: {e}"),
                    },
                }
            }
            other => println!("unknown command: {other}"),
        }
    }
}
