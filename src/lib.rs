//! # iixml — Representing and Querying XML with Incomplete Information
//!
//! A complete Rust implementation of the framework of Abiteboul, Segoufin
//! and Vianu, *"Representing and Querying XML with Incomplete
//! Information"* (PODS 2001): data trees with persistent node ids,
//! simplified DTDs (tree types), prefix-selection queries, conditional
//! tree types with specialization, incomplete trees, Algorithm Refine,
//! querying incomplete trees, conjunctive incomplete trees, mediator
//! guidance, and the Section 4 extensions.
//!
//! This facade crate re-exports the subsystem crates under stable module
//! names. See `README.md` for a tour and `DESIGN.md` for the system
//! inventory.
//!
//! ```
//! use iixml::prelude::*;
//!
//! // Build the paper's catalog tree type (Figure 1).
//! let mut alpha = Alphabet::new();
//! let ty = TreeTypeBuilder::new(&mut alpha)
//!     .root("catalog")
//!     .rule("catalog", &[("product", Mult::Plus)])
//!     .rule(
//!         "product",
//!         &[
//!             ("name", Mult::One),
//!             ("price", Mult::One),
//!             ("cat", Mult::One),
//!             ("picture", Mult::Star),
//!         ],
//!     )
//!     .rule("cat", &[("subcat", Mult::One)])
//!     .build()
//!     .unwrap();
//! assert_eq!(ty.roots().len(), 1);
//! ```

pub use iixml_core as core;
pub use iixml_extensions as extensions;
pub use iixml_gen as gen;
pub use iixml_mediator as mediator;
pub use iixml_oracle as oracle;
pub use iixml_query as query;
pub use iixml_tree as tree;
pub use iixml_values as values;
pub use iixml_webhouse as webhouse;

/// Convenient glob-import surface covering the common types.
pub mod prelude {
    pub use iixml_core::{
        ConditionalTreeType, ConjunctiveTree, IncompleteTree, Refiner, SymbolInfo,
    };
    pub use iixml_mediator::{Completion, LocalQuery, Mediator};
    pub use iixml_query::{PsQuery, PsQueryBuilder};
    pub use iixml_tree::{
        Alphabet, DataTree, Label, Mult, MultAtom, Nid, NodeRef, TreeType, TreeTypeBuilder,
    };
    pub use iixml_values::{Cond, IntervalSet, Rat};
    pub use iixml_webhouse::{Source, Webhouse};
}
