//! E1–E3: foundations.
//!
//! * E1 (Lemma 2.3): condition → interval normal form, PTIME in the
//!   number of constants;
//! * E2 (Lemma 2.5): emptiness of conditional tree types, PTIME in the
//!   type size;
//! * E3 (Theorem 2.8): certain/possible prefix checks, PTIME in the
//!   candidate tree size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iixml_bench::refined_catalog;
use iixml_core::{ConditionalTreeType, Disjunction, IncompleteTree, SAtom, SymTarget};
use iixml_gen::catalog_query_price_below;
use iixml_tree::{Label, Mult};
use iixml_values::{Cond, IntervalSet, Rat};
use std::collections::BTreeMap;

fn bench_conditions(c: &mut Criterion) {
    let mut g = c.benchmark_group("E1_conditions");
    g.sample_size(20);
    for n in [4usize, 16, 64, 256] {
        // Alternating conjunction/disjunction over n constants.
        let mut cond = Cond::True;
        for i in 0..n as i64 {
            let atom = if i % 2 == 0 {
                Cond::ne(Rat::from(i))
            } else {
                Cond::lt(Rat::from(10 * i)).or(Cond::gt(Rat::from(10 * i + 5)))
            };
            cond = cond.and(atom);
        }
        g.bench_with_input(BenchmarkId::new("normalize", n), &cond, |b, cond| {
            b.iter(|| cond.to_intervals())
        });
    }
    g.finish();
}

/// A deep chain type: root -> l1+, l1 -> l2+, ..., with an unproductive
/// tail to exercise the fixpoint.
fn chain_type(depth: usize) -> ConditionalTreeType {
    let mut ty = ConditionalTreeType::new();
    let syms: Vec<_> = (0..depth)
        .map(|i| {
            ty.add_symbol(
                format!("s{i}"),
                SymTarget::Lab(Label(i as u32)),
                IntervalSet::all(),
            )
        })
        .collect();
    for (i, &s) in syms.iter().enumerate() {
        if i + 1 < depth {
            ty.set_mu(
                s,
                Disjunction(vec![
                    SAtom::new(vec![(syms[i + 1], Mult::Plus)]),
                    SAtom::new(vec![(syms[i + 1], Mult::One), (s, Mult::Star)]),
                ]),
            );
        } else {
            ty.set_mu(s, Disjunction::leaf());
        }
    }
    ty.add_root(syms[0]);
    ty
}

fn bench_emptiness(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2_emptiness");
    g.sample_size(20);
    for depth in [8usize, 32, 128, 512] {
        let ty = chain_type(depth);
        assert!(!ty.is_empty());
        g.bench_with_input(BenchmarkId::new("chain", depth), &ty, |b, ty| {
            b.iter(|| ty.is_empty())
        });
    }
    g.finish();
}

fn bench_prefix(c: &mut Criterion) {
    let mut g = c.benchmark_group("E3_prefix");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (c_data, knowledge) = refined_catalog(products, 7);
        let td = knowledge.data_tree().expect("view answered something");
        g.bench_with_input(
            BenchmarkId::new("certain", products),
            &(&knowledge, &td),
            |b, (k, t)| b.iter(|| k.certain_prefix(t)),
        );
        g.bench_with_input(
            BenchmarkId::new("possible", products),
            &(&knowledge, &td),
            |b, (k, t)| b.iter(|| k.possible_prefix(t)),
        );
        drop(c_data);
    }
    g.finish();
}

fn bench_membership(c: &mut Criterion) {
    // Exact membership (rep ∋ tree) via circulation, used throughout
    // the test oracle: PTIME in |T| × |Σ'|.
    let mut g = c.benchmark_group("E2b_membership");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (c_data, knowledge) = refined_catalog(products, 7);
        g.bench_with_input(
            BenchmarkId::new("contains_source", products),
            &(&knowledge, &c_data.doc),
            |b, (k, doc)| b.iter(|| k.contains(doc)),
        );
    }
    g.finish();
}

fn bench_type_restriction(c: &mut Criterion) {
    // Theorem 3.5 at growing knowledge sizes.
    let mut g = c.benchmark_group("E2c_type_restriction");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (c_data, knowledge) = refined_catalog(products, 7);
        g.bench_with_input(
            BenchmarkId::new("restrict", products),
            &(&knowledge, &c_data.ty),
            |b, (k, ty)| b.iter(|| iixml_core::type_intersect::restrict_to_type(k, ty)),
        );
    }
    g.finish();
}

fn bench_minimize(c: &mut Criterion) {
    let mut g = c.benchmark_group("E2d_minimize");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (mut c_data, knowledge) = refined_catalog(products, 7);
        // One more refinement to create mergeable structure.
        let q2 = catalog_query_price_below(&mut c_data.alpha, 400);
        let mut refiner = iixml_core::Refiner::from_tree(knowledge);
        refiner
            .refine(&c_data.alpha, &q2, &q2.eval(&c_data.doc))
            .unwrap();
        let tree = refiner.current().clone();
        g.bench_with_input(BenchmarkId::new("minimize", products), &tree, |b, t| {
            b.iter(|| t.minimize())
        });
    }
    g.finish();
}

#[allow(dead_code)]
fn assert_wired(_: &IncompleteTree, _: &BTreeMap<u64, ()>) {}

criterion_group!(
    benches,
    bench_conditions,
    bench_emptiness,
    bench_prefix,
    bench_membership,
    bench_type_restriction,
    bench_minimize
);
criterion_main!(benches);
