//! E1–E3: foundations.
//!
//! * E1 (Lemma 2.3): condition → interval normal form, PTIME in the
//!   number of constants;
//! * E2 (Lemma 2.5): emptiness of conditional tree types, PTIME in the
//!   type size;
//! * E3 (Theorem 2.8): certain/possible prefix checks, PTIME in the
//!   candidate tree size.

use iixml_bench::harness::Harness;
use iixml_bench::refined_catalog;
use iixml_core::{ConditionalTreeType, Disjunction, SAtom, SymTarget};
use iixml_gen::catalog_query_price_below;
use iixml_tree::{Label, Mult};
use iixml_values::{Cond, IntervalSet, Rat};

fn bench_conditions(h: &mut Harness) {
    let mut g = h.group("E1_conditions");
    g.sample_size(20);
    for n in [4usize, 16, 64, 256] {
        // Alternating conjunction/disjunction over n constants.
        let mut cond = Cond::True;
        for i in 0..n as i64 {
            let atom = if i % 2 == 0 {
                Cond::ne(Rat::from(i))
            } else {
                Cond::lt(Rat::from(10 * i)).or(Cond::gt(Rat::from(10 * i + 5)))
            };
            cond = cond.and(atom);
        }
        g.bench(format!("normalize/{n}"), || cond.to_intervals());
    }
    g.finish();
}

/// A deep chain type: root -> l1+, l1 -> l2+, ..., with an unproductive
/// tail to exercise the fixpoint.
fn chain_type(depth: usize) -> ConditionalTreeType {
    let mut ty = ConditionalTreeType::new();
    let syms: Vec<_> = (0..depth)
        .map(|i| {
            ty.add_symbol(
                format!("s{i}"),
                SymTarget::Lab(Label(i as u32)),
                IntervalSet::all(),
            )
        })
        .collect();
    for (i, &s) in syms.iter().enumerate() {
        if i + 1 < depth {
            ty.set_mu(
                s,
                Disjunction(vec![
                    SAtom::new(vec![(syms[i + 1], Mult::Plus)]),
                    SAtom::new(vec![(syms[i + 1], Mult::One), (s, Mult::Star)]),
                ]),
            );
        } else {
            ty.set_mu(s, Disjunction::leaf());
        }
    }
    ty.add_root(syms[0]);
    ty
}

fn bench_emptiness(h: &mut Harness) {
    let mut g = h.group("E2_emptiness");
    g.sample_size(20);
    for depth in [8usize, 32, 128, 512] {
        let ty = chain_type(depth);
        assert!(!ty.is_empty());
        g.bench(format!("chain/{depth}"), || ty.is_empty());
    }
    g.finish();
}

fn bench_prefix(h: &mut Harness) {
    let mut g = h.group("E3_prefix");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (_cat, knowledge) = refined_catalog(products, 7);
        let td = knowledge.data_tree().expect("view answered something");
        g.bench(format!("certain/{products}"), || {
            knowledge.certain_prefix(&td)
        });
        g.bench(format!("possible/{products}"), || {
            knowledge.possible_prefix(&td)
        });
    }
    g.finish();
}

fn bench_membership(h: &mut Harness) {
    // Exact membership (rep ∋ tree) via circulation, used throughout
    // the test oracle: PTIME in |T| × |Σ'|.
    let mut g = h.group("E2b_membership");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (cat, knowledge) = refined_catalog(products, 7);
        g.bench(format!("contains_source/{products}"), || {
            knowledge.contains(&cat.doc)
        });
    }
    g.finish();
}

fn bench_type_restriction(h: &mut Harness) {
    // Theorem 3.5 at growing knowledge sizes.
    let mut g = h.group("E2c_type_restriction");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (cat, knowledge) = refined_catalog(products, 7);
        g.bench(format!("restrict/{products}"), || {
            iixml_core::type_intersect::restrict_to_type(&knowledge, &cat.ty)
        });
    }
    g.finish();
}

fn bench_minimize(h: &mut Harness) {
    let mut g = h.group("E2d_minimize");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (mut cat, knowledge) = refined_catalog(products, 7);
        // One more refinement to create mergeable structure.
        let q2 = catalog_query_price_below(&mut cat.alpha, 400);
        let mut refiner = iixml_core::Refiner::from_tree(knowledge);
        refiner.refine(&cat.alpha, &q2, &q2.eval(&cat.doc)).unwrap();
        let tree = refiner.current().clone();
        g.bench(format!("minimize/{products}"), || tree.minimize());
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_conditions(&mut h);
    bench_emptiness(&mut h);
    bench_prefix(&mut h);
    bench_membership(&mut h);
    bench_type_restriction(&mut h);
    bench_minimize(&mut h);
    h.finish();
}
