//! Thread-scaling benches for the parallel execution layer (PR 3).
//!
//! Runs the shared workloads of [`iixml_bench::parbench`] at 1/2/4/8
//! worker threads and writes the machine-readable trajectory to
//! `BENCH_pr3.json` at the repo root — the same emission path
//! `cargo run -p iixml-bench --bin report -- --bench-pr3` uses, so both
//! entry points produce identical reports.
//!
//! `cargo bench --bench par -- --quick` shrinks workloads and sample
//! counts (the CI smoke configuration).

use iixml_bench::parbench;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    iixml_obs::set_enabled(true);
    let report = parbench::run(quick);
    report.print_table();
    match report.write_json() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_pr3.json: {e}"),
    }
    let snap = iixml_obs::snapshot();
    println!(
        "par.tasks = {}, par.steals = {}",
        snap.counter("par.tasks").unwrap_or(0),
        snap.counter("par.steals").unwrap_or(0),
    );
}
