//! E9–E11, E13: querying incomplete trees and the mediator.
//!
//! * E9 (Theorem 3.14): `q(T)` construction time in |T| and in |Σ| (the
//!   exponential-in-Σ DNF step);
//! * E10 (Corollary 3.15): full-answerability checks;
//! * E11 (Theorem 3.19): completion generation;
//! * E13 (Section 4): extended-query evaluation with branching
//!   (the factorial matching space).

use iixml_bench::harness::Harness;
use iixml_bench::refined_catalog;
use iixml_extensions::xquery::{Modality, XQueryBuilder};
use iixml_gen::catalog_query_camera_pictures;
use iixml_mediator::Mediator;
use iixml_tree::{Alphabet, DataTree, Nid};
use iixml_values::{Cond, Rat};

fn bench_query_incomplete(h: &mut Harness) {
    let mut g = h.group("E9_query_incomplete");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (mut cat, knowledge) = refined_catalog(products, 11);
        let q = catalog_query_camera_pictures(&mut cat.alpha);
        g.bench(format!("qT/{products}"), || knowledge.query(&q));
    }
    g.finish();
}

fn bench_answerability(h: &mut Harness) {
    let mut g = h.group("E10_answerability");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (mut cat, knowledge) = refined_catalog(products, 13);
        let q = catalog_query_camera_pictures(&mut cat.alpha);
        g.bench(format!("fully_answerable/{products}"), || {
            knowledge.query(&q).fully_answerable()
        });
    }
    g.finish();
}

fn bench_mediator(h: &mut Harness) {
    let mut g = h.group("E11_mediator");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let (mut cat, knowledge) = refined_catalog(products, 17);
        let q = catalog_query_camera_pictures(&mut cat.alpha);
        g.bench(format!("complete/{products}"), || {
            let med = Mediator::new(&knowledge);
            med.complete(&q).queries.len()
        });
    }
    g.finish();
}

/// The Section 4 branching example: root with n `a(b=i)` children, query
/// branching over all n values — the n! assignment space the paper uses
/// to show q(T) explodes with branching.
fn bench_branching(h: &mut Harness) {
    let mut g = h.group("E13_branching_eval");
    g.sample_size(10);
    for n in [2usize, 4, 6] {
        let mut alpha = Alphabet::new();
        let root = alpha.intern("root");
        let a = alpha.intern("a");
        let b_l = alpha.intern("b");
        let mut t = DataTree::new(Nid(0), root, Rat::ZERO);
        for i in 0..n {
            let an = t
                .add_child(t.root(), Nid(1 + 2 * i as u64), a, Rat::ZERO)
                .unwrap();
            t.add_child(an, Nid(2 + 2 * i as u64), b_l, Rat::from(i as i64 + 1))
                .unwrap();
        }
        let mut bld = XQueryBuilder::new(&mut alpha, "root", Cond::True);
        let broot = bld.root();
        for i in 0..n {
            let an = bld.child(broot, "a", Cond::True, Modality::Plain);
            bld.child(an, "b", Cond::eq(Rat::from(i as i64 + 1)), Modality::Plain);
        }
        let q = bld.build();
        g.bench(format!("valuations/{n}"), || q.valuations(&t).len());
    }
    g.finish();
}

fn bench_pebble(h: &mut Harness) {
    // E17 (Theorem 4.2 flavor): pebble-automaton acceptance on growing
    // trees: the configuration space is states × nodes^k.
    use iixml_extensions::pebble::{BinTree, PebbleAutomaton};
    let mut g = h.group("E17_pebble");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let cat = iixml_gen::catalog(products, 23);
        let bt = BinTree::from_unranked(&cat.doc);
        let picture = cat.alpha.get("picture").unwrap();
        let a1 = PebbleAutomaton::exists_label(picture);
        let a2 = PebbleAutomaton::two_distinct_labeled(picture);
        g.bench(format!("one_pebble/{products}"), || a1.accepts(&bt));
        g.bench(format!("two_pebbles/{products}"), || a2.accepts(&bt));
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_query_incomplete(&mut h);
    bench_answerability(&mut h);
    bench_mediator(&mut h);
    bench_branching(&mut h);
    bench_pebble(&mut h);
    h.finish();
}
