//! E12, E19: end-to-end applications.
//!
//! * E12 (Theorem 3.6): encoding + deciding SAT instances through the
//!   possible-prefix reduction;
//! * E19 (Section 1): the Webhouse session loop — fetch, answer locally,
//!   mediate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iixml_extensions::sat::{encode, Cnf};
use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_webhouse::{Session, Source};

fn bench_sat_reduction(c: &mut Criterion) {
    let mut g = c.benchmark_group("E12_sat_reduction");
    g.sample_size(10);
    for n in [1usize, 2, 3] {
        let cnf = Cnf {
            num_vars: n,
            clauses: vec![[1, (n as i64).max(1), 1], [-1, -(n as i64), -1]],
        };
        g.bench_with_input(BenchmarkId::new("encode", n), &cnf, |b, cnf| {
            b.iter(|| encode(cnf).num_queries)
        });
        let enc = encode(&cnf);
        g.bench_with_input(BenchmarkId::new("decide", n), &enc, |b, enc| {
            b.iter(|| enc.possible_prefix_val1())
        });
    }
    g.finish();
}

fn bench_webhouse(c: &mut Criterion) {
    let mut g = c.benchmark_group("E19_webhouse");
    g.sample_size(10);
    for products in [10usize, 40] {
        g.bench_with_input(
            BenchmarkId::new("session_loop", products),
            &products,
            |b, &products| {
                b.iter(|| {
                    let mut cat = catalog(products, 31);
                    let q_view = catalog_query_price_below(&mut cat.alpha, 250);
                    let q_cam = catalog_query_camera_pictures(&mut cat.alpha);
                    let mut session = Session::open(
                        cat.alpha.clone(),
                        Source::new(cat.doc.clone(), Some(cat.ty.clone())),
                    );
                    session.fetch(&q_view).unwrap();
                    let _partial = session.answer_locally(&q_cam);
                    let ans = session.answer_with_mediation(&q_cam).unwrap();
                    ans.map_or(0, |t| t.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sat_reduction, bench_webhouse);
criterion_main!(benches);
