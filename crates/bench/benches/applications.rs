//! E12, E19: end-to-end applications.
//!
//! * E12 (Theorem 3.6): encoding + deciding SAT instances through the
//!   possible-prefix reduction;
//! * E19 (Section 1): the Webhouse session loop — fetch, answer locally,
//!   mediate.

use iixml_bench::harness::Harness;
use iixml_extensions::sat::{encode, Cnf};
use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_webhouse::{Session, Source};

fn bench_sat_reduction(h: &mut Harness) {
    let mut g = h.group("E12_sat_reduction");
    g.sample_size(10);
    for n in [1usize, 2, 3] {
        let cnf = Cnf {
            num_vars: n,
            clauses: vec![[1, (n as i64).max(1), 1], [-1, -(n as i64), -1]],
        };
        g.bench(format!("encode/{n}"), || encode(&cnf).num_queries);
        let enc = encode(&cnf);
        g.bench(format!("decide/{n}"), || enc.possible_prefix_val1());
    }
    g.finish();
}

fn bench_webhouse(h: &mut Harness) {
    let mut g = h.group("E19_webhouse");
    g.sample_size(10);
    for products in [10usize, 40] {
        g.bench(format!("session_loop/{products}"), || {
            let mut cat = catalog(products, 31);
            let q_view = catalog_query_price_below(&mut cat.alpha, 250);
            let q_cam = catalog_query_camera_pictures(&mut cat.alpha);
            let mut session = Session::open(
                cat.alpha.clone(),
                Source::new(cat.doc.clone(), Some(cat.ty.clone())),
            );
            session.fetch(&q_view).unwrap();
            let _partial = session.answer_locally(&q_cam);
            let ans = session.answer_with_mediation(&q_cam).unwrap();
            ans.map_or(0, |t| t.len())
        });
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_sat_reduction(&mut h);
    bench_webhouse(&mut h);
    h.finish();
}
