//! Durability benches for the session journal (PR 4 + PR 6).
//!
//! Runs the shared workloads of [`iixml_bench::storebench`] — append
//! throughput, snapshot cost, recovery time vs chain length — and
//! [`iixml_bench::store2bench`] — group-commit speedup, segment
//! compaction footprint, concurrent fleet recovery — and writes the
//! machine-readable trajectories to `BENCH_pr4.json` and
//! `BENCH_store2.json` at the repo root, the same emission paths
//! `cargo run -p iixml-bench --bin report -- --bench-pr4` and
//! `-- --bench-store2` use.
//!
//! `cargo bench --bench store -- --quick` shrinks workloads and sample
//! counts (the CI smoke configuration).

use iixml_bench::{store2bench, storebench};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    iixml_obs::set_enabled(true);
    let report = storebench::run(quick);
    report.print_table();
    match report.write_json() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_pr4.json: {e}"),
    }
    println!();
    let report2 = store2bench::run(quick);
    report2.print_table();
    match report2.write_json() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_store2.json: {e}"),
    }
    let snap = iixml_obs::snapshot();
    println!(
        "store.appends = {}, store.fsyncs = {}, store.replayed = {}, store.batch_flushes = {}, store.segments_retired = {}",
        snap.counter("store.appends").unwrap_or(0),
        snap.counter("store.fsyncs").unwrap_or(0),
        snap.counter("store.replayed").unwrap_or(0),
        snap.counter("store.batch_flushes").unwrap_or(0),
        snap.counter("store.segments_retired").unwrap_or(0),
    );
}
