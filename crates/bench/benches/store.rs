//! Durability benches for the session journal (PR 4).
//!
//! Runs the shared workloads of [`iixml_bench::storebench`] — append
//! throughput, snapshot cost, recovery time vs chain length — and
//! writes the machine-readable trajectory to `BENCH_pr4.json` at the
//! repo root, the same emission path
//! `cargo run -p iixml-bench --bin report -- --bench-pr4` uses.
//!
//! `cargo bench --bench store -- --quick` shrinks workloads and sample
//! counts (the CI smoke configuration).

use iixml_bench::storebench;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    iixml_obs::set_enabled(true);
    let report = storebench::run(quick);
    report.print_table();
    match report.write_json() {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\nfailed to write BENCH_pr4.json: {e}"),
    }
    let snap = iixml_obs::snapshot();
    println!(
        "store.appends = {}, store.fsyncs = {}, store.replayed = {}",
        snap.counter("store.appends").unwrap_or(0),
        snap.counter("store.fsyncs").unwrap_or(0),
        snap.counter("store.replayed").unwrap_or(0),
    );
}
