//! E4, E5, E7, E8: Algorithm Refine and the size landscape.
//!
//! * E4 (Theorem 3.4): per-step Refine cost on growing catalogs;
//! * E5 (Example 3.2 / Corollary 3.9): the adversarial family — plain
//!   Refine (exponential) vs Refine⁺ (linear);
//! * E7 (Lemma 3.12): linear-query chains stay cheap;
//! * E8 (Proposition 3.13): auxiliary queries tame the blowup.

use iixml_bench::harness::Harness;
use iixml_bench::{
    auxiliary_chain_size, blowup_alphabet, conjunctive_blowup_sizes, linear_chain_sizes,
    refine_blowup_sizes,
};
use iixml_core::{ConjunctiveTree, Refiner};
use iixml_gen::{blowup_queries, catalog, catalog_query_price_below};
use iixml_query::Answer;

fn bench_refine_catalog(h: &mut Harness) {
    let mut g = h.group("E4_refine_catalog");
    g.sample_size(10);
    for products in [5usize, 20, 80] {
        let mut cat = catalog(products, 3);
        let q = catalog_query_price_below(&mut cat.alpha, 250);
        let ans = q.eval(&cat.doc);
        g.bench(format!("one_step/{products}"), || {
            let mut refiner = Refiner::new(&cat.alpha);
            refiner.refine(&cat.alpha, &q, &ans).unwrap();
            refiner.current().size()
        });
    }
    g.finish();
}

fn bench_blowup(h: &mut Harness) {
    let mut g = h.group("E5_blowup");
    g.sample_size(10);
    for n in [3usize, 5, 7] {
        g.bench(format!("refine_exponential/{n}"), || {
            refine_blowup_sizes(n).last().copied()
        });
    }
    for n in [3usize, 7, 12, 24] {
        g.bench(format!("refine_plus_linear/{n}"), || {
            conjunctive_blowup_sizes(n).last().copied()
        });
    }
    g.finish();
}

fn bench_linear_queries(h: &mut Harness) {
    let mut g = h.group("E7_linear_queries");
    g.sample_size(10);
    for n in [4usize, 8, 16] {
        g.bench(format!("chain/{n}"), || {
            linear_chain_sizes(n).last().copied()
        });
    }
    g.finish();
}

fn bench_auxiliary(h: &mut Harness) {
    let mut g = h.group("E8_auxiliary_queries");
    g.sample_size(10);
    for n in [4usize, 6, 8] {
        g.bench(format!("aided_chain/{n}"), || auxiliary_chain_size(n));
    }
    g.finish();
}

fn bench_conjunctive_emptiness(h: &mut Harness) {
    // E6 (Theorem 3.10): emptiness of conjunctive trees via the
    // fold-and-prune search; consistent chains stay fast, the cost
    // lives in the product expansion.
    let mut g = h.group("E6_conjunctive_emptiness");
    g.sample_size(10);
    for n in [2usize, 4, 6] {
        let mut alpha = blowup_alphabet();
        let queries = blowup_queries(&mut alpha, n);
        let mut conj = ConjunctiveTree::new(&alpha);
        for q in &queries {
            conj.refine(&alpha, q, &Answer::empty()).unwrap();
        }
        g.bench(format!("is_empty/{n}"), || conj.is_empty());
    }
    // Contrast: membership in the same conjunctive trees is PTIME.
    for n in [2usize, 4, 6] {
        let mut alpha = blowup_alphabet();
        let queries = blowup_queries(&mut alpha, n);
        let mut conj = ConjunctiveTree::new(&alpha);
        for q in &queries {
            conj.refine(&alpha, q, &Answer::empty()).unwrap();
        }
        use iixml_tree::{DataTree, Nid};
        use iixml_values::Rat;
        let mut w = DataTree::new(Nid(0), alpha.get("root").unwrap(), Rat::ZERO);
        w.add_child(w.root(), Nid(1), alpha.get("a").unwrap(), Rat::from(500))
            .unwrap();
        g.bench(format!("contains/{n}"), || conj.contains(&w));
    }
    g.finish();
}

fn main() {
    let mut h = Harness::from_args();
    bench_refine_catalog(&mut h);
    bench_blowup(&mut h);
    bench_linear_queries(&mut h);
    bench_auxiliary(&mut h);
    bench_conjunctive_emptiness(&mut h);
    h.finish();
}
