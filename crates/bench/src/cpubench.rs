//! CPU-kernel scaling before/after ID-interning and the
//! `BENCH_cpu.json` emitter.
//!
//! Two CPU-bound kernels are measured at 1/2/4/8 worker threads
//! (`iixml_par::set_threads`), each in two variants:
//!
//! * **pre** — the preserved structural paths
//!   (`refine::intersect_reference`, `IncompleteTree::minimize_reference`):
//!   hash-probed pair tables, nested-`Vec` signatures, per-pair task
//!   scheduling, fresh join buffers per emitted combination. These are
//!   the verbatim PR 3 code paths, so the pre row *is* the PR 3
//!   baseline re-measured on the current host.
//! * **post** — the shipping kernels: dense/interned ID tables, chunked
//!   `par_map_chunks` scheduling with per-worker scratch arenas, and an
//!   inline width-1 path that skips task-vector construction entirely.
//!
//! The committed headline is the **sequential speedup row** — pre@1 ÷
//! post@1 per kernel — because it holds on any host, including the
//! single-core CI runners where thread scaling physically cannot show.
//! On multi-core hosts the 4-thread post-speedup gates too.
//!
//! `cargo run -p iixml-bench --bin report -- --bench-cpu` runs these and
//! writes the JSON to the repo root; `--quick` shrinks workloads and
//! sample counts for CI smoke runs; `--diff-cpu OLD NEW` gates the
//! committed trajectory with the same floor-clamped rule as the store
//! and serve benches.

use crate::parbench::{median_ns, THREADS};
use crate::refine_blowup_tree;
use iixml_obs::json::Json;

/// One kernel: pre/post medians (ns) per worker width.
pub struct KernelResult {
    /// Stable kernel key (also the JSON key).
    pub name: &'static str,
    /// Human description of the workload and its size.
    pub workload: String,
    /// `(threads, median_ns)` of the preserved pre-interning path.
    pub pre_by_threads: Vec<(usize, f64)>,
    /// `(threads, median_ns)` of the shipping interned path.
    pub post_by_threads: Vec<(usize, f64)>,
}

impl KernelResult {
    fn at(rows: &[(usize, f64)], threads: usize) -> f64 {
        rows.iter()
            .find(|&&(t, _)| t == threads)
            .map(|&(_, ns)| ns)
            .unwrap_or(f64::INFINITY)
    }

    /// Thread-scaling speedup of the shipping path: post@1 ÷ post@t.
    pub fn post_speedup(&self, threads: usize) -> f64 {
        Self::at(&self.post_by_threads, 1) / Self::at(&self.post_by_threads, threads).max(1.0)
    }

    /// The sequential headline: pre@1 ÷ post@1 — how much faster the
    /// interned kernel runs on a single thread than the PR 3 code.
    pub fn seq_speedup(&self) -> f64 {
        Self::at(&self.pre_by_threads, 1) / Self::at(&self.post_by_threads, 1).max(1.0)
    }
}

/// The full CPU-kernel report.
pub struct CpuReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// `std::thread::available_parallelism` on the measuring host.
    pub threads_available: usize,
    /// The two kernels.
    pub kernels: Vec<KernelResult>,
}

/// Runs both kernels in both variants at every width; `quick` shrinks
/// the workload and sample counts for CI smoke runs.
pub fn run(quick: bool) -> CpuReport {
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let chain_n = if quick { 5 } else { 7 };
    let samples = if quick { 3 } else { 7 };

    let base = refine_blowup_tree(chain_n);
    let product = iixml_core::refine::intersect(&base, &base).expect("self-product is compatible");

    let mut intersect = KernelResult {
        name: "intersect_product",
        workload: format!(
            "⋊⋉ self-product of the Example 3.2 chain, n = {chain_n} ({} × {} symbols)",
            base.ty().sym_count(),
            base.ty().sym_count()
        ),
        pre_by_threads: Vec::new(),
        post_by_threads: Vec::new(),
    };
    let mut minimize = KernelResult {
        name: "minimize_product",
        workload: format!(
            "bisimulation partition of the chain's self-product ({} symbols)",
            product.ty().sym_count()
        ),
        pre_by_threads: Vec::new(),
        post_by_threads: Vec::new(),
    };

    for &t in &THREADS {
        iixml_par::set_threads(Some(t));
        intersect.pre_by_threads.push((
            t,
            median_ns(samples, || {
                let p = iixml_core::refine::intersect_reference(&base, &base)
                    .expect("self-product is compatible");
                assert!(p.ty().sym_count() > 0);
            }),
        ));
        intersect.post_by_threads.push((
            t,
            median_ns(samples, || {
                let p = iixml_core::refine::intersect(&base, &base)
                    .expect("self-product is compatible");
                assert!(p.ty().sym_count() > 0);
            }),
        ));
        minimize.pre_by_threads.push((
            t,
            median_ns(samples, || {
                let m = product.minimize_reference();
                assert!(m.ty().sym_count() <= product.ty().sym_count());
            }),
        ));
        minimize.post_by_threads.push((
            t,
            median_ns(samples, || {
                let m = product.minimize();
                assert!(m.ty().sym_count() <= product.ty().sym_count());
            }),
        ));
    }
    iixml_par::set_threads(None);

    CpuReport {
        quick,
        threads_available,
        kernels: vec![intersect, minimize],
    }
}

impl CpuReport {
    fn kernel(&self, name: &str) -> Option<&KernelResult> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// The intersect kernel's sequential speedup (trajectory headline).
    pub fn intersect_seq_speedup(&self) -> f64 {
        self.kernel("intersect_product")
            .map(KernelResult::seq_speedup)
            .unwrap_or(0.0)
    }

    /// The minimize kernel's sequential speedup (trajectory headline).
    pub fn minimize_seq_speedup(&self) -> f64 {
        self.kernel("minimize_product")
            .map(KernelResult::seq_speedup)
            .unwrap_or(0.0)
    }

    /// A kernel's shipping-path speedup at `threads` (the multi-core
    /// gate reads this).
    pub fn post_speedup(&self, name: &str, threads: usize) -> f64 {
        self.kernel(name)
            .map(|k| k.post_speedup(threads))
            .unwrap_or(0.0)
    }

    /// The machine-readable form committed as `BENCH_cpu.json`.
    pub fn to_json(&self) -> Json {
        let kernels: Vec<Json> = self
            .kernels
            .iter()
            .map(|k| {
                let results: Vec<Json> = k
                    .pre_by_threads
                    .iter()
                    .zip(&k.post_by_threads)
                    .map(|(&(t, pre), &(_, post))| {
                        Json::obj()
                            .set("threads", t)
                            .set("pre_median_ns", pre)
                            .set("post_median_ns", post)
                            .set("post_speedup_vs_1", k.post_speedup(t))
                    })
                    .collect();
                Json::obj()
                    .set("name", k.name)
                    .set("workload", k.workload.clone())
                    .set("results", results)
                    .set("seq_speedup", k.seq_speedup())
            })
            .collect();
        Json::obj()
            .set("pr", 8u64)
            .set("quick", self.quick)
            .set("threads_available", self.threads_available)
            .set("kernels", kernels)
            .set("intersect_seq_speedup", self.intersect_seq_speedup())
            .set("minimize_seq_speedup", self.minimize_seq_speedup())
    }

    /// Prints the human-readable table.
    pub fn print_table(&self) {
        println!(
            "cpu kernels ({} samples median; host has {} hardware thread(s))",
            if self.quick { "quick" } else { "full" },
            self.threads_available
        );
        for k in &self.kernels {
            println!("\n{} — {}", k.name, k.workload);
            for (&(t, pre), &(_, post)) in k.pre_by_threads.iter().zip(&k.post_by_threads) {
                println!(
                    "  t={t}  pre {:>10}  post {:>10}  post speedup {:.2}x",
                    crate::harness::fmt_ns(pre),
                    crate::harness::fmt_ns(post),
                    k.post_speedup(t)
                );
            }
            println!(
                "  sequential speedup (pre@1 / post@1): {:.2}x",
                k.seq_speedup()
            );
        }
    }

    /// Writes `BENCH_cpu.json` at the repo root; returns the path.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()?
            .join("BENCH_cpu.json");
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_and_shipping_kernels_agree() {
        let base = refine_blowup_tree(3);
        let fast = iixml_core::refine::intersect(&base, &base).unwrap();
        let slow = iixml_core::refine::intersect_reference(&base, &base).unwrap();
        assert_eq!(format!("{:?}", fast.ty()), format!("{:?}", slow.ty()));
        assert_eq!(
            format!("{:?}", fast.minimize().ty()),
            format!("{:?}", slow.minimize_reference().ty())
        );
    }

    #[test]
    fn quick_report_has_both_kernels_and_all_widths() {
        let r = run(true);
        assert_eq!(r.kernels.len(), 2);
        for k in &r.kernels {
            assert_eq!(k.pre_by_threads.len(), THREADS.len());
            assert_eq!(k.post_by_threads.len(), THREADS.len());
            assert!(k.seq_speedup() > 0.0);
        }
        let text = r.to_json().render_pretty();
        assert!(text.contains("intersect_seq_speedup"));
        assert!(text.contains("minimize_seq_speedup"));
    }
}
