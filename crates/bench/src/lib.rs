//! Shared workload construction for the benchmark harness and the
//! `report` binary (which regenerates the EXPERIMENTS.md tables).
//!
//! Each helper corresponds to a row family in DESIGN.md's experiment
//! index; the benches in `benches/` (driven by the std-only [`harness`])
//! measure times on these workloads, while `src/bin/report.rs` prints
//! the size/count tables.

pub mod containbench;
pub mod cpubench;
pub mod harness;
pub mod loadgen;
pub mod parbench;
pub mod servebench;
pub mod store2bench;
pub mod storebench;

use iixml_core::{ConjunctiveTree, IncompleteTree, Refiner};
use iixml_gen::{
    blowup_queries, catalog, catalog_query_camera_pictures, catalog_query_price_below,
    linear_queries,
};
use iixml_mediator::auxiliary_queries;
use iixml_query::Answer;
use iixml_tree::{Alphabet, DataTree};

/// The blowup alphabet of Example 3.2.
pub fn blowup_alphabet() -> Alphabet {
    Alphabet::from_names(["root", "a", "b"])
}

/// Sizes of the plain Refine chain on Example 3.2 after each step.
pub fn refine_blowup_sizes(n: usize) -> Vec<usize> {
    let mut alpha = blowup_alphabet();
    let queries = blowup_queries(&mut alpha, n);
    let mut refiner = Refiner::new(&alpha);
    queries
        .iter()
        .map(|q| {
            refiner.refine(&alpha, q, &Answer::empty()).unwrap();
            refiner.current().size()
        })
        .collect()
}

/// The final incomplete tree of the plain Refine chain on Example 3.2.
pub fn refine_blowup_tree(n: usize) -> IncompleteTree {
    let mut alpha = blowup_alphabet();
    let queries = blowup_queries(&mut alpha, n);
    let mut refiner = Refiner::new(&alpha);
    for q in &queries {
        refiner.refine(&alpha, q, &Answer::empty()).unwrap();
    }
    refiner.current().clone()
}

/// Sizes of the conjunctive (Refine⁺) chain on Example 3.2.
pub fn conjunctive_blowup_sizes(n: usize) -> Vec<usize> {
    let mut alpha = blowup_alphabet();
    let queries = blowup_queries(&mut alpha, n);
    let mut conj = ConjunctiveTree::new(&alpha);
    queries
        .iter()
        .map(|q| {
            conj.refine(&alpha, q, &Answer::empty()).unwrap();
            conj.size()
        })
        .collect()
}

/// Sizes of the linear-query chain (Lemma 3.12).
pub fn linear_chain_sizes(n: usize) -> Vec<usize> {
    let mut alpha = blowup_alphabet();
    let queries = linear_queries(&mut alpha, n);
    let mut refiner = Refiner::new(&alpha);
    queries
        .iter()
        .map(|q| {
            refiner.refine(&alpha, q, &Answer::empty()).unwrap();
            refiner.current().size()
        })
        .collect()
}

/// Final size of the Example 3.2 chain preceded by Proposition 3.13's
/// auxiliary queries (against a fixed two-child source).
pub fn auxiliary_chain_size(n: usize) -> usize {
    use iixml_tree::Nid;
    use iixml_values::Rat;
    let mut alpha = blowup_alphabet();
    let queries = blowup_queries(&mut alpha, n);
    let (root, a, b) = (
        alpha.get("root").unwrap(),
        alpha.get("a").unwrap(),
        alpha.get("b").unwrap(),
    );
    let mut doc = DataTree::new(Nid(0), root, Rat::ZERO);
    doc.add_child(doc.root(), Nid(1), a, Rat::from(100))
        .unwrap();
    doc.add_child(doc.root(), Nid(2), b, Rat::from(200))
        .unwrap();
    let mut refiner = Refiner::new(&alpha);
    for aux in auxiliary_queries(&queries[0]) {
        refiner.refine(&alpha, &aux, &aux.eval(&doc)).unwrap();
    }
    for q in &queries {
        refiner.refine(&alpha, q, &q.eval(&doc)).unwrap();
    }
    refiner.current().size()
}

/// A refined catalog knowledge base: `products` products, one price
/// view.
pub fn refined_catalog(products: usize, seed: u64) -> (iixml_gen::Catalog, IncompleteTree) {
    let mut c = catalog(products, seed);
    let q = catalog_query_price_below(&mut c.alpha, 250);
    let mut refiner = Refiner::new(&c.alpha);
    let a = q.eval(&c.doc);
    refiner.refine(&c.alpha, &q, &a).unwrap();
    let tree = refiner.current().clone();
    (c, tree)
}

/// The standard camera follow-up query for a catalog workload.
pub fn camera_query(c: &mut iixml_gen::Catalog) -> iixml_query::PsQuery {
    catalog_query_camera_pictures(&mut c.alpha)
}
