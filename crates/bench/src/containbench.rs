//! The containment-cache bench and the `BENCH_contain.json` emitter.
//!
//! A subsumption-heavy query mix (one wide catalog view, then
//! progressively narrower price slices with mediations interleaved,
//! plus type-shaped random queries) runs through two webhouse sessions
//! over the same source: one with the containment-keyed answer cache
//! on, one with it off. Three headline metrics come out:
//!
//! * **fetch_reduction** — `1 − fetches(on) / fetches(off)`: the share
//!   of source round-trips the cache removed. Gated `>= 0.30`.
//! * **bytes_identical** — `1` iff every answer and the serialized
//!   knowledge after every step were byte-identical between the two
//!   sessions; the cache must be invisible except in fetch counts.
//!   Gated `== 1`.
//! * **check_overhead_ratio** — median time of one containment lookup
//!   against a populated cache ÷ median end-to-end time of a cache-miss
//!   fetch. Gated `< 0.05`: the analyzer must cost a rounding error
//!   relative to the round-trip it tries to save.
//!
//! `cargo run -p iixml-bench --bin report -- --bench-contain` runs this
//! and writes the JSON to the repo root; `--quick` shrinks the catalog
//! for CI smoke runs; `--diff-contain OLD NEW` gates the committed
//! trajectory with the same floor-clamp rule as the other benches.

use crate::parbench::median_ns;
use iixml_contain::AnswerCache;
use iixml_core::io::write_incomplete_xml;
use iixml_gen::{catalog, catalog_query_price_below, random_queries, Catalog};
use iixml_obs::json::Json;
use iixml_query::{Answer, PsQuery};
use iixml_tree::DataTree;
use iixml_webhouse::{Session, Source};

/// The full containment-cache report.
pub struct ContainReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Products in the generated catalog.
    pub products: usize,
    /// Queries in the mix (fetches + mediations).
    pub mix_len: usize,
    /// Source round-trips with the cache off.
    pub fetches_off: usize,
    /// Source round-trips with the cache on.
    pub fetches_on: usize,
    /// Containment lookups the cached session performed.
    pub checks: u64,
    /// Lookups answered from recorded knowledge.
    pub hits: u64,
    /// Whether every answer and every post-step knowledge serialization
    /// matched byte-for-byte between the two sessions.
    pub bytes_identical: bool,
    /// Median ns of one containment lookup against a populated cache.
    pub check_ns: f64,
    /// Median ns of one cache-miss fetch, end to end.
    pub miss_fetch_ns: f64,
}

/// Ordered rendering of an answer tree (node ids, labels, values,
/// child counts in preorder) — `Debug` would leak hash-map ordering.
fn render(t: &Option<DataTree>) -> String {
    let Some(t) = t else {
        return String::from("<empty>");
    };
    let mut out = String::new();
    for n in t.preorder() {
        out.push_str(&format!(
            "{}:{}={}/{};",
            t.nid(n).0,
            t.label(n).0,
            t.value(n),
            t.children(n).len()
        ));
    }
    out
}

fn render_answer(a: &Answer) -> String {
    let mut prov: Vec<_> = a
        .provenance
        .iter()
        .map(|(n, k)| format!("{}:{:?}", n.0, k))
        .collect();
    prov.sort();
    format!("{} | {}", render(&a.tree), prov.join(","))
}

/// The subsumption-heavy mix: one wide price view, narrower slices
/// under it, type-shaped random queries, repeated over a few rounds.
/// `(query, mediate?)` — mediations exercise the local-answer path.
fn build_mix(cat: &mut Catalog, rounds: usize) -> Vec<(PsQuery, bool)> {
    let root = cat.alpha.get("catalog").expect("catalog root");
    let mut mix = Vec::new();
    for r in 0..rounds {
        let mut bound = 480 - 7 * r as i64;
        mix.push((catalog_query_price_below(&mut cat.alpha, bound), false));
        for i in 0..5 {
            bound -= 45;
            // Narrower slices: fetched twice each round, mediated once.
            mix.push((catalog_query_price_below(&mut cat.alpha, bound), i % 3 == 2));
        }
        for q in random_queries(&cat.alpha, &cat.ty, root, 2, 40, 0xCA7A106 + r as u64) {
            mix.push((q, false));
        }
    }
    mix
}

/// Runs the mix through one session; returns per-step transcripts
/// (answer rendering + serialized knowledge) for the identity check.
fn run_mix(
    session: &mut Session<Source>,
    mix: &[(PsQuery, bool)],
    alpha_src: &Catalog,
) -> Vec<String> {
    let mut transcript = Vec::with_capacity(mix.len());
    for (q, mediate) in mix {
        let step = if *mediate {
            match session.answer_with_mediation(q) {
                Ok(t) => format!("mediate {}", render(&t)),
                Err(e) => format!("mediate error {e}"),
            }
        } else {
            match session.fetch(q) {
                Ok(a) => format!("fetch {}", render_answer(&a)),
                Err(e) => format!("fetch error {e}"),
            }
        };
        transcript.push(format!(
            "{step}\n{}",
            write_incomplete_xml(session.knowledge(), &alpha_src.alpha)
        ));
    }
    transcript
}

/// Runs the bench; `quick` shrinks the catalog and sample counts for
/// CI smoke runs.
pub fn run(quick: bool) -> ContainReport {
    let products = if quick { 40 } else { 200 };
    let rounds = if quick { 2 } else { 4 };
    let samples = if quick { 5 } else { 11 };
    let mut cat = catalog(products, 0x5EEDCA7);
    let mix = build_mix(&mut cat, rounds);

    let source = || Source::new(cat.doc.clone(), Some(cat.ty.clone()));
    let mut on = Session::open(cat.alpha.clone(), source());
    let mut off = Session::open(cat.alpha.clone(), source());
    off.set_contain_cache(false);

    let t_on = run_mix(&mut on, &mix, &cat);
    let t_off = run_mix(&mut off, &mix, &cat);
    let bytes_identical = t_on == t_off;

    // Overhead probe: a populated cache answering a narrower query
    // (the expensive path: signature match + full descent + replay
    // eval) vs a cold session's end-to-end source fetch of it.
    let wide = catalog_query_price_below(&mut cat.alpha, 450);
    let narrow = catalog_query_price_below(&mut cat.alpha, 200);
    let wide_ans = {
        let mut probe = Session::open(cat.alpha.clone(), source());
        probe.fetch(&wide).expect("probe fetch")
    };
    let mut cache = AnswerCache::new();
    cache.record(&wide, &wide_ans);
    let check_ns = median_ns(samples, || {
        assert!(cache.lookup(&narrow).is_some());
    });
    let miss_fetch_ns = median_ns(samples, || {
        let mut cold = Session::open(cat.alpha.clone(), source());
        cold.set_contain_cache(false);
        assert!(cold.fetch(&narrow).is_ok());
    });

    ContainReport {
        quick,
        products,
        mix_len: mix.len(),
        fetches_off: off.source().queries_served,
        fetches_on: on.source().queries_served,
        checks: on.containment_checks(),
        hits: on.containment_hits(),
        bytes_identical,
        check_ns,
        miss_fetch_ns,
    }
}

impl ContainReport {
    /// Share of source round-trips the cache removed (the headline).
    pub fn fetch_reduction(&self) -> f64 {
        if self.fetches_off == 0 {
            return 0.0;
        }
        1.0 - self.fetches_on as f64 / self.fetches_off as f64
    }

    /// Containment-lookup cost relative to a cache-miss fetch.
    pub fn check_overhead_ratio(&self) -> f64 {
        self.check_ns / self.miss_fetch_ns.max(1.0)
    }

    /// The machine-readable form committed as `BENCH_contain.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("pr", 10u64)
            .set("quick", self.quick)
            .set("products", self.products)
            .set("mix_len", self.mix_len)
            .set("fetches_off", self.fetches_off)
            .set("fetches_on", self.fetches_on)
            .set("containment_checks", self.checks)
            .set("containment_hits", self.hits)
            .set("fetch_reduction", self.fetch_reduction())
            .set("bytes_identical", u64::from(self.bytes_identical))
            .set("check_ns", self.check_ns)
            .set("miss_fetch_ns", self.miss_fetch_ns)
            .set("check_overhead_ratio", self.check_overhead_ratio())
    }

    /// Prints the human-readable table.
    pub fn print_table(&self) {
        println!(
            "containment cache ({} run; {} products, {} queries in the mix)",
            if self.quick { "quick" } else { "full" },
            self.products,
            self.mix_len
        );
        println!(
            "  source fetches   off {:>4}   on {:>4}   reduction {:.0}%",
            self.fetches_off,
            self.fetches_on,
            100.0 * self.fetch_reduction()
        );
        println!(
            "  cache traffic    {} checks, {} hits",
            self.checks, self.hits
        );
        println!(
            "  byte identity    {}",
            if self.bytes_identical {
                "answers and knowledge identical with cache on/off"
            } else {
                "DIVERGED — cache is unsound on this mix"
            }
        );
        println!(
            "  check overhead   {} per lookup vs {} per miss fetch ({:.2}% of a round-trip)",
            crate::harness::fmt_ns(self.check_ns),
            crate::harness::fmt_ns(self.miss_fetch_ns),
            100.0 * self.check_overhead_ratio()
        );
    }

    /// Writes `BENCH_contain.json` at the repo root; returns the path.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()?
            .join("BENCH_contain.json");
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_meets_the_gates() {
        let r = run(true);
        assert!(r.bytes_identical, "cache on/off transcripts diverged");
        assert!(
            r.fetch_reduction() >= 0.30,
            "fetch reduction {:.2} below the 30% line",
            r.fetch_reduction()
        );
        assert!(r.hits >= 1 && r.checks >= r.hits);
        let text = r.to_json().render_pretty();
        assert!(text.contains("fetch_reduction"));
        assert!(text.contains("check_overhead_ratio"));
    }
}
