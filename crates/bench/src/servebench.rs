//! End-to-end server workloads — the `BENCH_serve.json` emitter
//! (PR 7).
//!
//! Three measurements against an in-process `iixml-serve` server with
//! journaled sessions (batched group commit, the production shape):
//!
//! * `honest` — the seeded query mix over concurrent connections:
//!   p50/p99 request latency, requests/sec, sessions/sec;
//! * `chaos` — the misbehaving-client storm running *while* a second
//!   honest load runs: the gate is that the server stays live and the
//!   honest load's p99 stays bounded (robustness as a benchmark, not
//!   just a test);
//! * `restart` — drain-and-sync shutdown followed by a cold start that
//!   recovers every journaled session: fleet recovery wall time.
//!
//! The trajectory gate (`report -- --diff-serve`) floors-and-clamps
//! requests/sec and sessions/sec like the store gates, so a slower CI
//! host fails only on genuine regressions.

use crate::loadgen::{run_chaos, run_load, ChaosReport, LoadConfig, LoadReport};
use iixml_obs::json::Json;
use iixml_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::time::Instant;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn server_config(journal_root: PathBuf) -> ServeConfig {
    let mut cfg = ServeConfig {
        port: 0,
        journal_root: Some(journal_root),
        batched_journal: true,
        ..ServeConfig::default()
    };
    // Generous quotas: the honest load must not shed (sheds are the
    // chaos measurement's business).
    cfg.admission.max_sessions = 4096;
    cfg.admission.max_inflight = 256;
    cfg.admission.quota_burst = 1_000_000;
    cfg.admission.quota_refill = 1_000_000;
    cfg
}

/// The full PR 7 server report.
pub struct ServeReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Sessions in the honest load.
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Honest load, quiet server.
    pub honest: LoadReport,
    /// Honest load measured *during* the chaos storm.
    pub honest_under_chaos: LoadReport,
    /// The storm itself.
    pub chaos: ChaosReport,
    /// Journaled sessions recovered at restart.
    pub recovered_sessions: usize,
    /// Cold-start fleet recovery wall time (ms).
    pub restart_ms: f64,
}

/// Runs every group; `quick` shrinks the load.
pub fn run(quick: bool) -> ServeReport {
    let root = scratch("bench");
    let sessions = if quick { 16 } else { 64 };
    let requests_per_session = if quick { 8 } else { 32 };
    let chaos_conns = if quick { 24 } else { 96 };

    // -- honest load on a quiet server ---------------------------------
    let server = Server::start(server_config(root.clone())).expect("server start");
    let port = server.port();
    let cfg = LoadConfig {
        port,
        tenants: 4,
        sessions,
        requests_per_session,
        products: 3,
        seed: 0x5EBE,
        concurrency: 8,
        sync_at_end: true,
        close_at_end: false,
        ..LoadConfig::default()
    };
    let honest = run_load(&cfg);

    // -- chaos storm concurrent with a second honest load --------------
    // Fresh session names so opens don't collide with round one.
    let chaos_cfg = LoadConfig {
        seed: 0xC405,
        sessions: sessions / 2,
        tenants: 2,
        ..cfg.clone()
    };
    let (honest_under_chaos, chaos) = std::thread::scope(|s| {
        let storm = s.spawn(|| run_chaos(port, chaos_conns, 0x57AB, 16));
        // Interleave: the honest load runs while connections misbehave.
        let load = run_load(&chaos_cfg);
        (load, storm.join().expect("chaos thread"))
    });

    // -- drain, restart, recover ---------------------------------------
    let drain = server.shutdown();
    assert!(drain.faults.is_empty(), "drain faults: {:?}", drain.faults);
    let t0 = Instant::now();
    let server2 = Server::start(server_config(root.clone())).expect("server restart");
    let restart_ms = t0.elapsed().as_secs_f64() * 1e3;
    let recovered_sessions = server2.session_names().len();
    drop(server2.shutdown());
    let _ = std::fs::remove_dir_all(&root);

    ServeReport {
        quick,
        sessions,
        requests_per_session,
        honest,
        honest_under_chaos,
        chaos,
        recovered_sessions,
        restart_ms,
    }
}

impl ServeReport {
    /// p99 inflation of the honest load under chaos (1.0 = unaffected;
    /// the in-run gate allows a generous factor — the property is
    /// "bounded", not "free").
    pub fn chaos_p99_inflation(&self) -> f64 {
        self.honest_under_chaos.p99_us / self.honest.p99_us.max(1e-9)
    }

    /// The machine-readable form committed as `BENCH_serve.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("pr", 7u64)
            .set("quick", self.quick)
            .set(
                "honest",
                Json::obj()
                    .set("sessions", self.sessions)
                    .set("requests_per_session", self.requests_per_session)
                    .set("requests", self.honest.requests)
                    .set("p50_us", self.honest.p50_us)
                    .set("p99_us", self.honest.p99_us)
                    .set("requests_per_sec", self.honest.requests_per_sec)
                    .set("sessions_per_sec", self.honest.sessions_per_sec)
                    .set("shed", self.honest.shed)
                    .set("errors", self.honest.errors),
            )
            .set(
                "chaos",
                Json::obj()
                    .set("connections", self.chaos.connections)
                    .set("requests_issued", self.chaos.requests_issued)
                    .set("server_alive", self.chaos.server_alive)
                    .set("honest_p99_us", self.honest_under_chaos.p99_us)
                    .set("honest_errors", self.honest_under_chaos.errors)
                    .set("p99_inflation", self.chaos_p99_inflation()),
            )
            .set(
                "restart",
                Json::obj()
                    .set("recovered_sessions", self.recovered_sessions)
                    .set("restart_ms", self.restart_ms),
            )
    }

    /// Prints the human-readable table.
    pub fn print_table(&self) {
        println!(
            "serve honest load / chaos storm / restart recovery ({})",
            if self.quick { "quick" } else { "full" }
        );
        println!(
            "\nhonest — {} sessions × {} requests\n  p50 {:.0} µs  p99 {:.0} µs  {:.0} req/s  {:.1} sessions/s  shed {}  errors {}",
            self.sessions,
            self.requests_per_session,
            self.honest.p50_us,
            self.honest.p99_us,
            self.honest.requests_per_sec,
            self.honest.sessions_per_sec,
            self.honest.shed,
            self.honest.errors
        );
        println!(
            "\nchaos — {} misbehaving connections (alive after: {})\n  honest p99 under chaos {:.0} µs ({:.1}x quiet)  honest errors {}",
            self.chaos.connections,
            self.chaos.server_alive,
            self.honest_under_chaos.p99_us,
            self.chaos_p99_inflation(),
            self.honest_under_chaos.errors
        );
        println!(
            "\nrestart — {} journaled sessions recovered in {:.0} ms",
            self.recovered_sessions, self.restart_ms
        );
    }

    /// Writes `BENCH_serve.json` at the repo root; returns the path.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()?
            .join("BENCH_serve.json");
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_coherent() {
        let report = run(true);
        assert!(report.chaos.server_alive, "server died under chaos");
        assert_eq!(report.honest.errors, 0, "honest load saw errors");
        assert!(report.honest.requests > 0);
        assert!(
            report.recovered_sessions as u64 >= report.honest.sessions_done,
            "restart lost sessions"
        );
        let json = report.to_json().render_pretty();
        for key in [
            "requests_per_sec",
            "sessions_per_sec",
            "p99_us",
            "server_alive",
            "recovered_sessions",
        ] {
            assert!(json.contains(key), "missing {key} in JSON");
        }
    }
}
