//! A small wall-clock benchmark harness (std only).
//!
//! The seed used Criterion, but external dev-dependencies break offline
//! resolution for the whole workspace, so the `benches/` binaries run on
//! this harness instead. It keeps Criterion's shape — groups, ids,
//! per-group sample sizes — and reports min/median/mean per benchmark.
//!
//! Methodology: each sample calls the closure enough times to fill
//! [`TARGET_SAMPLE_NS`] (calibrated once), so sub-microsecond benches
//! aren't dominated by clock granularity; the median of samples is the
//! headline number. This is deliberately simpler than Criterion — no
//! outlier rejection or bootstrapping — which is fine for the repo's
//! purpose: tracking complexity *trends* and catching order-of-magnitude
//! regressions.
//!
//! Binaries accept an optional substring filter argument (as Criterion
//! did): `cargo bench --bench refinement -- E5` runs only benchmarks
//! whose `group/id` contains `E5`.

use std::hint::black_box;
use std::time::Instant;

/// Target duration of one sample, in nanoseconds.
pub const TARGET_SAMPLE_NS: u64 = 20_000_000;

/// One benchmark's aggregated measurements, in nanoseconds per call.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/id`.
    pub name: String,
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over samples.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Closure calls per sample.
    pub iters_per_sample: u64,
}

/// Top-level driver: owns the filter and collected measurements.
pub struct Harness {
    filter: Option<String>,
    results: Vec<Measurement>,
}

impl Harness {
    /// Builds a harness from the process arguments, skipping the flags
    /// cargo passes to custom bench binaries (`--bench`, `--test`); the
    /// first free argument becomes a substring filter.
    pub fn from_args() -> Harness {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Harness {
            filter,
            results: Vec::new(),
        }
    }

    /// A harness that runs everything (for tests).
    pub fn unfiltered() -> Harness {
        Harness {
            filter: None,
            results: Vec::new(),
        }
    }

    /// Opens a benchmark group.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            samples: 20,
        }
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the summary table. Call at the end of `main`.
    pub fn finish(self) {
        if self.results.is_empty() {
            println!("no benchmarks matched the filter");
            return;
        }
        let width = self.results.iter().map(|m| m.name.len()).max().unwrap_or(0);
        println!(
            "{:width$}  {:>12} {:>12} {:>12}",
            "benchmark", "min", "median", "mean"
        );
        for m in &self.results {
            println!(
                "{:width$}  {:>12} {:>12} {:>12}",
                m.name,
                fmt_ns(m.min_ns),
                fmt_ns(m.median_ns),
                fmt_ns(m.mean_ns),
            );
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: usize,
}

impl Group<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Measures `f`, reporting under `group/id`. The closure's result is
    /// passed through [`black_box`] so the work cannot be optimized out.
    pub fn bench<R>(&mut self, id: impl std::fmt::Display, mut f: impl FnMut() -> R) {
        let name = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.harness.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Calibrate: how many calls fill one sample?
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        let iters = (TARGET_SAMPLE_NS / once).clamp(1, 1_000_000);
        // Warm-up sample (not recorded).
        for _ in 0..iters {
            black_box(f());
        }
        let mut per_call: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_call.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_call.sort_by(|a, b| a.total_cmp(b));
        let median = if per_call.len() % 2 == 1 {
            per_call[per_call.len() / 2]
        } else {
            (per_call[per_call.len() / 2 - 1] + per_call[per_call.len() / 2]) / 2.0
        };
        let m = Measurement {
            min_ns: per_call[0],
            median_ns: median,
            mean_ns: per_call.iter().sum::<f64>() / per_call.len() as f64,
            samples: per_call.len(),
            iters_per_sample: iters,
            name,
        };
        println!(
            "{:<48} median {:>10}  (min {}, {} samples x {} iters)",
            m.name,
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.harness.results.push(m);
    }

    /// No-op, kept for call-site symmetry with the previous harness.
    pub fn finish(self) {}
}

/// Renders nanoseconds human-readably (`412ns`, `3.1µs`, `2.4ms`, `1.2s`).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.1}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut h = Harness::unfiltered();
        let mut g = h.group("t");
        g.sample_size(3);
        g.bench("noop", || 1 + 1);
        g.finish();
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert_eq!(m.name, "t/noop");
        assert!(m.min_ns >= 0.0 && m.median_ns >= m.min_ns);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness {
            filter: Some("match-me".to_string()),
            results: Vec::new(),
        };
        let mut g = h.group("t");
        g.bench("other", || 0);
        g.bench("match-me", || 0);
        g.finish();
        assert_eq!(h.results().len(), 1);
        assert_eq!(h.results()[0].name, "t/match-me");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(412.0), "412ns");
        assert_eq!(fmt_ns(3_100.0), "3.1µs");
        assert_eq!(fmt_ns(2_400_000.0), "2.4ms");
        assert_eq!(fmt_ns(1_200_000_000.0), "1.20s");
    }
}
