//! Regenerates the paper-vs-measured tables of EXPERIMENTS.md.
//!
//! Run with `cargo run -p iixml-bench --bin report` (add `--release` for
//! the larger rows). Prints Markdown tables; timings are coarse
//! (`std::time::Instant` medians of a few runs) — the harness benches
//! in `benches/` are the precise instrument.
//!
//! Flags: `--json` prints the machine-readable core tables; `--obs`
//! additionally enables the observability layer and appends its metric
//! snapshot (counters and histograms accumulated while the report ran);
//! `--bench-pr3` runs the thread-scaling workloads of
//! [`iixml_bench::parbench`] and writes `BENCH_pr3.json` at the repo
//! root; `--bench-pr4` runs the durability workloads of
//! [`iixml_bench::storebench`] and writes `BENCH_pr4.json`;
//! `--bench-store2` runs the group-commit/compaction/recovery
//! workloads of [`iixml_bench::store2bench`], writes
//! `BENCH_store2.json`, and gates on the in-run invariants (add
//! `--quick` to any of these for the CI smoke configuration);
//! `--diff-store2 OLD NEW` compares two `BENCH_store2.json` files and
//! fails on a >20% regression of appends/sec or the recovery ratios —
//! the CI `bench-trajectory` gate; `--bench-serve` runs the
//! server/chaos/restart workloads of [`iixml_bench::servebench`],
//! writes `BENCH_serve.json`, and gates on liveness, honest-load
//! cleanliness, and full restart recovery; `--diff-serve OLD NEW`
//! compares two `BENCH_serve.json` files with the same floor-clamped
//! trajectory rule (p99 is lower-is-better and gated from the other
//! side); `--bench-cpu` runs the pre/post-interning CPU kernels of
//! [`iixml_bench::cpubench`], writes `BENCH_cpu.json`, and gates on the
//! sequential speedup row (plus 4-thread scaling on multi-core hosts);
//! `--diff-cpu OLD NEW` compares two `BENCH_cpu.json` files under the
//! floor-clamped rule; `--trajectory` prints one summary table over
//! every committed `BENCH_*.json`.

use iixml_bench::{
    auxiliary_chain_size, conjunctive_blowup_sizes, linear_chain_sizes, refine_blowup_sizes,
    refined_catalog,
};
use iixml_extensions::order::{merge_answers, MergeResult};
use iixml_extensions::regex::Regex;
use iixml_extensions::sat::{encode, Cnf};
use iixml_gen::{catalog, catalog_query_camera_pictures, catalog_query_price_below};
use iixml_mediator::Mediator;
use iixml_obs::json::Json;
use iixml_tree::Label;
use iixml_values::Rat;
use iixml_webhouse::{Session, Source};
use std::time::Instant;

/// Pulls the first `"key": <number>` out of a rendered JSON document.
///
/// The obs `Json` type is emit-only by design (no parser in-tree), and
/// the bench files use unique key names, so a line-level scan is exact
/// for this format.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--diff-store2 OLD NEW`: the trajectory gate. Higher is better for
/// every compared metric; a drop of more than 20% fails.
///
/// Each metric's effective baseline is the committed value clamped at
/// the acceptance floor that PR 6 blessed (10x the PR 4 appends/sec,
/// a 10x group-commit speedup, a 0.5 recovery par ratio). The fsync
/// is the dominant noise source run to run, so gating 20% under a
/// lucky committed run would fail healthy code; gating 20% under the
/// blessed floor catches exactly the drift that would sink the
/// claims this bench exists to hold.
fn diff_store2(old_path: &str, new_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    let pr4_appends = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr4.json"),
    )
    .ok()
    .and_then(|s| json_number(&s, "appends_per_sec"))
    .unwrap_or(6722.0);
    // (metric, floor): 0.8 × min(committed, floor / 0.8) is the pass
    // line, i.e. the floor itself when the committed run is lucky.
    let metrics = [
        ("batched_appends_per_sec", 10.0 * pr4_appends / 0.8),
        ("batch_speedup", 12.5),
        ("recovery_par_ratio", 0.625),
    ];
    let mut failed = false;
    println!("| metric | committed | this run | pass line | verdict |");
    println!("|---|---|---|---|---|");
    for (key, cap) in metrics {
        let (Some(o), Some(n)) = (json_number(&old, key), json_number(&new, key)) else {
            eprintln!("FAIL: metric {key} missing from one of the files");
            failed = true;
            continue;
        };
        let pass_line = 0.8 * o.min(cap);
        let verdict = if n < pass_line {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("| {key} | {o:.2} | {n:.2} | {pass_line:.2} | {verdict} |");
    }
    if failed {
        eprintln!("FAIL: BENCH_store2 trajectory regressed by more than 20%");
        std::process::exit(1);
    }
    println!("\ntrajectory ok: no metric regressed by more than 20% of its blessed baseline");
}

/// `--diff-serve OLD NEW`: the serve trajectory gate, same
/// floor-clamp rule as [`diff_store2`]. Throughput metrics are
/// higher-is-better with pass line `0.8 × min(committed, floor/0.8)`;
/// honest p99 is lower-is-better with pass line
/// `1.25 × max(committed, ceiling/1.25)` — a committed run on a fast
/// machine must not make a healthy CI host fail on latency noise.
fn diff_serve(old_path: &str, new_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    // (metric, floor/0.8): the blessed floors are deliberately loose —
    // an order of magnitude under the committed run — because the gate
    // exists to catch the server falling over, not scheduler jitter.
    let higher_better = [
        ("requests_per_sec", 500.0 / 0.8),
        ("sessions_per_sec", 8.0 / 0.8),
    ];
    // (metric, ceiling/1.25): honest p99 in µs, quiet server.
    let lower_better = [("p99_us", 50_000.0 / 1.25)];
    let mut failed = false;
    println!("| metric | committed | this run | pass line | verdict |");
    println!("|---|---|---|---|---|");
    for (key, cap) in higher_better {
        let (Some(o), Some(n)) = (json_number(&old, key), json_number(&new, key)) else {
            eprintln!("FAIL: metric {key} missing from one of the files");
            failed = true;
            continue;
        };
        let pass_line = 0.8 * o.min(cap);
        let verdict = if n < pass_line {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("| {key} | {o:.2} | {n:.2} | >= {pass_line:.2} | {verdict} |");
    }
    for (key, cap) in lower_better {
        let (Some(o), Some(n)) = (json_number(&old, key), json_number(&new, key)) else {
            eprintln!("FAIL: metric {key} missing from one of the files");
            failed = true;
            continue;
        };
        let pass_line = 1.25 * o.max(cap);
        let verdict = if n > pass_line {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("| {key} | {o:.2} | {n:.2} | <= {pass_line:.2} | {verdict} |");
    }
    if failed {
        eprintln!("FAIL: BENCH_serve trajectory regressed past its blessed baseline");
        std::process::exit(1);
    }
    println!("\ntrajectory ok: server throughput and latency within the blessed envelope");
}

/// `--diff-cpu OLD NEW`: the CPU-kernel trajectory gate, same
/// floor-clamp rule as [`diff_store2`]. The compared metrics are the
/// sequential speedup rows (pre-interning ÷ post-interning at one
/// thread) — the headline that holds on any host, single-core CI
/// runners included. The blessed floor is the 1.3x acceptance line, so
/// a lucky committed run cannot ratchet the gate above what the PR
/// actually claimed.
fn diff_cpu(old_path: &str, new_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    // (metric, floor/0.8): pass line 0.8 × min(committed, floor/0.8),
    // i.e. never above the 1.3x the acceptance criteria blessed.
    let metrics = [
        ("intersect_seq_speedup", 1.3 / 0.8),
        ("minimize_seq_speedup", 1.3 / 0.8),
    ];
    let mut failed = false;
    println!("| metric | committed | this run | pass line | verdict |");
    println!("|---|---|---|---|---|");
    for (key, cap) in metrics {
        let (Some(o), Some(n)) = (json_number(&old, key), json_number(&new, key)) else {
            eprintln!("FAIL: metric {key} missing from one of the files");
            failed = true;
            continue;
        };
        let pass_line = 0.8 * o.min(cap);
        let verdict = if n < pass_line {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("| {key} | {o:.2} | {n:.2} | >= {pass_line:.2} | {verdict} |");
    }
    if failed {
        eprintln!("FAIL: BENCH_cpu trajectory regressed past its blessed baseline");
        std::process::exit(1);
    }
    println!("\ntrajectory ok: both kernels kept their sequential speedup over the PR 3 code");
}

/// `--diff-contain OLD NEW`: the containment-cache trajectory gate.
/// `fetch_reduction` is higher-is-better under the floor-clamp rule
/// (blessed floor = the 0.30 acceptance line); `check_overhead_ratio`
/// is lower-is-better and gated from the other side, ceiling-clamped
/// at the 0.05 acceptance line so a lucky committed run cannot
/// tighten the gate below what the PR claimed; `bytes_identical` must
/// simply stay 1.
fn diff_contain(old_path: &str, new_path: &str) {
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("FAIL: cannot read {p}: {e}");
            std::process::exit(1);
        })
    };
    let old = read(old_path);
    let new = read(new_path);
    let mut failed = false;
    println!("| metric | committed | this run | pass line | verdict |");
    println!("|---|---|---|---|---|");
    // Higher is better: pass at 0.8 × min(committed, 0.30/0.8).
    {
        let key = "fetch_reduction";
        match (json_number(&old, key), json_number(&new, key)) {
            (Some(o), Some(n)) => {
                let pass_line = 0.8 * o.min(0.30 / 0.8);
                let verdict = if n < pass_line {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!("| {key} | {o:.2} | {n:.2} | >= {pass_line:.2} | {verdict} |");
            }
            _ => {
                eprintln!("FAIL: metric {key} missing from one of the files");
                failed = true;
            }
        }
    }
    // Lower is better: pass at 1.25 × max(committed, 0.05/1.25).
    {
        let key = "check_overhead_ratio";
        match (json_number(&old, key), json_number(&new, key)) {
            (Some(o), Some(n)) => {
                let pass_line = 1.25 * o.max(0.05 / 1.25);
                let verdict = if n > pass_line {
                    failed = true;
                    "REGRESSED"
                } else {
                    "ok"
                };
                println!("| {key} | {o:.4} | {n:.4} | <= {pass_line:.4} | {verdict} |");
            }
            _ => {
                eprintln!("FAIL: metric {key} missing from one of the files");
                failed = true;
            }
        }
    }
    // Invariant: byte identity can never regress.
    {
        let key = "bytes_identical";
        match json_number(&new, key) {
            Some(n) if n >= 1.0 => {
                println!("| {key} | 1 | {n:.0} | == 1 | ok |");
            }
            Some(n) => {
                println!("| {key} | 1 | {n:.0} | == 1 | REGRESSED |");
                failed = true;
            }
            None => {
                eprintln!("FAIL: metric {key} missing from the new file");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("FAIL: BENCH_contain trajectory regressed past its blessed baseline");
        std::process::exit(1);
    }
    println!("\ntrajectory ok: the containment cache kept its fetch reduction, byte identity, and overhead envelope");
}

/// `--trajectory`: one summary table over every committed
/// `BENCH_*.json` at the repo root — the headline metric(s) each bench
/// PR blessed, read with the same line-level scan the diff gates use.
/// Missing files are reported, not fatal: the table documents how much
/// of the trajectory this checkout carries.
fn trajectory() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    // (file, [(key, what it claims)]): first-occurrence keys, chosen to
    // be unique within their file.
    let headline: [(&str, &[(&str, &str)]); 6] = [
        (
            "BENCH_pr3.json",
            &[("speedup", "interned vs string partition keys")],
        ),
        ("BENCH_pr4.json", &[("appends_per_sec", "WAL appends/sec")]),
        (
            "BENCH_store2.json",
            &[
                ("batched_appends_per_sec", "group-commit appends/sec"),
                ("batch_speedup", "group-commit vs per-record fsync"),
                ("recovery_par_ratio", "width-4 fleet recovery vs width 1"),
            ],
        ),
        (
            "BENCH_serve.json",
            &[
                ("requests_per_sec", "honest-load requests/sec"),
                ("p99_us", "honest-load p99 latency (µs)"),
            ],
        ),
        (
            "BENCH_cpu.json",
            &[
                (
                    "intersect_seq_speedup",
                    "interned intersect vs PR 3 path, 1 thread",
                ),
                (
                    "minimize_seq_speedup",
                    "interned minimize vs PR 3 path, 1 thread",
                ),
            ],
        ),
        (
            "BENCH_contain.json",
            &[
                (
                    "fetch_reduction",
                    "source round-trips removed by the containment cache",
                ),
                (
                    "check_overhead_ratio",
                    "containment lookup cost vs a cache-miss fetch",
                ),
            ],
        ),
    ];
    println!("# Bench trajectory (committed BENCH_*.json headlines)\n");
    println!("| file | metric | value | claim |");
    println!("|---|---|---|---|");
    let mut missing = Vec::new();
    for (file, metrics) in headline {
        let Ok(text) = std::fs::read_to_string(root.join(file)) else {
            missing.push(file);
            continue;
        };
        for &(key, claim) in metrics {
            match json_number(&text, key) {
                Some(v) => println!("| {file} | {key} | {v:.2} | {claim} |"),
                None => println!("| {file} | {key} | (missing) | {claim} |"),
            }
        }
    }
    for file in missing {
        println!("| {file} | — | (file not committed) | — |");
    }
}

fn time_ms<T>(f: impl Fn() -> T) -> (T, f64) {
    // Median of three.
    let mut times = Vec::new();
    let mut result = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        result = Some(f());
        times.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    times.sort_by(f64::total_cmp);
    (result.unwrap(), times[1])
}

/// `--json`: machine-readable core tables (E5 sizes, PTIME sweep).
fn json_report(with_obs: bool) {
    let e5: Vec<Json> = (1..=9usize)
        .map(|n| {
            Json::obj()
                .set("n", n)
                .set("refine", *refine_blowup_sizes(n).last().unwrap())
                .set("refine_plus", *conjunctive_blowup_sizes(n).last().unwrap())
                .set("linear", *linear_chain_sizes(n).last().unwrap())
                .set("auxiliary", auxiliary_chain_size(n))
        })
        .collect();
    let ptime: Vec<Json> = [5usize, 20, 80, 200]
        .iter()
        .map(|&products| {
            let mut cat = catalog(products, 7);
            let q_view = catalog_query_price_below(&mut cat.alpha, 250);
            let q_cam = catalog_query_camera_pictures(&mut cat.alpha);
            let ans = q_view.eval(&cat.doc);
            let (knowledge, t_refine) = time_ms(|| {
                let mut r = iixml_core::Refiner::new(&cat.alpha);
                r.refine(&cat.alpha, &q_view, &ans).unwrap();
                r.current().clone()
            });
            let (_, t_qt) = time_ms(|| knowledge.query(&q_cam));
            Json::obj()
                .set("products", products)
                .set("knowledge_size", knowledge.size())
                .set("refine_ms", t_refine)
                .set("query_incomplete_ms", t_qt)
        })
        .collect();
    let mut out = Json::obj().set("e5_blowup", e5).set("ptime_sweep", ptime);
    if with_obs {
        out = out.set("obs", iixml_obs::snapshot().to_json_value());
    }
    println!("{}", out.render_pretty());
}

fn main() {
    let with_obs = std::env::args().any(|a| a == "--obs");
    if with_obs {
        iixml_obs::set_enabled(true);
    }
    if std::env::args().any(|a| a == "--bench-pr3") {
        let quick = std::env::args().any(|a| a == "--quick");
        iixml_obs::set_enabled(true);
        let report = iixml_bench::parbench::run(quick);
        report.print_table();
        match report.write_json() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_pr3.json: {e}");
                std::process::exit(1);
            }
        }
        // The CI smoke gate: parallel fan-out must actually overlap the
        // simulated source latency.
        let s4 = report.fanout_speedup(4);
        println!("fanout speedup at 4 threads: {s4:.2}x");
        if s4 < 1.5 {
            eprintln!("FAIL: 4-thread fan-out speedup {s4:.2}x < 1.5x");
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--bench-pr4") {
        let quick = std::env::args().any(|a| a == "--quick");
        iixml_obs::set_enabled(true);
        let report = iixml_bench::storebench::run(quick);
        report.print_table();
        match report.write_json() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_pr4.json: {e}");
                std::process::exit(1);
            }
        }
        // The CI smoke gate: every recovery in the sweep must have been
        // clean and whole (asserted inside run()); the cadence must not
        // make long-chain recovery slower than plain replay.
        let ratio = report.snapshot_recovery_ratio();
        println!("snapshot-cadence recovery ratio: {ratio:.2}x");
        if ratio < 0.8 {
            eprintln!("FAIL: snapshot cadence slowed long-chain recovery to {ratio:.2}x");
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--bench-store2") {
        let quick = std::env::args().any(|a| a == "--quick");
        iixml_obs::set_enabled(true);
        let report = iixml_bench::store2bench::run(quick);
        report.print_table();
        match report.write_json() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_store2.json: {e}");
                std::process::exit(1);
            }
        }
        // The smoke gates hold on any disk speed and any core count.
        // The 10x appends claim has two routes: the in-run speedup
        // (robust when the fsync is slow — the baseline pays it per
        // record) or 10x the committed PR 4 absolute (robust when the
        // fsync is fast — the batched path is encode-bound and clears
        // it on raw throughput). A machine fails only if group commit
        // genuinely stopped amortizing.
        let speedup = report.batch_speedup();
        let par = report.recovery_par_ratio();
        let pr4_appends = std::fs::read_to_string(
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pr4.json"),
        )
        .ok()
        .and_then(|s| json_number(&s, "appends_per_sec"))
        .unwrap_or(6722.0);
        let absolute = report.batched_appends_per_sec();
        println!(
            "group-commit speedup: {speedup:.1}x, batched: {absolute:.0}/s vs PR4 {pr4_appends:.0}/s, recovery par ratio: {par:.2}x, deterministic: {}",
            report.recovery.deterministic
        );
        let mut failed = false;
        if speedup < 10.0 && absolute < 10.0 * pr4_appends {
            eprintln!(
                "FAIL: group-commit speedup {speedup:.1}x < 10x and batched {absolute:.0} appends/s < 10x the PR 4 baseline {pr4_appends:.0}/s"
            );
            failed = true;
        }
        // The StoreIo seam (PR 9's fault-injection indirection) must
        // stay free on the batched hot path: within 3% of the
        // handwritten loop, measured in-run on interleaved samples.
        let io_overhead = report.io_overhead_ratio();
        println!("storeio seam overhead: {io_overhead:.3}x");
        if io_overhead > 1.03 {
            eprintln!(
                "FAIL: StoreIo dispatch costs {io_overhead:.3}x the raw append loop (> 1.03x)"
            );
            failed = true;
        }
        if par < 0.5 {
            eprintln!("FAIL: width-4 fleet recovery slowed the fleet to {par:.2}x of width 1");
            failed = true;
        }
        if !report.recovery.deterministic {
            eprintln!("FAIL: fleet recovery not byte-identical across par widths");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--bench-serve") {
        let quick = std::env::args().any(|a| a == "--quick");
        iixml_obs::set_enabled(true);
        let report = iixml_bench::servebench::run(quick);
        report.print_table();
        match report.write_json() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_serve.json: {e}");
                std::process::exit(1);
            }
        }
        // The CI smoke gates hold on any host speed: the server must
        // survive the storm, the honest load must see zero transport
        // errors and zero sheds (quotas are sized for it), and restart
        // must recover every journaled session.
        let mut failed = false;
        if !report.chaos.server_alive {
            eprintln!("FAIL: server not answering after the chaos storm");
            failed = true;
        }
        if report.honest.errors > 0 || report.honest.shed > 0 {
            eprintln!(
                "FAIL: honest load degraded on a quiet server ({} errors, {} shed)",
                report.honest.errors, report.honest.shed
            );
            failed = true;
        }
        if (report.recovered_sessions as u64) < report.honest.sessions_done {
            eprintln!(
                "FAIL: restart recovered {} sessions, expected at least {}",
                report.recovered_sessions, report.honest.sessions_done
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--bench-cpu") {
        let quick = std::env::args().any(|a| a == "--quick");
        iixml_obs::set_enabled(true);
        let report = iixml_bench::cpubench::run(quick);
        report.print_table();
        match report.write_json() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_cpu.json: {e}");
                std::process::exit(1);
            }
        }
        // The in-run gates. The sequential speedup row holds on any
        // host: both interned kernels must beat the preserved PR 3
        // paths by 1.3x at one thread. The 4-thread scaling gate only
        // means something when the host actually has cores to scale
        // onto, so it relaxes to the sequential row on single-core
        // runners.
        let iseq = report.intersect_seq_speedup();
        let mseq = report.minimize_seq_speedup();
        println!("\nsequential speedup: intersect {iseq:.2}x, minimize {mseq:.2}x");
        let mut failed = false;
        if iseq < 1.3 {
            eprintln!("FAIL: interned intersect only {iseq:.2}x over the PR 3 path (< 1.3x)");
            failed = true;
        }
        if mseq < 1.3 {
            eprintln!("FAIL: interned minimize only {mseq:.2}x over the PR 3 path (< 1.3x)");
            failed = true;
        }
        if report.threads_available > 1 {
            let i4 = report.post_speedup("intersect_product", 4);
            let m4 = report.post_speedup("minimize_product", 4);
            println!("4-thread speedup: intersect {i4:.2}x, minimize {m4:.2}x");
            if i4 < 1.5 {
                eprintln!("FAIL: 4-thread intersect speedup {i4:.2}x < 1.5x on a multi-core host");
                failed = true;
            }
            if m4 < 1.5 {
                eprintln!("FAIL: 4-thread minimize speedup {m4:.2}x < 1.5x on a multi-core host");
                failed = true;
            }
        } else {
            println!("single hardware thread: 4-thread gate relaxed to the sequential row");
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if std::env::args().any(|a| a == "--bench-contain") {
        let quick = std::env::args().any(|a| a == "--quick");
        let report = iixml_bench::containbench::run(quick);
        report.print_table();
        match report.write_json() {
            Ok(path) => println!("\nwrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_contain.json: {e}");
                std::process::exit(1);
            }
        }
        // The in-run gates: the cache must remove at least 30% of the
        // source round-trips on the subsumption-heavy mix, stay
        // byte-invisible in answers and knowledge, and cost under 5%
        // of a cache-miss fetch per lookup.
        let red = report.fetch_reduction();
        let overhead = report.check_overhead_ratio();
        let mut failed = false;
        if red < 0.30 {
            eprintln!("FAIL: fetch reduction {red:.2} below the 0.30 line");
            failed = true;
        }
        if !report.bytes_identical {
            eprintln!("FAIL: cache on/off transcripts diverged — the cache is not byte-invisible");
            failed = true;
        }
        if overhead >= 0.05 {
            eprintln!(
                "FAIL: containment lookup costs {:.1}% of a cache-miss fetch (>= 5%)",
                100.0 * overhead
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    if let Some(at) = std::env::args().position(|a| a == "--diff-contain") {
        let args: Vec<String> = std::env::args().collect();
        let (Some(old_path), Some(new_path)) = (args.get(at + 1), args.get(at + 2)) else {
            eprintln!("usage: report --diff-contain OLD.json NEW.json");
            std::process::exit(1);
        };
        diff_contain(old_path, new_path);
        return;
    }
    if let Some(at) = std::env::args().position(|a| a == "--diff-cpu") {
        let args: Vec<String> = std::env::args().collect();
        let (Some(old_path), Some(new_path)) = (args.get(at + 1), args.get(at + 2)) else {
            eprintln!("usage: report --diff-cpu OLD.json NEW.json");
            std::process::exit(1);
        };
        diff_cpu(old_path, new_path);
        return;
    }
    if std::env::args().any(|a| a == "--trajectory") {
        trajectory();
        return;
    }
    if let Some(at) = std::env::args().position(|a| a == "--diff-serve") {
        let args: Vec<String> = std::env::args().collect();
        let (Some(old_path), Some(new_path)) = (args.get(at + 1), args.get(at + 2)) else {
            eprintln!("usage: report --diff-serve OLD.json NEW.json");
            std::process::exit(1);
        };
        diff_serve(old_path, new_path);
        return;
    }
    if let Some(at) = std::env::args().position(|a| a == "--diff-store2") {
        let args: Vec<String> = std::env::args().collect();
        let (Some(old_path), Some(new_path)) = (args.get(at + 1), args.get(at + 2)) else {
            eprintln!("usage: report --diff-store2 OLD.json NEW.json");
            std::process::exit(1);
        };
        diff_store2(old_path, new_path);
        return;
    }
    if std::env::args().any(|a| a == "--json") {
        json_report(with_obs);
        return;
    }
    println!("# Experiment report (generated by `cargo run -p iixml-bench --bin report`)\n");

    // ---------------------------------------------------------------
    println!("## E5 — Example 3.2 blowup: representation size vs n\n");
    println!("| n | Refine (disjunctive) | Refine+ (conjunctive) | linear queries (Lemma 3.12) | with aux queries (Prop 3.13) |");
    println!("|---|---|---|---|---|");
    for n in 1..=9usize {
        let r = *refine_blowup_sizes(n).last().unwrap();
        let c = *conjunctive_blowup_sizes(n).last().unwrap();
        let l = *linear_chain_sizes(n).last().unwrap();
        let a = auxiliary_chain_size(n);
        println!("| {n} | {r} | {c} | {l} | {a} |");
    }
    println!("\nPaper's claim: Refine exponential (2^n), Refine+ linear (Cor 3.9), linear\nqueries polynomial (Lemma 3.12), auxiliary queries polynomial (Prop 3.13).\n");

    // ---------------------------------------------------------------
    println!("## E4/E9/E10/E11 — PTIME operations on growing catalogs\n");
    println!("| products | knowledge size | refine step (ms) | q(T) (ms) | answerable? (ms) | completion (ms, #local queries) |");
    println!("|---|---|---|---|---|---|");
    for products in [5usize, 20, 80, 200] {
        let mut cat = catalog(products, 7);
        let q_view = catalog_query_price_below(&mut cat.alpha, 250);
        let q_cam = catalog_query_camera_pictures(&mut cat.alpha);
        let ans = q_view.eval(&cat.doc);
        let (knowledge, t_refine) = time_ms(|| {
            let mut r = iixml_core::Refiner::new(&cat.alpha);
            r.refine(&cat.alpha, &q_view, &ans).unwrap();
            r.current().clone()
        });
        let (_, t_qt) = time_ms(|| knowledge.query(&q_cam));
        let (_, t_ansable) = time_ms(|| knowledge.query(&q_cam).fully_answerable());
        let ((), t_completion) = {
            let med = Mediator::new(&knowledge);
            let (_c, t) = time_ms(|| med.complete(&q_cam));
            ((), t)
        };
        let nq = Mediator::new(&knowledge).complete(&q_cam).queries.len();
        println!(
            "| {products} | {} | {t_refine:.2} | {t_qt:.2} | {t_ansable:.2} | {t_completion:.2} ({nq}) |",
            knowledge.size()
        );
    }
    println!("\nPaper's claim: all four operations PTIME in the incomplete tree\n(Theorems 3.4, 3.14, Corollary 3.15, Theorem 3.19).\n");

    // ---------------------------------------------------------------
    println!("## E12 — Theorem 3.6 SAT reduction\n");
    println!("| formula | queries | knowledge size | possible prefix (val=1) | brute-force SAT | decide (ms) |");
    println!("|---|---|---|---|---|---|");
    let formulas = [
        (
            "1var sat",
            Cnf {
                num_vars: 1,
                clauses: vec![[1, 1, 1]],
            },
        ),
        (
            "1var unsat",
            Cnf {
                num_vars: 1,
                clauses: vec![[1, 1, 1], [-1, -1, -1]],
            },
        ),
        (
            "2var xor",
            Cnf {
                num_vars: 2,
                clauses: vec![[1, 2, 2], [-1, -2, -2]],
            },
        ),
        (
            "2var unsat",
            Cnf {
                num_vars: 2,
                clauses: vec![[1, 2, 2], [-1, 2, 2], [1, -2, -2], [-1, -2, -2]],
            },
        ),
        (
            "3var sat",
            Cnf {
                num_vars: 3,
                clauses: vec![[1, -2, 3], [-1, 2, -3], [2, 3, 3]],
            },
        ),
    ];
    for (name, cnf) in &formulas {
        let enc = encode(cnf);
        let (got, t) = time_ms(|| enc.possible_prefix_val1());
        let brute = cnf.brute_force_sat();
        assert_eq!(got, brute);
        println!(
            "| {name} | {} | {} | {got} | {brute} | {t:.2} |",
            enc.num_queries,
            enc.knowledge_size()
        );
    }
    println!("\nPaper's claim: satisfiable iff root—val(=1) is a possible prefix\n(NP-hardness mechanism); conjunctive knowledge stays polynomial (Cor 3.9).\n");

    // ---------------------------------------------------------------
    println!("## E19 — Webhouse session accounting\n");
    println!("| products | view | local queries | shipped by mediation | full re-ask cost | answered locally after |");
    println!("|---|---|---|---|---|---|");
    for products in [10usize, 40, 120] {
        for full_view in [false, true] {
            let mut cat = catalog(products, 31);
            // A partial view (price band) leaves missing products
            // possible, so the mediator must re-ask at the root; a
            // full-coverage view pins every product, so the mediator
            // descends and fetches only the missing pictures.
            let q_view = if full_view {
                let mut b = iixml_query::PsQueryBuilder::new(
                    &mut cat.alpha,
                    "catalog",
                    iixml_values::Cond::True,
                );
                let root = b.root();
                let p = b.child(root, "product", iixml_values::Cond::True).unwrap();
                b.child(p, "name", iixml_values::Cond::True).unwrap();
                b.child(p, "price", iixml_values::Cond::True).unwrap();
                let c = b.child(p, "cat", iixml_values::Cond::True).unwrap();
                b.child(c, "subcat", iixml_values::Cond::True).unwrap();
                b.build()
            } else {
                catalog_query_price_below(&mut cat.alpha, 250)
            };
            let q_cam = catalog_query_camera_pictures(&mut cat.alpha);
            let mut session = Session::open(
                cat.alpha.clone(),
                Source::new(cat.doc.clone(), Some(cat.ty.clone())),
            );
            session.fetch(&q_view).unwrap();
            let before = session.source().nodes_shipped;
            let _ = session.answer_with_mediation(&q_cam).unwrap();
            let shipped = session.source().nodes_shipped - before;
            let full = q_cam.eval(&cat.doc).len();
            let local = session.answer_locally(&q_cam).is_complete();
            println!(
                "| {products} | {} | {} | {shipped} | {full} | {local} |",
                if full_view {
                    "all products"
                } else {
                    "price<250"
                },
                session.mediator_queries,
            );
        }
    }
    println!("\nPaper's claim: the mediator's completion is non-redundant (Thm 3.19).\nWith a full-coverage view, the local queries descend into known products\nand ship only the missing pictures — well below the full re-ask cost.\n");

    // ---------------------------------------------------------------
    println!("## E18 — Order discussion (Section 4)\n");
    println!("| ordered type | q1 answer (a's) | q2 answer (b's) | merge |");
    println!("|---|---|---|---|");
    let a = Label(0);
    let b = Label(1);
    let scenarios: Vec<(&str, Regex)> = vec![
        (
            "a* b*",
            Regex::cat(Regex::star(Regex::Sym(a)), Regex::star(Regex::Sym(b))),
        ),
        (
            "(a+b)*",
            Regex::star(Regex::alt(Regex::Sym(a), Regex::Sym(b))),
        ),
        (
            "(ab)*",
            Regex::star(Regex::cat(Regex::Sym(a), Regex::Sym(b))),
        ),
    ];
    for (name, ty) in &scenarios {
        let res = merge_answers(
            ty,
            a,
            &[Rat::from(1), Rat::from(2)],
            b,
            &[Rat::from(3), Rat::from(4)],
        );
        let desc = match res {
            MergeResult::Unique(_) => "unique — q3 answerable".to_string(),
            MergeResult::Ambiguous(n) => {
                format!("ambiguous ({n}+ interleavings) — q3 not answerable")
            }
            MergeResult::Inconsistent => "inconsistent".to_string(),
        };
        println!("| {name} | [1,2] | [3,4] | {desc} |");
    }
    println!("\nPaper's claim: under a*b* the interleaving is forced; under (a+b)* the\norder information is genuinely missing.\n");

    // ---------------------------------------------------------------
    println!("## Sanity — answering-with-views consistency at scale\n");
    let (mut cat, knowledge) = refined_catalog(120, 99);
    let q_cheap = catalog_query_price_below(&mut cat.alpha, 150);
    let described = knowledge.query(&q_cheap);
    let ans = described.the_answer();
    let direct = q_cheap.eval(&cat.doc).tree;
    let agree = match (&ans, &direct) {
        (Some(x), Some(y)) => x.same_tree(y),
        (x, y) => x.is_none() == y.is_none(),
    };
    println!(
        "120-product catalog: cheap-price query answerable from the 250-price view: {} (answer matches source: {agree})",
        described.fully_answerable()
    );
    assert!(described.fully_answerable() && agree);

    if with_obs {
        println!("\n## Observability snapshot\n");
        println!(
            "```json\n{}\n```",
            iixml_obs::snapshot().to_json_value().render_pretty()
        );
    }
}
