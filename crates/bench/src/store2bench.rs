//! Group-commit, compaction, and concurrent-recovery workloads — the
//! `BENCH_store2.json` emitter (PR 6).
//!
//! Four cost families of the upgraded durability layer:
//!
//! * `append baseline` — per-record durable append under the default
//!   flush policy (one fsync per record; the BENCH_pr4 ceiling);
//! * `append batched` — the same records through a batched
//!   [`FlushPolicy`] with an explicit `sync()` barrier at the end —
//!   the headline: one fsync amortized over a whole batch;
//! * `compaction` — live bytes and segments of a snapshotted chain
//!   after automatic segment retirement, against the same chain with
//!   no snapshots (nothing retirable);
//! * `recovery` — wall time of recovering a fleet of independent
//!   journals through `Webhouse::recover_sessions` at par widths 1 and
//!   4, with a byte-identity check across widths.
//!
//! The trajectory gate (`report -- --bench-store2` and the CI
//! `bench-trajectory` job) enforces the *in-run* batched/baseline
//! speedup rather than an absolute appends/sec, so the ≥10x claim is
//! meaningful on any disk; the absolute numbers are still emitted for
//! the committed baseline diff.

use crate::parbench::median_ns;
use iixml_core::Refiner;
use iixml_obs::json::Json;
use iixml_query::{Answer, PsQuery};
use iixml_store::wal::{encode_frame_into, Wal, FORMAT_VERSION, SEGMENT_MAGIC};
use iixml_store::{recover, FlushPolicy, RecoveryMode, RecoveryStatus, SessionJournal, StoreIo};
use iixml_tree::{Alphabet, DataTree};
use iixml_webhouse::{Source, Webhouse};
use std::path::PathBuf;

/// Compaction outcome on a snapshotted chain.
pub struct CompactionStats {
    /// Records in the journal.
    pub chain: usize,
    /// Segments still on disk after automatic retirement.
    pub live_segments: usize,
    /// Segments retired (the first live segment's index).
    pub retired_segments: u64,
    /// Bytes on disk (segments only) after retirement.
    pub live_bytes: u64,
    /// Bytes the same chain occupies with no snapshot cadence (nothing
    /// retirable — the unbounded-log baseline).
    pub uncompacted_bytes: u64,
}

/// Concurrent fleet recovery at two par widths.
pub struct ConcurrentRecovery {
    /// Independent journaled sessions recovered per run.
    pub sessions: usize,
    /// Records per journal.
    pub chain: usize,
    /// Median ns for the whole fleet at width 1.
    pub width1_ns: f64,
    /// Median ns for the whole fleet at width 4.
    pub width4_ns: f64,
    /// Whether the recovered knowledge was byte-identical across
    /// widths (the order-preserving determinism contract).
    pub deterministic: bool,
}

/// The full PR 6 durability report.
pub struct Store2Report {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Refine appends per timed batch.
    pub append_records: usize,
    /// Median ns per durable append, default policy (fsync/record).
    pub baseline_ns: f64,
    /// Median ns per append under [`FlushPolicy::batched`] including
    /// the closing `sync()` barrier.
    pub batched_ns: f64,
    /// Appends per seam-probe burst (fsync excluded on both sides, so
    /// the burst measures the per-record write path alone).
    pub probe_records: usize,
    /// Best-burst ns per append routed through the [`StoreIo`] seam
    /// (`Wal::append` on the real backend, one seam crossing each).
    pub dispatch_ns: f64,
    /// Best-burst ns per append of the same burst through a handwritten
    /// encode + `write_all` loop with no seam.
    pub raw_ns: f64,
    /// Median of iteration-paired dispatch/raw ratios — the gate
    /// statistic (paired bursts share machine state, so the ratio is
    /// immune to frequency drift across the run).
    pub io_ratio: f64,
    /// Compaction outcome.
    pub compaction: CompactionStats,
    /// Concurrent recovery outcome.
    pub recovery: ConcurrentRecovery,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-store2-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A catalog fixture that keeps its document (fleet recovery needs a
/// fresh [`Source`] per session) and pre-generates the query pool so
/// the frozen alphabet can spell every record.
struct Fixture {
    alpha: Alphabet,
    initial: iixml_core::IncompleteTree,
    doc: DataTree,
    steps: Vec<(PsQuery, Answer)>,
}

fn fixture(products: usize, steps: usize, seed: u64) -> Fixture {
    let mut cat = iixml_gen::catalog(products, seed);
    let bounds = [150i64, 200, 250, 300, 400, 500];
    let mut queries: Vec<PsQuery> = bounds
        .iter()
        .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
        .collect();
    queries.push(iixml_gen::catalog_query_camera_pictures(&mut cat.alpha));
    let alpha = cat.alpha.clone();
    let initial = Refiner::new(&alpha).current().clone();
    let steps = queries
        .iter()
        .cycle()
        .take(steps)
        .map(|q| (q.clone(), q.eval(&cat.doc)))
        .collect();
    Fixture {
        alpha,
        initial,
        doc: cat.doc,
        steps,
    }
}

/// Appends the fixture's refine chain under `policy`, closing with the
/// `sync()` barrier, and returns the whole-chain cost (the caller
/// divides by the record count). Journal creation and the open record
/// happen *outside* the timed region — the measurement is the steady
/// state of the append path, where the policies actually differ.
fn timed_chain(fx: &Fixture, dir: &std::path::Path, policy: FlushPolicy, samples: usize) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let _ = std::fs::remove_dir_all(dir);
            std::fs::create_dir_all(dir).unwrap();
            let mut journal = SessionJournal::create(dir).unwrap();
            journal.set_segment_bytes(256 * 1024);
            journal.set_snapshot_every(None);
            journal.set_flush_policy(policy).unwrap();
            journal.log_open(&fx.alpha, &fx.initial).unwrap();
            let t0 = std::time::Instant::now();
            for (q, ans) in &fx.steps {
                journal.log_refine(&fx.alpha, q, ans).unwrap();
            }
            journal.sync().unwrap();
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Stand-ins for the store's `OBS_APPENDS`/`OBS_FSYNCS` lazy counters:
/// same discipline (enabled check, one-time slot resolution, relaxed
/// add) without registering bench-only keys in the metrics registry
/// (iixml-vet's metrics rule keeps the key catalog in `iixml_obs::keys`).
static RAW_APPENDS_CELL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
static RAW_APPENDS: std::sync::OnceLock<&'static std::sync::atomic::AtomicU64> =
    std::sync::OnceLock::new();

/// A faithful replica of the *pre-seam* WAL writer (the shape shipped
/// before the `StoreIo` abstraction): a bare `std::fs::File` plus the
/// same per-append bookkeeping — frame encode, roll check, error
/// mapping into [`StoreError`], sync-flag check, length accounting,
/// metrics touch. The one pre-seam cost deliberately *omitted* is the
/// per-append `seg_path` recomputation (a `PathBuf` build the seam
/// refactor removed); leaving it out handicaps the baseline in the
/// raw side's favor, so the measured ratio is an upper bound on the
/// seam's true cost.
struct PreSeamWal {
    dir: PathBuf,
    file: std::fs::File,
    seg_len: u64,
    segment_bytes: u64,
    sync: bool,
}

impl PreSeamWal {
    #[inline]
    fn append(&mut self, payload: &[u8]) -> Result<(), iixml_store::StoreError> {
        let mut frame = Vec::new();
        encode_frame_into(&mut frame, payload);
        self.write_batch(&frame, 1)
    }

    #[inline]
    fn write_batch(&mut self, bytes: &[u8], records: u64) -> Result<(), iixml_store::StoreError> {
        use std::io::Write as _;
        if self.seg_len >= self.segment_bytes {
            unreachable!("seam probe never rolls");
        }
        self.file
            .write_all(bytes)
            .map_err(|e| iixml_store::StoreError::io(&self.dir, e))?;
        if self.sync {
            self.file
                .sync_data()
                .map_err(|e| iixml_store::StoreError::io(&self.dir, e))?;
        }
        self.seg_len += bytes.len() as u64;
        if iixml_obs::enabled() {
            RAW_APPENDS
                .get_or_init(|| &RAW_APPENDS_CELL)
                .fetch_add(records, std::sync::atomic::Ordering::Relaxed);
        }
        Ok(())
    }
}

fn segment_bytes_on_disk(dir: &std::path::Path) -> u64 {
    iixml_store::wal::Wal::segments(dir)
        .unwrap()
        .iter()
        .map(|(_, p)| std::fs::metadata(p).unwrap().len())
        .sum()
}

/// Runs every group; `quick` shrinks workloads and sample counts.
pub fn run(quick: bool) -> Store2Report {
    // -- append: default policy vs batched policy ----------------------
    // Same burst size in both modes — the CI trajectory job diffs a
    // quick run against the committed full baseline, so the append
    // numbers must be commensurable; quick only trims the sample
    // count. (A fsync-bound sample is ~20 ms, so even the full sample
    // count is cheap.)
    let append_records = 128;
    let append_samples = if quick { 7 } else { 15 };
    let fx = fixture(2, append_records, 0xBE7C);
    let dir = scratch("append");
    let baseline_ns =
        timed_chain(&fx, &dir, FlushPolicy::default(), append_samples) / append_records as f64;
    // The workload is a burst of appends closed by one `sync()`
    // barrier, so the batched side uses byte-bounded batches sized to
    // hold the burst (a 256 KiB segment) — the barrier's fsync is the
    // batch's only fsync, which is exactly the group-commit claim
    // being measured. Record- and linger-bounded flushing is exercised
    // (and asserted on) in the wal unit tests and the torn-batch
    // recovery matrix.
    let burst = FlushPolicy {
        max_batch_bytes: 256 * 1024,
        max_batch_records: u64::MAX,
        max_linger_ticks: u64::MAX,
    };
    let batched_ns = timed_chain(&fx, &dir, burst, append_samples) / append_records as f64;
    let _ = std::fs::remove_dir_all(&dir);

    // -- io dispatch: the StoreIo seam on the append write path --------
    // PR 9 routes every durability byte through the StoreIo enum (real
    // vs fault-injecting backend), plus a sticky-fault check per
    // append. This measures that seam at its *densest* crossing rate:
    // `Wal::append` with per-append fsync off issues one seam-mediated
    // `write_all` per record, against a [`PreSeamWal`] — a faithful
    // replica of the writer as it shipped before the seam (bare
    // `std::fs::File`, same frame encode, roll check, error mapping,
    // length accounting, metrics touch) — so the delta is the StoreIo
    // indirection plus the sticky-fault check, the two things the
    // seam refactor added to the write path. Group-commit batching
    // crosses the seam once per *burst*, so the per-record ratio here
    // is a strict upper bound on the batched-append overhead. fsync is
    // excluded from the timed region on both sides: it is the identical
    // syscall through either path, and its device-dependent latency
    // (~100µs, heavy-tailed) would otherwise swamp the nanosecond-scale
    // seam signal. Payloads are sized to the measured mean journal
    // record (~390 B framed — see the compaction fixture's
    // bytes-per-record), so the per-call seam cost is weighed against
    // a realistic write, not a toy one. Machine state (CPU frequency,
    // container throttling) drifts across a run, so the gate statistic
    // is the median of *iteration-paired* ratios — the two sides of
    // one iteration run back-to-back under the same machine state, and
    // alternating their order cancels any systematic first-mover
    // advantage. The per-side ns figures reported alongside are each
    // side's best burst (pure CPU + page-cache writes, so the minimum
    // is the interference-free cost). The report gate requires the
    // ratio ≤ 1.03 (see DESIGN.md §14).
    let probe_records = 2048usize;
    let payloads: Vec<Vec<u8>> = (0..probe_records)
        .map(|i| format!("dispatch-probe-{i:04}-{}", "y".repeat(360)).into_bytes())
        .collect();
    // Bursts are fsync-free (~2ms each), so a deep sample pool is
    // cheap and the per-side minimum has many clean windows to find.
    let io_samples = if quick { 65 } else { 129 };
    let dispatch_dir = scratch("dispatch");
    let raw_dir = scratch("raw");
    let timed_dispatch = |payloads: &[Vec<u8>]| -> f64 {
        // Seam side: Wal::create_with(StoreIo::real()), one write_all
        // through the seam per append, durability barrier after t1.
        let _ = std::fs::remove_dir_all(&dispatch_dir);
        std::fs::create_dir_all(&dispatch_dir).unwrap();
        let mut wal = Wal::create_with(&dispatch_dir, StoreIo::real()).unwrap();
        wal.sync = false;
        wal.segment_bytes = u64::MAX;
        // Warm append outside the timed region so file creation and the
        // first page-cache extension bill neither side's burst.
        wal.append(b"warm").unwrap();
        let t0 = std::time::Instant::now();
        for p in payloads {
            wal.append(p).unwrap();
        }
        t0.elapsed().as_nanos() as f64
    };
    let timed_raw = |payloads: &[Vec<u8>]| -> f64 {
        let _ = std::fs::remove_dir_all(&raw_dir);
        std::fs::create_dir_all(&raw_dir).unwrap();
        let mut file = std::fs::File::create(raw_dir.join("seg-000000.wal")).unwrap();
        use std::io::Write as _;
        file.write_all(&SEGMENT_MAGIC).unwrap();
        file.write_all(&[FORMAT_VERSION]).unwrap();
        let mut warm = Vec::new();
        encode_frame_into(&mut warm, b"warm");
        file.write_all(&warm).unwrap();
        let mut wal = PreSeamWal {
            dir: raw_dir.clone(),
            file,
            seg_len: 8 + warm.len() as u64,
            segment_bytes: u64::MAX,
            sync: false,
        };
        let t0 = std::time::Instant::now();
        for p in payloads {
            wal.append(p).unwrap();
        }
        t0.elapsed().as_nanos() as f64
    };
    let mut dispatch_times: Vec<f64> = Vec::with_capacity(io_samples);
    let mut raw_times: Vec<f64> = Vec::with_capacity(io_samples);
    for s in 0..io_samples {
        if s % 2 == 0 {
            dispatch_times.push(timed_dispatch(&payloads));
            raw_times.push(timed_raw(&payloads));
        } else {
            raw_times.push(timed_raw(&payloads));
            dispatch_times.push(timed_dispatch(&payloads));
        }
    }
    let _ = std::fs::remove_dir_all(&dispatch_dir);
    let _ = std::fs::remove_dir_all(&raw_dir);
    let mut pair_ratios: Vec<f64> = dispatch_times
        .iter()
        .zip(&raw_times)
        .map(|(d, r)| d / r.max(1.0))
        .collect();
    pair_ratios.sort_by(f64::total_cmp);
    let io_ratio = pair_ratios[pair_ratios.len() / 2];
    dispatch_times.sort_by(f64::total_cmp);
    raw_times.sort_by(f64::total_cmp);
    let dispatch_ns = dispatch_times[0] / probe_records as f64;
    let raw_ns = raw_times[0] / probe_records as f64;

    // -- compaction: live footprint of a snapshotted chain -------------
    let chain = if quick { 64 } else { 192 };
    let cfx = fixture(3, chain, 0xC0DA);
    let build = |dir: &std::path::Path, every: Option<u64>| -> usize {
        let mut journal = SessionJournal::create(dir).unwrap();
        journal.set_segment_bytes(4 * 1024);
        journal.set_snapshot_every(every);
        let mut refiner = Refiner::new(&cfx.alpha);
        journal.log_open(&cfx.alpha, &cfx.initial).unwrap();
        for (q, ans) in &cfx.steps {
            refiner.refine(&cfx.alpha, q, ans).unwrap();
            journal.log_refine(&cfx.alpha, q, ans).unwrap();
            journal
                .maybe_snapshot(&cfx.alpha, refiner.current())
                .unwrap();
        }
        journal.seq() as usize
    };
    let compacted_dir = scratch("compact");
    let total = build(&compacted_dir, Some(16));
    let plain_dir = scratch("uncompacted");
    build(&plain_dir, None);
    let segs = iixml_store::wal::Wal::segments(&compacted_dir).unwrap();
    let rec = recover(&compacted_dir, RecoveryMode::Degrade).unwrap();
    assert_eq!(rec.status, RecoveryStatus::Clean, "compacted chain dirty");
    assert_eq!(rec.replayed, total, "compacted chain lost records");
    drop(rec);
    let compaction = CompactionStats {
        chain: total,
        live_segments: segs.len(),
        retired_segments: segs.first().map_or(0, |&(i, _)| i),
        live_bytes: segment_bytes_on_disk(&compacted_dir),
        uncompacted_bytes: segment_bytes_on_disk(&plain_dir),
    };
    let _ = std::fs::remove_dir_all(&compacted_dir);
    let _ = std::fs::remove_dir_all(&plain_dir);

    // -- recovery: fleet restart at widths 1 and 4 ---------------------
    let sessions = 8usize;
    let rchain = if quick { 16 } else { 48 };
    let fleet: Vec<(String, PathBuf, Fixture)> = (0..sessions)
        .map(|s| {
            let fx = fixture(2, rchain, 0xF1EE7 ^ s as u64);
            let dir = scratch(&format!("fleet-{s}"));
            let mut journal = SessionJournal::create(&dir).unwrap();
            journal.set_snapshot_every(Some(8));
            let mut refiner = Refiner::new(&fx.alpha);
            journal.log_open(&fx.alpha, &fx.initial).unwrap();
            for (q, ans) in &fx.steps {
                refiner.refine(&fx.alpha, q, ans).unwrap();
                journal.log_refine(&fx.alpha, q, ans).unwrap();
                journal
                    .maybe_snapshot(&fx.alpha, refiner.current())
                    .unwrap();
            }
            (format!("s{s:02}"), dir, fx)
        })
        .collect();
    let recover_fleet = || -> Vec<String> {
        let mut house: Webhouse<Source> = Webhouse::new();
        let journals = fleet
            .iter()
            .map(|(name, dir, fx)| (name.clone(), dir.clone(), Source::new(fx.doc.clone(), None)))
            .collect();
        house.recover_sessions(journals).unwrap();
        fleet
            .iter()
            .map(|(name, _, _)| {
                let session = house.session(name).unwrap();
                let alpha = session.alphabet().clone();
                iixml_core::io::write_incomplete_xml(session.knowledge(), &alpha)
            })
            .collect()
    };
    // The ratio of two fleet-recovery medians is diffed by the CI
    // trajectory gate, so it gets a higher sample count than the
    // one-sided measurements.
    let recovery_samples = if quick { 5 } else { 9 };
    let mut widths_ns = [0.0f64; 2];
    let mut knowledge: Vec<Vec<String>> = Vec::new();
    for (i, width) in [1usize, 4].into_iter().enumerate() {
        iixml_par::set_threads(Some(width));
        widths_ns[i] = median_ns(recovery_samples, || {
            let _ = recover_fleet();
        });
        knowledge.push(recover_fleet());
    }
    iixml_par::set_threads(None);
    let recovery = ConcurrentRecovery {
        sessions,
        chain: rchain,
        width1_ns: widths_ns[0],
        width4_ns: widths_ns[1],
        deterministic: knowledge[0] == knowledge[1],
    };
    for (_, dir, _) in &fleet {
        let _ = std::fs::remove_dir_all(dir);
    }

    Store2Report {
        quick,
        append_records,
        baseline_ns,
        batched_ns,
        probe_records,
        dispatch_ns,
        raw_ns,
        io_ratio,
        compaction,
        recovery,
    }
}

impl Store2Report {
    /// Appends per second under the default (fsync-per-record) policy.
    pub fn baseline_appends_per_sec(&self) -> f64 {
        1e9 / self.baseline_ns.max(1.0)
    }

    /// Appends per second under the batched policy (fsyncs amortized).
    pub fn batched_appends_per_sec(&self) -> f64 {
        1e9 / self.batched_ns.max(1.0)
    }

    /// The in-run group-commit speedup (the ≥10x gate reads this — it
    /// compares like with like on the same disk in the same run).
    pub fn batch_speedup(&self) -> f64 {
        self.baseline_ns / self.batched_ns.max(1.0)
    }

    /// StoreIo-seam cost per append-path write: `Wal::append` over the
    /// real backend vs the seamless handwritten loop (the ≤1.03 gate).
    /// One seam crossing per record bounds the batched path, which
    /// crosses once per burst.
    pub fn io_overhead_ratio(&self) -> f64 {
        self.io_ratio
    }

    /// Fleet-recovery ratio width1/width4 (≥ 1.0 means the pool helps;
    /// the gate only requires it not to *hurt* — single-core runners
    /// legitimately sit near 1.0).
    pub fn recovery_par_ratio(&self) -> f64 {
        self.recovery.width1_ns / self.recovery.width4_ns.max(1.0)
    }

    /// Live-bytes fraction of the unbounded log (< 1.0 once compaction
    /// retires anything).
    pub fn compaction_ratio(&self) -> f64 {
        self.compaction.live_bytes as f64 / (self.compaction.uncompacted_bytes as f64).max(1.0)
    }

    /// The machine-readable form committed as `BENCH_store2.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("pr", 6u64)
            .set("quick", self.quick)
            .set(
                "append",
                Json::obj()
                    .set("records", self.append_records)
                    .set("baseline_ns_per_append", self.baseline_ns)
                    .set("batched_ns_per_append", self.batched_ns)
                    .set("baseline_appends_per_sec", self.baseline_appends_per_sec())
                    .set("batched_appends_per_sec", self.batched_appends_per_sec())
                    .set("batch_speedup", self.batch_speedup())
                    .set("probe_records", self.probe_records)
                    .set("dispatch_ns_per_append", self.dispatch_ns)
                    .set("raw_ns_per_append", self.raw_ns)
                    .set("io_overhead_ratio", self.io_overhead_ratio()),
            )
            .set(
                "compaction",
                Json::obj()
                    .set("chain", self.compaction.chain)
                    .set("live_segments", self.compaction.live_segments)
                    .set("retired_segments", self.compaction.retired_segments)
                    .set("live_bytes", self.compaction.live_bytes)
                    .set("uncompacted_bytes", self.compaction.uncompacted_bytes)
                    .set("compaction_ratio", self.compaction_ratio()),
            )
            .set(
                "recovery",
                Json::obj()
                    .set("sessions", self.recovery.sessions)
                    .set("chain", self.recovery.chain)
                    .set("width1_ns", self.recovery.width1_ns)
                    .set("width4_ns", self.recovery.width4_ns)
                    .set("recovery_par_ratio", self.recovery_par_ratio())
                    .set("deterministic", self.recovery.deterministic),
            )
    }

    /// Prints the human-readable table.
    pub fn print_table(&self) {
        println!(
            "store group-commit / compaction / concurrent recovery ({} samples median)",
            if self.quick { "quick" } else { "full" }
        );
        println!(
            "\nappend — {} refine records per batch\n  default policy  {:>10} per append ({:.0} appends/s, fsync each)\n  batched policy  {:>10} per append ({:.0} appends/s, fsync amortized)\n  group-commit speedup: {:.1}x",
            self.append_records,
            crate::harness::fmt_ns(self.baseline_ns),
            self.baseline_appends_per_sec(),
            crate::harness::fmt_ns(self.batched_ns),
            self.batched_appends_per_sec(),
            self.batch_speedup()
        );
        println!(
            "\nio seam — burst of {} appends through StoreIo vs handwritten\n  dispatch  {:>10} per append\n  raw       {:>10} per append  (overhead {:.3}x)",
            self.probe_records,
            crate::harness::fmt_ns(self.dispatch_ns),
            crate::harness::fmt_ns(self.raw_ns),
            self.io_overhead_ratio()
        );
        println!(
            "\ncompaction — chain {}  live segments {} (retired {})  {} B live vs {} B unbounded ({:.2}x)",
            self.compaction.chain,
            self.compaction.live_segments,
            self.compaction.retired_segments,
            self.compaction.live_bytes,
            self.compaction.uncompacted_bytes,
            self.compaction_ratio()
        );
        println!(
            "\nrecovery — {} sessions × {} records\n  width 1  {:>10}\n  width 4  {:>10}  (ratio {:.2}x, deterministic: {})",
            self.recovery.sessions,
            self.recovery.chain,
            crate::harness::fmt_ns(self.recovery.width1_ns),
            crate::harness::fmt_ns(self.recovery.width4_ns),
            self.recovery_par_ratio(),
            self.recovery.deterministic
        );
    }

    /// Writes `BENCH_store2.json` at the repo root; returns the path.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()?
            .join("BENCH_store2.json");
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_is_coherent() {
        let report = run(true);
        assert!(report.batch_speedup() > 1.0, "batching must not slow down");
        assert!(
            report.dispatch_ns > 0.0 && report.raw_ns > 0.0,
            "io-seam probe measured nothing"
        );
        assert!(report.recovery.deterministic);
        assert!(
            report.compaction.retired_segments > 0,
            "the compaction workload retired nothing"
        );
        assert!(report.compaction_ratio() < 1.0);
        let json = report.to_json().render_pretty();
        for key in [
            "batched_appends_per_sec",
            "batch_speedup",
            "io_overhead_ratio",
            "recovery_par_ratio",
            "compaction_ratio",
        ] {
            assert!(json.contains(key), "missing {key} in JSON");
        }
    }
}
