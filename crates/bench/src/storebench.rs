//! Durability workloads and the `BENCH_pr4.json` emitter.
//!
//! Three cost families of the durable session journal (`iixml-store`):
//!
//! * `append` — the per-record cost of a durable Refine append
//!   (encode + CRC + write + fsync), on a realistic catalog session;
//! * `snapshot` — the cost and size of one checksummed atomic snapshot
//!   as the knowledge grows with the catalog;
//! * `recovery` — wall time of `recover` as the chain grows, with and
//!   without a snapshot cadence — the cadence is exactly the knob that
//!   turns O(chain) replay into snapshot + short tail.
//!
//! Both `cargo bench --bench store` and
//! `cargo run -p iixml-bench --bin report -- --bench-pr4` run these
//! through the same code and write the same JSON to the repo root.
//! `--quick` shrinks workloads and sample counts for CI smoke runs.

use crate::parbench::median_ns;
use iixml_core::Refiner;
use iixml_obs::json::Json;
use iixml_query::{Answer, PsQuery};
use iixml_store::{recover, RecoveryMode, RecoveryStatus, SessionJournal};
use iixml_tree::Alphabet;
use std::path::PathBuf;

/// One snapshot-cost row: knowledge scaled by catalog size.
pub struct SnapshotCost {
    /// Products in the catalog behind the knowledge.
    pub products: usize,
    /// Knowledge size (nodes + symbols) being snapshotted.
    pub knowledge_size: usize,
    /// On-disk snapshot file size in bytes.
    pub bytes: u64,
    /// Median ns for one `snapshot_now` (write + rename + ref record).
    pub median_ns: f64,
}

/// One recovery-cost row: a chain of `chain` records recovered whole.
pub struct RecoveryCost {
    /// Records in the journal (open + refines + snapshot refs).
    pub chain: usize,
    /// Snapshot cadence the journal was written with (0 = none).
    pub snapshot_every: u64,
    /// Median ns for a full `recover(dir, Degrade)`.
    pub median_ns: f64,
    /// Records the final recovery replayed (sanity: must be the chain).
    pub replayed: usize,
    /// Whether the final recovery started from a snapshot.
    pub from_snapshot: bool,
}

/// The full PR 4 durability report.
pub struct StoreReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Refine appends in one timed batch.
    pub append_records: usize,
    /// Median ns per durable refine append (includes the fsync).
    pub append_ns: f64,
    /// Snapshot cost vs knowledge size.
    pub snapshots: Vec<SnapshotCost>,
    /// Recovery time vs chain length × snapshot cadence.
    pub recoveries: Vec<RecoveryCost>,
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iixml-storebench-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A catalog fixture whose query pool is generated *before* the journal
/// opens, so the frozen alphabet can spell every record.
struct Fixture {
    alpha: Alphabet,
    initial: iixml_core::IncompleteTree,
    steps: Vec<(PsQuery, Answer)>,
}

fn fixture(products: usize, steps: usize) -> Fixture {
    let mut cat = iixml_gen::catalog(products, 0xBE7C);
    let bounds = [150i64, 200, 250, 300, 400, 500];
    let mut queries: Vec<PsQuery> = bounds
        .iter()
        .map(|&b| iixml_gen::catalog_query_price_below(&mut cat.alpha, b))
        .collect();
    queries.push(iixml_gen::catalog_query_camera_pictures(&mut cat.alpha));
    let alpha = cat.alpha.clone();
    let initial = Refiner::new(&alpha).current().clone();
    let steps = queries
        .iter()
        .cycle()
        .take(steps)
        .map(|q| (q.clone(), q.eval(&cat.doc)))
        .collect();
    Fixture {
        alpha,
        initial,
        steps,
    }
}

/// Writes a journal of `open + steps.len()` refine records (plus the
/// cadence's snapshot refs) into a fresh directory; the refines go
/// through the real Refiner so the logged chain is a real session.
fn write_chain(fx: &Fixture, dir: &std::path::Path, every: Option<u64>) -> usize {
    let mut journal = SessionJournal::create(dir).unwrap();
    journal.set_snapshot_every(every);
    let mut refiner = Refiner::new(&fx.alpha);
    journal.log_open(&fx.alpha, &fx.initial).unwrap();
    for (q, ans) in &fx.steps {
        refiner.refine(&fx.alpha, q, ans).unwrap();
        journal.log_refine(&fx.alpha, q, ans).unwrap();
        journal
            .maybe_snapshot(&fx.alpha, refiner.current())
            .unwrap();
    }
    journal.seq() as usize
}

/// Runs every group; `quick` shrinks workloads and sample counts.
pub fn run(quick: bool) -> StoreReport {
    let samples = if quick { 3 } else { 7 };

    // -- append: per-record durable cost over a timed batch ------------
    let append_records = if quick { 16 } else { 64 };
    let fx = fixture(4, append_records);
    let dir = scratch("append");
    // The whole closure is timed; the fresh-dir setup (one mkdir, one
    // segment create, one open record) amortizes over the batch.
    let append_ns = median_ns(samples, || {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut journal = SessionJournal::create(&dir).unwrap();
        journal.log_open(&fx.alpha, &fx.initial).unwrap();
        for (q, ans) in &fx.steps {
            journal.log_refine(&fx.alpha, q, ans).unwrap();
        }
    }) / append_records as f64;
    let _ = std::fs::remove_dir_all(&dir);

    // -- snapshot: cost and bytes vs knowledge size --------------------
    let product_sizes: &[usize] = if quick { &[2, 8] } else { &[2, 8, 32] };
    let mut snapshots = Vec::new();
    for &products in product_sizes {
        let fx = fixture(products, 1);
        let dir = scratch(&format!("snap{products}"));
        let mut journal = SessionJournal::create(&dir).unwrap();
        journal.log_open(&fx.alpha, &fx.initial).unwrap();
        let mut refiner = Refiner::new(&fx.alpha);
        let (q, ans) = &fx.steps[0];
        refiner.refine(&fx.alpha, q, ans).unwrap();
        journal.log_refine(&fx.alpha, q, ans).unwrap();
        let knowledge = refiner.current().clone();
        let median_ns = median_ns(samples, || {
            journal.snapshot_now(&fx.alpha, &knowledge).unwrap();
        });
        let bytes = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                (p.extension().is_some_and(|x| x == "snap")).then(|| p.metadata().unwrap().len())
            })
            .max()
            .unwrap_or(0);
        snapshots.push(SnapshotCost {
            products,
            knowledge_size: knowledge.size(),
            bytes,
            median_ns,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- recovery: wall time vs chain length × cadence -----------------
    let chains: &[usize] = if quick { &[8, 32] } else { &[8, 32, 128] };
    let mut recoveries = Vec::new();
    for &chain in chains {
        for every in [None, Some(16u64)] {
            let fx = fixture(3, chain);
            let dir = scratch(&format!("rec{chain}-{}", every.unwrap_or(0)));
            let total = write_chain(&fx, &dir, every);
            let median_ns = median_ns(samples, || {
                let rec = recover(&dir, RecoveryMode::Degrade).unwrap();
                assert_eq!(rec.status, RecoveryStatus::Clean);
                assert_eq!(rec.replayed, total);
            });
            let rec = recover(&dir, RecoveryMode::Degrade).unwrap();
            recoveries.push(RecoveryCost {
                chain: total,
                snapshot_every: every.unwrap_or(0),
                median_ns,
                replayed: rec.replayed,
                from_snapshot: rec.from_snapshot.is_some(),
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    StoreReport {
        quick,
        append_records,
        append_ns,
        snapshots,
        recoveries,
    }
}

impl StoreReport {
    /// Appends per second implied by the median per-append cost.
    pub fn appends_per_sec(&self) -> f64 {
        1e9 / self.append_ns.max(1.0)
    }

    /// The recovery speedup the snapshot cadence buys at the longest
    /// chain (the CI gate reads this: it must not be a slowdown).
    pub fn snapshot_recovery_ratio(&self) -> f64 {
        let longest = self.recoveries.iter().map(|r| r.chain).max().unwrap_or(0);
        let at = |every_nonzero: bool| {
            self.recoveries
                .iter()
                .filter(|r| r.chain >= longest.saturating_sub(8))
                .find(|r| (r.snapshot_every > 0) == every_nonzero)
                .map(|r| r.median_ns)
        };
        match (at(false), at(true)) {
            (Some(plain), Some(snap)) => plain / snap.max(1.0),
            _ => 0.0,
        }
    }

    /// The machine-readable form committed as `BENCH_pr4.json`.
    pub fn to_json(&self) -> Json {
        let snapshots: Vec<Json> = self
            .snapshots
            .iter()
            .map(|s| {
                Json::obj()
                    .set("products", s.products)
                    .set("knowledge_size", s.knowledge_size)
                    .set("bytes", s.bytes)
                    .set("median_ns", s.median_ns)
            })
            .collect();
        let recoveries: Vec<Json> = self
            .recoveries
            .iter()
            .map(|r| {
                Json::obj()
                    .set("chain", r.chain)
                    .set("snapshot_every", r.snapshot_every)
                    .set("median_ns", r.median_ns)
                    .set("replayed", r.replayed)
                    .set("from_snapshot", r.from_snapshot)
            })
            .collect();
        Json::obj()
            .set("pr", 4u64)
            .set("quick", self.quick)
            .set(
                "append",
                Json::obj()
                    .set("records", self.append_records)
                    .set("median_ns_per_append", self.append_ns)
                    .set("appends_per_sec", self.appends_per_sec()),
            )
            .set("snapshots", snapshots)
            .set("recoveries", recoveries)
            .set("snapshot_recovery_ratio", self.snapshot_recovery_ratio())
    }

    /// Prints the human-readable table.
    pub fn print_table(&self) {
        println!(
            "store durability ({} samples median)",
            if self.quick { "quick" } else { "full" }
        );
        println!(
            "\nappend — {} refine records per batch\n  {:>10} per durable append ({:.0} appends/s, fsync included)",
            self.append_records,
            crate::harness::fmt_ns(self.append_ns),
            self.appends_per_sec()
        );
        println!("\nsnapshot — cost vs knowledge size");
        for s in &self.snapshots {
            println!(
                "  {:>3} products  knowledge {:>5}  {:>7} B  {:>10}",
                s.products,
                s.knowledge_size,
                s.bytes,
                crate::harness::fmt_ns(s.median_ns)
            );
        }
        println!("\nrecovery — wall time vs chain length × snapshot cadence");
        for r in &self.recoveries {
            println!(
                "  chain {:>3}  every {:>2}  {:>10}  replayed {:>3}  from_snapshot {}",
                r.chain,
                r.snapshot_every,
                crate::harness::fmt_ns(r.median_ns),
                r.replayed,
                r.from_snapshot
            );
        }
        println!(
            "\nsnapshot cadence recovery ratio at the longest chain: {:.2}x",
            self.snapshot_recovery_ratio()
        );
    }

    /// Writes `BENCH_pr4.json` at the repo root; returns the path.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()?
            .join("BENCH_pr4.json");
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_writer_produces_recoverable_journals() {
        let fx = fixture(2, 5);
        let dir = scratch("test-chain");
        let total = write_chain(&fx, &dir, Some(2));
        let rec = recover(&dir, RecoveryMode::Degrade).unwrap();
        assert_eq!(rec.status, RecoveryStatus::Clean);
        assert_eq!(rec.replayed, total);
        assert!(rec.from_snapshot.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
