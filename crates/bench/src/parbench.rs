//! Thread-scaling workloads and the `BENCH_pr3.json` emitter.
//!
//! Three parallelized hot paths are measured at 1/2/4/8 worker threads
//! (`iixml_par::set_threads`), plus the signature-interning micro-bench:
//!
//! * `intersect_e5` — the full Example 3.2 Refine chain, dominated by
//!   the ⋊⋉ product of `refine::intersect` (CPU-bound);
//! * `minimize_product` — bisimulation partition refinement on the
//!   self-product of the blown-up chain (CPU-bound);
//! * `webhouse_fanout16` — one query fanned out over 16
//!   latency-simulating sources (wait-bound: this is the workload whose
//!   speedup survives a single-core host, because sleeping sources
//!   overlap regardless of CPU count);
//! * `sig_interning` — the old `format!`-keyed initial partition vs the
//!   interned `(SymTarget, IntervalSet)` keying that replaced it.
//!
//! Both `cargo bench --bench par` and
//! `cargo run -p iixml-bench --bin report -- --bench-pr3` run these
//! through the same code and write the same JSON to the repo root, so
//! the recorded trajectory never depends on which entry point produced
//! it. `--quick` shrinks workloads and sample counts for CI smoke runs.

use crate::refine_blowup_tree;
use iixml_core::{IncompleteTree, SymTarget};
use iixml_obs::json::Json;
use iixml_query::PsQuery;
use iixml_values::IntervalSet;
use iixml_webhouse::{LatentSource, Source, Webhouse};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Worker widths every scaling group is measured at.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One scaling group: medians (ns) per worker width.
pub struct GroupResult {
    /// Stable group key (also the JSON key).
    pub name: &'static str,
    /// Human description of the workload and its size.
    pub workload: String,
    /// `(threads, median_ns)` in [`THREADS`] order.
    pub by_threads: Vec<(usize, f64)>,
}

impl GroupResult {
    /// Speedup of `threads` relative to the width-1 median.
    pub fn speedup(&self, threads: usize) -> f64 {
        let base = self.by_threads[0].1;
        let at = self
            .by_threads
            .iter()
            .find(|&&(t, _)| t == threads)
            .map(|&(_, ns)| ns)
            .unwrap_or(base);
        base / at
    }
}

/// The full PR 3 scaling report.
pub struct ParReport {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// `std::thread::available_parallelism` on the measuring host —
    /// readers of the JSON need this to interpret CPU-bound curves.
    pub threads_available: usize,
    /// The three scaling groups.
    pub groups: Vec<GroupResult>,
    /// Old string-keyed initial partition, median ns.
    pub sig_string_ns: f64,
    /// Interned-key initial partition, median ns.
    pub sig_interned_ns: f64,
}

pub(crate) fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    if v.len() % 2 == 1 {
        v[v.len() / 2]
    } else {
        (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
    }
}

pub(crate) fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up, not recorded
    let runs: Vec<f64> = (0..samples.max(2))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_nanos() as f64
        })
        .collect();
    median(runs)
}

fn scaling_group(
    name: &'static str,
    workload: String,
    samples: usize,
    mut f: impl FnMut(),
) -> GroupResult {
    let by_threads = THREADS
        .iter()
        .map(|&t| {
            iixml_par::set_threads(Some(t));
            let ns = median_ns(samples, &mut f);
            (t, ns)
        })
        .collect();
    iixml_par::set_threads(None);
    GroupResult {
        name,
        workload,
        by_threads,
    }
}

/// The fan-out fixture: one catalog document behind `sources`
/// latency-wrapped sources, plus the query to fan out.
pub fn fanout_fixture(
    sources: usize,
    latency: Duration,
) -> (Webhouse<LatentSource<Source>>, PsQuery) {
    let mut cat = iixml_gen::catalog(6, 17);
    let q = iixml_gen::catalog_query_price_below(&mut cat.alpha, 250);
    let mut wh = Webhouse::new();
    for i in 0..sources {
        wh.register(
            format!("src{i:02}"),
            cat.alpha.clone(),
            LatentSource::new(Source::new(cat.doc.clone(), Some(cat.ty.clone())), latency),
        );
    }
    (wh, q)
}

/// Runs one fan-out over freshly registered sessions (fresh sessions
/// every time, so each source is actually contacted — a warm session
/// answers locally and never pays the latency).
pub fn fanout_once(sources: usize, latency: Duration) {
    let (mut wh, q) = fanout_fixture(sources, latency);
    let outcomes = wh.fan_out(&q);
    assert_eq!(outcomes.len(), sources);
    assert!(outcomes.iter().all(|(_, a)| a.is_complete()));
}

/// Replicates the pre-PR initial-partition keying: two `format!`
/// allocations per symbol. Kept here (not in `iixml-core`) purely as
/// the micro-bench baseline for the interned keying.
pub fn partition_init_string_keys(it: &IncompleteTree) -> usize {
    let ty = it.ty();
    let mut key_to_block: HashMap<String, usize> = HashMap::new();
    let mut blocks = 0usize;
    for s in ty.syms() {
        let info = ty.info(s);
        let target = match info.target {
            SymTarget::Lab(l) => format!("L{}", l.0),
            SymTarget::Node(nd) => format!("N{}", nd.0),
        };
        let key = format!("{target}|{}", info.cond);
        let next = key_to_block.len();
        let b = *key_to_block.entry(key).or_insert(next);
        blocks = blocks.max(b + 1);
    }
    blocks
}

/// The interned keying `Minimizer::partition` now uses: the structured
/// `(SymTarget, IntervalSet)` pair hashed directly, zero allocations.
pub fn partition_init_interned_keys(it: &IncompleteTree) -> usize {
    let ty = it.ty();
    let mut key_to_block: HashMap<(SymTarget, &IntervalSet), usize> = HashMap::new();
    let mut blocks = 0usize;
    for s in ty.syms() {
        let info = ty.info(s);
        let next = key_to_block.len();
        let b = *key_to_block
            .entry((info.target, &info.cond))
            .or_insert(next);
        blocks = blocks.max(b + 1);
    }
    blocks
}

/// Runs every group and the micro-bench; `quick` shrinks workloads and
/// sample counts for CI smoke runs.
pub fn run(quick: bool) -> ParReport {
    let threads_available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let chain_n = if quick { 5 } else { 7 };
    let samples = if quick { 3 } else { 7 };
    let latency = Duration::from_millis(if quick { 2 } else { 4 });
    let fan_sources = 16;

    let mut groups = Vec::new();

    groups.push(scaling_group(
        "intersect_e5",
        format!("Example 3.2 Refine chain, n = {chain_n} (⋊⋉ product per step)"),
        samples,
        || {
            let t = refine_blowup_tree(chain_n);
            assert!(t.size() > 0);
        },
    ));

    let base = refine_blowup_tree(chain_n);
    let product = iixml_core::refine::intersect(&base, &base).expect("self-product is compatible");
    groups.push(scaling_group(
        "minimize_product",
        format!(
            "bisimulation partition of the chain's self-product ({} symbols)",
            product.ty().sym_count()
        ),
        samples,
        || {
            let m = product.minimize();
            assert!(m.ty().sym_count() <= product.ty().sym_count());
        },
    ));

    groups.push(scaling_group(
        "webhouse_fanout16",
        format!(
            "one query fanned out over {fan_sources} sources with {:?} simulated latency each",
            latency
        ),
        samples,
        || fanout_once(fan_sources, latency),
    ));

    // Micro-bench: string vs interned initial-partition keys on the
    // product's (many-symbol) type. Sequential by construction.
    let micro_samples = samples * 3;
    let sig_string_ns = median_ns(micro_samples, || {
        assert!(partition_init_string_keys(&product) > 0);
    });
    let sig_interned_ns = median_ns(micro_samples, || {
        assert!(partition_init_interned_keys(&product) > 0);
    });

    ParReport {
        quick,
        threads_available,
        groups,
        sig_string_ns,
        sig_interned_ns,
    }
}

impl ParReport {
    /// The machine-readable form committed as `BENCH_pr3.json`.
    pub fn to_json(&self) -> Json {
        let groups: Vec<Json> = self
            .groups
            .iter()
            .map(|g| {
                let results: Vec<Json> = g
                    .by_threads
                    .iter()
                    .map(|&(t, ns)| {
                        Json::obj()
                            .set("threads", t)
                            .set("median_ns", ns)
                            .set("speedup_vs_1", g.speedup(t))
                    })
                    .collect();
                Json::obj()
                    .set("name", g.name)
                    .set("workload", g.workload.clone())
                    .set("results", results)
            })
            .collect();
        Json::obj()
            .set("pr", 3u64)
            .set("quick", self.quick)
            .set("threads_available", self.threads_available)
            .set("groups", groups)
            .set(
                "sig_interning",
                Json::obj()
                    .set("string_keys_ns", self.sig_string_ns)
                    .set("interned_keys_ns", self.sig_interned_ns)
                    .set(
                        "speedup",
                        self.sig_string_ns / self.sig_interned_ns.max(1.0),
                    ),
            )
    }

    /// Prints the human-readable table.
    pub fn print_table(&self) {
        println!(
            "par scaling ({} samples median; host has {} hardware thread(s))",
            if self.quick { "quick" } else { "full" },
            self.threads_available
        );
        for g in &self.groups {
            println!("\n{} — {}", g.name, g.workload);
            for &(t, ns) in &g.by_threads {
                println!(
                    "  t={t}  median {:>10}  speedup {:.2}x",
                    crate::harness::fmt_ns(ns),
                    g.speedup(t)
                );
            }
        }
        println!(
            "\nsig_interning — string {} vs interned {} ({:.2}x)",
            crate::harness::fmt_ns(self.sig_string_ns),
            crate::harness::fmt_ns(self.sig_interned_ns),
            self.sig_string_ns / self.sig_interned_ns.max(1.0),
        );
    }

    /// Writes `BENCH_pr3.json` at the repo root; returns the path.
    pub fn write_json(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()?
            .join("BENCH_pr3.json");
        std::fs::write(&path, self.to_json().render_pretty() + "\n")?;
        Ok(path)
    }

    /// The fan-out group's speedup at `threads` (the CI gate reads
    /// this).
    pub fn fanout_speedup(&self, threads: usize) -> f64 {
        self.groups
            .iter()
            .find(|g| g.name == "webhouse_fanout16")
            .map(|g| g.speedup(threads))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_keyings_count_the_same_blocks() {
        let t = refine_blowup_tree(3);
        let product = iixml_core::refine::intersect(&t, &t).unwrap();
        assert_eq!(
            partition_init_string_keys(&product),
            partition_init_interned_keys(&product)
        );
    }

    #[test]
    fn fanout_fixture_completes_on_all_sources() {
        fanout_once(3, Duration::ZERO);
    }
}
