//! Seeded load generation against an `iixml-serve` server: honest
//! query-mix clients with per-request latency capture, plus a
//! chaos-client mode replaying the misbehaving-client matrix (garbage
//! frames, partial frames, bad CRCs, slow-loris trickle, half-close,
//! disconnect mid-request, over-quota floods).
//!
//! Lives in the bench crate because latency measurement needs the wall
//! clock (`Instant`), which the determinism vet rule confines here.
//! The generator itself is deterministic given its seed: the query mix
//! and chaos modes come from forked [`DetRng`] streams, so a storm is
//! replayable; only the measured latencies vary run to run.

use iixml_gen::rng::DetRng;
use iixml_obs::json::Json;
use iixml_serve::proto::{self, Request};
use iixml_serve::{Client, RespOp};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Price bounds the honest query mix cycles through.
const BOUNDS: [i64; 6] = [150, 200, 250, 300, 400, 500];

/// Honest-load shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server port on 127.0.0.1.
    pub port: u16,
    /// Distinct tenants the sessions spread across.
    pub tenants: usize,
    /// Total sessions (each driven over its own connection).
    pub sessions: usize,
    /// Requests per session (after the open).
    pub requests_per_session: usize,
    /// Catalog size per session source.
    pub products: usize,
    /// Base seed; each session forks its own stream.
    pub seed: u64,
    /// Concurrent client threads.
    pub concurrency: usize,
    /// Client-side read deadline (ms).
    pub read_timeout_ms: u64,
    /// Client-side write deadline (ms).
    pub write_timeout_ms: u64,
    /// Issue a `Sync` barrier before finishing each session.
    pub sync_at_end: bool,
    /// Close (discard) each session when its requests are done.
    pub close_at_end: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            port: 0,
            tenants: 4,
            sessions: 32,
            requests_per_session: 32,
            products: 3,
            seed: 0x10AD,
            concurrency: 8,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            sync_at_end: true,
            close_at_end: false,
        }
    }
}

/// The tenant name for session index `i` under `cfg`.
pub fn tenant_of(cfg: &LoadConfig, i: usize) -> String {
    format!("t{:02}", i % cfg.tenants.max(1))
}

/// The session name for session index `i`.
pub fn session_of(i: usize) -> String {
    format!("s{i:03}")
}

#[derive(Default)]
struct WorkerOut {
    latencies_ns: Vec<u64>,
    requests: u64,
    shed: u64,
    errors: u64,
    sessions_done: u64,
    degraded_durability: u64,
}

/// One honest session's whole life over one connection. Returns what
/// happened; never panics on server refusal (sheds are part of the
/// protocol, not failures).
fn drive_session(cfg: &LoadConfig, i: usize, out: &mut WorkerOut) {
    let tenant = tenant_of(cfg, i);
    let session = session_of(i);
    let mut rng = DetRng::new(cfg.seed).fork(i as u64);
    let Ok(mut client) =
        Client::connect(cfg.port, &tenant, cfg.read_timeout_ms, cfg.write_timeout_ms)
    else {
        out.errors += 1;
        return;
    };
    let seed = cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    match client.open(&session, cfg.products, seed) {
        Ok(r) if r.op == RespOp::Opened => {}
        Ok(r) if r.is_shed() => {
            out.shed += 1;
            return;
        }
        _ => {
            out.errors += 1;
            return;
        }
    }
    let mut done = 0usize;
    while done < cfg.requests_per_session {
        let bound = BOUNDS[rng.below(BOUNDS.len() as u64) as usize];
        let kind = rng.below(4);
        let t0 = Instant::now();
        let resp = match kind {
            0 | 1 => client.fetch(
                &session,
                &format!("catalog/product{{name, price[< {bound}]}}"),
            ),
            2 => client.ask(&session, "catalog/product{name}"),
            _ => client.mediate(
                &session,
                &format!("catalog/product{{name, price[< {bound}], cat[= 1]/subcat}}"),
            ),
        };
        let elapsed = t0.elapsed().as_nanos() as u64;
        match resp {
            Ok(r) if r.is_shed() => {
                out.shed += 1;
                // Honor the retry hint (bounded so floods finish).
                let hint: u64 = r
                    .lines()
                    .get(1)
                    .and_then(|l| l.parse().ok())
                    .unwrap_or(10)
                    .min(50);
                std::thread::sleep(Duration::from_millis(hint));
            }
            Ok(r)
                if matches!(
                    r.op,
                    RespOp::Answer | RespOp::Partial | RespOp::Degraded | RespOp::Err
                ) =>
            {
                out.latencies_ns.push(elapsed);
                out.requests += 1;
                if r.marker().is_some_and(|m| m.starts_with("fault:")) {
                    out.degraded_durability += 1;
                }
                done += 1;
            }
            _ => {
                out.errors += 1;
                return;
            }
        }
    }
    if cfg.sync_at_end && client.sync(&session).is_err() {
        out.errors += 1;
    }
    if cfg.close_at_end && client.close(&session).is_err() {
        out.errors += 1;
    }
    out.sessions_done += 1;
}

/// Honest-load outcome.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests answered (sheds excluded).
    pub requests: u64,
    /// Requests refused by admission control.
    pub shed: u64,
    /// Transport/protocol failures.
    pub errors: u64,
    /// Sessions driven to completion.
    pub sessions_done: u64,
    /// Answers carrying a `fault:` durability marker.
    pub degraded_durability: u64,
    /// Median request latency (µs).
    pub p50_us: f64,
    /// 99th-percentile request latency (µs).
    pub p99_us: f64,
    /// Whole-load wall time (ms).
    pub wall_ms: f64,
    /// Answered requests per second.
    pub requests_per_sec: f64,
    /// Completed sessions per second.
    pub sessions_per_sec: f64,
}

/// Percentile over an unsorted latency sample (ns), by rank.
pub fn percentile_ns(latencies: &mut [u64], p: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_unstable();
    let rank = ((latencies.len() - 1) as f64 * p).round() as usize;
    latencies[rank.min(latencies.len() - 1)] as f64
}

/// Runs the honest load and aggregates latency/throughput.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let t0 = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency.max(1))
            .map(|w| {
                s.spawn(move || {
                    let mut out = WorkerOut::default();
                    let mut i = w;
                    while i < cfg.sessions {
                        drive_session(cfg, i, &mut out);
                        i += cfg.concurrency.max(1);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut latencies: Vec<u64> = Vec::new();
    let mut requests = 0;
    let mut shed = 0;
    let mut errors = 0;
    let mut sessions_done = 0;
    let mut degraded = 0;
    for mut out in outs {
        latencies.append(&mut out.latencies_ns);
        requests += out.requests;
        shed += out.shed;
        errors += out.errors;
        sessions_done += out.sessions_done;
        degraded += out.degraded_durability;
    }
    let p50 = percentile_ns(&mut latencies, 0.50) / 1e3;
    let p99 = percentile_ns(&mut latencies, 0.99) / 1e3;
    let wall_s = (wall_ms / 1e3).max(1e-9);
    LoadReport {
        requests,
        shed,
        errors,
        sessions_done,
        degraded_durability: degraded,
        p50_us: p50,
        p99_us: p99,
        wall_ms,
        requests_per_sec: requests as f64 / wall_s,
        sessions_per_sec: sessions_done as f64 / wall_s,
    }
}

impl LoadReport {
    /// Machine-readable form (the loadgen binary's `--json` output).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("requests", self.requests)
            .set("shed", self.shed)
            .set("errors", self.errors)
            .set("sessions_done", self.sessions_done)
            .set("degraded_durability", self.degraded_durability)
            .set("p50_us", self.p50_us)
            .set("p99_us", self.p99_us)
            .set("wall_ms", self.wall_ms)
            .set("requests_per_sec", self.requests_per_sec)
            .set("sessions_per_sec", self.sessions_per_sec)
    }
}

/// The misbehaving-client matrix. Every mode is connection-local on
/// the server by contract; none should disturb other tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Random bytes instead of a frame.
    Garbage,
    /// A valid frame cut mid-body, then disconnect.
    PartialFrame,
    /// A valid frame with a flipped body bit (CRC mismatch).
    BadCrc,
    /// One byte per write with pauses (read-budget exhaustion).
    SlowLoris,
    /// Immediate write-side shutdown (half-close).
    HalfClose,
    /// A valid request, then disconnect without reading the answer.
    DisconnectMidRequest,
    /// A frame claiming a future protocol version.
    BadVersion,
    /// An honest-protocol burst far past any sane quota.
    QuotaFlood,
}

/// All modes, in rotation order.
pub const CHAOS_MODES: [ChaosMode; 8] = [
    ChaosMode::Garbage,
    ChaosMode::PartialFrame,
    ChaosMode::BadCrc,
    ChaosMode::SlowLoris,
    ChaosMode::HalfClose,
    ChaosMode::DisconnectMidRequest,
    ChaosMode::BadVersion,
    ChaosMode::QuotaFlood,
];

/// One chaos connection. Returns the number of protocol-level
/// requests it managed to issue (floods issue many; most modes 0-1).
pub fn chaos_conn(port: u16, mode: ChaosMode, rng: &mut DetRng) -> u64 {
    let Ok(mut s) = TcpStream::connect(("127.0.0.1", port)) else {
        return 0;
    };
    let _ = s.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = s.set_write_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 256];
    match mode {
        ChaosMode::Garbage => {
            let n = 8 + rng.below(64) as usize;
            let buf: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
            let _ = s.write_all(&buf);
            let _ = s.read(&mut sink);
            0
        }
        ChaosMode::PartialFrame => {
            let frame = proto::encode_request(&Request::Hello {
                tenant: "chaos".into(),
            });
            let cut = 1 + rng.below(frame.len() as u64 - 1) as usize;
            let _ = s.write_all(&frame[..cut]);
            // Drop: the server sees EOF mid-frame.
            0
        }
        ChaosMode::BadCrc => {
            let mut frame = proto::encode_request(&Request::Ping);
            let last = frame.len() - 1;
            frame[last] ^= 0xFF;
            let _ = s.write_all(&frame);
            let _ = s.read(&mut sink);
            0
        }
        ChaosMode::SlowLoris => {
            let frame = proto::encode_request(&Request::Hello {
                tenant: "chaos".into(),
            });
            for b in frame {
                if s.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            let _ = s.read(&mut sink);
            0
        }
        ChaosMode::HalfClose => {
            let _ = s.shutdown(Shutdown::Write);
            let _ = s.read(&mut sink);
            0
        }
        ChaosMode::DisconnectMidRequest => {
            let _ = s.write_all(&proto::encode_request(&Request::Hello {
                tenant: "chaos".into(),
            }));
            let _ = s.write_all(&proto::encode_request(&Request::Open {
                session: "never".into(),
                products: 2,
                seed: rng.next_u64(),
            }));
            // Drop without reading either response.
            1
        }
        ChaosMode::BadVersion => {
            let mut frame = proto::encode_request(&Request::Ping);
            frame[4] = proto::PROTO_VERSION.wrapping_add(9);
            let _ = s.write_all(&frame);
            let _ = s.read(&mut sink);
            0
        }
        ChaosMode::QuotaFlood => {
            // Honest frames, dishonest volume: hammer Ask on a session
            // that does not exist. Every frame is admission-checked, so
            // past the burst the server sheds instead of queueing.
            let _ = s.write_all(&proto::encode_request(&Request::Hello {
                tenant: "flood".into(),
            }));
            let _ = s.read(&mut sink);
            let burst = 64 + rng.below(64);
            let mut sent = 0;
            for _ in 0..burst {
                let frame = proto::encode_request(&Request::Ask {
                    session: "missing".into(),
                    query: "catalog/product{name}".into(),
                });
                if s.write_all(&frame).is_err() {
                    break;
                }
                sent += 1;
                let _ = s.read(&mut sink);
            }
            sent
        }
    }
}

/// Chaos storm outcome.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Connections attempted.
    pub connections: u64,
    /// Protocol requests the storm managed to issue.
    pub requests_issued: u64,
    /// Whether the server still answered a `Ping` after the storm.
    pub server_alive: bool,
}

/// Runs `conns` seeded chaos connections across `concurrency` threads
/// and probes server liveness afterwards.
pub fn run_chaos(port: u16, conns: usize, seed: u64, concurrency: usize) -> ChaosReport {
    let width = concurrency.clamp(1, 32);
    let issued: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..width)
            .map(|w| {
                s.spawn(move || {
                    let mut rng = DetRng::new(seed).fork(w as u64);
                    let mut issued = 0;
                    let mut i = w;
                    while i < conns {
                        let mode = CHAOS_MODES[rng.below(CHAOS_MODES.len() as u64) as usize];
                        issued += chaos_conn(port, mode, &mut rng);
                        i += width;
                    }
                    issued
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let alive = Client::connect(port, "probe", 2000, 2000)
        .and_then(|mut c| c.ping())
        .map(|r| r.op == RespOp::Pong)
        .unwrap_or(false);
    ChaosReport {
        connections: conns as u64,
        requests_issued: issued,
        server_alive: alive,
    }
}
