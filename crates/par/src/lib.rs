#![warn(missing_docs)]

//! `iixml-par` — std-only scoped data parallelism for the iixml
//! workspace.
//!
//! The Refine pipeline decomposes per symbol pair (`intersect`,
//! Lemma 3.3), per symbol (partition refinement in `minimize`), and per
//! source (the webhouse fan-out of Section 1) — all embarrassingly
//! parallel. This crate provides the one primitive those sites need:
//! [`par_map`], an *order-preserving* parallel map over an indexed task
//! list, built on `std::thread::scope` only (the workspace builds
//! offline against an empty registry, so no rayon/crossbeam).
//!
//! # Determinism contract
//!
//! `par_map(items, g, f)` returns exactly the vector that
//! `items.map(f).collect()` would: results are written into slots keyed
//! by input index, so the output is byte-identical regardless of thread
//! count or scheduling. Callers keep determinism as long as `f` is a
//! pure function of its item (shared counters/histograms in `f` are
//! fine — they commute).
//!
//! # Thread count
//!
//! The worker width is `IIXML_PAR_THREADS` (default: available
//! parallelism). Width 1 runs the *same* claim-loop code path on the
//! calling thread with zero spawns, so the sequential fallback is not a
//! separate implementation that could drift. Tests and benches can
//! switch width in-process with [`set_threads`].
//!
//! # Scheduling
//!
//! Workers claim task indices from a shared atomic counter (dynamic
//! load balancing — the E5 blowup chain has wildly uneven pair costs).
//! A task claimed outside a worker's fair static share is counted as a
//! *steal* in the `par.steals` metric; `par.tasks` counts tasks run and
//! `par.threads` records the width per invocation.

use iixml_obs::{keys, LazyCounter, LazyHistogram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Tasks executed through [`par_map`] (all widths, including 1).
static OBS_TASKS: LazyCounter = LazyCounter::new(keys::PAR_TASKS);
/// Tasks a worker claimed outside its fair static share.
static OBS_STEALS: LazyCounter = LazyCounter::new(keys::PAR_STEALS);
/// Worker width per [`par_map`] invocation.
static OBS_THREADS: LazyHistogram = LazyHistogram::new(keys::PAR_THREADS);
/// Chunks dispatched through [`par_map_chunks`] (parallel path only).
static OBS_CHUNKS: LazyCounter = LazyCounter::new(keys::PAR_CHUNKS);

/// Environment variable selecting the worker width (`1` = sequential).
pub const ENV_THREADS: &str = keys::ENV_PAR_THREADS;
/// Environment variable overriding every [`par_map_chunks`] chunk size.
pub const ENV_CHUNK: &str = keys::ENV_PAR_CHUNK;
/// Environment variable overriding every [`par_map_chunks`] cutoff.
pub const ENV_CUTOFF: &str = keys::ENV_PAR_CUTOFF;

/// In-process override; 0 means "use the environment default".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();
static ENV_CHUNK_OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();
static ENV_CUTOFF_OVERRIDE: OnceLock<Option<usize>> = OnceLock::new();

fn env_tuning(var: &str, cache: &'static OnceLock<Option<usize>>) -> Option<usize> {
    *cache.get_or_init(|| {
        std::env::var(var)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// The effective chunk size: [`ENV_CHUNK`] if set, else the caller's
/// default. Env wins so one knob retunes every chunked call site.
pub fn chunk_size(default: usize) -> usize {
    env_tuning(ENV_CHUNK, &ENV_CHUNK_OVERRIDE).unwrap_or(default.max(1))
}

/// The effective sequential cutoff: [`ENV_CUTOFF`] if set, else the
/// caller's default.
pub fn cutoff(default: usize) -> usize {
    env_tuning(ENV_CUTOFF, &ENV_CUTOFF_OVERRIDE).unwrap_or(default)
}

fn env_threads() -> usize {
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var(ENV_THREADS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The configured worker width: the [`set_threads`] override if set,
/// otherwise [`ENV_THREADS`], otherwise available parallelism.
pub fn threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Overrides the worker width in-process (`None` restores the
/// environment default). Used by benches and the determinism test
/// matrix; safe to flip at any time — the width never affects results,
/// only scheduling.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Maps `f` over `items` in parallel, preserving input order exactly.
///
/// `grain` is the minimum number of tasks per worker: the width used is
/// `threads().min(items.len() / grain)` (at least 1), so small inputs
/// never pay thread-spawn overhead. Use `grain = 1` when each task is
/// expensive (e.g. one network-latency-bound source session per task).
///
/// Panics in `f` propagate to the caller after all workers have
/// stopped.
pub fn par_map<T, R, F>(items: Vec<T>, grain: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run(slots.len(), grain, |i| {
        let item = slots[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("each task index is claimed exactly once");
        f(item)
    })
}

/// [`par_map`] over shared references (no per-item locking).
pub fn par_map_ref<'a, T, R, F>(items: &'a [T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    run(items.len(), grain, |i| f(&items[i]))
}

/// [`par_map`] over exclusive references: each item is visited by
/// exactly one worker, results in input order.
pub fn par_map_mut<T, R, F>(items: &mut [T], grain: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    par_map(items.iter_mut().collect(), grain, f)
}

/// Chunked parallel map with per-worker scratch arenas, preserving
/// input order exactly.
///
/// Workers claim *chunks* of `chunk` consecutive items (after the
/// [`ENV_CHUNK`] override) instead of single items, so the atomic
/// claim counter is touched once per chunk and results stay
/// cache-contiguous. Each worker builds one scratch value with
/// `make_scratch` at start-up and reuses it for every item it runs —
/// the arena pattern: callers clear per-item state inside `f` but keep
/// the allocations. Results are written into slots keyed by input
/// index, so the output is byte-identical at any width provided `f` is
/// a pure function of `(item, index)` (the scratch must not carry
/// state between items that changes results).
///
/// Inputs of length ≤ `cutoff` (after the [`ENV_CUTOFF`] override) run
/// inline on the calling thread with a single scratch and *no* chunk
/// bookkeeping at all — small refine steps never pay for the
/// machinery. Width 1 takes the same inline path.
///
/// Panics in `f` propagate to the caller after all workers have
/// stopped.
pub fn par_map_chunks<T, R, S, I, F>(
    items: &[T],
    chunk: usize,
    cutoff_default: usize,
    make_scratch: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T, usize) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = chunk_size(chunk);
    let width = threads().min(n.div_ceil(chunk)).max(1);
    OBS_TASKS.add(n as u64);
    OBS_THREADS.observe(width as u64);
    if width == 1 || n <= cutoff(cutoff_default) {
        let mut scratch = make_scratch();
        let mut out = Vec::with_capacity(n);
        for (i, item) in items.iter().enumerate() {
            out.push(f(&mut scratch, item, i));
        }
        return out;
    }

    let n_chunks = n.div_ceil(chunk);
    OBS_CHUNKS.add(n_chunks as u64);
    let next = AtomicUsize::new(0);
    // Each worker drains chunk indices and returns (start, results) runs;
    // `lo..hi` is its fair static share of chunks, for steal accounting.
    let worker = |w: usize| -> (Vec<(usize, Vec<R>)>, u64) {
        let lo = w * n_chunks / width;
        let hi = (w + 1) * n_chunks / width;
        let mut scratch = make_scratch();
        let mut runs = Vec::with_capacity(hi - lo + 1);
        let mut steals = 0u64;
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            if c < lo || c >= hi {
                steals += 1;
            }
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let mut part = Vec::with_capacity(end - start);
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                part.push(f(&mut scratch, item, i));
            }
            runs.push((start, part));
        }
        (runs, steals)
    };

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..width).map(|w| scope.spawn(move || worker(w))).collect();
        let mut place = |runs: Vec<(usize, Vec<R>)>| {
            for (start, part) in runs {
                for (off, r) in part.into_iter().enumerate() {
                    results[start + off] = Some(r);
                }
            }
        };
        let (own, mut steals) = worker(0);
        place(own);
        for h in handles {
            match h.join() {
                Ok((runs, s)) => {
                    steals += s;
                    place(runs);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        OBS_STEALS.add(steals);
    });
    results
        .into_iter()
        .map(|r| r.expect("every claimed chunk produced its results"))
        .collect()
}

/// The claim-loop core shared by every width (width 1 runs it inline on
/// the calling thread — the "sequential fallback through the same code
/// path" contract).
fn run<R, F>(tasks: usize, grain: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let width = threads().min(tasks / grain.max(1)).max(1);
    OBS_TASKS.add(tasks as u64);
    OBS_THREADS.observe(width as u64);

    let next = AtomicUsize::new(0);
    // Each worker drains the shared counter into a local (index, result)
    // list; `lo..hi` is its fair static share, used only for steal
    // accounting.
    let worker = |w: usize| -> (Vec<(usize, R)>, u64) {
        let lo = w * tasks / width;
        let hi = (w + 1) * tasks / width;
        let mut out = Vec::with_capacity(hi - lo + 1);
        let mut steals = 0u64;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            if i < lo || i >= hi {
                steals += 1;
            }
            out.push((i, task(i)));
        }
        (out, steals)
    };

    if width == 1 {
        // The claim loop visits indices in ascending order here, so the
        // collected results are already in input order.
        return worker(0).0.into_iter().map(|(_, r)| r).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(tasks);
    results.resize_with(tasks, || None);
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..width).map(|w| scope.spawn(move || worker(w))).collect();
        let (own, mut steals) = worker(0);
        for (i, r) in own {
            results[i] = Some(r);
        }
        for h in handles {
            match h.join() {
                Ok((part, s)) => {
                    steals += s;
                    for (i, r) in part {
                        results[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        OBS_STEALS.add(steals);
    });
    results
        .into_iter()
        .map(|r| r.expect("every claimed task produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for w in [1, 2, 3, 4, 8] {
            set_threads(Some(w));
            assert_eq!(par_map_ref(&items, 1, |&x| x * x), expect, "width {w}");
            assert_eq!(par_map(items.clone(), 1, |x| x * x), expect, "width {w}");
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        set_threads(Some(4));
        let none: Vec<u32> = Vec::new();
        assert!(par_map(none, 1, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![7u32], 1, |x| x + 1), vec![8]);
        set_threads(None);
    }

    #[test]
    fn grain_caps_width_but_not_results() {
        set_threads(Some(8));
        let items: Vec<usize> = (0..10).collect();
        // grain 16 > items: forced sequential, same answer.
        assert_eq!(
            par_map_ref(&items, 16, |&x| x + 1),
            (1..=10).collect::<Vec<_>>()
        );
        set_threads(None);
    }

    #[test]
    fn mutable_items_are_each_visited_once() {
        set_threads(Some(4));
        let mut items: Vec<u64> = vec![0; 100];
        let idx = par_map_mut(&mut items, 1, |slot| {
            *slot += 1;
            *slot
        });
        assert!(items.iter().all(|&v| v == 1));
        assert_eq!(idx, vec![1; 100]);
        set_threads(None);
    }

    #[test]
    fn chunked_map_preserves_order_at_every_width() {
        let items: Vec<u64> = (0..513).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for w in [1, 2, 3, 4, 8] {
            set_threads(Some(w));
            // Cutoff 0: always take the chunked path when width > 1.
            let got = par_map_chunks(&items, 7, 0, Vec::<u64>::new, |scratch, &x, i| {
                // Exercise the arena contract: per-item state is cleared,
                // the allocation is reused.
                scratch.clear();
                scratch.push(x);
                scratch[0] * 3 + i as u64 - x + 1
            });
            assert_eq!(got, expect, "width {w}");
        }
        set_threads(None);
    }

    #[test]
    fn chunked_map_cutoff_runs_inline() {
        set_threads(Some(4));
        // One scratch instance implies the inline path: count creations.
        let made = AtomicUsize::new(0);
        let got = par_map_chunks(
            &[1u32, 2, 3],
            1,
            8,
            || {
                made.fetch_add(1, Ordering::Relaxed);
            },
            |_, &x, _| x * 2,
        );
        assert_eq!(got, vec![2, 4, 6]);
        assert_eq!(made.load(Ordering::Relaxed), 1);
        set_threads(None);
    }

    #[test]
    fn chunked_map_empty_and_panics() {
        set_threads(Some(2));
        let none: Vec<u32> = Vec::new();
        assert!(par_map_chunks(&none, 4, 0, || (), |_, &x, _| x).is_empty());
        let r = std::panic::catch_unwind(|| {
            par_map_chunks(
                &[1u32, 2, 3, 4],
                1,
                0,
                || (),
                |_, &x, _| {
                    if x == 3 {
                        panic!("boom");
                    }
                    x
                },
            )
        });
        assert!(r.is_err());
        set_threads(None);
    }

    #[test]
    fn tuning_defaults_pass_through() {
        // The env overrides are unset in the test environment, so the
        // caller defaults win (and are clamped to ≥ 1 for chunk).
        assert_eq!(chunk_size(32), 32);
        assert_eq!(chunk_size(0), 1);
        assert_eq!(cutoff(128), 128);
    }

    #[test]
    fn set_threads_round_trips() {
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(Some(0)); // clamped to 1
        assert_eq!(threads(), 1);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        set_threads(Some(2));
        let r = std::panic::catch_unwind(|| {
            par_map_ref(&[1u32, 2, 3, 4], 1, |&x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
        set_threads(None);
    }

    #[test]
    fn metrics_are_recorded() {
        iixml_obs::set_enabled(true);
        let before = iixml_obs::snapshot().counter("par.tasks").unwrap_or(0);
        set_threads(Some(2));
        par_map_ref(&[1u32; 64], 1, |&x| x);
        set_threads(None);
        let after = iixml_obs::snapshot().counter("par.tasks").unwrap_or(0);
        assert!(after >= before + 64);
    }
}
