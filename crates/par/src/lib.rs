#![warn(missing_docs)]

//! `iixml-par` — std-only scoped data parallelism for the iixml
//! workspace.
//!
//! The Refine pipeline decomposes per symbol pair (`intersect`,
//! Lemma 3.3), per symbol (partition refinement in `minimize`), and per
//! source (the webhouse fan-out of Section 1) — all embarrassingly
//! parallel. This crate provides the one primitive those sites need:
//! [`par_map`], an *order-preserving* parallel map over an indexed task
//! list, built on `std::thread::scope` only (the workspace builds
//! offline against an empty registry, so no rayon/crossbeam).
//!
//! # Determinism contract
//!
//! `par_map(items, g, f)` returns exactly the vector that
//! `items.map(f).collect()` would: results are written into slots keyed
//! by input index, so the output is byte-identical regardless of thread
//! count or scheduling. Callers keep determinism as long as `f` is a
//! pure function of its item (shared counters/histograms in `f` are
//! fine — they commute).
//!
//! # Thread count
//!
//! The worker width is `IIXML_PAR_THREADS` (default: available
//! parallelism). Width 1 runs the *same* claim-loop code path on the
//! calling thread with zero spawns, so the sequential fallback is not a
//! separate implementation that could drift. Tests and benches can
//! switch width in-process with [`set_threads`].
//!
//! # Scheduling
//!
//! Workers claim task indices from a shared atomic counter (dynamic
//! load balancing — the E5 blowup chain has wildly uneven pair costs).
//! A task claimed outside a worker's fair static share is counted as a
//! *steal* in the `par.steals` metric; `par.tasks` counts tasks run and
//! `par.threads` records the width per invocation.

use iixml_obs::{keys, LazyCounter, LazyHistogram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Tasks executed through [`par_map`] (all widths, including 1).
static OBS_TASKS: LazyCounter = LazyCounter::new(keys::PAR_TASKS);
/// Tasks a worker claimed outside its fair static share.
static OBS_STEALS: LazyCounter = LazyCounter::new(keys::PAR_STEALS);
/// Worker width per [`par_map`] invocation.
static OBS_THREADS: LazyHistogram = LazyHistogram::new(keys::PAR_THREADS);

/// Environment variable selecting the worker width (`1` = sequential).
pub const ENV_THREADS: &str = keys::ENV_PAR_THREADS;

/// In-process override; 0 means "use the environment default".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_DEFAULT.get_or_init(|| {
        std::env::var(ENV_THREADS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The configured worker width: the [`set_threads`] override if set,
/// otherwise [`ENV_THREADS`], otherwise available parallelism.
pub fn threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Overrides the worker width in-process (`None` restores the
/// environment default). Used by benches and the determinism test
/// matrix; safe to flip at any time — the width never affects results,
/// only scheduling.
pub fn set_threads(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// Maps `f` over `items` in parallel, preserving input order exactly.
///
/// `grain` is the minimum number of tasks per worker: the width used is
/// `threads().min(items.len() / grain)` (at least 1), so small inputs
/// never pay thread-spawn overhead. Use `grain = 1` when each task is
/// expensive (e.g. one network-latency-bound source session per task).
///
/// Panics in `f` propagate to the caller after all workers have
/// stopped.
pub fn par_map<T, R, F>(items: Vec<T>, grain: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run(slots.len(), grain, |i| {
        let item = slots[i]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("each task index is claimed exactly once");
        f(item)
    })
}

/// [`par_map`] over shared references (no per-item locking).
pub fn par_map_ref<'a, T, R, F>(items: &'a [T], grain: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    run(items.len(), grain, |i| f(&items[i]))
}

/// [`par_map`] over exclusive references: each item is visited by
/// exactly one worker, results in input order.
pub fn par_map_mut<T, R, F>(items: &mut [T], grain: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    par_map(items.iter_mut().collect(), grain, f)
}

/// The claim-loop core shared by every width (width 1 runs it inline on
/// the calling thread — the "sequential fallback through the same code
/// path" contract).
fn run<R, F>(tasks: usize, grain: usize, task: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let width = threads().min(tasks / grain.max(1)).max(1);
    OBS_TASKS.add(tasks as u64);
    OBS_THREADS.observe(width as u64);

    let next = AtomicUsize::new(0);
    // Each worker drains the shared counter into a local (index, result)
    // list; `lo..hi` is its fair static share, used only for steal
    // accounting.
    let worker = |w: usize| -> (Vec<(usize, R)>, u64) {
        let lo = w * tasks / width;
        let hi = (w + 1) * tasks / width;
        let mut out = Vec::with_capacity(hi - lo + 1);
        let mut steals = 0u64;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            if i < lo || i >= hi {
                steals += 1;
            }
            out.push((i, task(i)));
        }
        (out, steals)
    };

    if width == 1 {
        // The claim loop visits indices in ascending order here, so the
        // collected results are already in input order.
        return worker(0).0.into_iter().map(|(_, r)| r).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(tasks);
    results.resize_with(tasks, || None);
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (1..width).map(|w| scope.spawn(move || worker(w))).collect();
        let (own, mut steals) = worker(0);
        for (i, r) in own {
            results[i] = Some(r);
        }
        for h in handles {
            match h.join() {
                Ok((part, s)) => {
                    steals += s;
                    for (i, r) in part {
                        results[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        OBS_STEALS.add(steals);
    });
    results
        .into_iter()
        .map(|r| r.expect("every claimed task produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_every_width() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for w in [1, 2, 3, 4, 8] {
            set_threads(Some(w));
            assert_eq!(par_map_ref(&items, 1, |&x| x * x), expect, "width {w}");
            assert_eq!(par_map(items.clone(), 1, |x| x * x), expect, "width {w}");
        }
        set_threads(None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        set_threads(Some(4));
        let none: Vec<u32> = Vec::new();
        assert!(par_map(none, 1, |x: u32| x).is_empty());
        assert_eq!(par_map(vec![7u32], 1, |x| x + 1), vec![8]);
        set_threads(None);
    }

    #[test]
    fn grain_caps_width_but_not_results() {
        set_threads(Some(8));
        let items: Vec<usize> = (0..10).collect();
        // grain 16 > items: forced sequential, same answer.
        assert_eq!(
            par_map_ref(&items, 16, |&x| x + 1),
            (1..=10).collect::<Vec<_>>()
        );
        set_threads(None);
    }

    #[test]
    fn mutable_items_are_each_visited_once() {
        set_threads(Some(4));
        let mut items: Vec<u64> = vec![0; 100];
        let idx = par_map_mut(&mut items, 1, |slot| {
            *slot += 1;
            *slot
        });
        assert!(items.iter().all(|&v| v == 1));
        assert_eq!(idx, vec![1; 100]);
        set_threads(None);
    }

    #[test]
    fn set_threads_round_trips() {
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(Some(0)); // clamped to 1
        assert_eq!(threads(), 1);
        set_threads(None);
        assert!(threads() >= 1);
    }

    #[test]
    fn worker_panics_propagate() {
        set_threads(Some(2));
        let r = std::panic::catch_unwind(|| {
            par_map_ref(&[1u32, 2, 3, 4], 1, |&x| {
                if x == 3 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(r.is_err());
        set_threads(None);
    }

    #[test]
    fn metrics_are_recorded() {
        iixml_obs::set_enabled(true);
        let before = iixml_obs::snapshot().counter("par.tasks").unwrap_or(0);
        set_threads(Some(2));
        par_map_ref(&[1u32; 64], 1, |&x| x);
        set_threads(None);
        let after = iixml_obs::snapshot().counter("par.tasks").unwrap_or(0);
        assert!(after >= before + 64);
    }
}
