//! The multi-tenant session server.
//!
//! Architecture (DESIGN.md §12): acceptor loops run on the `iixml-par`
//! pool; each accepted connection is handed to a dedicated bounded
//! thread so one slow client never stalls another. Sessions live in a
//! sharded map — `shard = fnv("tenant/session") % shards` — each shard
//! an independent [`Webhouse`] behind its own mutex, so tenants on
//! different shards never contend. Admission control
//! ([`crate::tenant`]) runs before any work; over-budget requests are
//! refused with an explicit `Shed` frame, never queued.
//!
//! Durability: with a journal root configured, every session journals
//! through the group-commit WAL (batched [`FlushPolicy`]); the `Sync`
//! op is the client-visible durability barrier. On restart the server
//! scans the journal root and recovers every session concurrently via
//! [`Webhouse::recover_sessions`] — byte-identical at any pool width —
//! and each session's recovery outcome (including
//! `Recovered{dropped_records}`) stays visible in responses and stats.
//!
//! Fault posture: a misbehaving client (garbage frames, bad CRC,
//! partial frame then silence, half-close, disconnect mid-request,
//! slow-loris trickle) degrades exactly its own connection. Session
//! state is only ever mutated under a shard lock by a successfully
//! decoded, admitted request, so a degraded connection cannot poison a
//! tenant or the fleet.

use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_query::parse::parse_ps_query;
use iixml_store::{FlushPolicy, RecoveryStatus};
use iixml_webhouse::{
    DegradeCause, LocalAnswer, RecoveryReport, Session, Source, Webhouse, WebhouseError,
};

use crate::conn::{ConnError, DeadlineStream};
use crate::lock;
use crate::proto::{self, ReqOp, Request, RespOp};
use crate::tenant::{Admission, AdmissionConfig, Shed, TenantGate};

static OBS_ACCEPTED: LazyCounter = LazyCounter::new(keys::SERVE_ACCEPTED);
static OBS_REQUESTS: LazyCounter = LazyCounter::new(keys::SERVE_REQUESTS);
static OBS_SHED: LazyCounter = LazyCounter::new(keys::SERVE_SHED);
static OBS_FRAME_ERRORS: LazyCounter = LazyCounter::new(keys::SERVE_FRAME_ERRORS);
static OBS_TIMEOUTS: LazyCounter = LazyCounter::new(keys::SERVE_CONN_TIMEOUTS);
static OBS_OPENED: LazyCounter = LazyCounter::new(keys::SERVE_SESSIONS_OPENED);
static OBS_RECOVERED: LazyCounter = LazyCounter::new(keys::SERVE_SESSIONS_RECOVERED);
static OBS_CLOSED: LazyCounter = LazyCounter::new(keys::SERVE_SESSIONS_CLOSED);
static OBS_FRAME_BYTES: LazyHistogram = LazyHistogram::new(keys::SERVE_FRAME_BYTES);

/// Fleet-wide cap on live connections; past it new connections get an
/// immediate `Shed` frame (overload) and a close.
const MAX_CONNS: usize = 1024;

/// Server configuration. Every knob has an `IIXML_SERVE_*` env
/// counterpart (see [`ServeConfig::from_env`] and the README table).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Session-map shard count.
    pub shards: usize,
    /// Acceptor tasks submitted to the `iixml-par` pool.
    pub workers: usize,
    /// Per-tenant admission limits.
    pub admission: AdmissionConfig,
    /// Per-connection read deadline (ms).
    pub read_timeout_ms: u64,
    /// Per-connection write deadline (ms).
    pub write_timeout_ms: u64,
    /// Max `read` syscalls per frame (slow-loris budget).
    pub frame_read_budget: u32,
    /// Journal root; `None` = in-memory sessions only.
    pub journal_root: Option<PathBuf>,
    /// Use the batched group-commit flush policy (the `Sync` op is the
    /// durability barrier); `false` = flush every record.
    pub batched_journal: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            port: 0,
            shards: 8,
            workers: 4,
            admission: AdmissionConfig {
                max_sessions: 64,
                max_inflight: 8,
                quota_burst: 256,
                quota_refill: 256,
                refill_ms: 50,
            },
            read_timeout_ms: 2000,
            write_timeout_ms: 2000,
            frame_read_budget: 64,
            journal_root: None,
            batched_journal: true,
        }
    }
}

fn env_parse<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl ServeConfig {
    /// The default configuration overridden by the `IIXML_SERVE_*`
    /// environment (unparsable values fall back to the default).
    pub fn from_env() -> ServeConfig {
        let d = ServeConfig::default();
        ServeConfig {
            port: env_parse(keys::ENV_SERVE_PORT, d.port),
            shards: env_parse(keys::ENV_SERVE_SHARDS, d.shards).max(1),
            workers: env_parse(keys::ENV_SERVE_WORKERS, d.workers).max(1),
            admission: AdmissionConfig {
                max_sessions: env_parse(keys::ENV_SERVE_MAX_SESSIONS, d.admission.max_sessions)
                    .max(1),
                max_inflight: env_parse(keys::ENV_SERVE_MAX_INFLIGHT, d.admission.max_inflight)
                    .max(1),
                quota_burst: env_parse(keys::ENV_SERVE_QUOTA, d.admission.quota_burst).max(1),
                quota_refill: env_parse(keys::ENV_SERVE_QUOTA, d.admission.quota_refill).max(1),
                refill_ms: d.admission.refill_ms,
            },
            read_timeout_ms: env_parse(keys::ENV_SERVE_READ_TIMEOUT_MS, d.read_timeout_ms).max(1),
            write_timeout_ms: env_parse(keys::ENV_SERVE_WRITE_TIMEOUT_MS, d.write_timeout_ms)
                .max(1),
            frame_read_budget: d.frame_read_budget,
            journal_root: d.journal_root,
            batched_journal: d.batched_journal,
        }
    }
}

/// Why the server could not start or shut down cleanly.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure (bind, accept setup).
    Io(String),
    /// Journal scan / session recovery failure at restart.
    Recover(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(m) => write!(f, "server io error: {m}"),
            ServeError::Recover(m) => write!(f, "session recovery failed: {m}"),
        }
    }
}

/// What the server remembers about a session beyond the webhouse
/// state: how to rebuild its source after a crash, and its durability
/// story (recovery outcome + sticky journal fault).
#[derive(Debug, Clone)]
struct SessionMeta {
    tenant: String,
    products: usize,
    seed: u64,
    /// Set when this session came back through crash recovery.
    recovery: Option<RecoveryReport>,
    /// Sticky durability fault: once the journal fails, the session
    /// keeps serving un-journaled and every answer carries the fault.
    fault: Option<String>,
}

impl SessionMeta {
    /// The durability marker line carried by every answer for this
    /// session: `ok`, `recovered:<dropped>`, or `fault:<error>`.
    fn marker(&self) -> String {
        if let Some(f) = &self.fault {
            return format!("fault:{f}");
        }
        if let Some(rec) = &self.recovery {
            if let RecoveryStatus::Recovered { dropped_records } = rec.status {
                return format!("recovered:{dropped_records}");
            }
        }
        "ok".to_string()
    }
}

struct Shard {
    house: Webhouse<Source>,
    meta: BTreeMap<String, SessionMeta>,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    frame_errors: AtomicU64,
    timeouts: AtomicU64,
    opened: AtomicU64,
    recovered: AtomicU64,
    closed: AtomicU64,
    contain_checks: AtomicU64,
    contain_hits: AtomicU64,
    contain_fast_rejects: AtomicU64,
}

struct Inner {
    cfg: ServeConfig,
    listener: TcpListener,
    shards: Vec<Mutex<Shard>>,
    admission: Admission,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    counters: Counters,
}

/// FNV-1a; the shard router (stable across platforms and runs).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn shard_of(inner: &Inner, scoped: &str) -> usize {
    (fnv1a(scoped) % inner.cfg.shards as u64) as usize
}

fn err_frame(code: &str, detail: &str) -> Vec<u8> {
    proto::encode_frame(RespOp::Err.byte(), format!("{code}\n{detail}").as_bytes())
}

fn shed_frame(shed: Shed, refill_ms: u64) -> Vec<u8> {
    let body = format!("{}\n{}", shed.reason(), shed.retry_after_ms(refill_ms));
    proto::encode_frame(RespOp::Shed.byte(), body.as_bytes())
}

fn resp_frame(op: RespOp, body: &str) -> Vec<u8> {
    proto::encode_frame(op.byte(), body.as_bytes())
}

/// What `shutdown()` reports back: how many sessions synced cleanly
/// and which ones could not.
#[derive(Debug)]
pub struct DrainReport {
    /// Sessions whose journals reached their durability barrier.
    pub synced: usize,
    /// Sessions whose final sync failed: `(scoped_name, error)`.
    pub faults: Vec<(String, String)>,
}

/// A running server. Dropping the handle without calling
/// [`Server::shutdown`] leaves sessions unsynced (like a crash, minus
/// losing the in-memory buffers).
pub struct Server {
    inner: Arc<Inner>,
    runner: Option<thread::JoinHandle<()>>,
    ticker: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, recovers any journaled sessions under the configured
    /// root, and starts serving.
    pub fn start(cfg: ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Io(e.to_string()))?;
        let shard_count = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(Mutex::new(Shard {
                house: Webhouse::new(),
                meta: BTreeMap::new(),
            }));
        }
        let inner = Arc::new(Inner {
            admission: Admission::new(cfg.admission),
            cfg,
            listener,
            shards,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            counters: Counters::default(),
        });
        recover_fleet(&inner)?;
        let runner = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("iixml-serve-runner".into())
                .spawn(move || {
                    let acceptors: Vec<Arc<Inner>> =
                        (0..inner.cfg.workers).map(|_| Arc::clone(&inner)).collect();
                    // Acceptor fan-out on the shared pool: at width 1
                    // a single acceptor drains the listener; at higher
                    // widths acceptors race on `accept` (it is
                    // thread-safe on a shared listener).
                    let _ = iixml_par::par_map(acceptors, 1, |inner| accept_loop(&inner));
                })
                .map_err(|e| ServeError::Io(e.to_string()))?
        };
        let ticker = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("iixml-serve-ticker".into())
                .spawn(move || {
                    while !inner.shutdown.load(Ordering::Acquire) {
                        thread::sleep(Duration::from_millis(inner.cfg.admission.refill_ms));
                        inner.admission.refill_all();
                    }
                })
                .map_err(|e| ServeError::Io(e.to_string()))?
        };
        Ok(Server {
            inner,
            runner: Some(runner),
            ticker: Some(ticker),
        })
    }

    /// The bound port (useful with `port: 0`).
    pub fn port(&self) -> u16 {
        self.inner.listener.local_addr().map_or(0, |a| a.port())
    }

    /// Signals shutdown and waits for acceptors and live connections
    /// to wind down (bounded by the read deadline), then drives every
    /// journaled session through its durability barrier.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop_threads();
        let mut report = DrainReport {
            synced: 0,
            faults: Vec::new(),
        };
        for shard in &self.inner.shards {
            let mut shard = lock(shard);
            let names: Vec<String> = shard.meta.keys().cloned().collect();
            for name in names {
                let Some(sess) = shard.house.session(&name) else {
                    continue;
                };
                match sess.sync_journal() {
                    Ok(()) => report.synced += 1,
                    Err(e) => report.faults.push((name, e.to_string())),
                }
            }
        }
        report
    }

    /// Models kill -9 for tests: stops serving, then *forgets* all
    /// session state without flushing or closing anything — bytes
    /// buffered past the last group-commit barrier are lost exactly as
    /// they would be when the process dies. (The forgotten state leaks;
    /// test-only by design.)
    pub fn crash(mut self) {
        self.stop_threads();
        for shard in &self.inner.shards {
            let mut shard = lock(shard);
            let house = std::mem::take(&mut shard.house);
            std::mem::forget(house);
            shard.meta.clear();
        }
    }

    fn stop_threads(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.runner.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        while self.inner.active_conns.load(Ordering::Acquire) > 0 {
            thread::sleep(Duration::from_millis(2));
        }
    }

    /// Runs `f` on a live session (tests and the CLI stats path).
    pub fn with_session<R>(
        &self,
        tenant: &str,
        session: &str,
        f: impl FnOnce(&mut Session<Source>) -> R,
    ) -> Option<R> {
        let scoped = format!("{tenant}/{session}");
        let idx = shard_of(&self.inner, &scoped);
        let mut shard = lock(self.inner.shards.get(idx)?);
        shard.house.session(&scoped).map(f)
    }

    /// All live scoped session names, sorted.
    pub fn session_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for shard in &self.inner.shards {
            let shard = lock(shard);
            names.extend(shard.meta.keys().cloned());
        }
        names.sort();
        names
    }

    /// The stats JSON served to `Stats` requests and `--stats`.
    pub fn stats_json(&self) -> String {
        stats_json(&self.inner)
    }
}

/// Scans the journal root and recovers every session found, shard by
/// shard, on the `iixml-par` pool.
fn recover_fleet(inner: &Arc<Inner>) -> Result<(), ServeError> {
    let Some(root) = inner.cfg.journal_root.clone() else {
        return Ok(());
    };
    if !root.exists() {
        return Ok(());
    }
    // (scoped, jdir, meta) per shard.
    let mut per_shard: BTreeMap<usize, Vec<(String, PathBuf, SessionMeta)>> = BTreeMap::new();
    for tenant in sorted_dir(&root).map_err(ServeError::Recover)? {
        let tname = tenant
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if !proto::name_ok(&tname) || !tenant.is_dir() {
            continue;
        }
        for entry in sorted_dir(&tenant).map_err(ServeError::Recover)? {
            let fname = entry
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let Some(session) = fname.strip_suffix(".meta") else {
                continue;
            };
            if !proto::name_ok(session) {
                continue;
            }
            let text = std::fs::read_to_string(&entry)
                .map_err(|e| ServeError::Recover(format!("{}: {e}", entry.display())))?;
            let mut lines = text.lines();
            let products: usize = lines.next().and_then(|l| l.parse().ok()).unwrap_or(0);
            let seed: u64 = lines.next().and_then(|l| l.parse().ok()).unwrap_or(0);
            if products == 0 {
                continue; // torn meta write; the session was never acked
            }
            let jdir = tenant.join(format!("{session}.j"));
            if !jdir.is_dir() {
                continue;
            }
            let scoped = format!("{tname}/{session}");
            let idx = shard_of(inner, &scoped);
            per_shard.entry(idx).or_default().push((
                scoped,
                jdir,
                SessionMeta {
                    tenant: tname.clone(),
                    products,
                    seed,
                    recovery: None,
                    fault: None,
                },
            ));
        }
    }
    for (idx, entries) in per_shard {
        let Some(shard_mutex) = inner.shards.get(idx) else {
            continue;
        };
        let mut journals = Vec::with_capacity(entries.len());
        let mut metas: BTreeMap<String, SessionMeta> = BTreeMap::new();
        for (scoped, jdir, meta) in entries {
            // The source is regenerated from (products, seed): the
            // journal stores knowledge, not the remote document.
            let cat = iixml_gen::catalog(meta.products, meta.seed);
            journals.push((scoped.clone(), jdir, Source::new(cat.doc, Some(cat.ty))));
            metas.insert(scoped, meta);
        }
        let mut shard = lock(shard_mutex);
        let reports = shard
            .house
            .recover_sessions(journals)
            .map_err(|e| ServeError::Recover(e.to_string()))?;
        for (name, report) in reports {
            if let Some(meta) = metas.get_mut(&name) {
                meta.recovery = Some(report);
                inner.admission.gate(&meta.tenant).adopt_session();
            }
            if inner.cfg.batched_journal {
                if let Some(sess) = shard.house.session(&name) {
                    let _ = sess.set_journal_flush_policy(FlushPolicy::batched());
                }
            }
            inner.counters.recovered.fetch_add(1, Ordering::Relaxed);
            OBS_RECOVERED.incr();
        }
        shard.meta.append(&mut metas);
    }
    Ok(())
}

fn sorted_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn accept_loop(inner: &Arc<Inner>) -> u64 {
    let mut accepted = 0u64;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return accepted;
        }
        match inner.listener.accept() {
            Ok((stream, _addr)) => {
                accepted += 1;
                inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
                OBS_ACCEPTED.incr();
                dispatch_conn(inner, stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Hands an accepted socket to its own thread, or sheds it when the
/// fleet-wide connection cap is reached.
fn dispatch_conn(inner: &Arc<Inner>, stream: TcpStream) {
    let cfg = &inner.cfg;
    let Ok(mut ds) = DeadlineStream::new(
        stream,
        cfg.read_timeout_ms,
        cfg.write_timeout_ms,
        cfg.frame_read_budget,
    ) else {
        return;
    };
    if inner.active_conns.load(Ordering::Acquire) >= MAX_CONNS {
        inner.counters.shed.fetch_add(1, Ordering::Relaxed);
        OBS_SHED.incr();
        let _ = ds.write_frame(&shed_frame(Shed::Inflight, cfg.admission.refill_ms));
        ds.shutdown();
        return;
    }
    inner.active_conns.fetch_add(1, Ordering::AcqRel);
    let inner2 = Arc::clone(inner);
    let spawned = thread::Builder::new()
        .name("iixml-serve-conn".into())
        .spawn(move || {
            conn_main(&inner2, &mut ds);
            inner2.active_conns.fetch_sub(1, Ordering::AcqRel);
        });
    if spawned.is_err() {
        // Could not even spawn: treat as overload.
        inner.active_conns.fetch_sub(1, Ordering::AcqRel);
        inner.counters.shed.fetch_add(1, Ordering::Relaxed);
        OBS_SHED.incr();
    }
}

/// One connection's life: frames in, frames out, until close or fault.
fn conn_main(inner: &Arc<Inner>, ds: &mut DeadlineStream) {
    let mut tenant: Option<(String, Arc<TenantGate>)> = None;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            ds.shutdown();
            return;
        }
        match ds.read_frame() {
            Ok(None) => {
                // Clean close or half-close at a frame boundary.
                ds.shutdown();
                return;
            }
            Ok(Some((op, body))) => {
                OBS_FRAME_BYTES.observe(body.len() as u64);
                match handle_frame(inner, &mut tenant, op, &body) {
                    Outcome::Reply(frame) => {
                        if ds.write_frame(&frame).is_err() {
                            inner.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                            OBS_TIMEOUTS.incr();
                            ds.shutdown();
                            return;
                        }
                    }
                    Outcome::Degrade(last) => {
                        inner.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                        OBS_FRAME_ERRORS.incr();
                        if let Some(frame) = last {
                            let _ = ds.write_frame(&frame);
                        }
                        ds.shutdown();
                        return;
                    }
                }
            }
            Err(ConnError::Timeout | ConnError::SlowLoris) => {
                inner.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                OBS_TIMEOUTS.incr();
                ds.shutdown();
                return;
            }
            Err(ConnError::Frame(e)) => {
                // Garbage, bad CRC, or a version we don't speak: tell
                // the peer why (best effort), then degrade.
                inner.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                OBS_FRAME_ERRORS.incr();
                let code = if matches!(e, proto::FrameError::BadVersion(_)) {
                    "version"
                } else {
                    "frame"
                };
                let _ = ds.write_frame(&err_frame(code, &e.to_string()));
                ds.shutdown();
                return;
            }
            Err(ConnError::ClosedMidFrame | ConnError::Io(_)) => {
                // Disconnect mid-request / reset: connection-local.
                inner.counters.frame_errors.fetch_add(1, Ordering::Relaxed);
                OBS_FRAME_ERRORS.incr();
                ds.shutdown();
                return;
            }
        }
    }
}

enum Outcome {
    /// Write this frame and keep the connection.
    Reply(Vec<u8>),
    /// Misbehaving client: optionally write a final frame, then close.
    Degrade(Option<Vec<u8>>),
}

fn handle_frame(
    inner: &Arc<Inner>,
    conn_tenant: &mut Option<(String, Arc<TenantGate>)>,
    op: u8,
    body: &[u8],
) -> Outcome {
    let Some(req_op) = ReqOp::from_byte(op) else {
        return Outcome::Degrade(Some(err_frame("frame", "unknown opcode")));
    };
    let req = match proto::parse_request(req_op, body) {
        Ok(req) => req,
        Err(e) => return Outcome::Degrade(Some(err_frame("frame", &e.to_string()))),
    };
    match req {
        Request::Hello { tenant } => {
            let gate = inner.admission.gate(&tenant);
            *conn_tenant = Some((tenant, gate));
            Outcome::Reply(resp_frame(RespOp::Ok, "hello"))
        }
        Request::Ping => Outcome::Reply(resp_frame(RespOp::Pong, "")),
        Request::Stats => Outcome::Reply(resp_frame(RespOp::StatsBody, &stats_json(inner))),
        req => {
            let Some((tenant, gate)) = conn_tenant.clone() else {
                return Outcome::Degrade(Some(err_frame(
                    "hello-first",
                    "send Hello before session requests",
                )));
            };
            // Admission: refuse over-budget work *before* doing it.
            let _guard = match inner.admission.try_request(&gate) {
                Ok(g) => g,
                Err(shed) => {
                    inner.counters.shed.fetch_add(1, Ordering::Relaxed);
                    OBS_SHED.incr();
                    return Outcome::Reply(shed_frame(shed, inner.cfg.admission.refill_ms));
                }
            };
            inner.counters.requests.fetch_add(1, Ordering::Relaxed);
            OBS_REQUESTS.incr();
            Outcome::Reply(handle_session_request(inner, &tenant, &gate, req))
        }
    }
}

fn handle_session_request(
    inner: &Arc<Inner>,
    tenant: &str,
    gate: &Arc<TenantGate>,
    req: Request,
) -> Vec<u8> {
    match req {
        Request::Open {
            session,
            products,
            seed,
        } => open_session(inner, tenant, gate, &session, products, seed),
        Request::Fetch { session, query } => with_session(inner, tenant, &session, |sess, meta| {
            let q = match parse_ps_query(&query, sess.alphabet_mut()) {
                Ok(q) => q,
                Err(e) => return err_frame("bad-query", &e.to_string()),
            };
            let before = contain_snapshot(sess);
            let res = sess.fetch(&q);
            note_fault(sess, meta, res.as_ref().err());
            let hit = note_containment(inner, sess, before);
            match res {
                Ok(ans) => resp_frame(
                    RespOp::Answer,
                    &format!(
                        "{}\nnodes={}\ncontain={}",
                        meta.marker(),
                        ans.len(),
                        hit_word(hit)
                    ),
                ),
                Err(e) => err_frame("session", &e.to_string()),
            }
        }),
        Request::Ask { session, query } => with_session(inner, tenant, &session, |sess, meta| {
            let q = match parse_ps_query(&query, sess.alphabet_mut()) {
                Ok(q) => q,
                Err(e) => return err_frame("bad-query", &e.to_string()),
            };
            let ans = sess.answer_locally(&q);
            note_fault(sess, meta, None);
            local_answer_frame(&ans, &meta.marker(), None)
        }),
        Request::Mediate { session, query } => {
            with_session(inner, tenant, &session, |sess, meta| {
                let q = match parse_ps_query(&query, sess.alphabet_mut()) {
                    Ok(q) => q,
                    Err(e) => return err_frame("bad-query", &e.to_string()),
                };
                let before = contain_snapshot(sess);
                let ans = sess.answer_resilient(&q);
                note_fault(sess, meta, None);
                let hit = note_containment(inner, sess, before);
                local_answer_frame(&ans, &meta.marker(), Some(hit))
            })
        }
        Request::Sync { session } => with_session(inner, tenant, &session, |sess, meta| {
            let res = sess.sync_journal();
            note_fault(sess, meta, res.as_ref().err());
            match res {
                Ok(()) => resp_frame(RespOp::Ok, &format!("synced\n{}", meta.marker())),
                Err(e) => err_frame("session", &e.to_string()),
            }
        }),
        Request::Close { session } => close_session(inner, tenant, gate, &session),
        // Hello/Stats/Ping are handled before admission; unreachable
        // here, but answer harmlessly rather than assert.
        Request::Hello { .. } | Request::Stats | Request::Ping => resp_frame(RespOp::Ok, ""),
    }
}

/// Records a durability fault on the session's meta so it stays
/// visible (the webhouse clears its own sticky fault once reported).
fn note_fault(sess: &Session<Source>, meta: &mut SessionMeta, err: Option<&WebhouseError>) {
    if let Some(WebhouseError::Store(e)) = err {
        meta.fault = Some(e.to_string());
    }
    if let Some(e) = sess.journal_fault() {
        meta.fault = Some(e.to_string());
    }
}

fn hit_word(hit: bool) -> &'static str {
    if hit {
        "hit"
    } else {
        "miss"
    }
}

/// Per-session containment counters before a call, for delta
/// accounting afterwards.
#[derive(Clone, Copy)]
struct ContainSnapshot {
    checks: u64,
    hits: u64,
    fast_rejects: u64,
}

fn contain_snapshot(sess: &Session<Source>) -> ContainSnapshot {
    ContainSnapshot {
        checks: sess.containment_checks(),
        hits: sess.containment_hits(),
        fast_rejects: sess.containment_fast_rejects(),
    }
}

/// Folds a call's containment-counter deltas into the fleet counters;
/// returns whether the call was answered from the cache.
fn note_containment(inner: &Arc<Inner>, sess: &Session<Source>, before: ContainSnapshot) -> bool {
    let after = contain_snapshot(sess);
    let c = &inner.counters;
    c.contain_checks.fetch_add(
        after.checks.saturating_sub(before.checks),
        Ordering::Relaxed,
    );
    c.contain_hits
        .fetch_add(after.hits.saturating_sub(before.hits), Ordering::Relaxed);
    c.contain_fast_rejects.fetch_add(
        after.fast_rejects.saturating_sub(before.fast_rejects),
        Ordering::Relaxed,
    );
    after.hits > before.hits
}

fn local_answer_frame(ans: &LocalAnswer, marker: &str, contain: Option<bool>) -> Vec<u8> {
    let contain_line = match contain {
        Some(hit) => format!("\ncontain={}", hit_word(hit)),
        None => String::new(),
    };
    match ans {
        LocalAnswer::Complete(t) => {
            let nodes = t.as_ref().map_or(0, |t| t.len());
            resp_frame(
                RespOp::Answer,
                &format!("{marker}\nnodes={nodes}{contain_line}"),
            )
        }
        LocalAnswer::Partial(_) => {
            resp_frame(RespOp::Partial, &format!("{marker}\npartial{contain_line}"))
        }
        LocalAnswer::Degraded { cause, .. } => {
            let word = match cause {
                DegradeCause::SourceUnavailable(_) => "source-unavailable",
                DegradeCause::Quarantined(_) => "quarantined",
                DegradeCause::Durability(_) => "durability",
            };
            resp_frame(RespOp::Degraded, &format!("{marker}\n{word}{contain_line}"))
        }
    }
}

fn with_session(
    inner: &Arc<Inner>,
    tenant: &str,
    session: &str,
    f: impl FnOnce(&mut Session<Source>, &mut SessionMeta) -> Vec<u8>,
) -> Vec<u8> {
    let scoped = format!("{tenant}/{session}");
    let idx = shard_of(inner, &scoped);
    let Some(shard_mutex) = inner.shards.get(idx) else {
        return err_frame("no-session", &scoped);
    };
    let mut shard = lock(shard_mutex);
    let shard = &mut *shard;
    let (Some(sess), Some(meta)) = (shard.house.session(&scoped), shard.meta.get_mut(&scoped))
    else {
        return err_frame("no-session", &scoped);
    };
    f(sess, meta)
}

fn open_session(
    inner: &Arc<Inner>,
    tenant: &str,
    gate: &Arc<TenantGate>,
    session: &str,
    products: usize,
    seed: u64,
) -> Vec<u8> {
    let scoped = format!("{tenant}/{session}");
    let idx = shard_of(inner, &scoped);
    let Some(shard_mutex) = inner.shards.get(idx) else {
        return err_frame("session", "shard routing failed");
    };
    let mut shard = lock(shard_mutex);
    if let Some(meta) = shard.meta.get(&scoped) {
        return resp_frame(RespOp::Opened, &format!("attached\n{}", meta.marker()));
    }
    if let Err(shed) = gate.try_open_session(inner.admission.config()) {
        inner.counters.shed.fetch_add(1, Ordering::Relaxed);
        OBS_SHED.incr();
        return shed_frame(shed, inner.cfg.admission.refill_ms);
    }
    let cat = iixml_gen::catalog(products, seed);
    let source = Source::new(cat.doc, Some(cat.ty));
    let meta = SessionMeta {
        tenant: tenant.to_string(),
        products,
        seed,
        recovery: None,
        fault: None,
    };
    if let Some(root) = &inner.cfg.journal_root {
        let tdir = root.join(tenant);
        let jdir = tdir.join(format!("{session}.j"));
        let register = std::fs::create_dir_all(&tdir)
            .map_err(|e| e.to_string())
            .and_then(|_| write_meta(&tdir, session, products, seed))
            .and_then(|_| {
                shard
                    .house
                    .register_journaled(&scoped, cat.alpha, source, &jdir)
                    .map_err(|e| e.to_string())
            });
        if let Err(e) = register {
            gate.release_session();
            return err_frame("session", &e);
        }
        if inner.cfg.batched_journal {
            if let Some(sess) = shard.house.session(&scoped) {
                let _ = sess.set_journal_flush_policy(FlushPolicy::batched());
            }
        }
    } else {
        shard.house.register(&scoped, cat.alpha, source);
    }
    shard.meta.insert(scoped, meta);
    inner.counters.opened.fetch_add(1, Ordering::Relaxed);
    OBS_OPENED.incr();
    resp_frame(RespOp::Opened, "created\nok")
}

/// Writes `<session>.meta` (products, seed) atomically: tmp + rename,
/// so a crash mid-write leaves either the old meta or none — never a
/// half-written one that would resurrect a wrong source.
fn write_meta(tdir: &Path, session: &str, products: usize, seed: u64) -> Result<(), String> {
    let tmp = tdir.join(format!("{session}.meta.tmp"));
    let dst = tdir.join(format!("{session}.meta"));
    std::fs::write(&tmp, format!("{products}\n{seed}\n")).map_err(|e| e.to_string())?;
    std::fs::rename(&tmp, &dst).map_err(|e| e.to_string())
}

fn close_session(
    inner: &Arc<Inner>,
    tenant: &str,
    gate: &Arc<TenantGate>,
    session: &str,
) -> Vec<u8> {
    let scoped = format!("{tenant}/{session}");
    let idx = shard_of(inner, &scoped);
    let Some(shard_mutex) = inner.shards.get(idx) else {
        return err_frame("no-session", &scoped);
    };
    let mut shard = lock(shard_mutex);
    let shard = &mut *shard;
    let Some(meta) = shard.meta.get_mut(&scoped) else {
        return err_frame("no-session", &scoped);
    };
    let sync_err = match shard.house.session(&scoped) {
        Some(sess) => {
            let res = sess.sync_journal();
            if let Err(WebhouseError::Store(e)) = &res {
                meta.fault = Some(e.to_string());
            }
            res.err().map(|e| e.to_string())
        }
        None => None,
    };
    let marker = meta.marker();
    drop(shard.house.remove_session(&scoped));
    shard.meta.remove(&scoped);
    if let Some(root) = &inner.cfg.journal_root {
        let tdir = root.join(tenant);
        let _ = std::fs::remove_dir_all(tdir.join(format!("{session}.j")));
        let _ = std::fs::remove_file(tdir.join(format!("{session}.meta")));
    }
    gate.release_session();
    inner.counters.closed.fetch_add(1, Ordering::Relaxed);
    OBS_CLOSED.incr();
    match sync_err {
        None => resp_frame(RespOp::Ok, &format!("closed\n{marker}")),
        Some(e) => resp_frame(RespOp::Ok, &format!("closed\nfault:{e}")),
    }
}

/// Builds the stats snapshot: fleet counters, per-tenant admission
/// state, and per-session durability (recovery outcome + sticky
/// fault) — satellite visibility for degraded durability.
fn stats_json(inner: &Arc<Inner>) -> String {
    use iixml_obs::json::Json;
    let c = &inner.counters;
    let counters = Json::obj()
        .set("accepted", c.accepted.load(Ordering::Relaxed))
        .set("requests", c.requests.load(Ordering::Relaxed))
        .set("shed", c.shed.load(Ordering::Relaxed))
        .set("frame_errors", c.frame_errors.load(Ordering::Relaxed))
        .set("conn_timeouts", c.timeouts.load(Ordering::Relaxed))
        .set("sessions_opened", c.opened.load(Ordering::Relaxed))
        .set("sessions_recovered", c.recovered.load(Ordering::Relaxed))
        .set("sessions_closed", c.closed.load(Ordering::Relaxed))
        .set(
            "containment_checks",
            c.contain_checks.load(Ordering::Relaxed),
        )
        .set("containment_hits", c.contain_hits.load(Ordering::Relaxed))
        .set(
            "containment_fast_rejects",
            c.contain_fast_rejects.load(Ordering::Relaxed),
        );
    let tenants: Vec<Json> = inner
        .admission
        .snapshot()
        .into_iter()
        .map(|(name, sessions, inflight, tokens)| {
            Json::obj()
                .set("tenant", name)
                .set("sessions", sessions)
                .set("inflight", inflight)
                .set("tokens", tokens)
        })
        .collect();
    let mut sessions: Vec<Json> = Vec::new();
    for shard_mutex in &inner.shards {
        let mut shard = lock(shard_mutex);
        let shard = &mut *shard;
        for (name, meta) in shard.meta.iter() {
            let mut j = Json::obj()
                .set("session", name.as_str())
                .set("tenant", meta.tenant.as_str())
                .set("durability", meta.marker());
            if let Some(sess) = shard.house.session(name) {
                j = j.set("knowledge_size", sess.knowledge().size());
            }
            if let Some(rec) = &meta.recovery {
                let dropped = match rec.status {
                    RecoveryStatus::Clean => 0usize,
                    RecoveryStatus::Recovered { dropped_records } => dropped_records,
                };
                j = j
                    .set("recovered", true)
                    .set("replayed", rec.replayed)
                    .set("dropped_records", dropped)
                    .set("rebased", rec.rebased);
            }
            sessions.push(j);
        }
    }
    // Shard-order collection; present sorted by session name.
    sessions.sort_by(|a, b| {
        let key = |j: &Json| match j {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == "session")
                .map(|(_, v)| v.render())
                .unwrap_or_default(),
            _ => String::new(),
        };
        key(a).cmp(&key(b))
    });
    Json::obj()
        .set("counters", counters)
        .set("tenants", Json::Arr(tenants))
        .set("sessions", Json::Arr(sessions))
        .render_pretty()
}
