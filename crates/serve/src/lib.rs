//! `iixml-serve` — a fault-hardened multi-tenant TCP session server
//! over the incomplete-information webhouse (DESIGN.md §12).
//!
//! The paper's model is many clients accumulating incomplete knowledge
//! of remote XML sources through query/answer interactions; this crate
//! is the "millions of users" front door for that model. It is
//! std-only (no external dependencies) and deliberately thin: all the
//! smarts — refinement, mediation, durability — live in the core
//! crates; this layer adds exactly the things a network edge needs:
//!
//! * a small length-prefixed, CRC-checked, versioned frame protocol
//!   ([`proto`]),
//! * per-connection deadlines and a slow-loris read budget ([`conn`]),
//! * per-tenant admission control with explicit load-shedding
//!   ([`tenant`]),
//! * a sharded session map with journaled sessions, graceful
//!   drain-and-sync shutdown, and crash-safe restart ([`server`]),
//! * a well-behaved client ([`client`]) for the CLI, load generator,
//!   and tests.
//!
//! Fault philosophy: a misbehaving client degrades *its connection*,
//! never its tenant or the fleet; an over-budget tenant is refused
//! *explicitly* (a `Shed` frame with a retry hint), never queued into
//! unbounded latency; and a kill -9 loses nothing past the last
//! group-commit barrier, because restart recovery replays every
//! session journal concurrently and byte-identically at any pool
//! width.

pub mod client;
pub mod conn;
pub mod proto;
pub mod server;
pub mod tenant;

pub use client::{Client, ClientError, Resp};
pub use conn::{ConnError, DeadlineStream};
pub use proto::{FrameError, ReqOp, Request, RespOp, PROTO_VERSION};
pub use server::{DrainReport, ServeConfig, ServeError, Server};
pub use tenant::{Admission, AdmissionConfig, Shed, TenantGate};

/// Locks a mutex, recovering from poisoning: a panicking holder (none
/// exist — the crate is vetted panic-free — but hooks and unwinds are
/// not ours to assume away) must not wedge the whole server.
pub(crate) fn lock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
