//! The `iixml-serve` wire protocol: small length-prefixed frames,
//! versioned like the WAL formats (DESIGN.md §12).
//!
//! A frame is
//!
//! ```text
//! +--------+---------+--------+------------+---------+------------+
//! | "IIXQ" | version | opcode | body_len   | body    | crc32      |
//! | 4 B    | 1 B     | 1 B    | 4 B LE     | len B   | 4 B LE     |
//! +--------+---------+--------+------------+---------+------------+
//! ```
//!
//! with the CRC computed over `opcode ++ body` using the same
//! slicing-by-8 CRC-32 as the WAL (`iixml_store::crc`). Bodies are
//! UTF-8, newline-separated fields — human-inspectable, like the
//! journal's record payloads.
//!
//! # Version policy
//!
//! [`PROTO_VERSION`] follows the store's format discipline: additive
//! changes (new opcodes, new trailing body fields) keep the version;
//! any change to the frame layout or the meaning of an existing field
//! bumps it. A server speaks exactly one version and answers frames
//! carrying any other with [`RespOp::Err`] code `version` before
//! closing the connection — clients never see silent misparses.
//!
//! # Robustness contract
//!
//! Decoding never panics and never trusts a length: the header is
//! validated against [`MAX_BODY`] before any allocation, the CRC is
//! checked before the body is interpreted, and tenant/session names
//! are restricted to `[A-Za-z0-9_-]{1,64}` (they become journal
//! directory names — no traversal, no separators).

use iixml_store::crc::crc32;

/// Frame magic; a connection sending anything else is degraded as a
/// misbehaving client (the garbage-frame fault).
pub const PROTO_MAGIC: [u8; 4] = *b"IIXQ";
/// The one protocol version this build speaks (see the version policy
/// above).
pub const PROTO_VERSION: u8 = 1;
/// Fixed frame header length: magic, version, opcode, body length.
pub const HEADER_LEN: usize = 10;
/// Frame trailer length (CRC-32 of opcode ++ body).
pub const TRAILER_LEN: usize = 4;
/// Hard cap on a frame body; oversized headers are rejected before
/// any allocation (a 4 GiB `body_len` must not reserve 4 GiB).
pub const MAX_BODY: usize = 1 << 20;
/// Longest accepted tenant or session name.
pub const MAX_NAME: usize = 64;
/// Cap on the per-session catalog size a client may request at open
/// (bounds server memory per session).
pub const MAX_PRODUCTS: usize = 64;

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOp {
    /// First frame on every connection: binds it to a tenant.
    Hello,
    /// Open (or re-attach to) a named session.
    Open,
    /// Ask the source and refine local knowledge (journaled).
    Fetch,
    /// Answer from local knowledge only.
    Ask,
    /// Answer exactly, fetching only the missing pieces.
    Mediate,
    /// Group-commit durability barrier for the session's journal.
    Sync,
    /// Sync and discard the session (journal directory included).
    Close,
    /// Server-wide stats snapshot (admission, durability, sessions).
    Stats,
    /// Liveness probe.
    Ping,
}

impl ReqOp {
    /// The opcode byte (frozen; new ops append, existing bytes never
    /// change meaning within a version).
    pub fn byte(self) -> u8 {
        match self {
            ReqOp::Hello => 0x01,
            ReqOp::Open => 0x02,
            ReqOp::Fetch => 0x03,
            ReqOp::Ask => 0x04,
            ReqOp::Mediate => 0x05,
            ReqOp::Sync => 0x06,
            ReqOp::Close => 0x07,
            ReqOp::Stats => 0x08,
            ReqOp::Ping => 0x09,
        }
    }

    /// Decodes a request opcode byte.
    pub fn from_byte(b: u8) -> Option<ReqOp> {
        match b {
            0x01 => Some(ReqOp::Hello),
            0x02 => Some(ReqOp::Open),
            0x03 => Some(ReqOp::Fetch),
            0x04 => Some(ReqOp::Ask),
            0x05 => Some(ReqOp::Mediate),
            0x06 => Some(ReqOp::Sync),
            0x07 => Some(ReqOp::Close),
            0x08 => Some(ReqOp::Stats),
            0x09 => Some(ReqOp::Ping),
            _ => None,
        }
    }
}

/// Response opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespOp {
    /// Generic success (hello, sync, close).
    Ok,
    /// A complete answer; body starts with the durability marker line.
    Answer,
    /// A partial (not fully answerable) local answer.
    Partial,
    /// A degraded answer (fault-model outcome) with its cause.
    Degraded,
    /// Open outcome: `created`, `attached`, or `recovered` plus the
    /// recovery report fields.
    Opened,
    /// Stats JSON.
    StatsBody,
    /// Liveness reply.
    Pong,
    /// Request-level failure (bad query, unknown session, version…).
    Err,
    /// Admission control / backpressure: the request was not run;
    /// body = `reason \n retry_after_ms`.
    Shed,
}

impl RespOp {
    /// The opcode byte.
    pub fn byte(self) -> u8 {
        match self {
            RespOp::Ok => 0x81,
            RespOp::Answer => 0x82,
            RespOp::Partial => 0x83,
            RespOp::Degraded => 0x84,
            RespOp::Opened => 0x85,
            RespOp::StatsBody => 0x86,
            RespOp::Pong => 0x87,
            RespOp::Err => 0x90,
            RespOp::Shed => 0x91,
        }
    }

    /// Decodes a response opcode byte.
    pub fn from_byte(b: u8) -> Option<RespOp> {
        match b {
            0x81 => Some(RespOp::Ok),
            0x82 => Some(RespOp::Answer),
            0x83 => Some(RespOp::Partial),
            0x84 => Some(RespOp::Degraded),
            0x85 => Some(RespOp::Opened),
            0x86 => Some(RespOp::StatsBody),
            0x87 => Some(RespOp::Pong),
            0x90 => Some(RespOp::Err),
            0x91 => Some(RespOp::Shed),
            _ => None,
        }
    }
}

/// Why a frame could not be decoded. Every variant is a *connection*
/// fault: the server answers (when it still can) and closes that
/// connection, leaving the tenant and its sessions untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`PROTO_MAGIC`].
    BadMagic,
    /// The version byte differs from [`PROTO_VERSION`].
    BadVersion(u8),
    /// Unknown opcode byte for this direction.
    BadOp(u8),
    /// `body_len` exceeded [`MAX_BODY`].
    TooLarge(usize),
    /// The trailer CRC did not match the received bytes.
    BadCrc,
    /// The body was not UTF-8 or missed required fields.
    BadBody(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadOp(b) => write!(f, "unknown opcode {b:#04x}"),
            FrameError::TooLarge(n) => write!(f, "frame body {n} B exceeds {MAX_BODY} B"),
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
            FrameError::BadBody(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

/// Encodes one frame (either direction — the layout is symmetric).
pub fn encode_frame(op_byte: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
    out.extend_from_slice(&PROTO_MAGIC);
    out.push(PROTO_VERSION);
    out.push(op_byte);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    let mut crc_input = Vec::with_capacity(1 + body.len());
    crc_input.push(op_byte);
    crc_input.extend_from_slice(body);
    out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    out
}

/// Decodes a frame header, returning `(opcode_byte, body_len)`. The
/// caller reads exactly `body_len + TRAILER_LEN` further bytes and
/// passes them to [`check_body`].
pub fn decode_header(h: &[u8; HEADER_LEN]) -> Result<(u8, usize), FrameError> {
    if h.get(..4) != Some(PROTO_MAGIC.as_slice()) {
        return Err(FrameError::BadMagic);
    }
    let ver = h.get(4).copied().unwrap_or(0);
    if ver != PROTO_VERSION {
        return Err(FrameError::BadVersion(ver));
    }
    let op = h.get(5).copied().unwrap_or(0);
    let len = match h.get(6..10) {
        Some(&[a, b, c, d]) => u32::from_le_bytes([a, b, c, d]) as usize,
        _ => return Err(FrameError::BadBody("short header")),
    };
    if len > MAX_BODY {
        return Err(FrameError::TooLarge(len));
    }
    Ok((op, len))
}

/// Verifies the CRC trailer over `op ++ body`; `tail` is the
/// `body ++ crc` byte run that followed the header.
pub fn check_body(op: u8, tail: &[u8], body_len: usize) -> Result<&[u8], FrameError> {
    let body = tail
        .get(..body_len)
        .ok_or(FrameError::BadBody("short body"))?;
    let trailer = tail
        .get(body_len..body_len + TRAILER_LEN)
        .ok_or(FrameError::BadBody("short trailer"))?;
    let want = match trailer {
        &[a, b, c, d] => u32::from_le_bytes([a, b, c, d]),
        _ => return Err(FrameError::BadBody("short trailer")),
    };
    let mut crc_input = Vec::with_capacity(1 + body.len());
    crc_input.push(op);
    crc_input.extend_from_slice(body);
    if crc32(&crc_input) != want {
        return Err(FrameError::BadCrc);
    }
    Ok(body)
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Bind the connection to `tenant`.
    Hello {
        /// Tenant name (validated by [`name_ok`]).
        tenant: String,
    },
    /// Open (or re-attach to) session `session` over a generated
    /// catalog source of `products` products seeded with `seed`.
    Open {
        /// Session name (validated by [`name_ok`]).
        session: String,
        /// Catalog size, `1..=MAX_PRODUCTS`.
        products: usize,
        /// Catalog generator seed (the "source address": the same pair
        /// regenerates the same remote document after a restart).
        seed: u64,
    },
    /// Fetch `query` from the source and refine.
    Fetch {
        /// Target session.
        session: String,
        /// ps-query text (`iixml_query::parse` syntax).
        query: String,
    },
    /// Answer `query` from local knowledge.
    Ask {
        /// Target session.
        session: String,
        /// ps-query text.
        query: String,
    },
    /// Answer `query` exactly through the mediator.
    Mediate {
        /// Target session.
        session: String,
        /// ps-query text.
        query: String,
    },
    /// Journal durability barrier.
    Sync {
        /// Target session.
        session: String,
    },
    /// Sync, close, and discard the session.
    Close {
        /// Target session.
        session: String,
    },
    /// Server stats snapshot.
    Stats,
    /// Liveness probe.
    Ping,
}

/// Is `s` a valid tenant/session name? Names become journal directory
/// components, so the alphabet is closed: `[A-Za-z0-9_-]`, 1 to
/// [`MAX_NAME`] characters.
pub fn name_ok(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= MAX_NAME
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn two_lines(body: &str) -> Result<(&str, &str), FrameError> {
    let (a, b) = body
        .split_once('\n')
        .ok_or(FrameError::BadBody("missing field separator"))?;
    Ok((a, b))
}

/// Parses a request frame body for `op`.
pub fn parse_request(op: ReqOp, body: &[u8]) -> Result<Request, FrameError> {
    let text = std::str::from_utf8(body).map_err(|_| FrameError::BadBody("not UTF-8"))?;
    let named = |session: &str| -> Result<String, FrameError> {
        if name_ok(session) {
            Ok(session.to_string())
        } else {
            Err(FrameError::BadBody("bad session name"))
        }
    };
    match op {
        ReqOp::Hello => {
            if name_ok(text) {
                Ok(Request::Hello {
                    tenant: text.to_string(),
                })
            } else {
                Err(FrameError::BadBody("bad tenant name"))
            }
        }
        ReqOp::Open => {
            let (session, rest) = two_lines(text)?;
            let (products, seed) = two_lines(rest)?;
            let products: usize = products
                .parse()
                .map_err(|_| FrameError::BadBody("bad product count"))?;
            if products == 0 || products > MAX_PRODUCTS {
                return Err(FrameError::BadBody("product count out of range"));
            }
            let seed: u64 = seed.parse().map_err(|_| FrameError::BadBody("bad seed"))?;
            Ok(Request::Open {
                session: named(session)?,
                products,
                seed,
            })
        }
        ReqOp::Fetch | ReqOp::Ask | ReqOp::Mediate => {
            let (session, query) = two_lines(text)?;
            let session = named(session)?;
            let query = query.to_string();
            Ok(match op {
                ReqOp::Fetch => Request::Fetch { session, query },
                ReqOp::Ask => Request::Ask { session, query },
                _ => Request::Mediate { session, query },
            })
        }
        ReqOp::Sync => Ok(Request::Sync {
            session: named(text)?,
        }),
        ReqOp::Close => Ok(Request::Close {
            session: named(text)?,
        }),
        ReqOp::Stats => Ok(Request::Stats),
        ReqOp::Ping => Ok(Request::Ping),
    }
}

/// Encodes a request frame (the client side of [`parse_request`]).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let (op, body) = match req {
        Request::Hello { tenant } => (ReqOp::Hello, tenant.clone()),
        Request::Open {
            session,
            products,
            seed,
        } => (ReqOp::Open, format!("{session}\n{products}\n{seed}")),
        Request::Fetch { session, query } => (ReqOp::Fetch, format!("{session}\n{query}")),
        Request::Ask { session, query } => (ReqOp::Ask, format!("{session}\n{query}")),
        Request::Mediate { session, query } => (ReqOp::Mediate, format!("{session}\n{query}")),
        Request::Sync { session } => (ReqOp::Sync, session.clone()),
        Request::Close { session } => (ReqOp::Close, session.clone()),
        Request::Stats => (ReqOp::Stats, String::new()),
        Request::Ping => (ReqOp::Ping, String::new()),
    };
    encode_frame(op.byte(), body.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let bytes = encode_request(&req);
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let (op, len) = decode_header(&header).unwrap();
        let body = check_body(op, &bytes[HEADER_LEN..], len).unwrap();
        let parsed = parse_request(ReqOp::from_byte(op).unwrap(), body).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Hello {
            tenant: "acme".into(),
        });
        round_trip(Request::Open {
            session: "s-1".into(),
            products: 8,
            seed: 42,
        });
        round_trip(Request::Fetch {
            session: "s-1".into(),
            query: "catalog/product{name, price[< 200]}".into(),
        });
        round_trip(Request::Ask {
            session: "s-1".into(),
            query: "catalog/product{name}".into(),
        });
        round_trip(Request::Mediate {
            session: "s_2".into(),
            query: "catalog/product{picture}".into(),
        });
        round_trip(Request::Sync {
            session: "s-1".into(),
        });
        round_trip(Request::Close {
            session: "s-1".into(),
        });
        round_trip(Request::Stats);
        round_trip(Request::Ping);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert_eq!(
            decode_header(b"NOPE\x01\x01\x00\x00\x00\x00"),
            Err(FrameError::BadMagic)
        );
        let mut h = [0u8; HEADER_LEN];
        h[..4].copy_from_slice(&PROTO_MAGIC);
        h[4] = 9; // future version
        assert_eq!(decode_header(&h), Err(FrameError::BadVersion(9)));
        h[4] = PROTO_VERSION;
        h[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_header(&h), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn crc_tampering_is_caught() {
        let bytes = encode_request(&Request::Ping);
        let mut tampered = bytes.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0xFF;
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&tampered[..HEADER_LEN]);
        let (op, len) = decode_header(&header).unwrap();
        assert_eq!(
            check_body(op, &tampered[HEADER_LEN..], len),
            Err(FrameError::BadCrc)
        );
        // Flipping a body bit is caught too.
        let bytes = encode_request(&Request::Hello {
            tenant: "acme".into(),
        });
        let mut tampered = bytes.clone();
        tampered[HEADER_LEN] ^= 0x01;
        let (op, len) = decode_header(&header.clone()).unwrap();
        let _ = (op, len);
        let mut h2 = [0u8; HEADER_LEN];
        h2.copy_from_slice(&tampered[..HEADER_LEN]);
        let (op2, len2) = decode_header(&h2).unwrap();
        assert_eq!(
            check_body(op2, &tampered[HEADER_LEN..], len2),
            Err(FrameError::BadCrc)
        );
    }

    #[test]
    fn names_are_closed_alphabet() {
        assert!(name_ok("tenant-1_A"));
        assert!(!name_ok(""));
        assert!(!name_ok("a/b"));
        assert!(!name_ok("../escape"));
        assert!(!name_ok(&"x".repeat(MAX_NAME + 1)));
    }
}
