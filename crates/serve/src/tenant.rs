//! Per-tenant admission control: session caps, in-flight caps, and a
//! token-bucket request quota.
//!
//! The gate answers one question — *may this request run right now?* —
//! and answers it before any work is done. Over-budget requests are
//! never queued server-side; they get an explicit [`Shed`] response
//! with a retry hint, so backpressure is visible to the client instead
//! of manifesting as unbounded latency. One tenant flooding its quota
//! therefore cannot starve another: the flood is refused at the door,
//! and the per-tenant in-flight cap bounds how many pool workers a
//! single tenant can occupy.
//!
//! The token bucket is refilled by the server's ticker thread at a
//! fixed cadence (no clock reads on the request path — the refill
//! *interval* is the time source, which keeps the serve crate inside
//! the vet determinism rule).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::lock;

/// Why a request was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shed {
    /// The tenant is at its open-session cap.
    SessionCap,
    /// The tenant has too many requests in flight.
    Inflight,
    /// The tenant's token bucket is empty.
    Quota,
}

impl Shed {
    /// Stable wire spelling (the `Shed` response's first body line).
    pub fn reason(self) -> &'static str {
        match self {
            Shed::SessionCap => "session-cap",
            Shed::Inflight => "inflight-cap",
            Shed::Quota => "quota",
        }
    }

    /// Client retry hint in milliseconds. Quota sheds resolve on the
    /// next refill tick; capacity sheds resolve when work completes,
    /// which is usually sooner.
    pub fn retry_after_ms(self, refill_ms: u64) -> u64 {
        match self {
            Shed::Quota => refill_ms.max(1),
            Shed::SessionCap | Shed::Inflight => (refill_ms / 4).max(1),
        }
    }
}

/// Admission limits applied to every tenant.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Max concurrently open sessions per tenant.
    pub max_sessions: usize,
    /// Max in-flight requests per tenant.
    pub max_inflight: usize,
    /// Token-bucket capacity (burst size).
    pub quota_burst: i64,
    /// Tokens added per refill tick.
    pub quota_refill: i64,
    /// Refill tick cadence in milliseconds.
    pub refill_ms: u64,
}

/// One tenant's live admission state.
pub struct TenantGate {
    sessions: AtomicUsize,
    inflight: AtomicUsize,
    tokens: AtomicI64,
}

impl TenantGate {
    fn new(cfg: &AdmissionConfig) -> TenantGate {
        TenantGate {
            sessions: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            tokens: AtomicI64::new(cfg.quota_burst),
        }
    }

    /// Takes one quota token and one in-flight slot, or refuses. On
    /// success the returned guard releases the slot when dropped.
    fn try_request(self: &Arc<Self>, cfg: &AdmissionConfig) -> Result<InflightGuard, Shed> {
        if self.tokens.fetch_sub(1, Ordering::AcqRel) <= 0 {
            self.tokens.fetch_add(1, Ordering::AcqRel);
            return Err(Shed::Quota);
        }
        if self.inflight.fetch_add(1, Ordering::AcqRel) >= cfg.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            // An inflight-shed request did no work: refund the token so
            // capacity pressure does not also drain the quota.
            self.tokens.fetch_add(1, Ordering::AcqRel);
            return Err(Shed::Inflight);
        }
        Ok(InflightGuard {
            gate: Arc::clone(self),
        })
    }

    /// Reserves a session slot (on `Open` of a not-yet-known session).
    pub fn try_open_session(&self, cfg: &AdmissionConfig) -> Result<(), Shed> {
        if self.sessions.fetch_add(1, Ordering::AcqRel) >= cfg.max_sessions {
            self.sessions.fetch_sub(1, Ordering::AcqRel);
            return Err(Shed::SessionCap);
        }
        Ok(())
    }

    /// Adopts a session slot unconditionally — used when restart
    /// recovery re-registers journaled sessions that were admitted in
    /// a previous life (recovery must never drop durable state to an
    /// admission cap).
    pub fn adopt_session(&self) {
        self.sessions.fetch_add(1, Ordering::AcqRel);
    }

    /// Releases a session slot (on `Close`).
    pub fn release_session(&self) {
        let prev = self.sessions.fetch_sub(1, Ordering::AcqRel);
        if prev == 0 {
            // Underflow guard (double close); restore zero.
            self.sessions.store(0, Ordering::Release);
        }
    }

    fn refill(&self, cfg: &AdmissionConfig) {
        let mut cur = self.tokens.load(Ordering::Acquire);
        loop {
            let next = (cur + cfg.quota_refill).min(cfg.quota_burst);
            match self
                .tokens
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current open-session count (stats).
    pub fn sessions_now(&self) -> usize {
        self.sessions.load(Ordering::Acquire)
    }

    /// Current in-flight count (stats).
    pub fn inflight_now(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    /// Current token balance (stats).
    pub fn tokens_now(&self) -> i64 {
        self.tokens.load(Ordering::Acquire)
    }
}

/// RAII in-flight slot; dropping it re-admits the next request.
pub struct InflightGuard {
    gate: Arc<TenantGate>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The fleet-wide tenant registry. Gates are created on first contact
/// and live for the server's lifetime (tenants are few; sessions are
/// many).
pub struct Admission {
    cfg: AdmissionConfig,
    gates: Mutex<BTreeMap<String, Arc<TenantGate>>>,
}

impl Admission {
    /// Creates an empty registry with the given limits.
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            gates: Mutex::new(BTreeMap::new()),
        }
    }

    /// The limits in force.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// The gate for `tenant`, created on demand.
    pub fn gate(&self, tenant: &str) -> Arc<TenantGate> {
        let mut gates = lock(&self.gates);
        if let Some(g) = gates.get(tenant) {
            return Arc::clone(g);
        }
        let g = Arc::new(TenantGate::new(&self.cfg));
        gates.insert(tenant.to_string(), Arc::clone(&g));
        g
    }

    /// Admission check for one request on `gate`.
    pub fn try_request(&self, gate: &Arc<TenantGate>) -> Result<InflightGuard, Shed> {
        gate.try_request(&self.cfg)
    }

    /// One refill tick across all tenants (called by the ticker
    /// thread every `refill_ms`).
    pub fn refill_all(&self) {
        let gates = lock(&self.gates);
        for gate in gates.values() {
            gate.refill(&self.cfg);
        }
    }

    /// Per-tenant snapshot for `--stats`: `(name, sessions, inflight,
    /// tokens)` in name order.
    pub fn snapshot(&self) -> Vec<(String, usize, usize, i64)> {
        let gates = lock(&self.gates);
        gates
            .iter()
            .map(|(name, g)| {
                (
                    name.clone(),
                    g.sessions_now(),
                    g.inflight_now(),
                    g.tokens_now(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            max_sessions: 2,
            max_inflight: 2,
            quota_burst: 3,
            quota_refill: 3,
            refill_ms: 10,
        }
    }

    #[test]
    fn quota_exhausts_and_refills() {
        let adm = Admission::new(cfg());
        let gate = adm.gate("t");
        let g1 = adm.try_request(&gate).unwrap();
        drop(g1);
        let g2 = adm.try_request(&gate).unwrap();
        drop(g2);
        let g3 = adm.try_request(&gate).unwrap();
        drop(g3);
        assert_eq!(adm.try_request(&gate).err(), Some(Shed::Quota));
        adm.refill_all();
        assert!(adm.try_request(&gate).is_ok());
    }

    #[test]
    fn inflight_cap_binds_concurrent_holders() {
        let adm = Admission::new(cfg());
        let gate = adm.gate("t");
        let _a = adm.try_request(&gate).unwrap();
        let _b = adm.try_request(&gate).unwrap();
        assert_eq!(adm.try_request(&gate).err(), Some(Shed::Inflight));
        drop(_a);
        assert!(adm.try_request(&gate).is_ok());
    }

    #[test]
    fn session_cap_and_release() {
        let adm = Admission::new(cfg());
        let gate = adm.gate("t");
        gate.try_open_session(adm.config()).unwrap();
        gate.try_open_session(adm.config()).unwrap();
        assert_eq!(
            gate.try_open_session(adm.config()).err(),
            Some(Shed::SessionCap)
        );
        gate.release_session();
        assert!(gate.try_open_session(adm.config()).is_ok());
    }

    #[test]
    fn tenants_are_isolated() {
        let adm = Admission::new(cfg());
        let a = adm.gate("a");
        let b = adm.gate("b");
        // Drain a's quota entirely.
        while adm.try_request(&a).is_ok() {}
        assert_eq!(adm.try_request(&a).err(), Some(Shed::Quota));
        // b is unaffected.
        assert!(adm.try_request(&b).is_ok());
    }
}
