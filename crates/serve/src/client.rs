//! A well-behaved protocol client, used by the CLI, the load
//! generator, and the tests. (Misbehaving clients are hand-rolled in
//! the chaos tests on raw sockets — by design this type cannot emit a
//! malformed frame.)

use std::net::TcpStream;

use crate::conn::{ConnError, DeadlineStream};
use crate::proto::{self, Request, RespOp};

/// Read budget per response frame; responses (stats JSON included)
/// arrive in few large reads, so this is never the binding limit for
/// an honest server.
const CLIENT_READ_BUDGET: u32 = 4096;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Conn(ConnError),
    /// The server closed the connection (shed at the door, drained,
    /// or degraded us).
    Closed,
    /// The server spoke something that is not a response frame.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Conn(e) => write!(f, "{e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

/// One decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resp {
    /// The response opcode.
    pub op: RespOp,
    /// The UTF-8 body (newline-separated fields).
    pub body: String,
}

impl Resp {
    /// Body lines (empty body = no lines).
    pub fn lines(&self) -> Vec<&str> {
        if self.body.is_empty() {
            Vec::new()
        } else {
            self.body.split('\n').collect()
        }
    }

    /// The durability marker line answers carry first (`ok`,
    /// `recovered:<n>`, `fault:<err>`), when present.
    pub fn marker(&self) -> Option<&str> {
        match self.op {
            RespOp::Answer | RespOp::Partial | RespOp::Degraded | RespOp::Opened => {
                self.lines().get(self.marker_index()).copied()
            }
            _ => None,
        }
    }

    fn marker_index(&self) -> usize {
        // Opened bodies are `status\nmarker`; answers lead with it.
        match self.op {
            RespOp::Opened => 1,
            _ => 0,
        }
    }

    /// Was this request shed by admission control?
    pub fn is_shed(&self) -> bool {
        self.op == RespOp::Shed
    }
}

/// A connected, tenant-bound client.
pub struct Client {
    ds: DeadlineStream,
}

impl Client {
    /// Connects to `127.0.0.1:port`, performs the `Hello` handshake
    /// for `tenant`, and returns the bound client.
    pub fn connect(
        port: u16,
        tenant: &str,
        read_timeout_ms: u64,
        write_timeout_ms: u64,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(("127.0.0.1", port))
            .map_err(|e| ClientError::Protocol(format!("connect: {e}")))?;
        let ds = DeadlineStream::new(
            stream,
            read_timeout_ms,
            write_timeout_ms,
            CLIENT_READ_BUDGET,
        )
        .map_err(ClientError::Conn)?;
        let mut client = Client { ds };
        let resp = client.call(&Request::Hello {
            tenant: tenant.to_string(),
        })?;
        if resp.op != RespOp::Ok {
            return Err(ClientError::Protocol(format!(
                "hello refused: {:?} {}",
                resp.op, resp.body
            )));
        }
        Ok(client)
    }

    /// Sends one request and reads its response.
    pub fn call(&mut self, req: &Request) -> Result<Resp, ClientError> {
        self.ds
            .write_frame(&proto::encode_request(req))
            .map_err(ClientError::Conn)?;
        let (op, body) = self
            .ds
            .read_frame()
            .map_err(ClientError::Conn)?
            .ok_or(ClientError::Closed)?;
        let op = RespOp::from_byte(op)
            .ok_or_else(|| ClientError::Protocol(format!("unknown response opcode {op:#04x}")))?;
        let body =
            String::from_utf8(body).map_err(|_| ClientError::Protocol("non-UTF-8 body".into()))?;
        Ok(Resp { op, body })
    }

    /// Opens (or attaches to) a session.
    pub fn open(&mut self, session: &str, products: usize, seed: u64) -> Result<Resp, ClientError> {
        self.call(&Request::Open {
            session: session.to_string(),
            products,
            seed,
        })
    }

    /// Fetches from the source and refines.
    pub fn fetch(&mut self, session: &str, query: &str) -> Result<Resp, ClientError> {
        self.call(&Request::Fetch {
            session: session.to_string(),
            query: query.to_string(),
        })
    }

    /// Answers from local knowledge only.
    pub fn ask(&mut self, session: &str, query: &str) -> Result<Resp, ClientError> {
        self.call(&Request::Ask {
            session: session.to_string(),
            query: query.to_string(),
        })
    }

    /// Answers exactly through the mediator (resilient path).
    pub fn mediate(&mut self, session: &str, query: &str) -> Result<Resp, ClientError> {
        self.call(&Request::Mediate {
            session: session.to_string(),
            query: query.to_string(),
        })
    }

    /// Durability barrier for the session's journal.
    pub fn sync(&mut self, session: &str) -> Result<Resp, ClientError> {
        self.call(&Request::Sync {
            session: session.to_string(),
        })
    }

    /// Syncs and discards the session.
    pub fn close(&mut self, session: &str) -> Result<Resp, ClientError> {
        self.call(&Request::Close {
            session: session.to_string(),
        })
    }

    /// Server stats JSON.
    pub fn stats(&mut self) -> Result<Resp, ClientError> {
        self.call(&Request::Stats)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<Resp, ClientError> {
        self.call(&Request::Ping)
    }
}
