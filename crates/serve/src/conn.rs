//! Deadline-enforced framed connection I/O.
//!
//! Every read and write on the underlying [`TcpStream`] goes through
//! [`DeadlineStream`], which (re)arms `set_read_timeout` /
//! `set_write_timeout` immediately before the matching syscall — the
//! `net-timeout` vet rule pins that discipline. On top of the OS
//! deadline, [`DeadlineStream::read_frame`] budgets the *number* of
//! `read` invocations a single frame may consume: a slow-loris client
//! trickling one byte per timeout window exhausts the budget and is
//! disconnected without ever tying up a worker past
//! `budget × read_timeout`.
//!
//! All failures are per-connection: a [`ConnError`] degrades exactly
//! the connection that produced it. The caller drops the socket; the
//! tenant's sessions and the rest of the fleet are untouched.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{self, FrameError, HEADER_LEN, TRAILER_LEN};

/// Why a connection was degraded. Every variant closes only the one
/// connection it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnError {
    /// The peer closed (or half-closed) mid-frame.
    ClosedMidFrame,
    /// A read or write missed its deadline.
    Timeout,
    /// The per-frame read budget ran out (slow-loris trickle).
    SlowLoris,
    /// The frame failed to decode (garbage, bad CRC, wrong version…).
    Frame(FrameError),
    /// Any other socket error (reset, broken pipe, …).
    Io(ErrorKind),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::ClosedMidFrame => write!(f, "peer closed mid-frame"),
            ConnError::Timeout => write!(f, "connection deadline exceeded"),
            ConnError::SlowLoris => write!(f, "per-frame read budget exhausted"),
            ConnError::Frame(e) => write!(f, "{e}"),
            ConnError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

fn io_err(e: std::io::Error) -> ConnError {
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => ConnError::Timeout,
        kind => ConnError::Io(kind),
    }
}

/// A [`TcpStream`] whose every I/O call is covered by a deadline and
/// whose frame reads are invocation-budgeted.
pub struct DeadlineStream {
    stream: TcpStream,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Max `read` syscalls a single frame may take (header + body).
    read_budget: u32,
}

impl DeadlineStream {
    /// Wraps `stream` with the given deadlines (milliseconds) and
    /// per-frame read budget. The stream is switched to blocking mode
    /// (deadlines come from the socket timeouts, not nonblocking
    /// polling).
    pub fn new(
        stream: TcpStream,
        read_timeout_ms: u64,
        write_timeout_ms: u64,
        read_budget: u32,
    ) -> Result<DeadlineStream, ConnError> {
        stream.set_nonblocking(false).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        Ok(DeadlineStream {
            stream,
            read_timeout: Duration::from_millis(read_timeout_ms.max(1)),
            write_timeout: Duration::from_millis(write_timeout_ms.max(1)),
            read_budget: read_budget.max(4),
        })
    }

    /// Fills `buf`, spending at most `*budget` reads, each covered by
    /// the read deadline. `eof_ok_at_start` makes a clean EOF on the
    /// very first byte report `Ok(false)` (frame-boundary close)
    /// instead of an error.
    fn read_exact_budgeted(
        &mut self,
        buf: &mut [u8],
        budget: &mut u32,
        eof_ok_at_start: bool,
    ) -> Result<bool, ConnError> {
        self.stream
            .set_read_timeout(Some(self.read_timeout))
            .map_err(io_err)?;
        let mut filled = 0usize;
        while filled < buf.len() {
            if *budget == 0 {
                return Err(ConnError::SlowLoris);
            }
            *budget -= 1;
            let rest = buf
                .get_mut(filled..)
                .ok_or(ConnError::Io(ErrorKind::Other))?;
            match self.stream.read(rest) {
                Ok(0) if filled == 0 && eof_ok_at_start => return Ok(false),
                Ok(0) => return Err(ConnError::ClosedMidFrame),
                Ok(n) => filled += n,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(io_err(e)),
            }
        }
        Ok(true)
    }

    /// Reads one full frame. Returns `Ok(None)` on a clean close at a
    /// frame boundary (including half-close: the peer shut down its
    /// write side and we see EOF before any header byte).
    pub fn read_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, ConnError> {
        let mut budget = self.read_budget;
        let mut header = [0u8; HEADER_LEN];
        if !self.read_exact_budgeted(&mut header, &mut budget, true)? {
            return Ok(None);
        }
        let (op, body_len) = proto::decode_header(&header).map_err(ConnError::Frame)?;
        let mut tail = vec![0u8; body_len + TRAILER_LEN];
        self.read_exact_budgeted(&mut tail, &mut budget, false)?;
        let body = proto::check_body(op, &tail, body_len).map_err(ConnError::Frame)?;
        Ok(Some((op, body.to_vec())))
    }

    /// Writes one pre-encoded frame under the write deadline.
    pub fn write_frame(&mut self, frame: &[u8]) -> Result<(), ConnError> {
        self.stream
            .set_write_timeout(Some(self.write_timeout))
            .map_err(io_err)?;
        self.stream.write_all(frame).map_err(io_err)
    }

    /// Shuts down both directions (best effort; used after a fault so
    /// the peer sees the close promptly).
    pub fn shutdown(&self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}
