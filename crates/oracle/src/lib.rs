#![warn(missing_docs)]

//! Brute-force reference semantics for testing.
//!
//! The efficient algorithms of `iixml-core` (Refine, certain/possible
//! prefixes, `q(T)`, …) are all statements about the possible-world set
//! `rep(T)`. This crate provides the slow-but-obviously-correct
//! counterparts used as oracles in tests:
//!
//! * [`enumerate_rep`] — bounded exhaustive enumeration of `rep(T)` by
//!   direct expansion of the conditional tree type (multiplicities capped,
//!   data values drawn from condition-derived representatives, mirroring
//!   the finite-check argument of Lemma 2.3);
//! * [`mutations`] — a neighborhood of a concrete tree (drop a node,
//!   perturb a value, duplicate a subtree, relabel) used to probe
//!   membership predicates from both sides;
//! * reference implementations of possible/certain prefix and query
//!   answering over an explicit world list.

use iixml_core::{IncompleteTree, Sym, SymTarget};
use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_query::PsQuery;
use iixml_tree::{is_prefix_of, DataTree, Nid, NodeRef};
use iixml_values::{IntervalSet, Rat};
use std::collections::{HashMap, HashSet};

/// Bounds for exhaustive enumeration.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Cap on instances of a `+`/`⋆` entry (0..=cap or 1..=cap).
    pub star_cap: usize,
    /// Maximum tree depth (root = 1).
    pub max_depth: usize,
    /// Hard cap on the number of enumerated worlds (enumeration stops —
    /// and [`Enumeration::truncated`] is set — once reached).
    pub max_worlds: usize,
    /// How many representative values to draw per condition interval.
    pub values_per_interval: usize,
}

impl Default for Bounds {
    fn default() -> Bounds {
        Bounds {
            star_cap: 2,
            max_depth: 4,
            max_worlds: 20_000,
            values_per_interval: 1,
        }
    }
}

/// The result of a bounded enumeration.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// The worlds found (complete up to the bounds unless truncated).
    pub worlds: Vec<DataTree>,
    /// True when `max_worlds` cut the enumeration short.
    pub truncated: bool,
}

/// Representative values of a condition: a witness from each interval
/// (plus endpoints where closed), mirroring Lemma 2.3's argument that
/// checking finitely many values suffices.
pub fn representatives(set: &IntervalSet, per_interval: usize) -> Vec<Rat> {
    let mut out = Vec::new();
    for iv in set.intervals() {
        out.push(iv.witness());
        if per_interval > 1 {
            // A second point inside the interval when one exists.
            let w = iv.witness();
            let next = w + Rat::new(1, 7);
            if iv.contains(next) {
                out.push(next);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// A partially-built fragment during enumeration: a standalone tree.
type Fragment = DataTree;

/// Enumerates (a bounded, representative subset of) `rep(T)`.
///
/// The enumeration is exhaustive with respect to the bounds: every tree
/// in `rep(T)` whose star-entry counts are `<= star_cap`, whose depth is
/// `<= max_depth`, and whose free values are among the condition
/// representatives appears (up to node ids of non-instantiated nodes).
pub fn enumerate_rep(it: &IncompleteTree, bounds: Bounds) -> Enumeration {
    /// Worlds returned per enumeration (after dedup).
    static OBS_WORLDS: LazyHistogram = LazyHistogram::new(keys::ORACLE_ENUMERATE_WORLDS);
    /// Enumerations that hit a bound and were cut short.
    static OBS_TRUNCATIONS: LazyCounter = LazyCounter::new(keys::ORACLE_ENUMERATE_TRUNCATIONS);
    /// Wall time per enumeration.
    static OBS_ENUM_NS: LazyHistogram = LazyHistogram::new(keys::ORACLE_ENUMERATE_CALL_NS);

    let _span = OBS_ENUM_NS.time();
    let trimmed = it.trim();
    let ty = trimmed.ty();
    let mut truncated = false;
    let mut worlds: Vec<DataTree> = Vec::new();
    for &root in ty.roots() {
        let frags = expand(&trimmed, root, bounds.max_depth, &bounds, &mut truncated);
        for f in frags {
            if worlds.len() >= bounds.max_worlds {
                truncated = true;
                break;
            }
            worlds.push(f);
        }
    }
    // Re-id the non-instantiated nodes deterministically and dedupe.
    let mut seen = HashSet::new();
    let mut unique = Vec::new();
    for w in worlds {
        let key = w.canonical_key(w.root());
        if seen.insert(key) {
            unique.push(w);
        }
    }
    OBS_WORLDS.observe(unique.len() as u64);
    if truncated {
        OBS_TRUNCATIONS.incr();
    }
    Enumeration {
        worlds: unique,
        truncated,
    }
}

/// All fragments rooted at a node typed `s`, up to `depth` levels.
fn expand(
    it: &IncompleteTree,
    s: Sym,
    depth: usize,
    bounds: &Bounds,
    truncated: &mut bool,
) -> Vec<Fragment> {
    if depth == 0 {
        *truncated = true;
        return Vec::new();
    }
    let ty = it.ty();
    let info = ty.info(s);
    let values = representatives(&info.cond, bounds.values_per_interval);
    let mut out = Vec::new();
    for &v in &values {
        for atom in ty.mu(s).atoms() {
            // Per entry: list of (child fragment lists) for each allowed
            // count.
            let mut child_options: Vec<Vec<Vec<Fragment>>> = Vec::new();
            for &(c, m) in atom.entries() {
                let sub = expand(it, c, depth - 1, bounds, truncated);
                let counts: Vec<usize> = match m {
                    iixml_tree::Mult::One => vec![1],
                    iixml_tree::Mult::Opt => vec![0, 1],
                    iixml_tree::Mult::Plus => (1..=bounds.star_cap).collect(),
                    iixml_tree::Mult::Star => (0..=bounds.star_cap).collect(),
                };
                // Options for this entry: multisets of `count` fragments.
                let mut opts: Vec<Vec<Fragment>> = Vec::new();
                for count in counts {
                    multisets(&sub, count, &mut Vec::new(), 0, &mut opts);
                }
                if opts.is_empty() {
                    // Entry mandatory but no fragments: atom dead for
                    // this choice.
                }
                child_options.push(opts);
            }
            // Cartesian product across entries.
            let mut combos: Vec<Vec<Fragment>> = vec![Vec::new()];
            for opts in &child_options {
                let mut next = Vec::new();
                for combo in &combos {
                    for opt in opts {
                        if combo.len() + opt.len() > 16 {
                            *truncated = true;
                            continue;
                        }
                        let mut c: Vec<Fragment> = combo.clone();
                        c.extend(opt.iter().cloned());
                        next.push(c);
                    }
                }
                combos = next;
                if combos.len() > bounds.max_worlds {
                    *truncated = true;
                    combos.truncate(bounds.max_worlds);
                }
            }
            for combo in combos {
                out.push(assemble(it, s, v, &combo));
                if out.len() > bounds.max_worlds {
                    *truncated = true;
                    return out;
                }
            }
        }
    }
    out
}

/// Choose `count` fragments from `pool` with repetition, order-insensitive.
fn multisets(
    pool: &[Fragment],
    count: usize,
    acc: &mut Vec<usize>,
    from: usize,
    out: &mut Vec<Vec<Fragment>>,
) {
    if count == 0 {
        out.push(acc.iter().map(|&i| pool[i].clone()).collect());
        return;
    }
    for i in from..pool.len() {
        acc.push(i);
        multisets(pool, count - 1, acc, i, out);
        acc.pop();
    }
}

/// Builds a fragment: a root node typed `s` with the given child
/// fragments grafted under it. Node ids: instantiated nodes keep theirs;
/// others are assigned fresh ids on a per-fragment basis (rewritten to be
/// globally unique at assembly).
fn assemble(it: &IncompleteTree, s: Sym, value: Rat, children: &[Fragment]) -> Fragment {
    let info = it.ty().info(s);
    let (nid, label) = match info.target {
        SymTarget::Node(n) => (
            n,
            it.node_info(n)
                .expect("node symbols reference known nodes")
                .label,
        ),
        SymTarget::Lab(l) => {
            // A free root: pick an id guaranteed not to clash with any
            // instantiated node (renumbered again when grafted under a
            // parent fragment).
            let mut id = 900_000_000u64;
            while it.nodes().contains_key(&Nid(id)) {
                id += 1;
            }
            (Nid(id), l)
        }
    };
    let mut t = DataTree::new(nid, label, value);
    let mut next_free = 1_000_000u64;
    // Re-id helper: copy a fragment under the root, keeping instantiated
    // ids and renumbering free ones.
    fn copy(
        src: &DataTree,
        sn: NodeRef,
        dst: &mut DataTree,
        dn: NodeRef,
        it: &IncompleteTree,
        next_free: &mut u64,
    ) {
        for &c in src.children(sn) {
            let id = src.nid(c);
            let id = if it.nodes().contains_key(&id) {
                id
            } else {
                *next_free += 1;
                Nid(*next_free)
            };
            let nc = dst
                .add_child(dn, id, src.label(c), src.value(c))
                .expect("fresh ids are unique");
            copy(src, c, dst, nc, it, next_free);
        }
    }
    // The fragment roots themselves:
    for ch in children {
        let id = ch.nid(ch.root());
        let id = if it.nodes().contains_key(&id) {
            id
        } else {
            next_free += 1;
            Nid(next_free)
        };
        let root = t.root();
        let nc = t
            .add_child(root, id, ch.label(ch.root()), ch.value(ch.root()))
            .expect("fresh ids are unique");
        copy(ch, ch.root(), &mut t, nc, it, &mut next_free);
    }
    t
}

/// Counts the *derivations* of bounded worlds of `rep(T)` without
/// materializing them: per symbol, the number of choices of
/// representative value, atom, per-entry multiplicity count, and child
/// derivations (multisets with repetition). Saturating `u128`.
///
/// This upper-bounds the number of bounded worlds (overlapping
/// disjunctions may derive the same world twice). Note the measure's
/// granularity follows the conditions present (each interval contributes
/// one representative), so it is *not* monotone under refinement — use
/// [`log2_worlds`] with a fixed integer domain for an uncertainty meter.
pub fn count_derivations(it: &IncompleteTree, bounds: Bounds) -> u128 {
    let trimmed = it.trim();
    let ty = trimmed.ty();
    let mut memo: HashMap<(Sym, usize), u128> = HashMap::new();
    fn binom(n: u128, k: u128) -> u128 {
        // C(n + k - 1, k): multisets of size k from n variants.
        if k == 0 {
            return 1;
        }
        if n == 0 {
            return 0;
        }
        let mut acc: u128 = 1;
        for i in 0..k {
            acc = acc.saturating_mul((n + k - 1).saturating_sub(i));
            acc /= i + 1;
            if acc > u128::MAX / 2 {
                return u128::MAX / 2; // saturate early
            }
        }
        acc
    }
    fn go(
        it: &IncompleteTree,
        s: Sym,
        depth: usize,
        bounds: &Bounds,
        memo: &mut HashMap<(Sym, usize), u128>,
    ) -> u128 {
        if depth == 0 {
            return 0;
        }
        if let Some(&c) = memo.get(&(s, depth)) {
            return c;
        }
        memo.insert((s, depth), 0); // cycle guard
        let ty = it.ty();
        let values = representatives(&ty.info(s).cond, bounds.values_per_interval).len() as u128;
        let mut per_atom_sum: u128 = 0;
        for atom in ty.mu(s).atoms() {
            let mut prod: u128 = 1;
            for &(c, m) in atom.entries() {
                let variants = go(it, c, depth - 1, bounds, memo);
                let counts: Vec<u128> = match m {
                    iixml_tree::Mult::One => vec![1],
                    iixml_tree::Mult::Opt => vec![0, 1],
                    iixml_tree::Mult::Plus => (1..=bounds.star_cap as u128).collect(),
                    iixml_tree::Mult::Star => (0..=bounds.star_cap as u128).collect(),
                };
                let entry_total: u128 = counts
                    .into_iter()
                    .map(|k| binom(variants, k))
                    .fold(0u128, u128::saturating_add);
                prod = prod.saturating_mul(entry_total);
                if prod == 0 {
                    break;
                }
            }
            per_atom_sum = per_atom_sum.saturating_add(prod);
        }
        let total = values.saturating_mul(per_atom_sum);
        memo.insert((s, depth), total);
        total
    }
    ty.roots()
        .iter()
        .map(|&r| go(&trimmed, r, bounds.max_depth, &bounds.clone(), &mut memo))
        .fold(0u128, u128::saturating_add)
}

/// The log₂ of the number of bounded possible-world derivations of
/// `rep(T)` over the **fixed integer value domain** `[lo, hi]` — an
/// uncertainty meter for Webhouse sessions.
///
/// Unlike [`count_derivations`] (whose representative-value granularity
/// depends on the conditions present), the value domain here is fixed,
/// so the measure is monotone under refinement: more knowledge can only
/// remove worlds. Computed in the log domain to avoid overflow; returns
/// `f64::NEG_INFINITY` when no bounded world exists.
pub fn log2_worlds(
    it: &IncompleteTree,
    lo: i64,
    hi: i64,
    star_cap: usize,
    max_depth: usize,
) -> f64 {
    let trimmed = it.trim();
    let ty = trimmed.ty();
    let mut memo: HashMap<(Sym, usize), f64> = HashMap::new();

    fn log2_sum(xs: impl IntoIterator<Item = f64>) -> f64 {
        let xs: Vec<f64> = xs.into_iter().filter(|x| x.is_finite()).collect();
        let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if !m.is_finite() {
            return f64::NEG_INFINITY;
        }
        m + xs.iter().map(|x| (x - m).exp2()).sum::<f64>().log2()
    }

    // log₂ of the number of size-k multisets from 2^variants_l
    // variants: C(n + k - 1, k).
    fn log2_multisets(variants_l: f64, k: usize) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if !variants_l.is_finite() {
            return f64::NEG_INFINITY;
        }
        if variants_l > 40.0 {
            // n overwhelms k: C(n+k-1, k) ≈ n^k / k!.
            let log2_kfact: f64 = (1..=k).map(|i| (i as f64).log2()).sum();
            return (k as f64) * variants_l - log2_kfact;
        }
        let n = variants_l.exp2().round() as u128;
        if n == 0 {
            return f64::NEG_INFINITY;
        }
        let mut acc = 0.0f64;
        for i in 0..k as u128 {
            acc += ((n + k as u128 - 1 - i) as f64).log2() - ((i + 1) as f64).log2();
        }
        acc
    }

    #[allow(clippy::too_many_arguments)]
    fn go(
        it: &IncompleteTree,
        s: Sym,
        depth: usize,
        lo: i64,
        hi: i64,
        star_cap: usize,
        memo: &mut HashMap<(Sym, usize), f64>,
    ) -> f64 {
        if depth == 0 {
            return f64::NEG_INFINITY;
        }
        if let Some(&c) = memo.get(&(s, depth)) {
            return c;
        }
        memo.insert((s, depth), f64::NEG_INFINITY); // cycle guard
        let ty = it.ty();
        let nvals = ty.info(s).cond.count_integers(lo, hi);
        if nvals == 0 {
            return f64::NEG_INFINITY;
        }
        let values_l = (nvals as f64).log2();
        let atom_logs: Vec<f64> = ty
            .mu(s)
            .atoms()
            .iter()
            .map(|atom| {
                let mut prod = 0.0f64;
                for &(c, m) in atom.entries() {
                    let variants_l = go(it, c, depth - 1, lo, hi, star_cap, memo);
                    let counts: Vec<usize> = match m {
                        iixml_tree::Mult::One => vec![1],
                        iixml_tree::Mult::Opt => vec![0, 1],
                        iixml_tree::Mult::Plus => (1..=star_cap).collect(),
                        iixml_tree::Mult::Star => (0..=star_cap).collect(),
                    };
                    let entry_l =
                        log2_sum(counts.into_iter().map(|k| log2_multisets(variants_l, k)));
                    prod += entry_l;
                    if !prod.is_finite() {
                        break;
                    }
                }
                prod
            })
            .collect();
        let total = values_l + log2_sum(atom_logs);
        memo.insert((s, depth), total);
        total
    }

    log2_sum(
        ty.roots()
            .iter()
            .map(|&r| go(&trimmed, r, max_depth, lo, hi, star_cap, &mut memo))
            .collect::<Vec<_>>(),
    )
}

/// The log₂ of the number of (ordered) derivations of trees in `rep(T)`
/// with at most `max_nodes` nodes and integer values in `[lo, hi]`.
///
/// "Ordered derivation" = a tree together with an ordering of each
/// node's children and a typing; each tree is counted with a
/// tree-intrinsic multiplicity, so the measure behaves monotonically
/// under refinement in practice (a smaller `rep` has fewer derivations)
/// — the node budget, unlike a per-entry star cap, is
/// representation-independent. Returns `NEG_INFINITY` when no bounded
/// world exists.
pub fn log2_sized_worlds(it: &IncompleteTree, lo: i64, hi: i64, max_nodes: usize) -> f64 {
    // Counts can reach 10^800+, so the whole DP runs in the log₂
    // domain: a cell holds log₂(count), NEG_INFINITY means zero.
    const ZERO: f64 = f64::NEG_INFINITY;
    fn ladd(a: f64, b: f64) -> f64 {
        // log₂(2^a + 2^b)
        if a == ZERO {
            return b;
        }
        if b == ZERO {
            return a;
        }
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        hi + (1.0 + (lo - hi).exp2()).log2()
    }
    let trimmed = it.trim();
    let ty = trimmed.ty();
    let ns = ty.sym_count();
    let b = max_nodes;
    // w[s][k] = log₂(#derivations of k-node trees rooted at symbol s).
    let mut w = vec![vec![ZERO; b + 1]; ns];
    // Iterate to a fixpoint: tree height is bounded by node count, so
    // `max_nodes` rounds suffice.
    for _round in 0..b {
        let mut next = vec![vec![ZERO; b + 1]; ns];
        for s in ty.syms() {
            let nvals = ty.info(s).cond.count_integers(lo, hi);
            if nvals == 0 {
                continue;
            }
            let lvals = (nvals as f64).log2();
            for atom in ty.mu(s).atoms() {
                // children[c] = log₂(ways to fill the atom, c nodes).
                let mut children = vec![ZERO; b];
                children[0] = 0.0;
                for &(cs, m) in atom.entries() {
                    let child = &w[cs.ix()];
                    // series[c] = log₂(ways for this entry: c nodes).
                    let mut series = vec![ZERO; b];
                    if !m.mandatory() {
                        series[0] = 0.0;
                    }
                    let max_k = if m.repeatable() { b } else { 1 };
                    let mut power = vec![ZERO; b];
                    power[0] = 0.0; // child^0
                    for _k in 1..=max_k {
                        let mut nextp = vec![ZERO; b];
                        for (i, &pi) in power.iter().enumerate() {
                            if pi == ZERO {
                                continue;
                            }
                            for (j, &cj) in child.iter().enumerate() {
                                if cj != ZERO && i + j < b {
                                    nextp[i + j] = ladd(nextp[i + j], pi + cj);
                                }
                            }
                        }
                        power = nextp;
                        let mut any = false;
                        for (c, &pc) in power.iter().enumerate() {
                            if pc != ZERO {
                                series[c] = ladd(series[c], pc);
                                any = true;
                            }
                        }
                        if !any {
                            break; // children too large for the budget
                        }
                    }
                    // children ⊗ series.
                    let mut combined = vec![ZERO; b];
                    for (i, &ci) in children.iter().enumerate() {
                        if ci == ZERO {
                            continue;
                        }
                        for (j, &sj) in series.iter().enumerate() {
                            if sj != ZERO && i + j < b {
                                combined[i + j] = ladd(combined[i + j], ci + sj);
                            }
                        }
                    }
                    children = combined;
                }
                for (c, &ways) in children.iter().enumerate() {
                    if ways != ZERO {
                        next[s.ix()][c + 1] = ladd(next[s.ix()][c + 1], lvals + ways);
                    }
                }
            }
        }
        if next == w {
            break;
        }
        w = next;
    }
    let mut total = ZERO;
    for &r in ty.roots() {
        for &cell in &w[r.ix()] {
            total = ladd(total, cell);
        }
    }
    total
}

/// Reference possible-prefix: scan the world list.
pub fn oracle_possible_prefix(worlds: &[DataTree], t: &DataTree, pinned: &HashSet<Nid>) -> bool {
    worlds.iter().any(|w| is_prefix_of(t, w, pinned))
}

/// Reference certain-prefix: nonempty world list, all embedding.
pub fn oracle_certain_prefix(worlds: &[DataTree], t: &DataTree, pinned: &HashSet<Nid>) -> bool {
    !worlds.is_empty() && worlds.iter().all(|w| is_prefix_of(t, w, pinned))
}

/// Evaluates `q` over every world, returning the distinct answers
/// (`None` = the empty answer).
pub fn oracle_answers(worlds: &[DataTree], q: &PsQuery) -> Vec<Option<DataTree>> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for w in worlds {
        let a = q.eval(w).tree;
        let key = a.as_ref().map(|t| t.canonical_key(t.root()));
        if seen.insert(key) {
            out.push(a);
        }
    }
    out
}

/// Structural mutations of a tree, for probing membership predicates:
/// value perturbations, node drops, subtree duplications (with fresh
/// ids), and label swaps.
pub fn mutations(t: &DataTree, labels: &[iixml_tree::Label]) -> Vec<DataTree> {
    let mut out = Vec::new();
    let nodes = t.preorder();
    // Value perturbations.
    for &n in &nodes {
        for delta in [Rat::ONE, -Rat::ONE, Rat::new(1, 2)] {
            let mut m = t.clone();
            let r = m.by_nid(t.nid(n)).unwrap();
            m.set_value(r, t.value(n) + delta);
            out.push(m);
        }
    }
    // Drop a (non-root) subtree: rebuild without it.
    for &n in &nodes {
        if t.parent(n).is_none() {
            continue;
        }
        let skip = t.nid(n);
        let mut m = DataTree::new(t.nid(t.root()), t.label(t.root()), t.value(t.root()));
        fn rebuild(src: &DataTree, sn: NodeRef, dst: &mut DataTree, dn: NodeRef, skip: Nid) {
            for &c in src.children(sn) {
                if src.nid(c) == skip {
                    continue;
                }
                let nc = dst
                    .add_child(dn, src.nid(c), src.label(c), src.value(c))
                    .unwrap();
                rebuild(src, c, dst, nc, skip);
            }
        }
        let root = m.root();
        rebuild(t, t.root(), &mut m, root, skip);
        out.push(m);
    }
    // Duplicate a non-root leaf with a fresh id.
    let mut fresh = 5_000_000u64;
    for &n in &nodes {
        if let Some(p) = t.parent(n) {
            if t.children(n).is_empty() {
                let mut m = t.clone();
                let pr = m.by_nid(t.nid(p)).unwrap();
                fresh += 1;
                m.add_child(pr, Nid(fresh), t.label(n), t.value(n)).unwrap();
                out.push(m);
            }
        }
    }
    // Relabel a node.
    for &n in &nodes {
        for &l in labels {
            if l != t.label(n) {
                let mut m = t.clone();
                let r = m.by_nid(t.nid(n)).unwrap();
                m.set_label(r, l);
                out.push(m);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_core::{ConditionalTreeType, Disjunction, NodeInfo, SAtom};
    use iixml_tree::{Label, Mult};
    use iixml_values::Cond;
    use std::collections::BTreeMap;

    /// Example 2.2 again: r(root,=0) with data child n(a,=0), extra
    /// a != 0 children, b's below any a.
    fn example() -> IncompleteTree {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Nid(0),
            NodeInfo {
                label: Label(0),
                value: Rat::ZERO,
            },
        );
        nodes.insert(
            Nid(1),
            NodeInfo {
                label: Label(1),
                value: Rat::ZERO,
            },
        );
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Node(Nid(0)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let n = ty.add_symbol(
            "n",
            SymTarget::Node(Nid(1)),
            Cond::eq(Rat::ZERO).to_intervals(),
        );
        let a = ty.add_symbol(
            "a",
            SymTarget::Lab(Label(1)),
            Cond::ne(Rat::ZERO).to_intervals(),
        );
        let b = ty.add_symbol("b", SymTarget::Lab(Label(2)), IntervalSet::all());
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(n, Mult::One), (a, Mult::Star)])),
        );
        ty.set_mu(n, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(a, Disjunction::single(SAtom::new(vec![(b, Mult::Star)])));
        ty.set_mu(b, Disjunction::leaf());
        ty.add_root(r);
        IncompleteTree::new(nodes, ty).unwrap()
    }

    #[test]
    fn enumeration_members_are_in_rep() {
        let it = example();
        let e = enumerate_rep(
            &it,
            Bounds {
                star_cap: 1,
                max_depth: 3,
                max_worlds: 500,
                values_per_interval: 1,
            },
        );
        assert!(!e.worlds.is_empty());
        for w in &e.worlds {
            assert!(it.contains(w), "enumerated world must be in rep:\n{w:?}");
        }
    }

    #[test]
    fn enumeration_counts_small_case() {
        let it = example();
        // star_cap=1, depth 3: r always has n; optionally one extra a
        // (values: witness of !=0 per interval: two intervals -> two
        // candidate values); n may have 0..1 b; extra a may have 0..1 b;
        // b values: one representative.
        let e = enumerate_rep(
            &it,
            Bounds {
                star_cap: 1,
                max_depth: 3,
                max_worlds: 10_000,
                values_per_interval: 1,
            },
        );
        assert!(!e.truncated);
        // n: {0,1} b-children = 2 variants. extra a: absent, or present
        // with 2 values × 2 b-variants = 4; total 2 × (1 + 4) = 10.
        assert_eq!(e.worlds.len(), 10);
    }

    #[test]
    fn prefix_oracle_agrees_with_algorithm() {
        let it = example();
        let e = enumerate_rep(
            &it,
            Bounds {
                star_cap: 1,
                max_depth: 3,
                max_worlds: 10_000,
                values_per_interval: 2,
            },
        );
        let pinned: HashSet<Nid> = it.nodes().keys().copied().collect();
        // Candidate prefixes: data tree, root-only, and mutations.
        let mut candidates = vec![it.data_tree().unwrap()];
        candidates.push(DataTree::new(Nid(0), Label(0), Rat::ZERO));
        let labels = [Label(0), Label(1), Label(2)];
        let base = it.data_tree().unwrap();
        candidates.extend(mutations(&base, &labels));
        for t in &candidates {
            let alg_poss = it.possible_prefix(t);
            let oracle_poss = oracle_possible_prefix(&e.worlds, t, &pinned);
            // The enumeration is bounded: the oracle can miss possible
            // worlds, so only check one-sided implication there; certain
            // is checked two-sided against the enumerated set when the
            // algorithm claims certainty.
            if oracle_poss {
                assert!(
                    alg_poss,
                    "oracle found a world but algorithm denies:\n{t:?}"
                );
            }
            if it.certain_prefix(t) {
                assert!(
                    oracle_certain_prefix(&e.worlds, t, &pinned),
                    "algorithm claims certain but an enumerated world disagrees:\n{t:?}"
                );
            }
        }
    }

    #[test]
    fn derivation_count_matches_enumeration_on_example() {
        let it = example();
        let bounds = Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 10_000,
            values_per_interval: 1,
        };
        let e = enumerate_rep(&it, bounds);
        assert!(!e.truncated);
        // This type has no overlapping disjunctions, so the derivation
        // count equals the (deduplicated) world count.
        assert_eq!(count_derivations(&it, bounds), e.worlds.len() as u128);
    }

    #[test]
    fn derivation_count_shrinks_with_knowledge() {
        // The universal tree has astronomically more derivations than a
        // refined one over the same alphabet.
        use iixml_tree::Label;
        let labels = [Label(0), Label(1), Label(2)];
        let universal = IncompleteTree::universal(&labels, &["root", "a", "b"]);
        let refined = example();
        let bounds = Bounds {
            star_cap: 1,
            max_depth: 3,
            max_worlds: 10_000,
            values_per_interval: 1,
        };
        let u = count_derivations(&universal, bounds);
        let r = count_derivations(&refined, bounds);
        assert!(u > r, "universal {u} vs refined {r}");
        assert!(r > 0);
    }

    #[test]
    fn sized_world_count_exact_small_case() {
        // root[a?]: values in {0,1} for both labels. Trees with <= 2
        // nodes: root alone (2 values) + root-with-a (2 × 2): 6 total.
        use iixml_core::{ConditionalTreeType, Disjunction, SAtom};
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Lab(iixml_tree::Label(0)),
            IntervalSet::all(),
        );
        let a = ty.add_symbol(
            "a",
            SymTarget::Lab(iixml_tree::Label(1)),
            IntervalSet::all(),
        );
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(a, iixml_tree::Mult::Opt)])),
        );
        ty.set_mu(a, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let got = log2_sized_worlds(&it, 0, 1, 2);
        assert!((got - 6.0f64.log2()).abs() < 1e-9, "got 2^{got}");
        // Budget 1: only the bare root (2 values).
        let got1 = log2_sized_worlds(&it, 0, 1, 1);
        assert!((got1 - 1.0).abs() < 1e-9, "got 2^{got1}");
        // Empty value domain: no worlds.
        assert_eq!(log2_sized_worlds(&it, 5, 4, 3), f64::NEG_INFINITY);
    }

    #[test]
    fn log2_worlds_exact_small_case() {
        // Same root[a?] type, per-entry cap instead of a node budget:
        // with depth 2 and cap 1 the same 6 worlds are counted.
        use iixml_core::{ConditionalTreeType, Disjunction, SAtom};
        let mut ty = ConditionalTreeType::new();
        let r = ty.add_symbol(
            "r",
            SymTarget::Lab(iixml_tree::Label(0)),
            IntervalSet::all(),
        );
        let a = ty.add_symbol(
            "a",
            SymTarget::Lab(iixml_tree::Label(1)),
            IntervalSet::all(),
        );
        ty.set_mu(
            r,
            Disjunction::single(SAtom::new(vec![(a, iixml_tree::Mult::Opt)])),
        );
        ty.set_mu(a, Disjunction::leaf());
        ty.add_root(r);
        let it = IncompleteTree::new(std::collections::BTreeMap::new(), ty).unwrap();
        let got = log2_worlds(&it, 0, 1, 1, 2);
        assert!((got - 6.0f64.log2()).abs() < 1e-9, "got 2^{got}");
        // Depth 1: the mandatory-free root alone (2 values).
        let got1 = log2_worlds(&it, 0, 1, 1, 1);
        assert!((got1 - 1.0).abs() < 1e-9, "got 2^{got1}");
        // Empty value domain: no worlds.
        assert_eq!(log2_worlds(&it, 3, 2, 1, 2), f64::NEG_INFINITY);
        // Sanity on Example 2.2: a nonempty rep yields a finite,
        // positive bit count over a small integer domain.
        let it = example();
        let bits = log2_worlds(&it, 0, 1, 1, 3);
        assert!(bits.is_finite() && bits > 0.0);
    }

    #[test]
    fn sized_world_count_decreases_under_refinement() {
        use iixml_core::Refiner;
        use iixml_gen::{catalog, catalog_query_price_below};
        let mut c = catalog(5, 3);
        let labels: Vec<_> = c.alpha.labels().collect();
        let names: Vec<&str> = labels.iter().map(|&l| c.alpha.name(l)).collect();
        let universal = IncompleteTree::universal(&labels, &names);
        let before = log2_sized_worlds(&universal, 0, 20_000, 40);
        let q = catalog_query_price_below(&mut c.alpha, 250);
        let mut refiner = Refiner::new(&c.alpha);
        refiner.refine(&c.alpha, &q, &q.eval(&c.doc)).unwrap();
        let after = log2_sized_worlds(refiner.current(), 0, 20_000, 40);
        assert!(
            after < before,
            "knowledge must shrink the world count: {before} -> {after}"
        );
        assert!(after.is_finite(), "the source is still represented");
    }

    #[test]
    fn mutations_produce_variety() {
        let base = example().data_tree().unwrap();
        let muts = mutations(&base, &[Label(0), Label(1), Label(2)]);
        assert!(muts.len() > 5);
        // At least one mutation leaves rep (value change on node n).
        let it = example();
        assert!(muts.iter().any(|m| !it.contains(m)));
    }
}
