//! Property tests for the interval algebra (Lemma 2.3's normal form):
//! Boolean-algebra laws checked pointwise against random sample values,
//! plus canonical-form invariants.

use iixml_values::{Cond, IntervalSet, Rat};
use proptest::prelude::*;

/// A strategy producing arbitrary conditions over small constants.
fn cond_strategy() -> impl Strategy<Value = Cond> {
    let atom = (0u8..6, -20i64..20).prop_map(|(op, v)| {
        let v = Rat::from(v);
        match op {
            0 => Cond::eq(v),
            1 => Cond::ne(v),
            2 => Cond::lt(v),
            3 => Cond::le(v),
            4 => Cond::gt(v),
            _ => Cond::ge(v),
        }
    });
    atom.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Cond::not),
        ]
    })
}

/// Sample values: integers and half-integers around the constant range.
fn samples() -> Vec<Rat> {
    let mut out = Vec::new();
    for i in -22..=22 {
        out.push(Rat::from(i));
        out.push(Rat::new(2 * i + 1, 2));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Normalization preserves pointwise semantics.
    #[test]
    fn normal_form_is_pointwise_correct(c in cond_strategy()) {
        let set = c.to_intervals();
        for v in samples() {
            prop_assert_eq!(c.eval(v), set.contains(v), "at {}", v);
        }
    }

    /// Boolean-algebra laws hold on the canonical forms.
    #[test]
    fn boolean_laws(a in cond_strategy(), b in cond_strategy()) {
        let (sa, sb) = (a.to_intervals(), b.to_intervals());
        // De Morgan.
        prop_assert_eq!(
            sa.union(&sb).complement(),
            sa.complement().intersect(&sb.complement())
        );
        // Distributivity.
        let sc = IntervalSet::lt(Rat::from(3));
        prop_assert_eq!(
            sa.intersect(&sb.union(&sc)),
            sa.intersect(&sb).union(&sa.intersect(&sc))
        );
        // Absorption.
        prop_assert_eq!(sa.union(&sa.intersect(&sb)), sa.clone());
        // Complement laws.
        prop_assert_eq!(sa.union(&sa.complement()), IntervalSet::all());
        prop_assert_eq!(sa.intersect(&sa.complement()), IntervalSet::empty());
        // Difference.
        prop_assert_eq!(sa.difference(&sb).intersect(&sb), IntervalSet::empty());
    }

    /// Canonical representation: semantically equal conditions have
    /// structurally equal interval sets.
    #[test]
    fn canonicity(a in cond_strategy()) {
        let s = a.to_intervals();
        // Double negation.
        prop_assert_eq!(a.clone().not().not().to_intervals(), s.clone());
        // Round trip through Cond.
        prop_assert_eq!(Cond::from_intervals(&s).to_intervals(), s.clone());
        // Idempotent union/intersection.
        prop_assert_eq!(s.union(&s), s.clone());
        prop_assert_eq!(s.intersect(&s), s.clone());
        // Disjointness and ordering of the representation.
        let ivs = s.intervals();
        for w in ivs.windows(2) {
            prop_assert!(w[0].hi() <= w[1].lo(), "unordered or overlapping");
            prop_assert!(w[0].hi() != w[1].lo(), "adjacent pieces not merged");
        }
    }

    /// Witnesses always belong to their sets, and implication is a
    /// partial order consistent with membership.
    #[test]
    fn witnesses_and_implication(a in cond_strategy(), b in cond_strategy()) {
        let (sa, sb) = (a.to_intervals(), b.to_intervals());
        if let Some(w) = sa.witness() {
            prop_assert!(sa.contains(w));
        }
        if sa.implies(&sb) {
            for v in samples() {
                if sa.contains(v) {
                    prop_assert!(sb.contains(v));
                }
            }
            if let Some(w) = sa.witness() {
                prop_assert!(sb.contains(w));
            }
        }
    }
}
