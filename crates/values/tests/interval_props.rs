//! Property tests for the interval algebra (Lemma 2.3's normal form):
//! Boolean-algebra laws checked pointwise against random sample values,
//! plus canonical-form invariants.
//!
//! `iixml-values` sits at the bottom of the workspace, so it cannot use
//! `iixml-gen`'s testkit without a dependency cycle; a minimal inline
//! SplitMix64 harness (same seed conventions: `IIXML_TEST_SEED`,
//! `IIXML_PROPTEST_CASES`) stands in for it here.

use iixml_values::{Cond, IntervalSet, Rat};

/// Inline SplitMix64 — keep in sync with `iixml_gen::rng::DetRng`.
struct MiniRng {
    state: u64,
}

impl MiniRng {
    fn new(seed: u64) -> MiniRng {
        MiniRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Runs `property` on a deterministic per-case rng, `IIXML_PROPTEST_CASES`
/// times (capped at 200), reporting the failing case seed on panic.
fn check(name: &str, mut property: impl FnMut(&mut MiniRng)) {
    let n = (env_u64(iixml_obs::keys::ENV_PROPTEST_CASES, 64) as usize).clamp(1, 200);
    let base = env_u64(iixml_obs::keys::ENV_TEST_SEED, 0xA5EED);
    for case in 0..n {
        let case_seed = MiniRng::new(base ^ MiniRng::new(case as u64).next_u64()).next_u64();
        let mut rng = MiniRng::new(case_seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!(
                "property '{name}' failed at case {case}/{n} — replay with \
                 IIXML_TEST_SEED={case_seed} IIXML_PROPTEST_CASES=1"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// An arbitrary condition over small constants: a random tree of
/// and/or/not combinators, depth-bounded like the old proptest strategy.
fn arb_cond(rng: &mut MiniRng, depth: usize) -> Cond {
    if depth == 0 || rng.below(3) == 0 {
        let v = Rat::from(rng.range_i64(-20, 20));
        return match rng.below(6) {
            0 => Cond::eq(v),
            1 => Cond::ne(v),
            2 => Cond::lt(v),
            3 => Cond::le(v),
            4 => Cond::gt(v),
            _ => Cond::ge(v),
        };
    }
    match rng.below(3) {
        0 => arb_cond(rng, depth - 1).and(arb_cond(rng, depth - 1)),
        1 => arb_cond(rng, depth - 1).or(arb_cond(rng, depth - 1)),
        _ => arb_cond(rng, depth - 1).not(),
    }
}

/// Sample values: integers and half-integers around the constant range.
fn samples() -> Vec<Rat> {
    let mut out = Vec::new();
    for i in -22..=22 {
        out.push(Rat::from(i));
        out.push(Rat::new(2 * i + 1, 2));
    }
    out
}

/// Normalization preserves pointwise semantics.
#[test]
fn normal_form_is_pointwise_correct() {
    check("normal_form_is_pointwise_correct", |rng| {
        let c = arb_cond(rng, 3);
        let set = c.to_intervals();
        for v in samples() {
            assert_eq!(c.eval(v), set.contains(v), "at {}", v);
        }
    });
}

/// Boolean-algebra laws hold on the canonical forms.
#[test]
fn boolean_laws() {
    check("boolean_laws", |rng| {
        let a = arb_cond(rng, 3);
        let b = arb_cond(rng, 3);
        let (sa, sb) = (a.to_intervals(), b.to_intervals());
        // De Morgan.
        assert_eq!(
            sa.union(&sb).complement(),
            sa.complement().intersect(&sb.complement())
        );
        // Distributivity.
        let sc = IntervalSet::lt(Rat::from(3));
        assert_eq!(
            sa.intersect(&sb.union(&sc)),
            sa.intersect(&sb).union(&sa.intersect(&sc))
        );
        // Absorption.
        assert_eq!(sa.union(&sa.intersect(&sb)), sa);
        // Complement laws.
        assert_eq!(sa.union(&sa.complement()), IntervalSet::all());
        assert_eq!(sa.intersect(&sa.complement()), IntervalSet::empty());
        // Difference.
        assert_eq!(sa.difference(&sb).intersect(&sb), IntervalSet::empty());
    });
}

/// Canonical representation: semantically equal conditions have
/// structurally equal interval sets.
#[test]
fn canonicity() {
    check("canonicity", |rng| {
        let a = arb_cond(rng, 3);
        let s = a.to_intervals();
        // Double negation.
        assert_eq!(a.clone().not().not().to_intervals(), s);
        // Round trip through Cond.
        assert_eq!(Cond::from_intervals(&s).to_intervals(), s);
        // Idempotent union/intersection.
        assert_eq!(s.union(&s), s);
        assert_eq!(s.intersect(&s), s);
        // Disjointness and ordering of the representation.
        let ivs = s.intervals();
        for w in ivs.windows(2) {
            assert!(w[0].hi() <= w[1].lo(), "unordered or overlapping");
            assert!(w[0].hi() != w[1].lo(), "adjacent pieces not merged");
        }
    });
}

/// Witnesses always belong to their sets, and implication is a
/// partial order consistent with membership.
#[test]
fn witnesses_and_implication() {
    check("witnesses_and_implication", |rng| {
        let a = arb_cond(rng, 3);
        let b = arb_cond(rng, 3);
        let (sa, sb) = (a.to_intervals(), b.to_intervals());
        if let Some(w) = sa.witness() {
            assert!(sa.contains(w));
        }
        if sa.implies(&sb) {
            for v in samples() {
                if sa.contains(v) {
                    assert!(sb.contains(v));
                }
            }
            if let Some(w) = sa.witness() {
                assert!(sb.contains(w));
            }
        }
    });
}
