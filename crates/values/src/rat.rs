//! Exact rational numbers: the paper's data-value domain `Q`.
//!
//! Values are kept in lowest terms with a positive denominator, so
//! structural equality coincides with numeric equality and rationals can
//! be used directly as `HashMap` keys.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) = 1`.
///
/// Arithmetic is performed in `i128` and panics on overflow of the final
/// `i64` components; the workloads in this repository use small values
/// (the paper's examples use catalog prices and SAT-encoding indices), so
/// 64-bit components are ample.
///
/// ```
/// use iixml_values::Rat;
/// let a = Rat::new(1, 2);
/// let b = Rat::from(3);
/// assert_eq!(a + b, Rat::new(7, 2));
/// assert!(a < b);
/// assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i64,
    den: i64,
}

fn gcd(mut a: i64, mut b: i64) -> i64 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Creates the rational `num / den`, normalizing sign and common
    /// factors.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i64, den: i64) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat { num, den }
    }

    /// The numerator of the normalized representation.
    pub fn numer(self) -> i64 {
        self.num
    }

    /// The (positive) denominator of the normalized representation.
    pub fn denom(self) -> i64 {
        self.den
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// The midpoint `(self + other) / 2`; used to pick witnesses strictly
    /// inside open intervals.
    pub fn midpoint(self, other: Rat) -> Rat {
        (self + other) / Rat::from(2)
    }

    fn from_i128(num: i128, den: i128) -> Rat {
        assert!(den != 0);
        let g = {
            let (mut a, mut b) = (num.abs(), den.abs());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a.max(1)
        };
        let (mut num, mut den) = (num / g, den / g);
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rat {
            num: i64::try_from(num).expect("rational numerator overflow"),
            den: i64::try_from(den).expect("rational denominator overflow"),
        }
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Rat {
        Rat { num: v, den: 1 }
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Rat {
        Rat::from(v as i64)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::from_i128(
            self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        Rat::from_i128(
            self.num as i128 * rhs.num as i128,
            self.den as i128 * rhs.den as i128,
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        assert!(rhs.num != 0, "division by zero rational");
        Rat::from_i128(
            self.num as i128 * rhs.den as i128,
            self.den as i128 * rhs.num as i128,
        )
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`Rat`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatError(pub String);

impl fmt::Display for ParseRatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.0)
    }
}

impl std::error::Error for ParseRatError {}

impl FromStr for Rat {
    type Err = ParseRatError;

    /// Parses `"n"`, `"n/d"` or a decimal `"n.f"` into a rational.
    ///
    /// ```
    /// use iixml_values::Rat;
    /// assert_eq!("3/6".parse::<Rat>().unwrap(), Rat::new(1, 2));
    /// assert_eq!("-2.5".parse::<Rat>().unwrap(), Rat::new(-5, 2));
    /// ```
    fn from_str(s: &str) -> Result<Rat, ParseRatError> {
        let s = s.trim();
        let err = || ParseRatError(s.to_string());
        if let Some((n, d)) = s.split_once('/') {
            let num: i64 = n.trim().parse().map_err(|_| err())?;
            let den: i64 = d.trim().parse().map_err(|_| err())?;
            if den == 0 {
                return Err(err());
            }
            Ok(Rat::new(num, den))
        } else if let Some((int, frac)) = s.split_once('.') {
            let negative = int.trim_start().starts_with('-');
            let int_part: i64 = if int == "-" || int.is_empty() {
                0
            } else {
                int.parse().map_err(|_| err())?
            };
            if frac.is_empty() || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            let scale = 10i64.checked_pow(frac.len() as u32).ok_or_else(err)?;
            let frac_part: i64 = frac.parse().map_err(|_| err())?;
            let magnitude = Rat::from(int_part.abs()) + Rat::new(frac_part, scale);
            Ok(if negative { -magnitude } else { magnitude })
        } else {
            let num: i64 = s.parse().map_err(|_| err())?;
            Ok(Rat::from(num))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::from(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from(7) > Rat::new(13, 2));
        assert_eq!(Rat::new(3, 9).cmp(&Rat::new(1, 3)), Ordering::Equal);
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let a = Rat::from(1);
        let b = Rat::from(2);
        let m = a.midpoint(b);
        assert!(a < m && m < b);
    }

    #[test]
    fn parse_roundtrip() {
        for s in ["0", "5", "-7", "1/2", "-3/4", "22/7"] {
            let r: Rat = s.parse().unwrap();
            assert_eq!(r.to_string().parse::<Rat>().unwrap(), r);
        }
        assert_eq!("2.50".parse::<Rat>().unwrap(), Rat::new(5, 2));
        assert_eq!("-0.125".parse::<Rat>().unwrap(), Rat::new(-1, 8));
        assert!("1/0".parse::<Rat>().is_err());
        assert!("abc".parse::<Rat>().is_err());
        assert!("1.x".parse::<Rat>().is_err());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }
}
