#![warn(missing_docs)]

//! Data values and conditions for the iixml model.
//!
//! The paper ("Representing and Querying XML with Incomplete Information",
//! Abiteboul–Segoufin–Vianu) takes the set `Q` of data values to be the
//! rational numbers, and attaches to query nodes and to specialized types
//! *conditions*: Boolean combinations of comparisons `= v`, `≠ v`, `≤ v`,
//! `≥ v`, `< v`, `> v` with `v ∈ Q`.
//!
//! This crate provides:
//!
//! * [`Rat`] — exact rational arithmetic (the value domain `Q`);
//! * [`Cond`] — the condition AST;
//! * [`IntervalSet`] — the canonical normal form of Lemma 2.3: every
//!   condition is equivalent to a union of disjoint intervals, linear in
//!   the size of the condition. All reasoning about conditions
//!   (satisfiability, implication, conjunction, negation, witnesses) is
//!   done on this normal form.

pub mod cond;
pub mod interval;
pub mod parse;
pub mod rat;

pub use cond::{CmpOp, Cond};
pub use interval::{Bound, Cut, Interval, IntervalSet};
pub use rat::Rat;
