//! A small text syntax for conditions, used by the XML-ish serialization
//! of incomplete trees and by tests.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! cond  := or
//! or    := and ('|' and)*
//! and   := unary ('&' unary)*
//! unary := '!' unary | '(' cond ')' | 'true' | 'false' | atom
//! atom  := ('=' | '!=' | '<=' | '>=' | '<' | '>') rational
//! ```
//!
//! Example: `"(< 200 & != 0) | = 500"`.

use crate::cond::{CmpOp, Cond};
use crate::rat::Rat;
use std::fmt;

/// Error produced when parsing a condition fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCondError {
    /// Byte offset in the input where the error was detected.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseCondError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseCondError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { input, pos: 0 }
    }

    fn error(&self, message: impl Into<String>) -> ParseCondError {
        ParseCondError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Cond, ParseCondError> {
        let mut acc = self.parse_and()?;
        while self.eat("|") {
            acc = acc.or(self.parse_and()?);
        }
        Ok(acc)
    }

    fn parse_and(&mut self) -> Result<Cond, ParseCondError> {
        let mut acc = self.parse_unary()?;
        while self.eat("&") {
            acc = acc.and(self.parse_unary()?);
        }
        Ok(acc)
    }

    fn parse_unary(&mut self) -> Result<Cond, ParseCondError> {
        self.skip_ws();
        if self.eat("!(") {
            // `!` applied to a parenthesized condition; rewind to reuse
            // the paren logic.
            self.pos -= 1;
            let inner = self.parse_paren()?;
            return Ok(inner.not());
        }
        if self.rest().starts_with("!=") {
            return self.parse_atom();
        }
        if self.eat("!") {
            return Ok(self.parse_unary()?.not());
        }
        if self.rest().starts_with('(') {
            return self.parse_paren();
        }
        if self.eat("true") {
            return Ok(Cond::True);
        }
        if self.eat("false") {
            return Ok(Cond::False);
        }
        self.parse_atom()
    }

    fn parse_paren(&mut self) -> Result<Cond, ParseCondError> {
        if !self.eat("(") {
            return Err(self.error("expected '('"));
        }
        let inner = self.parse_or()?;
        if !self.eat(")") {
            return Err(self.error("expected ')'"));
        }
        Ok(inner)
    }

    fn parse_atom(&mut self) -> Result<Cond, ParseCondError> {
        self.skip_ws();
        let op = if self.eat("!=") {
            CmpOp::Ne
        } else if self.eat("<=") {
            CmpOp::Le
        } else if self.eat(">=") {
            CmpOp::Ge
        } else if self.eat("<") {
            CmpOp::Lt
        } else if self.eat(">") {
            CmpOp::Gt
        } else if self.eat("=") {
            CmpOp::Eq
        } else {
            return Err(self.error("expected comparison operator"));
        };
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '/' | '.'))
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.error("expected rational literal"));
        }
        let lit = &rest[..end];
        let v: Rat = lit
            .parse()
            .map_err(|e| self.error(format!("bad rational '{lit}': {e}")))?;
        self.pos += end;
        Ok(Cond::Cmp(op, v))
    }
}

/// Parses the textual condition syntax into a [`Cond`].
///
/// ```
/// use iixml_values::{parse::parse_cond, Rat};
/// let c = parse_cond("(< 200 & != 0) | = 500").unwrap();
/// assert!(c.eval(Rat::from(100)));
/// assert!(!c.eval(Rat::ZERO));
/// assert!(c.eval(Rat::from(500)));
/// assert!(!c.eval(Rat::from(300)));
/// ```
pub fn parse_cond(input: &str) -> Result<Cond, ParseCondError> {
    let mut p = Parser::new(input);
    let c = p.parse_or()?;
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(p.error("trailing input"));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn atoms() {
        assert_eq!(parse_cond("= 5").unwrap(), Cond::eq(r(5)));
        assert_eq!(parse_cond("!= 5").unwrap(), Cond::ne(r(5)));
        assert_eq!(parse_cond("<= -3").unwrap(), Cond::le(r(-3)));
        assert_eq!(parse_cond(">= 1/2").unwrap(), Cond::ge(Rat::new(1, 2)));
        assert_eq!(parse_cond("< 2.5").unwrap(), Cond::lt(Rat::new(5, 2)));
        assert_eq!(parse_cond("> 0").unwrap(), Cond::gt(r(0)));
    }

    #[test]
    fn combinations() {
        let c = parse_cond("< 5 & != 3").unwrap();
        assert!(c.eval(r(4)));
        assert!(!c.eval(r(3)));
        let c = parse_cond("= 1 | = 2 | = 3").unwrap();
        assert!(c.eval(r(2)));
        assert!(!c.eval(r(4)));
        let c = parse_cond("!(< 5)").unwrap();
        assert!(c.equivalent(&Cond::ge(r(5))));
        let c = parse_cond("! < 5").unwrap();
        assert!(c.equivalent(&Cond::ge(r(5))));
    }

    #[test]
    fn precedence_and_parens() {
        // & binds tighter than |
        let c = parse_cond("= 1 | = 2 & = 3").unwrap();
        assert!(c.eval(r(1)));
        let d = parse_cond("(= 1 | = 2) & = 3").unwrap();
        assert!(!d.eval(r(1)));
    }

    #[test]
    fn constants() {
        assert_eq!(parse_cond("true").unwrap(), Cond::True);
        assert_eq!(parse_cond("false").unwrap(), Cond::False);
        assert_eq!(parse_cond(" true ").unwrap(), Cond::True);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "true",
            "false",
            "= 5",
            "(< 200 & != 0) | = 500",
            "!(= 1 | = 2)",
            ">= 1/2 & < 22/7",
        ] {
            let c = parse_cond(s).unwrap();
            let again = parse_cond(&c.to_string()).unwrap();
            assert!(c.equivalent(&again), "roundtrip of {s}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_cond("").is_err());
        assert!(parse_cond("= ").is_err());
        assert!(parse_cond("< abc").is_err());
        assert!(parse_cond("= 5 extra").is_err());
        assert!(parse_cond("(= 5").is_err());
        assert!(parse_cond("& = 5").is_err());
    }
}
