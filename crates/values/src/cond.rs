//! Condition ASTs: Boolean combinations of comparisons with constants.
//!
//! Conditions appear in two places in the paper: attached to ps-query
//! nodes (selection on data values) and attached to specialized types in
//! conditional tree types. A condition is a Boolean combination of atoms
//! `= v`, `≠ v`, `≤ v`, `≥ v`, `< v`, `> v` with `v ∈ Q`.
//!
//! [`Cond`] is the user-facing construction language; the algorithms all
//! operate on the canonical [`IntervalSet`] normal form (Lemma 2.3), which
//! [`Cond::to_intervals`] produces in linear time per node.

use crate::interval::{Bound, IntervalSet};
use crate::rat::Rat;
use std::fmt;

/// A comparison operator on data values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `= v`
    Eq,
    /// `≠ v`
    Ne,
    /// `< v`
    Lt,
    /// `≤ v`
    Le,
    /// `> v`
    Gt,
    /// `≥ v`
    Ge,
}

impl CmpOp {
    /// Evaluates `x op v`.
    pub fn eval(self, x: Rat, v: Rat) -> bool {
        match self {
            CmpOp::Eq => x == v,
            CmpOp::Ne => x != v,
            CmpOp::Lt => x < v,
            CmpOp::Le => x <= v,
            CmpOp::Gt => x > v,
            CmpOp::Ge => x >= v,
        }
    }

    /// The set of values satisfying `x op v`.
    pub fn intervals(self, v: Rat) -> IntervalSet {
        match self {
            CmpOp::Eq => IntervalSet::eq(v),
            CmpOp::Ne => IntervalSet::ne(v),
            CmpOp::Lt => IntervalSet::lt(v),
            CmpOp::Le => IntervalSet::le(v),
            CmpOp::Gt => IntervalSet::gt(v),
            CmpOp::Ge => IntervalSet::ge(v),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A Boolean combination of comparisons with rational constants.
///
/// ```
/// use iixml_values::{Cond, Rat};
/// // price < 200 and price != 0
/// let c = Cond::lt(Rat::from(200)).and(Cond::ne(Rat::ZERO));
/// assert!(c.eval(Rat::from(120)));
/// assert!(!c.eval(Rat::ZERO));
/// assert!(c.satisfiable());
/// // x < 1 and x > 1 is unsatisfiable
/// assert!(!Cond::lt(Rat::ONE).and(Cond::gt(Rat::ONE)).satisfiable());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Always true.
    True,
    /// Always false.
    False,
    /// A single comparison atom.
    Cmp(CmpOp, Rat),
    /// Negation.
    Not(Box<Cond>),
    /// Conjunction of all members (empty = true).
    And(Vec<Cond>),
    /// Disjunction of all members (empty = false).
    Or(Vec<Cond>),
}

impl Cond {
    /// `= v`
    pub fn eq(v: Rat) -> Cond {
        Cond::Cmp(CmpOp::Eq, v)
    }
    /// `≠ v`
    pub fn ne(v: Rat) -> Cond {
        Cond::Cmp(CmpOp::Ne, v)
    }
    /// `< v`
    pub fn lt(v: Rat) -> Cond {
        Cond::Cmp(CmpOp::Lt, v)
    }
    /// `≤ v`
    pub fn le(v: Rat) -> Cond {
        Cond::Cmp(CmpOp::Le, v)
    }
    /// `> v`
    pub fn gt(v: Rat) -> Cond {
        Cond::Cmp(CmpOp::Gt, v)
    }
    /// `≥ v`
    pub fn ge(v: Rat) -> Cond {
        Cond::Cmp(CmpOp::Ge, v)
    }

    /// Conjunction.
    pub fn and(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::True, c) | (c, Cond::True) => c,
            (Cond::False, _) | (_, Cond::False) => Cond::False,
            (Cond::And(mut xs), Cond::And(ys)) => {
                xs.extend(ys);
                Cond::And(xs)
            }
            (Cond::And(mut xs), c) => {
                xs.push(c);
                Cond::And(xs)
            }
            (a, b) => Cond::And(vec![a, b]),
        }
    }

    /// Disjunction.
    pub fn or(self, other: Cond) -> Cond {
        match (self, other) {
            (Cond::False, c) | (c, Cond::False) => c,
            (Cond::True, _) | (_, Cond::True) => Cond::True,
            (Cond::Or(mut xs), Cond::Or(ys)) => {
                xs.extend(ys);
                Cond::Or(xs)
            }
            (Cond::Or(mut xs), c) => {
                xs.push(c);
                Cond::Or(xs)
            }
            (a, b) => Cond::Or(vec![a, b]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Cond {
        match self {
            Cond::True => Cond::False,
            Cond::False => Cond::True,
            Cond::Not(c) => *c,
            c => Cond::Not(Box::new(c)),
        }
    }

    /// Direct evaluation on a value (without normalizing).
    pub fn eval(&self, x: Rat) -> bool {
        match self {
            Cond::True => true,
            Cond::False => false,
            Cond::Cmp(op, v) => op.eval(x, *v),
            Cond::Not(c) => !c.eval(x),
            Cond::And(cs) => cs.iter().all(|c| c.eval(x)),
            Cond::Or(cs) => cs.iter().any(|c| c.eval(x)),
        }
    }

    /// The Lemma 2.3 normal form: the set of values satisfying the
    /// condition as a union of disjoint intervals.
    pub fn to_intervals(&self) -> IntervalSet {
        match self {
            Cond::True => IntervalSet::all(),
            Cond::False => IntervalSet::empty(),
            Cond::Cmp(op, v) => op.intervals(*v),
            Cond::Not(c) => c.to_intervals().complement(),
            Cond::And(cs) => cs.iter().fold(IntervalSet::all(), |acc, c| {
                acc.intersect(&c.to_intervals())
            }),
            Cond::Or(cs) => cs
                .iter()
                .fold(IntervalSet::empty(), |acc, c| acc.union(&c.to_intervals())),
        }
    }

    /// Satisfiability test (PTIME, Lemma 2.3).
    pub fn satisfiable(&self) -> bool {
        !self.to_intervals().is_empty()
    }

    /// Semantic equivalence of two conditions, via canonical forms.
    pub fn equivalent(&self, other: &Cond) -> bool {
        self.to_intervals() == other.to_intervals()
    }

    /// Rebuilds a condition from an interval set (inverse of
    /// [`Cond::to_intervals`] up to equivalence); used for display and
    /// serialization of incomplete trees.
    pub fn from_intervals(set: &IntervalSet) -> Cond {
        if set.is_empty() {
            return Cond::False;
        }
        if set.is_all() {
            return Cond::True;
        }
        let mut disjuncts = Vec::new();
        for iv in set.intervals() {
            let c = match iv.bounds() {
                (Bound::Closed(a), Bound::Closed(b)) if a == b => Cond::eq(a),
                (lo, hi) => {
                    let lo_c = match lo {
                        Bound::Unbounded => Cond::True,
                        Bound::Closed(v) => Cond::ge(v),
                        Bound::Open(v) => Cond::gt(v),
                    };
                    let hi_c = match hi {
                        Bound::Unbounded => Cond::True,
                        Bound::Closed(v) => Cond::le(v),
                        Bound::Open(v) => Cond::lt(v),
                    };
                    lo_c.and(hi_c)
                }
            };
            disjuncts.push(c);
        }
        if disjuncts.len() == 1 {
            disjuncts.pop().unwrap()
        } else {
            Cond::Or(disjuncts)
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::True => write!(f, "true"),
            Cond::False => write!(f, "false"),
            Cond::Cmp(op, v) => write!(f, "{op} {v}"),
            Cond::Not(c) => write!(f, "!({c})"),
            Cond::And(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Cond::Or(cs) => {
                write!(f, "(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn eval_matches_intervals() {
        let conds = [
            Cond::True,
            Cond::False,
            Cond::eq(r(3)),
            Cond::ne(r(3)),
            Cond::lt(r(3)).and(Cond::gt(r(0))),
            Cond::le(r(3)).or(Cond::ge(r(10))),
            Cond::lt(r(5)).and(Cond::ne(r(2))).not(),
            Cond::eq(r(1)).or(Cond::eq(r(2))).or(Cond::eq(r(3))),
        ];
        let samples: Vec<Rat> = (-2..12).map(Rat::from).collect();
        for c in &conds {
            let set = c.to_intervals();
            for &x in &samples {
                assert_eq!(c.eval(x), set.contains(x), "cond {c} at {x}");
            }
        }
    }

    #[test]
    fn from_intervals_roundtrip() {
        let conds = [
            Cond::True,
            Cond::False,
            Cond::eq(r(3)),
            Cond::ne(r(3)),
            Cond::lt(r(3)).and(Cond::gt(r(0))),
            Cond::le(r(3)).or(Cond::ge(r(10))),
            Cond::ge(r(0)).and(Cond::le(r(0))),
        ];
        for c in &conds {
            let set = c.to_intervals();
            let back = Cond::from_intervals(&set);
            assert_eq!(back.to_intervals(), set, "roundtrip of {c}");
        }
    }

    #[test]
    fn combinator_simplifications() {
        assert_eq!(Cond::True.and(Cond::eq(r(1))), Cond::eq(r(1)));
        assert_eq!(Cond::False.and(Cond::eq(r(1))), Cond::False);
        assert_eq!(Cond::False.or(Cond::eq(r(1))), Cond::eq(r(1)));
        assert_eq!(Cond::True.or(Cond::eq(r(1))), Cond::True);
        assert_eq!(Cond::eq(r(1)).not().not(), Cond::eq(r(1)));
    }

    #[test]
    fn satisfiability() {
        assert!(Cond::lt(r(5)).satisfiable());
        assert!(!Cond::lt(r(5)).and(Cond::gt(r(5))).satisfiable());
        // x != 5 and x >= 5 and x <= 5 is unsatisfiable
        let c = Cond::ne(r(5)).and(Cond::ge(r(5))).and(Cond::le(r(5)));
        assert!(!c.satisfiable());
    }

    #[test]
    fn equivalence() {
        // not(x < 5) ≡ x >= 5
        assert!(Cond::lt(r(5)).not().equivalent(&Cond::ge(r(5))));
        // De Morgan
        let lhs = Cond::lt(r(1)).or(Cond::gt(r(2))).not();
        let rhs = Cond::ge(r(1)).and(Cond::le(r(2)));
        assert!(lhs.equivalent(&rhs));
    }
}
