//! Interval sets over `Q`: the canonical normal form for conditions.
//!
//! Lemma 2.3 of the paper observes that every Boolean combination of
//! comparisons with rational constants is equivalent to a union of
//! intervals, linear in the size of the condition, and that satisfiability
//! is decidable in polynomial time. [`IntervalSet`] implements exactly
//! this normal form: a sorted list of disjoint, non-adjacent intervals
//! with open/closed endpoints (possibly unbounded).
//!
//! The implementation works in "cut space": each interval endpoint is a
//! [`Cut`], a position infinitesimally below or above a rational (or at
//! ±∞). An interval is the half-open range `[lo, hi)` of cuts, which makes
//! union, intersection, and complement simple ordered-merge walks and
//! gives a canonical representation (structural equality = semantic
//! equality).

use crate::rat::Rat;
use std::cmp::Ordering;
use std::fmt;

/// A position on the rational line extended with infinitesimals: either
/// ±∞, or "just below `v`" / "just above `v`" for a rational `v`.
///
/// `Below(v) < Above(v)`, and the point `v` itself occupies exactly the
/// cut-range `[Below(v), Above(v))`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cut {
    /// Below every rational.
    NegInf,
    /// Immediately below the rational.
    Below(Rat),
    /// Immediately above the rational.
    Above(Rat),
    /// Above every rational.
    PosInf,
}

impl Cut {
    fn key(self) -> (i8, Option<(Rat, u8)>) {
        match self {
            Cut::NegInf => (-1, None),
            Cut::Below(v) => (0, Some((v, 0))),
            Cut::Above(v) => (0, Some((v, 1))),
            Cut::PosInf => (1, None),
        }
    }
}

impl PartialOrd for Cut {
    fn partial_cmp(&self, other: &Cut) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cut {
    fn cmp(&self, other: &Cut) -> Ordering {
        self.key().cmp(&other.key())
    }
}

/// A nonempty interval of rationals, stored as the half-open cut range
/// `[lo, hi)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    lo: Cut,
    hi: Cut,
}

/// Bounds of an interval as seen by a user: a value plus openness, or
/// unbounded. Produced by [`Interval::bounds`] for display and for the
/// XML serialization of conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// No bound on this side.
    Unbounded,
    /// The endpoint is included (`[v` or `v]`).
    Closed(Rat),
    /// The endpoint is excluded (`(v` or `v)`).
    Open(Rat),
}

impl Interval {
    /// Creates an interval from cut endpoints. Returns `None` when the
    /// range is empty (`lo >= hi`).
    pub fn new(lo: Cut, hi: Cut) -> Option<Interval> {
        if lo < hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// The single point `v` (the closed interval `[v, v]`).
    pub fn point(v: Rat) -> Interval {
        Interval {
            lo: Cut::Below(v),
            hi: Cut::Above(v),
        }
    }

    /// Lower cut.
    pub fn lo(&self) -> Cut {
        self.lo
    }

    /// Upper cut.
    pub fn hi(&self) -> Cut {
        self.hi
    }

    /// The (lower, upper) bounds in user-facing form.
    pub fn bounds(&self) -> (Bound, Bound) {
        let lo = match self.lo {
            Cut::NegInf => Bound::Unbounded,
            Cut::Below(v) => Bound::Closed(v),
            Cut::Above(v) => Bound::Open(v),
            Cut::PosInf => unreachable!("interval with lo = +inf"),
        };
        let hi = match self.hi {
            Cut::PosInf => Bound::Unbounded,
            Cut::Above(v) => Bound::Closed(v),
            Cut::Below(v) => Bound::Open(v),
            Cut::NegInf => unreachable!("interval with hi = -inf"),
        };
        (lo, hi)
    }

    /// Does the interval contain the rational `v`?
    pub fn contains(&self, v: Rat) -> bool {
        self.lo <= Cut::Below(v) && Cut::Above(v) <= self.hi
    }

    /// Some rational inside the interval (always exists: intervals are
    /// nonempty by construction and `Q` is dense).
    pub fn witness(&self) -> Rat {
        match (self.lo, self.hi) {
            (Cut::NegInf, Cut::PosInf) => Rat::ZERO,
            (Cut::NegInf, Cut::Below(v) | Cut::Above(v)) => v - Rat::ONE,
            (Cut::Below(v) | Cut::Above(v), Cut::PosInf) => v + Rat::ONE,
            (Cut::Below(v), _) => v, // closed lower endpoint is inside
            (Cut::Above(_), Cut::Above(w)) => w, // closed upper endpoint
            (Cut::Above(v), Cut::Below(w)) => v.midpoint(w), // open both
            (Cut::PosInf, _) | (_, Cut::NegInf) => unreachable!(),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bounds() {
            (Bound::Closed(a), Bound::Closed(b)) if a == b => write!(f, "{{{a}}}"),
            (lo, hi) => {
                match lo {
                    Bound::Unbounded => write!(f, "(-inf")?,
                    Bound::Closed(v) => write!(f, "[{v}")?,
                    Bound::Open(v) => write!(f, "({v}")?,
                }
                write!(f, ",")?;
                match hi {
                    Bound::Unbounded => write!(f, "+inf)"),
                    Bound::Closed(v) => write!(f, "{v}]"),
                    Bound::Open(v) => write!(f, "{v})"),
                }
            }
        }
    }
}

/// A finite union of disjoint, non-adjacent, nonempty intervals, sorted by
/// lower endpoint — the Lemma 2.3 normal form of a condition.
///
/// The representation is canonical: two interval sets denote the same set
/// of rationals if and only if they are structurally equal.
///
/// ```
/// use iixml_values::{IntervalSet, Rat};
/// let lt5 = IntervalSet::lt(Rat::from(5));
/// let ge3 = IntervalSet::ge(Rat::from(3));
/// let band = lt5.intersect(&ge3); // [3, 5)
/// assert!(band.contains(Rat::from(3)));
/// assert!(!band.contains(Rat::from(5)));
/// assert!(band.complement().contains(Rat::from(5)));
/// assert_eq!(band.intersect(&band.complement()), IntervalSet::empty());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set (condition `false`).
    pub fn empty() -> IntervalSet {
        IntervalSet { ivs: Vec::new() }
    }

    /// All of `Q` (condition `true`).
    pub fn all() -> IntervalSet {
        IntervalSet {
            ivs: vec![Interval {
                lo: Cut::NegInf,
                hi: Cut::PosInf,
            }],
        }
    }

    /// The singleton `{v}` (condition `= v`).
    pub fn eq(v: Rat) -> IntervalSet {
        IntervalSet {
            ivs: vec![Interval::point(v)],
        }
    }

    /// `Q \ {v}` (condition `≠ v`).
    pub fn ne(v: Rat) -> IntervalSet {
        IntervalSet::eq(v).complement()
    }

    /// `(-∞, v)`.
    pub fn lt(v: Rat) -> IntervalSet {
        IntervalSet::from_cuts(Cut::NegInf, Cut::Below(v))
    }

    /// `(-∞, v]`.
    pub fn le(v: Rat) -> IntervalSet {
        IntervalSet::from_cuts(Cut::NegInf, Cut::Above(v))
    }

    /// `(v, +∞)`.
    pub fn gt(v: Rat) -> IntervalSet {
        IntervalSet::from_cuts(Cut::Above(v), Cut::PosInf)
    }

    /// `[v, +∞)`.
    pub fn ge(v: Rat) -> IntervalSet {
        IntervalSet::from_cuts(Cut::Below(v), Cut::PosInf)
    }

    fn from_cuts(lo: Cut, hi: Cut) -> IntervalSet {
        IntervalSet {
            ivs: Interval::new(lo, hi).into_iter().collect(),
        }
    }

    /// Builds a normalized set from arbitrary intervals (sorts, merges
    /// overlapping and adjacent pieces).
    pub fn from_intervals(mut ivs: Vec<Interval>) -> IntervalSet {
        ivs.sort_by(|a, b| a.lo.cmp(&b.lo).then(a.hi.cmp(&b.hi)));
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                // `iv.lo <= last.hi` means overlap or adjacency in cut
                // space (e.g. `[1,2)` and `[2,3]` share the cut Below(2)).
                Some(last) if iv.lo <= last.hi => last.hi = last.hi.max(iv.hi),
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    /// The disjoint intervals, in increasing order.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Is the set empty (condition unsatisfiable)?
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Is the set all of `Q` (condition valid)?
    pub fn is_all(&self) -> bool {
        self.ivs.len() == 1 && self.ivs[0].lo == Cut::NegInf && self.ivs[0].hi == Cut::PosInf
    }

    /// If the set is a single point `{v}`, returns `v`. Used by the
    /// certain-prefix algorithm (Theorem 2.8), which needs to know when a
    /// type's condition *forces* a specific data value.
    pub fn as_singleton(&self) -> Option<Rat> {
        match self.ivs.as_slice() {
            [iv] => match (iv.lo, iv.hi) {
                (Cut::Below(a), Cut::Above(b)) if a == b => Some(a),
                _ => None,
            },
            _ => None,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: Rat) -> bool {
        // Binary search on the sorted disjoint intervals.
        self.ivs
            .binary_search_by(|iv| {
                if iv.hi <= Cut::Below(v) {
                    Ordering::Less
                } else if Cut::Above(v) <= iv.lo {
                    Ordering::Greater
                } else {
                    Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut ivs = self.ivs.clone();
        ivs.extend_from_slice(&other.ivs);
        IntervalSet::from_intervals(ivs)
    }

    /// Set intersection (conjunction of conditions).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            let a = self.ivs[i];
            let b = other.ivs[j];
            if let Some(iv) = Interval::new(a.lo.max(b.lo), a.hi.min(b.hi)) {
                out.push(iv);
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// Set complement (negation of the condition).
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        let mut lo = Cut::NegInf;
        for iv in &self.ivs {
            if let Some(gap) = Interval::new(lo, iv.lo) {
                out.push(gap);
            }
            lo = iv.hi;
        }
        if let Some(tail) = Interval::new(lo, Cut::PosInf) {
            out.push(tail);
        }
        IntervalSet { ivs: out }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        self.intersect(&other.complement())
    }

    /// Subset test: does every value satisfying `self` satisfy `other`?
    /// (Condition implication.)
    pub fn implies(&self, other: &IntervalSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Do the two sets share a value? (Conjunction satisfiable.)
    pub fn overlaps(&self, other: &IntervalSet) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Some rational in the set, if nonempty. Witnesses are used to
    /// construct concrete possible worlds from incomplete trees.
    pub fn witness(&self) -> Option<Rat> {
        self.ivs.first().map(Interval::witness)
    }

    /// Counts the integers `v` with `lo <= v <= hi` contained in the
    /// set. Used by the possible-world counting oracle, which measures
    /// uncertainty over a fixed integer value domain.
    pub fn count_integers(&self, lo: i64, hi: i64) -> u64 {
        if lo > hi {
            return 0;
        }
        let mut total = 0u64;
        for iv in self.intervals() {
            // Integer range [a, b] inside the interval.
            let a = match iv.lo() {
                Cut::NegInf => lo,
                Cut::Below(v) => ceil_int(v).max(lo),
                Cut::Above(v) => (floor_int(v) + 1).max(lo),
                Cut::PosInf => continue,
            };
            let b = match iv.hi() {
                Cut::PosInf => hi,
                Cut::Above(v) => floor_int(v).min(hi),
                Cut::Below(v) => (ceil_int(v) - 1).min(hi),
                Cut::NegInf => continue,
            };
            if a <= b {
                total += (b - a) as u64 + 1;
            }
        }
        total
    }

    /// All finite endpoint values mentioned by the set, in order. The
    /// brute-force oracle uses these (plus in-between witnesses) as the
    /// representative value domain, mirroring the proof of Lemma 2.3.
    pub fn endpoints(&self) -> Vec<Rat> {
        let mut out = Vec::new();
        for iv in &self.ivs {
            for cut in [iv.lo, iv.hi] {
                if let Cut::Below(v) | Cut::Above(v) = cut {
                    if out.last() != Some(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out.dedup();
        out
    }
}

fn floor_int(v: Rat) -> i64 {
    v.numer().div_euclid(v.denom())
}

fn ceil_int(v: Rat) -> i64 {
    -floor_int(-v)
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "false");
        }
        if self.is_all() {
            return write!(f, "true");
        }
        for (k, iv) in self.ivs.iter().enumerate() {
            if k > 0 {
                write!(f, " u ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from(v)
    }

    #[test]
    fn cut_ordering() {
        assert!(Cut::NegInf < Cut::Below(r(0)));
        assert!(Cut::Below(r(0)) < Cut::Above(r(0)));
        assert!(Cut::Above(r(0)) < Cut::Below(r(1)));
        assert!(Cut::Above(r(1)) < Cut::PosInf);
    }

    #[test]
    fn atoms() {
        assert!(IntervalSet::lt(r(5)).contains(r(4)));
        assert!(!IntervalSet::lt(r(5)).contains(r(5)));
        assert!(IntervalSet::le(r(5)).contains(r(5)));
        assert!(IntervalSet::gt(r(5)).contains(r(6)));
        assert!(!IntervalSet::gt(r(5)).contains(r(5)));
        assert!(IntervalSet::ge(r(5)).contains(r(5)));
        assert!(IntervalSet::eq(r(5)).contains(r(5)));
        assert!(!IntervalSet::ne(r(5)).contains(r(5)));
        assert!(IntervalSet::ne(r(5)).contains(r(4)));
    }

    #[test]
    fn union_merges_adjacent() {
        // [1,2) ∪ [2,3] = [1,3]
        let a = IntervalSet::ge(r(1)).intersect(&IntervalSet::lt(r(2)));
        let b = IntervalSet::ge(r(2)).intersect(&IntervalSet::le(r(3)));
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 1);
        assert!(u.contains(r(2)));
        // (1,2) ∪ (2,3) stays two pieces: 2 is missing.
        let a = IntervalSet::gt(r(1)).intersect(&IntervalSet::lt(r(2)));
        let b = IntervalSet::gt(r(2)).intersect(&IntervalSet::lt(r(3)));
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 2);
        assert!(!u.contains(r(2)));
    }

    #[test]
    fn complement_involutive() {
        let s = IntervalSet::ne(r(3)).intersect(&IntervalSet::le(r(10)));
        assert_eq!(s.complement().complement(), s);
        assert_eq!(IntervalSet::all().complement(), IntervalSet::empty());
        assert_eq!(IntervalSet::empty().complement(), IntervalSet::all());
    }

    #[test]
    fn singleton_detection() {
        assert_eq!(IntervalSet::eq(r(7)).as_singleton(), Some(r(7)));
        assert_eq!(
            IntervalSet::ge(r(7))
                .intersect(&IntervalSet::le(r(7)))
                .as_singleton(),
            Some(r(7))
        );
        assert_eq!(IntervalSet::ge(r(7)).as_singleton(), None);
        assert_eq!(IntervalSet::empty().as_singleton(), None);
    }

    #[test]
    fn implication() {
        let narrow = IntervalSet::eq(r(4));
        let wide = IntervalSet::lt(r(5));
        assert!(narrow.implies(&wide));
        assert!(!wide.implies(&narrow));
        assert!(IntervalSet::empty().implies(&narrow));
        assert!(wide.implies(&IntervalSet::all()));
    }

    #[test]
    fn witnesses_are_members() {
        let sets = [
            IntervalSet::all(),
            IntervalSet::lt(r(0)),
            IntervalSet::gt(r(100)),
            IntervalSet::eq(r(3)),
            IntervalSet::gt(r(1)).intersect(&IntervalSet::lt(r(2))),
            IntervalSet::ne(r(0)),
            IntervalSet::gt(r(1)).intersect(&IntervalSet::le(r(2))),
        ];
        for s in sets {
            let w = s.witness().expect("nonempty");
            assert!(s.contains(w), "{s} should contain witness {w}");
        }
        assert_eq!(IntervalSet::empty().witness(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntervalSet::eq(r(3)).to_string(), "{3}");
        assert_eq!(IntervalSet::lt(r(3)).to_string(), "(-inf,3)");
        assert_eq!(IntervalSet::all().to_string(), "true");
        assert_eq!(IntervalSet::empty().to_string(), "false");
        assert_eq!(IntervalSet::ne(r(0)).to_string(), "(-inf,0) u (0,+inf)");
    }

    #[test]
    fn endpoints_collects_values() {
        let s = IntervalSet::ne(r(1)).intersect(&IntervalSet::lt(r(5)));
        assert_eq!(s.endpoints(), vec![r(1), r(5)]);
    }

    #[test]
    fn integer_counting() {
        assert_eq!(IntervalSet::all().count_integers(0, 9), 10);
        assert_eq!(IntervalSet::lt(r(5)).count_integers(0, 9), 5); // 0..4
        assert_eq!(IntervalSet::le(r(5)).count_integers(0, 9), 6); // 0..5
        assert_eq!(IntervalSet::gt(r(5)).count_integers(0, 9), 4); // 6..9
        assert_eq!(IntervalSet::eq(r(5)).count_integers(0, 9), 1);
        assert_eq!(IntervalSet::ne(r(5)).count_integers(0, 9), 9);
        assert_eq!(IntervalSet::empty().count_integers(0, 9), 0);
        // Fractional bounds: (1/2, 7/2) contains 1, 2, 3.
        let s = IntervalSet::gt(Rat::new(1, 2)).intersect(&IntervalSet::lt(Rat::new(7, 2)));
        assert_eq!(s.count_integers(-5, 5), 3);
        // Closed fractional bound [1/2, 3] contains 1, 2, 3.
        let s = IntervalSet::ge(Rat::new(1, 2)).intersect(&IntervalSet::le(r(3)));
        assert_eq!(s.count_integers(-5, 5), 3);
        // Negative ranges.
        assert_eq!(IntervalSet::lt(r(0)).count_integers(-3, 3), 3); // -3..-1
                                                                    // Brute-force cross-check on a composite set.
        let s = IntervalSet::ne(r(1))
            .intersect(&IntervalSet::ge(r(-2)))
            .intersect(&IntervalSet::lt(Rat::new(9, 2)));
        let brute = (-10..=10).filter(|&v| s.contains(r(v))).count() as u64;
        assert_eq!(s.count_integers(-10, 10), brute);
    }
}
