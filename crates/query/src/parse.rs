//! A concise text syntax for ps-queries, mirroring the paper's figures.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    := node
//! node     := name bar? cond? children?
//! name     := [A-Za-z_][A-Za-z0-9_.-]*
//! bar      := '!'                       (the paper's overline ā)
//! cond     := '[' condition ']'         (iixml_values::parse syntax)
//! children := '/' node                  (single child)
//!           | '{' node (',' node)* '}'  (several children)
//! ```
//!
//! Examples (Queries 1 and 2 of the paper):
//!
//! ```text
//! catalog/product{name, price[< 200], cat[= 1]/subcat}
//! catalog/product{name, cat[= 1]/subcat[= 10], picture}
//! ```
//!
//! `picture!` marks a barred node (whole-subtree extraction).

use crate::pattern::{PsQuery, PsQueryBuilder, QNodeRef};
use iixml_tree::Alphabet;
use iixml_values::parse::parse_cond;
use iixml_values::Cond;
use std::fmt;

/// Error from parsing the query syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for QueryParseError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> QueryParseError {
        QueryParseError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let t = self.rest().trim_start();
        self.pos = self.input.len() - t.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, QueryParseError> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_ascii_alphabetic() || c == '_'
            } else {
                c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            return Err(self.err("expected element name"));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    /// Parses `bar? cond?` after a name.
    fn parse_adornments(&mut self) -> Result<(bool, Cond), QueryParseError> {
        let barred = self.eat("!");
        let cond = if self.eat("[") {
            let rest = self.rest();
            let close = rest
                .find(']')
                .ok_or_else(|| self.err("unterminated condition"))?;
            let text = &rest[..close];
            let c = parse_cond(text).map_err(|e| self.err(e.to_string()))?;
            self.pos += close + 1;
            c
        } else {
            Cond::True
        };
        Ok((barred, cond))
    }

    fn parse_children(
        &mut self,
        b: &mut PsQueryBuilder,
        parent: QNodeRef,
    ) -> Result<(), QueryParseError> {
        if self.eat("/") {
            self.parse_node(b, parent)
        } else if self.eat("{") {
            loop {
                self.parse_node(b, parent)?;
                if self.eat(",") {
                    continue;
                }
                if self.eat("}") {
                    return Ok(());
                }
                return Err(self.err("expected ',' or '}'"));
            }
        } else {
            Ok(())
        }
    }

    fn parse_node(
        &mut self,
        b: &mut PsQueryBuilder,
        parent: QNodeRef,
    ) -> Result<(), QueryParseError> {
        let name = self.parse_name()?.to_string();
        let (barred, cond) = self.parse_adornments()?;
        let node = if barred {
            b.barred_child(parent, &name, cond)
        } else {
            b.child(parent, &name, cond)
        }
        .map_err(|e| self.err(e.to_string()))?;
        if barred {
            // Barred nodes are leaves; reject children syntactically.
            self.skip_ws();
            if self.rest().starts_with('/') || self.rest().starts_with('{') {
                return Err(self.err("barred node cannot have children"));
            }
            return Ok(());
        }
        self.parse_children(b, node)
    }
}

/// Parses the textual query syntax, interning names into `alpha`.
///
/// ```
/// use iixml_query::parse::parse_ps_query;
/// use iixml_tree::Alphabet;
/// let mut alpha = Alphabet::new();
/// let q = parse_ps_query(
///     "catalog/product{name, price[< 200], cat[= 1]/subcat}",
///     &mut alpha,
/// )
/// .unwrap();
/// assert_eq!(q.len(), 6);
/// ```
pub fn parse_ps_query(input: &str, alpha: &mut Alphabet) -> Result<PsQuery, QueryParseError> {
    let mut p = Parser { input, pos: 0 };
    let name = p.parse_name()?.to_string();
    let (barred, cond) = p.parse_adornments()?;
    if barred {
        return Err(p.err("the query root cannot be barred"));
    }
    let mut b = PsQueryBuilder::new(alpha, &name, cond);
    let root = b.root();
    p.parse_children(&mut b, root)?;
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(p.err("trailing input"));
    }
    Ok(b.build())
}

impl PsQuery {
    /// Renders the query in the [`parse_ps_query`] syntax (canonical:
    /// conditions in normalized display form).
    pub fn to_text(&self, alpha: &Alphabet) -> String {
        fn node(q: &PsQuery, alpha: &Alphabet, m: QNodeRef, out: &mut String) {
            out.push_str(alpha.name(q.label(m)));
            if q.barred(m) {
                out.push('!');
            }
            if *q.cond(m) != Cond::True {
                out.push('[');
                out.push_str(&q.cond(m).to_string());
                out.push(']');
            }
            let kids = q.children(m);
            match kids.len() {
                0 => {}
                1 => {
                    out.push('/');
                    node(q, alpha, kids[0], out);
                }
                _ => {
                    out.push('{');
                    for (i, &k) in kids.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        node(q, alpha, k, out);
                    }
                    out.push('}');
                }
            }
        }
        let mut out = String::new();
        node(self, alpha, self.root(), &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_values::Rat;

    #[test]
    fn paper_query1() {
        let mut alpha = Alphabet::new();
        let q = parse_ps_query(
            "catalog/product{name, price[< 200], cat[= 1]/subcat}",
            &mut alpha,
        )
        .unwrap();
        assert_eq!(q.len(), 6);
        assert!(!q.is_linear());
        // Find the price node and check its condition.
        let price = alpha.get("price").unwrap();
        let m = q
            .preorder()
            .iter()
            .copied()
            .find(|&m| q.label(m) == price)
            .unwrap();
        assert!(q.cond(m).equivalent(&Cond::lt(Rat::from(200))));
    }

    #[test]
    fn barred_and_linear() {
        let mut alpha = Alphabet::new();
        let q = parse_ps_query("catalog/product/picture!", &mut alpha).unwrap();
        assert_eq!(q.len(), 3);
        let pic = alpha.get("picture").unwrap();
        let m = q
            .preorder()
            .iter()
            .copied()
            .find(|&m| q.label(m) == pic)
            .unwrap();
        assert!(q.barred(m));
        assert!(q.is_linear());
    }

    #[test]
    fn errors() {
        let mut a = Alphabet::new();
        assert!(parse_ps_query("", &mut a).is_err());
        assert!(parse_ps_query("r/", &mut a).is_err());
        assert!(parse_ps_query("r{a,}", &mut a).is_err());
        assert!(parse_ps_query("r{a", &mut a).is_err());
        assert!(parse_ps_query("r[< 5", &mut a).is_err());
        assert!(parse_ps_query("r[oops]", &mut a).is_err());
        assert!(parse_ps_query("r!{a}", &mut a).is_err(), "barred root");
        assert!(parse_ps_query("r/a!/b", &mut a).is_err(), "child of barred");
        assert!(
            parse_ps_query("r{a, a}", &mut a).is_err(),
            "duplicate sibling"
        );
        assert!(parse_ps_query("r/a extra", &mut a).is_err());
    }

    #[test]
    fn roundtrip() {
        let mut alpha = Alphabet::new();
        for text in [
            "catalog",
            "catalog[= 0]",
            "catalog/product{name, price[< 200], cat[= 1]/subcat}",
            "r{a[(>= 1 & <= 2) | = 9], b!/",
        ] {
            let Ok(q) = parse_ps_query(text, &mut alpha) else {
                continue; // the deliberately broken last case
            };
            let rendered = q.to_text(&alpha);
            let q2 = parse_ps_query(&rendered, &mut alpha).unwrap();
            assert_eq!(q.len(), q2.len(), "{text} -> {rendered}");
            assert_eq!(rendered, q2.to_text(&alpha));
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let mut alpha = Alphabet::new();
        let q1 = parse_ps_query("r { a , b [ = 1 ] / c }", &mut alpha).unwrap();
        let q2 = parse_ps_query("r{a,b[=1]/c}", &mut alpha).unwrap();
        assert_eq!(q1.to_text(&alpha), q2.to_text(&alpha));
    }
}
