//! The ps-query pattern structure and builder.

use iixml_tree::{Alphabet, Label};
use iixml_values::{Cond, IntervalSet};
use std::fmt;

/// An index into a [`PsQuery`]'s node arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QNodeRef(pub u32);

impl QNodeRef {
    fn ix(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct QNode {
    label: Label,
    barred: bool,
    cond: Cond,
    cond_set: IntervalSet,
    parent: Option<QNodeRef>,
    children: Vec<QNodeRef>,
}

/// Structural errors when building a ps-query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Two siblings with the same element name (forbidden: ps-query nodes
    /// have at most one child per label, barred or not).
    DuplicateSiblingLabel(Label),
    /// Children added under a barred node (barred nodes extract their
    /// whole subtree and must be pattern leaves).
    ChildOfBarred(QNodeRef),
    /// The referenced parent does not exist.
    BadParent(QNodeRef),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DuplicateSiblingLabel(l) => {
                write!(f, "two sibling pattern nodes share label {l:?}")
            }
            QueryError::ChildOfBarred(n) => {
                write!(f, "barred pattern node {n:?} cannot have children")
            }
            QueryError::BadParent(n) => write!(f, "invalid parent reference {n:?}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A prefix-selection query: a tree pattern with per-node labels,
/// bar marks, and data-value conditions.
///
/// Build with [`PsQueryBuilder`]:
///
/// ```
/// use iixml_query::PsQueryBuilder;
/// use iixml_tree::Alphabet;
/// use iixml_values::{Cond, Rat};
///
/// let mut alpha = Alphabet::new();
/// // Query 1 of the paper: electronics products under $200.
/// let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
/// let p = b.child(b.root(), "product", Cond::True).unwrap();
/// b.child(p, "name", Cond::True).unwrap();
/// b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
/// let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
/// b.child(c, "subcat", Cond::True).unwrap();
/// let q = b.build();
/// assert_eq!(q.len(), 6);
/// assert!(!q.is_linear());
/// ```
#[derive(Clone, Debug)]
pub struct PsQuery {
    nodes: Vec<QNode>,
    /// Preorder over `nodes`, computed once at construction so hot
    /// traversal loops (eval, refine, containment) never re-allocate.
    order: Vec<QNodeRef>,
}

impl PsQuery {
    /// Seals a node arena into a query, computing the preorder cache.
    /// Builder insertion order is not preorder in general (siblings may
    /// gain children after later siblings exist), so we walk the tree.
    fn from_nodes(nodes: Vec<QNode>) -> PsQuery {
        let mut order = Vec::with_capacity(nodes.len());
        let mut stack = vec![QNodeRef(0)];
        while let Some(n) = stack.pop() {
            order.push(n);
            if let Some(node) = nodes.get(n.ix()) {
                stack.extend(node.children.iter().rev());
            }
        }
        PsQuery { nodes, order }
    }

    /// The root pattern node.
    pub fn root(&self) -> QNodeRef {
        QNodeRef(0)
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Queries always have at least a root node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The element name of a pattern node.
    pub fn label(&self, n: QNodeRef) -> Label {
        self.nodes[n.ix()].label
    }

    /// Is the node barred (whole-subtree extraction)?
    pub fn barred(&self, n: QNodeRef) -> bool {
        self.nodes[n.ix()].barred
    }

    /// The node's condition (as built).
    pub fn cond(&self, n: QNodeRef) -> &Cond {
        &self.nodes[n.ix()].cond
    }

    /// The node's condition in interval normal form.
    pub fn cond_set(&self, n: QNodeRef) -> &IntervalSet {
        &self.nodes[n.ix()].cond_set
    }

    /// The node's parent.
    pub fn parent(&self, n: QNodeRef) -> Option<QNodeRef> {
        self.nodes[n.ix()].parent
    }

    /// The node's children.
    pub fn children(&self, n: QNodeRef) -> &[QNodeRef] {
        &self.nodes[n.ix()].children
    }

    /// All pattern nodes in preorder. The order is computed once when
    /// the query is built; callers borrow it instead of re-walking.
    pub fn preorder(&self) -> &[QNodeRef] {
        &self.order
    }

    /// Depth of a node below the root (root = 0).
    pub fn node_depth(&self, mut n: QNodeRef) -> usize {
        let mut d = 0;
        while let Some(p) = self.parent(n) {
            d += 1;
            n = p;
        }
        d
    }

    /// Is the query *linear* (a single path)? Linear queries are the
    /// restriction of Lemma 3.12 under which incomplete trees stay
    /// polynomial in the whole query-answer sequence.
    pub fn is_linear(&self) -> bool {
        self.nodes.iter().all(|n| n.children.len() <= 1)
    }

    /// The subquery rooted at `m` as a standalone query (same labels,
    /// bars and conditions); `q_m` in the proofs of Theorems 3.14
    /// and 3.19.
    pub fn subquery(&self, m: QNodeRef) -> PsQuery {
        let mut nodes = Vec::new();
        fn copy(
            q: &PsQuery,
            m: QNodeRef,
            parent: Option<QNodeRef>,
            nodes: &mut Vec<QNode>,
        ) -> QNodeRef {
            let me = QNodeRef(nodes.len() as u32);
            nodes.push(QNode {
                label: q.label(m),
                barred: q.barred(m),
                cond: q.cond(m).clone(),
                cond_set: q.cond_set(m).clone(),
                parent,
                children: Vec::new(),
            });
            for &c in q.children(m) {
                let cc = copy(q, c, Some(me), nodes);
                nodes[me.ix()].children.push(cc);
            }
            me
        }
        copy(self, m, None, &mut nodes);
        PsQuery::from_nodes(nodes)
    }

    /// Like [`PsQuery::subquery`], but keeping only the subtrees rooted
    /// at the given children of `m` (the pruned query `p_C` of
    /// Theorem 3.19's completion procedure).
    pub fn subquery_restricted(&self, m: QNodeRef, keep: &[QNodeRef]) -> PsQuery {
        let mut nodes = vec![QNode {
            label: self.label(m),
            barred: self.barred(m),
            cond: self.cond(m).clone(),
            cond_set: self.cond_set(m).clone(),
            parent: None,
            children: Vec::new(),
        }];
        fn copy(q: &PsQuery, m: QNodeRef, parent: QNodeRef, nodes: &mut Vec<QNode>) -> QNodeRef {
            let me = QNodeRef(nodes.len() as u32);
            nodes.push(QNode {
                label: q.label(m),
                barred: q.barred(m),
                cond: q.cond(m).clone(),
                cond_set: q.cond_set(m).clone(),
                parent: Some(parent),
                children: Vec::new(),
            });
            for &c in q.children(m) {
                let cc = copy(q, c, me, nodes);
                nodes[me.0 as usize].children.push(cc);
            }
            me
        }
        for &c in self.children(m) {
            if keep.contains(&c) {
                let cc = copy(self, c, QNodeRef(0), &mut nodes);
                nodes[0].children.push(cc);
            }
        }
        PsQuery::from_nodes(nodes)
    }

    /// The query consisting of the path from the root to `m`, with all
    /// conditions replaced by `true` — the auxiliary query `q_m` of
    /// Proposition 3.13.
    pub fn path_to(&self, m: QNodeRef) -> PsQuery {
        let mut path = vec![m];
        let mut cur = m;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        let mut nodes: Vec<QNode> = Vec::with_capacity(path.len());
        for (i, &n) in path.iter().enumerate() {
            nodes.push(QNode {
                label: self.label(n),
                barred: false,
                cond: Cond::True,
                cond_set: IntervalSet::all(),
                parent: if i == 0 {
                    None
                } else {
                    Some(QNodeRef(i as u32 - 1))
                },
                children: if i + 1 < path.len() {
                    vec![QNodeRef(i as u32 + 1)]
                } else {
                    Vec::new()
                },
            });
        }
        PsQuery::from_nodes(nodes)
    }

    /// Builds a linear query from a label path with conditions.
    pub fn linear(path: &[(Label, Cond)]) -> PsQuery {
        assert!(!path.is_empty(), "linear query needs at least a root");
        let nodes = path
            .iter()
            .enumerate()
            .map(|(i, (label, cond))| QNode {
                label: *label,
                barred: false,
                cond: cond.clone(),
                cond_set: cond.to_intervals(),
                parent: if i == 0 {
                    None
                } else {
                    Some(QNodeRef(i as u32 - 1))
                },
                children: if i + 1 < path.len() {
                    vec![QNodeRef(i as u32 + 1)]
                } else {
                    Vec::new()
                },
            })
            .collect();
        PsQuery::from_nodes(nodes)
    }

    /// Pretty-prints the pattern with names from `alpha`.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> DisplayQuery<'a> {
        DisplayQuery { q: self, alpha }
    }
}

/// Helper returned by [`PsQuery::display`].
pub struct DisplayQuery<'a> {
    q: &'a PsQuery,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayQuery<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            q: &PsQuery,
            alpha: &Alphabet,
            n: QNodeRef,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            write!(
                f,
                "{:indent$}{}{}",
                "",
                alpha.name(q.label(n)),
                if q.barred(n) { " (bar)" } else { "" },
                indent = depth * 2
            )?;
            if *q.cond(n) != Cond::True {
                write!(f, " [{}]", q.cond(n))?;
            }
            writeln!(f)?;
            for &c in q.children(n) {
                go(q, alpha, c, depth + 1, f)?;
            }
            Ok(())
        }
        go(self.q, self.alpha, self.q.root(), 0, f)
    }
}

/// Builder for [`PsQuery`], interning names into an [`Alphabet`] and
/// enforcing the structural constraints of ps-queries.
pub struct PsQueryBuilder<'a> {
    alpha: &'a mut Alphabet,
    nodes: Vec<QNode>,
}

impl<'a> PsQueryBuilder<'a> {
    /// Starts a query with the given root label and condition.
    pub fn new(alpha: &'a mut Alphabet, root: &str, cond: Cond) -> PsQueryBuilder<'a> {
        let label = alpha.intern(root);
        let cond_set = cond.to_intervals();
        PsQueryBuilder {
            alpha,
            nodes: vec![QNode {
                label,
                barred: false,
                cond,
                cond_set,
                parent: None,
                children: Vec::new(),
            }],
        }
    }

    /// The root reference.
    pub fn root(&self) -> QNodeRef {
        QNodeRef(0)
    }

    fn add(
        &mut self,
        parent: QNodeRef,
        name: &str,
        cond: Cond,
        barred: bool,
    ) -> Result<QNodeRef, QueryError> {
        if parent.ix() >= self.nodes.len() {
            return Err(QueryError::BadParent(parent));
        }
        if self.nodes[parent.ix()].barred {
            return Err(QueryError::ChildOfBarred(parent));
        }
        let label = self.alpha.intern(name);
        for &sib in &self.nodes[parent.ix()].children {
            if self.nodes[sib.ix()].label == label {
                return Err(QueryError::DuplicateSiblingLabel(label));
            }
        }
        let r = QNodeRef(self.nodes.len() as u32);
        let cond_set = cond.to_intervals();
        self.nodes.push(QNode {
            label,
            barred,
            cond,
            cond_set,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.ix()].children.push(r);
        Ok(r)
    }

    /// Adds an unbarred pattern node.
    pub fn child(
        &mut self,
        parent: QNodeRef,
        name: &str,
        cond: Cond,
    ) -> Result<QNodeRef, QueryError> {
        self.add(parent, name, cond, false)
    }

    /// Adds a barred pattern node (whole-subtree extraction; must remain
    /// a leaf).
    pub fn barred_child(
        &mut self,
        parent: QNodeRef,
        name: &str,
        cond: Cond,
    ) -> Result<QNodeRef, QueryError> {
        self.add(parent, name, cond, true)
    }

    /// Finishes the query.
    pub fn build(self) -> PsQuery {
        PsQuery::from_nodes(self.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_values::Rat;

    #[test]
    fn builder_enforces_sibling_uniqueness() {
        let mut alpha = Alphabet::new();
        let mut b = PsQueryBuilder::new(&mut alpha, "r", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::True).unwrap();
        assert!(matches!(
            b.child(root, "a", Cond::True),
            Err(QueryError::DuplicateSiblingLabel(_))
        ));
        // Barred duplicate also rejected.
        assert!(b.barred_child(root, "a", Cond::True).is_err());
        // Different label fine.
        b.barred_child(root, "b", Cond::True).unwrap();
    }

    #[test]
    fn barred_nodes_are_leaves() {
        let mut alpha = Alphabet::new();
        let mut b = PsQueryBuilder::new(&mut alpha, "r", Cond::True);
        let root = b.root();
        let bar = b.barred_child(root, "a", Cond::True).unwrap();
        assert!(matches!(
            b.child(bar, "b", Cond::True),
            Err(QueryError::ChildOfBarred(_))
        ));
    }

    #[test]
    fn linearity() {
        let mut alpha = Alphabet::new();
        let (r, a) = (alpha.intern("r"), alpha.intern("a"));
        let q = PsQuery::linear(&[(r, Cond::True), (a, Cond::lt(Rat::from(5)))]);
        assert!(q.is_linear());
        assert_eq!(q.len(), 2);
        let mut b = PsQueryBuilder::new(&mut alpha, "r", Cond::True);
        let root = b.root();
        b.child(root, "a", Cond::True).unwrap();
        b.child(root, "b", Cond::True).unwrap();
        assert!(!b.build().is_linear());
    }

    #[test]
    fn subquery_and_path() {
        let mut alpha = Alphabet::new();
        let mut b = PsQueryBuilder::new(&mut alpha, "r", Cond::True);
        let root = b.root();
        let p = b.child(root, "p", Cond::eq(Rat::from(1))).unwrap();
        let x = b.child(p, "x", Cond::lt(Rat::from(9))).unwrap();
        b.child(p, "y", Cond::True).unwrap();
        let q = b.build();
        let sub = q.subquery(p);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.label(sub.root()), q.label(p));
        assert_eq!(*sub.cond(sub.root()), Cond::eq(Rat::from(1)));
        let path = q.path_to(x);
        assert!(path.is_linear());
        assert_eq!(path.len(), 3);
        // Conditions are cleared on auxiliary path queries.
        for &n in path.preorder() {
            assert_eq!(*path.cond(n), Cond::True);
        }
    }

    #[test]
    fn depths() {
        let mut alpha = Alphabet::new();
        let mut b = PsQueryBuilder::new(&mut alpha, "r", Cond::True);
        let root = b.root();
        let p = b.child(root, "p", Cond::True).unwrap();
        let x = b.child(p, "x", Cond::True).unwrap();
        let q = b.build();
        assert_eq!(q.node_depth(q.root()), 0);
        assert_eq!(q.node_depth(x), 2);
        assert_eq!(q.preorder().len(), 3);
    }

    #[test]
    fn display() {
        let mut alpha = Alphabet::new();
        let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
        b.barred_child(p, "picture", Cond::True).unwrap();
        let q = b.build();
        let s = q.display(&alpha).to_string();
        assert!(s.contains("catalog"));
        assert!(s.contains("price [< 200]"));
        assert!(s.contains("picture (bar)"));
    }
}
