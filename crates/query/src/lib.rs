#![warn(missing_docs)]

//! Prefix-selection queries (ps-queries) and their evaluation (Section 2).
//!
//! A ps-query is a labeled tree pattern: each node carries an element name
//! from Σ (possibly *barred*, written `ā`, meaning the entire subtree
//! rooted at a matched node is extracted) and a condition on data values.
//! Internal pattern nodes may not be barred, and no two siblings share an
//! element name — so queries browse the input from the root downwards and
//! select a prefix of it.
//!
//! Evaluation ([`PsQuery::eval`]) returns the prefix of the input
//! consisting of all nodes in the image of some *valuation* (a
//! root-preserving, edge-preserving, label- and condition-respecting
//! mapping of the pattern into the input), plus all descendants of nodes
//! matched by barred pattern nodes. Crucially, answers preserve the
//! persistent node ids of the input (Remark 2.4).

pub mod eval;
pub mod parse;
pub mod pattern;

pub use eval::{Answer, MatchKind};
pub use parse::parse_ps_query;
pub use pattern::{PsQuery, PsQueryBuilder, QNodeRef, QueryError};
