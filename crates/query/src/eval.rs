//! Evaluation of ps-queries on data trees.
//!
//! The answer `q(T)` is the prefix of `T` made of all nodes in the image
//! of some valuation of the pattern into `T`, plus all descendants of
//! nodes matched by barred pattern nodes. Node ids are preserved
//! (Remark 2.4), so the answer's nodes *are* nodes of `T` and consecutive
//! answers can be merged.

use crate::pattern::{PsQuery, QNodeRef};
use iixml_obs::{keys, LazyCounter, LazyHistogram};
use iixml_tree::{DataTree, Nid, NodeRef};
use std::collections::HashMap;

/// Query evaluations performed.
static OBS_EVALS: LazyCounter = LazyCounter::new(keys::QUERY_EVAL_CALLS);
/// Pattern-node/data-node valuations tried per evaluation (the memo's
/// footprint — the `O(|q|·|T|)` of the naive bound).
static OBS_VALUATIONS: LazyHistogram = LazyHistogram::new(keys::QUERY_EVAL_VALUATIONS);
/// Answer size (nodes) per evaluation, empty answers included as 0.
static OBS_ANSWER_NODES: LazyHistogram = LazyHistogram::new(keys::QUERY_EVAL_ANSWER_NODES);

/// How an answer node was produced. Algorithm Refine (Lemma 3.2) needs
/// this provenance to build the incomplete tree `T_{q,A}`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MatchKind {
    /// The node is the image of the given pattern node under some
    /// valuation.
    Matched(QNodeRef),
    /// The node is a strict descendant of a node matched by the given
    /// *barred* pattern node (extracted wholesale).
    BarDescendant(QNodeRef),
}

/// The result of evaluating a ps-query: the answer prefix (if any
/// valuation exists) plus per-node provenance.
#[derive(Clone, Debug)]
pub struct Answer {
    /// The answer tree; `None` when no valuation exists (the empty
    /// answer).
    pub tree: Option<DataTree>,
    /// For each answer node (by persistent id), how it was selected.
    pub provenance: HashMap<Nid, MatchKind>,
}

impl Answer {
    /// The empty answer.
    pub fn empty() -> Answer {
        Answer {
            tree: None,
            provenance: HashMap::new(),
        }
    }

    /// Is this the empty answer?
    pub fn is_empty(&self) -> bool {
        self.tree.is_none()
    }

    /// Number of nodes in the answer (0 when empty).
    pub fn len(&self) -> usize {
        self.tree.as_ref().map_or(0, DataTree::len)
    }
}

/// Dense sat-memo: one byte per (pattern node, data node) valuation.
/// Pattern and tree nodes are both dense `u32` ids, so the memo the
/// `sat` recursion probes on every call is a flat array load instead of
/// a hash — the same IDs-not-hashes discipline as the core kernels.
/// `0` = not yet computed, `1` = unsat, `2` = sat.
struct SatMemo {
    tn: usize,
    slots: Vec<u8>,
    filled: u64,
}

impl SatMemo {
    fn new(qn: usize, tn: usize) -> SatMemo {
        SatMemo {
            tn: tn.max(1),
            slots: vec![0u8; qn * tn],
            filled: 0,
        }
    }

    #[inline]
    fn get(&self, m: QNodeRef, n: NodeRef) -> Option<bool> {
        match self.slots.get(m.0 as usize * self.tn + n.0 as usize) {
            Some(&2) => Some(true),
            Some(&1) => Some(false),
            _ => None,
        }
    }

    #[inline]
    fn set(&mut self, m: QNodeRef, n: NodeRef, v: bool) {
        if let Some(slot) = self.slots.get_mut(m.0 as usize * self.tn + n.0 as usize) {
            if *slot == 0 {
                self.filled += 1;
            }
            *slot = if v { 2 } else { 1 };
        }
    }
}

impl PsQuery {
    /// Does the subquery rooted at `m` fully match at node `n` of `t`?
    ///
    /// `sat` is computed by a straightforward recursion: the node must
    /// match `m`'s label and condition, and every pattern child of `m`
    /// must match at some child of `n` (children of `m` carry distinct
    /// labels, so their matches never compete).
    fn sat(&self, t: &DataTree, m: QNodeRef, n: NodeRef, memo: &mut SatMemo) -> bool {
        if let Some(r) = memo.get(m, n) {
            return r;
        }
        let ok = self.label(m) == t.label(n)
            && self.cond_set(m).contains(t.value(n))
            && self
                .children(m)
                .iter()
                .all(|&mc| t.children(n).iter().any(|&nc| self.sat(t, mc, nc, memo)));
        memo.set(m, n, ok);
        ok
    }

    /// Evaluates the query, returning the answer prefix with provenance.
    pub fn eval(&self, t: &DataTree) -> Answer {
        OBS_EVALS.incr();
        let mut memo = SatMemo::new(self.len(), t.len());
        if !self.sat(t, self.root(), t.root(), &mut memo) {
            OBS_VALUATIONS.observe(memo.filled);
            OBS_ANSWER_NODES.observe(0);
            return Answer::empty();
        }
        // The root matches; collect the image of all valuations.
        // `in_image(m, n)` holds iff sat(m, n) and the parents are in
        // image of each other — we materialize the answer top-down.
        let mut answer = DataTree::new(t.nid(t.root()), t.label(t.root()), t.value(t.root()));
        let mut provenance = HashMap::new();
        provenance.insert(t.nid(t.root()), MatchKind::Matched(self.root()));
        let answer_root = answer.root();
        self.collect(
            t,
            self.root(),
            t.root(),
            &mut answer,
            answer_root,
            &mut provenance,
            &mut memo,
        );
        OBS_VALUATIONS.observe(memo.filled);
        OBS_ANSWER_NODES.observe(answer.len() as u64);
        Answer {
            tree: Some(answer),
            provenance,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn collect(
        &self,
        t: &DataTree,
        m: QNodeRef,
        n: NodeRef,
        out: &mut DataTree,
        out_n: NodeRef,
        provenance: &mut HashMap<Nid, MatchKind>,
        memo: &mut SatMemo,
    ) {
        for &mc in self.children(m) {
            for &nc in t.children(n) {
                if self.sat(t, mc, nc, memo) {
                    // Infallible: sibling pattern labels are unique
                    // (DuplicateSiblingLabel is rejected at build time), so
                    // each data child is emitted at most once, and `t`'s own
                    // ids are unique by DataTree construction.
                    let added = out
                        .add_child(out_n, t.nid(nc), t.label(nc), t.value(nc))
                        .expect("source ids are unique");
                    provenance.insert(t.nid(nc), MatchKind::Matched(mc));
                    if self.barred(mc) {
                        // Extract the entire subtree below the barred
                        // match.
                        copy_descendants(t, nc, out, added, mc, provenance);
                    } else {
                        self.collect(t, mc, nc, out, added, provenance, memo);
                    }
                }
            }
        }
    }

    /// Evaluates the query on the subtree of `t` rooted at the node with
    /// id `at` — the local-query primitive `p@n` of Section 3.4.
    pub fn eval_at(&self, t: &DataTree, at: Nid) -> Option<Answer> {
        let n = t.by_nid(at)?;
        Some(self.eval(&t.subtree(n)))
    }
}

fn copy_descendants(
    t: &DataTree,
    n: NodeRef,
    out: &mut DataTree,
    out_n: NodeRef,
    bar: QNodeRef,
    provenance: &mut HashMap<Nid, MatchKind>,
) {
    for &c in t.children(n) {
        // Infallible: each source node is visited exactly once and carries
        // a DataTree-unique id.
        let added = out
            .add_child(out_n, t.nid(c), t.label(c), t.value(c))
            .expect("source ids are unique");
        provenance.insert(t.nid(c), MatchKind::BarDescendant(bar));
        copy_descendants(t, c, out, added, bar, provenance);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PsQueryBuilder;
    use iixml_tree::{Alphabet, Nid};
    use iixml_values::{Cond, Rat};

    /// Builds the paper's catalog instance behind Figure 6:
    /// four products — Canon (120, elec, camera, picture c.jpg),
    /// Nikon (199, elec, camera, no picture),
    /// Sony (175, elec, cdplayer, no picture),
    /// Olympus (250, elec, camera, picture o.jpg).
    /// Data values: names and pictures are coded as numbers.
    fn catalog(alpha: &mut Alphabet) -> DataTree {
        let cat = alpha.intern("catalog");
        let product = alpha.intern("product");
        let name = alpha.intern("name");
        let price = alpha.intern("price");
        let catl = alpha.intern("cat");
        let subcat = alpha.intern("subcat");
        let picture = alpha.intern("picture");
        // value codes: elec=1, camera=10, cdplayer=11.
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        let mut next = 1u64;
        let mut add_product = |t: &mut DataTree, nm: i64, pr: i64, sub: i64, pics: &[i64]| {
            let root = t.root();
            let p = t.add_child(root, Nid(next), product, Rat::ZERO).unwrap();
            next += 1;
            for (lab, v) in [(name, nm), (price, pr)] {
                t.add_child(p, Nid(next), lab, Rat::from(v)).unwrap();
                next += 1;
            }
            let c = t.add_child(p, Nid(next), catl, Rat::from(1)).unwrap();
            next += 1;
            t.add_child(c, Nid(next), subcat, Rat::from(sub)).unwrap();
            next += 1;
            for &v in pics {
                t.add_child(p, Nid(next), picture, Rat::from(v)).unwrap();
                next += 1;
            }
        };
        add_product(&mut t, 100, 120, 10, &[501]);
        add_product(&mut t, 101, 199, 10, &[]);
        add_product(&mut t, 102, 175, 11, &[]);
        add_product(&mut t, 103, 250, 10, &[502]);
        t
    }

    fn query1(alpha: &mut Alphabet) -> PsQuery {
        // Query 1: name, price and subcategories of elec products < 200.
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::True).unwrap();
        b.build()
    }

    #[test]
    fn query1_selects_three_products() {
        let mut alpha = Alphabet::new();
        let t = catalog(&mut alpha);
        let q = query1(&mut alpha);
        let a = q.eval(&t);
        let at = a.tree.as_ref().unwrap();
        // catalog + 3 products × (product, name, price, cat, subcat).
        assert_eq!(at.len(), 1 + 3 * 5);
        // Node ids are shared with the source.
        for n in at.preorder() {
            let src = t.by_nid(at.nid(n)).expect("answer ids come from source");
            assert_eq!(t.label(src), at.label(n));
            assert_eq!(t.value(src), at.value(n));
        }
        // The Olympus product (price 250, node 17) is excluded.
        assert!(at.by_nid(Nid(17)).is_none());
        // The Sony product (price 175, cdplayer, node 12) is included:
        // Query 1 only constrains price and cat, not subcat.
        assert!(at.by_nid(Nid(12)).is_some());
    }

    #[test]
    fn empty_answer_when_no_valuation() {
        let mut alpha = Alphabet::new();
        let t = catalog(&mut alpha);
        let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "price", Cond::gt(Rat::from(10_000))).unwrap();
        let q = b.build();
        assert!(q.eval(&t).is_empty());
        // Root label mismatch also gives the empty answer.
        let q2 = PsQueryBuilder::new(&mut alpha, "nonsense", Cond::True).build();
        assert!(q2.eval(&t).is_empty());
    }

    #[test]
    fn root_condition_filters() {
        let mut alpha = Alphabet::new();
        let t = catalog(&mut alpha);
        let q = PsQueryBuilder::new(&mut alpha, "catalog", Cond::eq(Rat::from(7))).build();
        assert!(q.eval(&t).is_empty());
        let q = PsQueryBuilder::new(&mut alpha, "catalog", Cond::eq(Rat::ZERO)).build();
        let a = q.eval(&t);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn barred_node_extracts_subtree() {
        let mut alpha = Alphabet::new();
        let t = catalog(&mut alpha);
        // Extract whole products priced below 150.
        let mut b = PsQueryBuilder::new(&mut alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(150))).unwrap();
        let q = {
            // Separate pattern: catalog / product(bar)? No - bar on
            // product itself needs price filter inside, which bar leaves
            // cannot have. Instead extract pictures wholesale.
            b.barred_child(p, "picture", Cond::True).unwrap();
            b.build()
        };
        let a = q.eval(&t);
        let at = a.tree.unwrap();
        // Only the Canon product matches (price 120 & has picture):
        // catalog, product, price, picture.
        assert_eq!(at.len(), 4);
        let pic_nid = Nid(6);
        assert!(at.by_nid(pic_nid).is_some());
        assert_eq!(
            a.provenance.get(&at.nid(at.root())),
            Some(&MatchKind::Matched(q.root()))
        );
    }

    #[test]
    fn bar_descendants_are_tagged() {
        let mut alpha = Alphabet::new();
        let r = alpha.intern("r");
        let a_ = alpha.intern("a");
        let b_ = alpha.intern("b");
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        let x = t.add_child(t.root(), Nid(1), a_, Rat::ZERO).unwrap();
        t.add_child(x, Nid(2), b_, Rat::from(9)).unwrap();
        let mut bld = PsQueryBuilder::new(&mut alpha, "r", Cond::True);
        let root = bld.root();
        let bar = bld.barred_child(root, "a", Cond::True).unwrap();
        let q = bld.build();
        let ans = q.eval(&t);
        assert_eq!(ans.len(), 3);
        assert_eq!(ans.provenance.get(&Nid(1)), Some(&MatchKind::Matched(bar)));
        assert_eq!(
            ans.provenance.get(&Nid(2)),
            Some(&MatchKind::BarDescendant(bar))
        );
    }

    #[test]
    fn eval_at_subtree() {
        let mut alpha = Alphabet::new();
        let t = catalog(&mut alpha);
        // Query the first product node directly for its price.
        let product = alpha.get("product").unwrap();
        let price = alpha.get("price").unwrap();
        let q = PsQuery::linear(&[(product, Cond::True), (price, Cond::True)]);
        let a = q.eval_at(&t, Nid(1)).unwrap();
        assert_eq!(a.len(), 2);
        assert!(q.eval_at(&t, Nid(999)).is_none());
    }

    #[test]
    fn answers_are_prefixes_of_the_source() {
        let mut alpha = Alphabet::new();
        let t = catalog(&mut alpha);
        let q = query1(&mut alpha);
        let a = q.eval(&t).tree.unwrap();
        let pinned = a.preorder().iter().map(|&n| a.nid(n)).collect();
        assert!(iixml_tree::is_prefix_of(&a, &t, &pinned));
    }
}
