#![warn(missing_docs)]

//! Data trees and tree types: the paper's model of XML documents and
//! simplified DTDs (Section 2).
//!
//! * [`Alphabet`] / [`Label`] — interned element names (the finite set Σ);
//! * [`Nid`] — persistent node identifiers (Remark 2.4: answers to
//!   consecutive queries share node ids with the source document, which is
//!   what lets Algorithm Refine merge information across queries);
//! * [`DataTree`] — unordered labeled trees with rational data values
//!   (Definition 2.1);
//! * [`TreeType`] — simplified DTDs with multiplicity atoms
//!   (Definition 2.2) and validation;
//! * [`embed`] — the *prefix relative to N* relation (Section 2), decided
//!   by memoized bipartite matching;
//! * [`matching`] — a Hopcroft–Karp maximum-matching substrate, also used
//!   by the certain/possible-prefix algorithms of Theorem 2.8;
//! * [`xmlio`] — an XML-ish text serialization of data trees.

pub mod embed;
pub mod flow;
pub mod label;
pub mod matching;
pub mod tree;
pub mod types;
pub mod xmlio;

pub use embed::{is_prefix_of, is_prefix_upto_ids};
pub use label::{Alphabet, Label};
pub use tree::{DataTree, Nid, NidGen, NodeRef};
pub use types::{Mult, MultAtom, TreeType, TreeTypeBuilder, TypeError};
