//! Tree types: the paper's simplified DTDs (Definition 2.2).
//!
//! A tree type specifies, for each element name `a`, a *multiplicity atom*
//! `a1^ω1 … ak^ωk` over distinct labels with ω ∈ {1, ?, +, ⋆}, together
//! with a set of allowed root labels. A data tree satisfies the type when
//! the root label is allowed and every node's children conform to the atom
//! of the node's label.

use crate::label::{Alphabet, Label};
use crate::tree::{DataTree, NodeRef};
use std::collections::HashMap;
use std::fmt;

/// A multiplicity constraint on the number of children with a given label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Mult {
    /// Exactly one (`1`, written without an exponent in the paper).
    One,
    /// At most one (`?`).
    Opt,
    /// At least one (`+`).
    Plus,
    /// Any number (`⋆`).
    Star,
}

impl Mult {
    /// Does a count of `n` children satisfy this multiplicity?
    pub fn allows(self, n: usize) -> bool {
        match self {
            Mult::One => n == 1,
            Mult::Opt => n <= 1,
            Mult::Plus => n >= 1,
            Mult::Star => true,
        }
    }

    /// Is at least one occurrence mandatory?
    pub fn mandatory(self) -> bool {
        matches!(self, Mult::One | Mult::Plus)
    }

    /// Is more than one occurrence permitted?
    pub fn repeatable(self) -> bool {
        matches!(self, Mult::Plus | Mult::Star)
    }

    /// The paper's exponent notation (`1` displayed as nothing).
    pub fn symbol(self) -> &'static str {
        match self {
            Mult::One => "",
            Mult::Opt => "?",
            Mult::Plus => "+",
            Mult::Star => "*",
        }
    }
}

impl fmt::Display for Mult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A multiplicity atom `a1^ω1 … ak^ωk`: a map from distinct labels to
/// multiplicities. Labels absent from the atom are forbidden as children.
///
/// The entries are kept sorted by label for canonical comparisons.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct MultAtom {
    entries: Vec<(Label, Mult)>,
}

/// Error constructing a multiplicity atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateLabel(pub Label);

impl fmt::Display for DuplicateLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label {:?} appears twice in a multiplicity atom", self.0)
    }
}

impl std::error::Error for DuplicateLabel {}

impl MultAtom {
    /// The empty atom ε (no children allowed).
    pub fn empty() -> MultAtom {
        MultAtom::default()
    }

    /// Builds an atom from (label, multiplicity) pairs.
    pub fn new(mut entries: Vec<(Label, Mult)>) -> Result<MultAtom, DuplicateLabel> {
        entries.sort_by_key(|&(l, _)| l);
        for w in entries.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(DuplicateLabel(w[0].0));
            }
        }
        Ok(MultAtom { entries })
    }

    /// The sorted (label, multiplicity) entries.
    pub fn entries(&self) -> &[(Label, Mult)] {
        &self.entries
    }

    /// Looks up the multiplicity of a label (`None` = forbidden).
    pub fn mult(&self, l: Label) -> Option<Mult> {
        self.entries
            .binary_search_by_key(&l, |&(x, _)| x)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Checks a multiset of child labels against the atom.
    pub fn check_counts(&self, counts: &HashMap<Label, usize>) -> bool {
        for (&l, &n) in counts {
            match self.mult(l) {
                Some(m) if m.allows(n) => {}
                _ => return false,
            }
        }
        // Mandatory labels absent from the multiset fail.
        self.entries
            .iter()
            .all(|&(l, m)| !m.mandatory() || counts.contains_key(&l))
    }

    /// Renders the atom with label names (ε for the empty atom).
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> DisplayAtom<'a> {
        DisplayAtom { atom: self, alpha }
    }
}

/// Helper returned by [`MultAtom::display`].
pub struct DisplayAtom<'a> {
    atom: &'a MultAtom,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayAtom<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atom.entries.is_empty() {
            return write!(f, "eps");
        }
        for (i, &(l, m)) in self.atom.entries.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}{}", self.alpha.name(l), m)?;
        }
        Ok(())
    }
}

/// A tree type `(Σ, R, µ)`: root labels plus one multiplicity atom per
/// label (Definition 2.2). Labels with no explicit rule default to ε
/// (leaves).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TreeType {
    roots: Vec<Label>,
    rules: HashMap<Label, MultAtom>,
}

/// A violation found when validating a data tree against a tree type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// The root's label is not among the allowed roots.
    BadRoot(Label),
    /// A node's children violate its label's multiplicity atom.
    BadChildren {
        /// The offending node.
        node: NodeRef,
        /// The node's label.
        label: Label,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::BadRoot(l) => write!(f, "root label {l:?} not allowed"),
            TypeError::BadChildren { node, label } => {
                write!(f, "children of node {node:?} violate atom of {label:?}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

impl TreeType {
    /// Creates a tree type from roots and rules.
    pub fn new(roots: Vec<Label>, rules: HashMap<Label, MultAtom>) -> TreeType {
        TreeType { roots, rules }
    }

    /// The allowed root labels.
    pub fn roots(&self) -> &[Label] {
        &self.roots
    }

    /// The multiplicity atom for a label (ε when no rule was given).
    pub fn atom(&self, l: Label) -> MultAtom {
        self.rules.get(&l).cloned().unwrap_or_default()
    }

    /// All labels with explicit rules.
    pub fn ruled_labels(&self) -> impl Iterator<Item = Label> + '_ {
        let mut ls: Vec<Label> = self.rules.keys().copied().collect();
        ls.sort();
        ls.into_iter()
    }

    /// Validates a data tree against the type (the `rep(τ)` membership
    /// test of Definition 2.2).
    pub fn validate(&self, t: &DataTree) -> Result<(), TypeError> {
        let root_label = t.label(t.root());
        if !self.roots.contains(&root_label) {
            return Err(TypeError::BadRoot(root_label));
        }
        for n in t.preorder() {
            let atom = self.atom(t.label(n));
            let mut counts: HashMap<Label, usize> = HashMap::new();
            for &c in t.children(n) {
                *counts.entry(t.label(c)).or_default() += 1;
            }
            if !atom.check_counts(&counts) {
                return Err(TypeError::BadChildren {
                    node: n,
                    label: t.label(n),
                });
            }
        }
        Ok(())
    }

    /// Membership convenience wrapper.
    pub fn accepts(&self, t: &DataTree) -> bool {
        self.validate(t).is_ok()
    }

    /// Renders the type in the paper's production syntax.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> DisplayType<'a> {
        DisplayType { ty: self, alpha }
    }
}

/// Helper returned by [`TreeType::display`].
pub struct DisplayType<'a> {
    ty: &'a TreeType,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayType<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "root:")?;
        for r in &self.ty.roots {
            write!(f, " {}", self.alpha.name(*r))?;
        }
        writeln!(f)?;
        for l in self.ty.ruled_labels() {
            writeln!(
                f,
                "{} -> {}",
                self.alpha.name(l),
                self.ty.atom(l).display(self.alpha)
            )?;
        }
        Ok(())
    }
}

/// Convenience builder using element names, in the style of the paper's
/// examples:
///
/// ```
/// use iixml_tree::{Alphabet, Mult, TreeTypeBuilder};
/// let mut alpha = Alphabet::new();
/// let ty = TreeTypeBuilder::new(&mut alpha)
///     .root("catalog")
///     .rule("catalog", &[("product", Mult::Plus)])
///     .rule("product", &[("name", Mult::One), ("picture", Mult::Star)])
///     .build()
///     .unwrap();
/// assert_eq!(ty.roots().len(), 1);
/// ```
pub struct TreeTypeBuilder<'a> {
    alpha: &'a mut Alphabet,
    roots: Vec<Label>,
    rules: HashMap<Label, MultAtom>,
    error: Option<DuplicateLabel>,
}

impl<'a> TreeTypeBuilder<'a> {
    /// Starts a builder interning names into `alpha`.
    pub fn new(alpha: &'a mut Alphabet) -> TreeTypeBuilder<'a> {
        TreeTypeBuilder {
            alpha,
            roots: Vec::new(),
            rules: HashMap::new(),
            error: None,
        }
    }

    /// Adds a root label.
    pub fn root(mut self, name: &str) -> Self {
        let l = self.alpha.intern(name);
        if !self.roots.contains(&l) {
            self.roots.push(l);
        }
        self
    }

    /// Adds a production `name -> children`.
    pub fn rule(mut self, name: &str, children: &[(&str, Mult)]) -> Self {
        let l = self.alpha.intern(name);
        let entries = children
            .iter()
            .map(|&(n, m)| (self.alpha.intern(n), m))
            .collect();
        match MultAtom::new(entries) {
            Ok(atom) => {
                self.rules.insert(l, atom);
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finishes the type.
    pub fn build(self) -> Result<TreeType, DuplicateLabel> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(TreeType::new(self.roots, self.rules)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Nid;
    use iixml_values::Rat;

    fn catalog() -> (Alphabet, TreeType) {
        let mut alpha = Alphabet::new();
        let ty = TreeTypeBuilder::new(&mut alpha)
            .root("catalog")
            .rule("catalog", &[("product", Mult::Plus)])
            .rule(
                "product",
                &[
                    ("name", Mult::One),
                    ("price", Mult::One),
                    ("cat", Mult::One),
                    ("picture", Mult::Star),
                ],
            )
            .rule("cat", &[("subcat", Mult::One)])
            .build()
            .unwrap();
        (alpha, ty)
    }

    fn product(t: &mut DataTree, alpha: &Alphabet, parent: NodeRef, base: u64, pictures: usize) {
        let p = t
            .add_child(parent, Nid(base), alpha.get("product").unwrap(), Rat::ZERO)
            .unwrap();
        t.add_child(p, Nid(base + 1), alpha.get("name").unwrap(), Rat::from(1))
            .unwrap();
        t.add_child(
            p,
            Nid(base + 2),
            alpha.get("price").unwrap(),
            Rat::from(100),
        )
        .unwrap();
        let c = t
            .add_child(p, Nid(base + 3), alpha.get("cat").unwrap(), Rat::ZERO)
            .unwrap();
        t.add_child(c, Nid(base + 4), alpha.get("subcat").unwrap(), Rat::ZERO)
            .unwrap();
        for i in 0..pictures {
            t.add_child(
                p,
                Nid(base + 5 + i as u64),
                alpha.get("picture").unwrap(),
                Rat::ZERO,
            )
            .unwrap();
        }
    }

    #[test]
    fn mult_semantics() {
        assert!(Mult::One.allows(1) && !Mult::One.allows(0) && !Mult::One.allows(2));
        assert!(Mult::Opt.allows(0) && Mult::Opt.allows(1) && !Mult::Opt.allows(2));
        assert!(!Mult::Plus.allows(0) && Mult::Plus.allows(3));
        assert!(Mult::Star.allows(0) && Mult::Star.allows(10));
        assert!(Mult::One.mandatory() && Mult::Plus.mandatory());
        assert!(!Mult::Opt.mandatory() && !Mult::Star.mandatory());
    }

    #[test]
    fn atom_rejects_duplicates() {
        assert!(MultAtom::new(vec![(Label(0), Mult::One), (Label(0), Mult::Star)]).is_err());
    }

    #[test]
    fn catalog_validation() {
        let (alpha, ty) = catalog();
        let cat = alpha.get("catalog").unwrap();
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        let root = t.root();
        product(&mut t, &alpha, root, 10, 0);
        product(&mut t, &alpha, root, 30, 2);
        assert!(ty.accepts(&t));

        // Empty catalog violates product+.
        let empty = DataTree::new(Nid(0), cat, Rat::ZERO);
        assert!(matches!(
            ty.validate(&empty),
            Err(TypeError::BadChildren { .. })
        ));

        // Wrong root.
        let bad_root = DataTree::new(Nid(0), alpha.get("product").unwrap(), Rat::ZERO);
        assert!(matches!(ty.validate(&bad_root), Err(TypeError::BadRoot(_))));
    }

    #[test]
    fn missing_mandatory_child_fails() {
        let (alpha, ty) = catalog();
        let cat = alpha.get("catalog").unwrap();
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        let p = t
            .add_child(t.root(), Nid(1), alpha.get("product").unwrap(), Rat::ZERO)
            .unwrap();
        // product missing name/price/cat.
        t.add_child(p, Nid(2), alpha.get("picture").unwrap(), Rat::ZERO)
            .unwrap();
        assert!(!ty.accepts(&t));
    }

    #[test]
    fn forbidden_label_fails() {
        let (mut alpha, ty) = catalog();
        let weird = alpha.intern("weird");
        let cat = alpha.get("catalog").unwrap();
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        t.add_child(t.root(), Nid(1), weird, Rat::ZERO).unwrap();
        assert!(!ty.accepts(&t));
    }

    #[test]
    fn leaves_default_to_epsilon() {
        let (alpha, ty) = catalog();
        // `name` has no rule; a name node with a child is invalid.
        let name = alpha.get("name").unwrap();
        assert_eq!(ty.atom(name), MultAtom::empty());
    }

    #[test]
    fn display_production_syntax() {
        let (alpha, ty) = catalog();
        let s = ty.display(&alpha).to_string();
        assert!(s.contains("root: catalog"));
        assert!(s.contains("catalog -> product+"));
        assert!(s.contains("picture*"));
    }
}
