//! Bipartite maximum matching (Hopcroft–Karp).
//!
//! The certain/possible-prefix algorithms of Theorem 2.8 reduce the
//! children-assignment step to the existence of a perfect matching between
//! tree nodes and multiplicity-atom positions; the prefix-relative-to-N
//! embedding of Section 2 needs the same primitive. This module provides a
//! small, dependency-free Hopcroft–Karp implementation
//! (`O(E·sqrt(V))`).

/// A bipartite graph on `left_len` left vertices and `right_len` right
/// vertices, with adjacency given per left vertex.
#[derive(Clone, Debug)]
pub struct Bipartite {
    left_len: usize,
    right_len: usize,
    adj: Vec<Vec<usize>>,
}

impl Bipartite {
    /// Creates an empty graph.
    pub fn new(left_len: usize, right_len: usize) -> Bipartite {
        Bipartite {
            left_len,
            right_len,
            adj: vec![Vec::new(); left_len],
        }
    }

    /// Adds an edge between left vertex `l` and right vertex `r`.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        debug_assert!(l < self.left_len && r < self.right_len);
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn left_len(&self) -> usize {
        self.left_len
    }

    /// Computes a maximum matching; returns, for each left vertex, its
    /// matched right vertex (or `None`).
    pub fn max_matching(&self) -> Vec<Option<usize>> {
        const NIL: usize = usize::MAX;
        let mut match_l = vec![NIL; self.left_len];
        let mut match_r = vec![NIL; self.right_len];
        let mut dist = vec![0usize; self.left_len];
        let mut queue = std::collections::VecDeque::new();

        loop {
            // BFS layering from free left vertices.
            queue.clear();
            let mut found_free = false;
            for l in 0..self.left_len {
                if match_l[l] == NIL {
                    dist[l] = 0;
                    queue.push_back(l);
                } else {
                    dist[l] = usize::MAX;
                }
            }
            while let Some(l) = queue.pop_front() {
                for &r in &self.adj[l] {
                    let l2 = match_r[r];
                    if l2 == NIL {
                        found_free = true;
                    } else if dist[l2] == usize::MAX {
                        dist[l2] = dist[l] + 1;
                        queue.push_back(l2);
                    }
                }
            }
            if !found_free {
                break;
            }
            // DFS augmenting along layered paths.
            fn try_augment(
                g: &Bipartite,
                l: usize,
                match_l: &mut [usize],
                match_r: &mut [usize],
                dist: &mut [usize],
            ) -> bool {
                const NIL: usize = usize::MAX;
                for i in 0..g.adj[l].len() {
                    let r = g.adj[l][i];
                    let l2 = match_r[r];
                    if l2 == NIL
                        || (dist[l2] == dist[l] + 1 && try_augment(g, l2, match_l, match_r, dist))
                    {
                        match_l[l] = r;
                        match_r[r] = l;
                        return true;
                    }
                }
                dist[l] = usize::MAX;
                false
            }
            for l in 0..self.left_len {
                if match_l[l] == NIL && dist[l] == 0 {
                    try_augment(self, l, &mut match_l, &mut match_r, &mut dist);
                }
            }
        }

        match_l
            .into_iter()
            .map(|r| if r == NIL { None } else { Some(r) })
            .collect()
    }

    /// Is there a matching saturating every left vertex?
    pub fn has_left_perfect_matching(&self) -> bool {
        self.max_matching().iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_perfect_matching() {
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(g.has_left_perfect_matching());
    }

    #[test]
    fn needs_augmenting_path() {
        // Greedy (0->0, then 1 stuck) fails; augmenting succeeds.
        let mut g = Bipartite::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        let m = g.max_matching();
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 2);
    }

    #[test]
    fn infeasible() {
        // Two left vertices competing for one right vertex.
        let mut g = Bipartite::new(2, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        assert!(!g.has_left_perfect_matching());
        assert_eq!(g.max_matching().iter().flatten().count(), 1);
    }

    #[test]
    fn empty_graphs() {
        let g = Bipartite::new(0, 5);
        assert!(g.has_left_perfect_matching());
        let g = Bipartite::new(1, 0);
        assert!(!g.has_left_perfect_matching());
    }

    #[test]
    fn matching_is_consistent() {
        // A 4x4 cycle-ish instance; verify the returned matching is a
        // valid injective assignment along edges.
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 0),
            (0, 3),
        ];
        let mut g = Bipartite::new(4, 4);
        for (l, r) in edges {
            g.add_edge(l, r);
        }
        let m = g.max_matching();
        assert_eq!(m.iter().flatten().count(), 4);
        let mut used = std::collections::HashSet::new();
        for (l, r) in m.iter().enumerate() {
            let r = r.unwrap();
            assert!(edges.contains(&(l, r)));
            assert!(used.insert(r), "right vertex used twice");
        }
    }

    #[test]
    fn larger_random_like_instance() {
        // Deterministic pseudo-random graph; compare Hopcroft–Karp size
        // against a simple Kuhn's algorithm reference.
        let (nl, nr) = (30, 30);
        let mut g = Bipartite::new(nl, nr);
        let mut edges = vec![];
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        for l in 0..nl {
            for r in 0..nr {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                if seed >> 61 == 0 {
                    g.add_edge(l, r);
                    edges.push((l, r));
                }
            }
        }
        // Kuhn reference.
        fn kuhn(nl: usize, nr: usize, edges: &[(usize, usize)]) -> usize {
            let mut adj = vec![Vec::new(); nl];
            for &(l, r) in edges {
                adj[l].push(r);
            }
            let mut mr = vec![usize::MAX; nr];
            fn go(l: usize, adj: &[Vec<usize>], seen: &mut [bool], mr: &mut [usize]) -> bool {
                for &r in &adj[l] {
                    if !seen[r] {
                        seen[r] = true;
                        if mr[r] == usize::MAX || go(mr[r], adj, seen, mr) {
                            mr[r] = l;
                            return true;
                        }
                    }
                }
                false
            }
            let mut size = 0;
            for l in 0..nl {
                let mut seen = vec![false; nr];
                if go(l, &adj, &mut seen, &mut mr) {
                    size += 1;
                }
            }
            size
        }
        let hk = g.max_matching().iter().flatten().count();
        assert_eq!(hk, kuhn(nl, nr, &edges));
    }
}
