//! Interned element names: the finite alphabet Σ of the paper.

use std::collections::HashMap;
use std::fmt;

/// An interned element name (a member of Σ).
///
/// Labels are cheap copyable handles; the mapping back to names lives in
/// the [`Alphabet`]. Ordering follows interning order, which gives
/// deterministic iteration everywhere.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Label(pub u32);

impl Label {
    /// The raw index of the label within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The interner mapping element names to [`Label`]s and back.
///
/// ```
/// use iixml_tree::Alphabet;
/// let mut alpha = Alphabet::new();
/// let a = alpha.intern("product");
/// let b = alpha.intern("product");
/// assert_eq!(a, b);
/// assert_eq!(alpha.name(a), "product");
/// assert_eq!(alpha.len(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Alphabet {
    names: Vec<String>,
    by_name: HashMap<String, Label>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Creates an alphabet pre-populated with the given names, in order.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Alphabet {
        let mut alpha = Alphabet::new();
        for n in names {
            alpha.intern(n);
        }
        alpha
    }

    /// Interns a name, returning its label (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.by_name.get(name) {
            return l;
        }
        let l = Label(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), l);
        l
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.by_name.get(name).copied()
    }

    /// The name of a label.
    ///
    /// # Panics
    ///
    /// Panics if the label does not belong to this alphabet.
    pub fn name(&self, l: Label) -> &str {
        &self.names[l.index()]
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Is the alphabet empty?
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All labels, in interning order.
    pub fn labels(&self) -> impl Iterator<Item = Label> + '_ {
        (0..self.names.len() as u32).map(Label)
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut a = Alphabet::new();
        let x = a.intern("a");
        let y = a.intern("b");
        assert_ne!(x, y);
        assert_eq!(a.intern("a"), x);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get("b"), Some(y));
        assert_eq!(a.get("c"), None);
    }

    #[test]
    fn labels_iterate_in_order() {
        let a = Alphabet::from_names(["x", "y", "z"]);
        let ls: Vec<_> = a.labels().collect();
        assert_eq!(ls, vec![Label(0), Label(1), Label(2)]);
        assert_eq!(a.name(Label(2)), "z");
    }

    #[test]
    fn display() {
        let a = Alphabet::from_names(["a", "b"]);
        assert_eq!(a.to_string(), "{a, b}");
    }
}
