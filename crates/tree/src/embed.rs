//! The *prefix relative to N* relation of Section 2.
//!
//! `T′` is a prefix of `T` relative to a node set `N` when there is a
//! one-to-one mapping `h` from `T′` to `T` that fixes the nodes in `N`,
//! maps root to root, preserves the parent relation, and preserves labels
//! and data values.
//!
//! Because `h` preserves parents and roots, global injectivity reduces to
//! injectivity among siblings, so the relation is decided by a memoized
//! recursion whose per-node step is a bipartite matching between the
//! children of the two nodes (`can child c′ embed into child c?`).

use crate::matching::Bipartite;
use crate::tree::{DataTree, Nid, NodeRef};
use std::collections::{HashMap, HashSet};

struct Embedder<'a> {
    small: &'a DataTree,
    big: &'a DataTree,
    pinned: &'a HashSet<Nid>,
    memo: HashMap<(NodeRef, NodeRef), bool>,
}

impl Embedder<'_> {
    fn can_embed(&mut self, s: NodeRef, b: NodeRef) -> bool {
        if let Some(&r) = self.memo.get(&(s, b)) {
            return r;
        }
        // Break potential re-entry cycles conservatively (trees are
        // acyclic so (s, b) pairs strictly descend; this is just a guard).
        self.memo.insert((s, b), false);
        let ok = self.check(s, b);
        self.memo.insert((s, b), ok);
        ok
    }

    fn check(&mut self, s: NodeRef, b: NodeRef) -> bool {
        if self.small.label(s) != self.big.label(b) || self.small.value(s) != self.big.value(b) {
            return false;
        }
        // Pinned nodes must map to the node with the same identity.
        if self.pinned.contains(&self.small.nid(s)) && self.small.nid(s) != self.big.nid(b) {
            return false;
        }
        let s_kids = self.small.children(s).to_vec();
        let b_kids = self.big.children(b).to_vec();
        if s_kids.is_empty() {
            return true;
        }
        if s_kids.len() > b_kids.len() {
            return false;
        }
        let mut g = Bipartite::new(s_kids.len(), b_kids.len());
        for (i, &sc) in s_kids.iter().enumerate() {
            for (j, &bc) in b_kids.iter().enumerate() {
                if self.can_embed(sc, bc) {
                    g.add_edge(i, j);
                }
            }
        }
        g.has_left_perfect_matching()
    }
}

/// Is `small` a prefix of `big` relative to the node set `pinned`?
///
/// ```
/// use iixml_tree::{Alphabet, DataTree, Nid, is_prefix_of};
/// use iixml_values::Rat;
/// use std::collections::HashSet;
/// let mut alpha = Alphabet::new();
/// let (r, a) = (alpha.intern("r"), alpha.intern("a"));
/// let mut big = DataTree::new(Nid(0), r, Rat::ZERO);
/// big.add_child(big.root(), Nid(1), a, Rat::from(1)).unwrap();
/// big.add_child(big.root(), Nid(2), a, Rat::from(1)).unwrap();
/// let mut small = DataTree::new(Nid(0), r, Rat::ZERO);
/// small.add_child(small.root(), Nid(9), a, Rat::from(1)).unwrap();
/// // Unpinned: node 9 may match either a-child.
/// assert!(is_prefix_of(&small, &big, &HashSet::new()));
/// // Pinned to id 9: no node of `big` carries id 9.
/// assert!(!is_prefix_of(&small, &big, &HashSet::from([Nid(9)])));
/// ```
pub fn is_prefix_of(small: &DataTree, big: &DataTree, pinned: &HashSet<Nid>) -> bool {
    let mut e = Embedder {
        small,
        big,
        pinned,
        memo: HashMap::new(),
    };
    let (sr, br) = (small.root(), big.root());
    e.can_embed(sr, br)
}

/// Prefix test ignoring node identifiers entirely ("up to node ids",
/// as in Theorem 3.6(ii)).
pub fn is_prefix_upto_ids(small: &DataTree, big: &DataTree) -> bool {
    is_prefix_of(small, big, &HashSet::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Alphabet;
    use iixml_values::Rat;

    fn setup() -> (Alphabet, DataTree) {
        let mut alpha = Alphabet::new();
        let r = alpha.intern("r");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        let x = t.add_child(t.root(), Nid(1), a, Rat::from(1)).unwrap();
        let y = t.add_child(t.root(), Nid(2), a, Rat::from(1)).unwrap();
        t.add_child(x, Nid(3), b, Rat::from(5)).unwrap();
        t.add_child(y, Nid(4), b, Rat::from(6)).unwrap();
        (alpha, t)
    }

    #[test]
    fn whole_tree_is_its_own_prefix() {
        let (_, t) = setup();
        let pinned: HashSet<Nid> = (0..5).map(Nid).collect();
        assert!(is_prefix_of(&t, &t, &pinned));
    }

    #[test]
    fn root_only_prefix() {
        let (mut alpha, t) = setup();
        let r = alpha.intern("r");
        let just_root = DataTree::new(Nid(0), r, Rat::ZERO);
        assert!(is_prefix_of(&just_root, &t, &HashSet::new()));
    }

    #[test]
    fn sibling_choice_requires_matching() {
        let (mut alpha, t) = setup();
        let r = alpha.intern("r");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        // Two a-children, one needing the b=5 grandchild and one b=6:
        // forces distinct targets (the matching finds it).
        let mut s = DataTree::new(Nid(0), r, Rat::ZERO);
        let p = s.add_child(s.root(), Nid(10), a, Rat::from(1)).unwrap();
        let q = s.add_child(s.root(), Nid(11), a, Rat::from(1)).unwrap();
        s.add_child(p, Nid(12), b, Rat::from(5)).unwrap();
        s.add_child(q, Nid(13), b, Rat::from(6)).unwrap();
        assert!(is_prefix_of(&s, &t, &HashSet::new()));
        // Three a-children cannot inject into two.
        let mut s3 = s.clone();
        s3.add_child(s3.root(), Nid(14), a, Rat::from(1)).unwrap();
        assert!(!is_prefix_of(&s3, &t, &HashSet::new()));
        // Two children both demanding b=5 compete for one target.
        let mut s2 = DataTree::new(Nid(0), r, Rat::ZERO);
        let p = s2.add_child(s2.root(), Nid(10), a, Rat::from(1)).unwrap();
        let q = s2.add_child(s2.root(), Nid(11), a, Rat::from(1)).unwrap();
        s2.add_child(p, Nid(12), b, Rat::from(5)).unwrap();
        s2.add_child(q, Nid(13), b, Rat::from(5)).unwrap();
        assert!(!is_prefix_of(&s2, &t, &HashSet::new()));
    }

    #[test]
    fn pinning_restricts_targets() {
        let (mut alpha, t) = setup();
        let r = alpha.intern("r");
        let a = alpha.intern("a");
        let b = alpha.intern("b");
        // Node 2 pinned: its child must be b=6, not b=5.
        let mut s = DataTree::new(Nid(0), r, Rat::ZERO);
        let x = s.add_child(s.root(), Nid(2), a, Rat::from(1)).unwrap();
        s.add_child(x, Nid(20), b, Rat::from(5)).unwrap();
        let pinned = HashSet::from([Nid(0), Nid(2)]);
        assert!(!is_prefix_of(&s, &t, &pinned));
        // Unpinned, the same shape embeds (maps to node 1).
        assert!(is_prefix_of(&s, &t, &HashSet::new()));
    }

    #[test]
    fn label_and_value_must_match() {
        let (mut alpha, t) = setup();
        let r = alpha.intern("r");
        let a = alpha.intern("a");
        let mut s = DataTree::new(Nid(0), r, Rat::ZERO);
        s.add_child(s.root(), Nid(1), a, Rat::from(99)).unwrap();
        assert!(!is_prefix_upto_ids(&s, &t));
        let c = alpha.intern("c");
        let mut s = DataTree::new(Nid(0), r, Rat::ZERO);
        s.add_child(s.root(), Nid(1), c, Rat::from(1)).unwrap();
        assert!(!is_prefix_upto_ids(&s, &t));
        // Root label mismatch.
        let s = DataTree::new(Nid(0), a, Rat::ZERO);
        assert!(!is_prefix_upto_ids(&s, &t));
    }
}
