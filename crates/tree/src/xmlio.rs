//! A minimal XML-ish serialization of data trees.
//!
//! The paper observes that its representations "can be itself naturally
//! represented and browsed as an XML document". This module writes data
//! trees as nested elements carrying `nid` and `val` attributes, and
//! parses the same syntax back:
//!
//! ```text
//! <catalog nid="0" val="0">
//!   <product nid="1" val="120"/>
//! </catalog>
//! ```
//!
//! Element names must be XML-name-like (`[A-Za-z_][A-Za-z0-9_.-]*`); this
//! is a deliberate simplification — the substrate only needs to round-trip
//! the paper's abstract model, not handle full XML.

use crate::label::Alphabet;
use crate::tree::{DataTree, Nid, NodeRef};
use iixml_values::Rat;
use std::fmt;

/// Serializes a tree to the XML-ish syntax.
pub fn write_tree(t: &DataTree, alpha: &Alphabet) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Writes straight into `out` — this sits on the journal's append
    // hot path (every logged refine spells its answer tree), so no
    // per-node temporaries.
    fn pad(out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
    }
    fn go(t: &DataTree, alpha: &Alphabet, n: NodeRef, depth: usize, out: &mut String) {
        pad(out, depth);
        let name = alpha.name(t.label(n));
        let _ = write!(out, "<{name} nid=\"{}\" val=\"{}\"", t.nid(n).0, t.value(n));
        if t.children(n).is_empty() {
            out.push_str("/>\n");
        } else {
            out.push_str(">\n");
            for &c in t.children(n) {
                go(t, alpha, c, depth + 1, out);
            }
            pad(out, depth);
            let _ = writeln!(out, "</{name}>");
        }
    }
    go(t, alpha, t.root(), 0, &mut out);
    out
}

/// Error from parsing the XML-ish syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, m: impl Into<String>) -> XmlError {
        XmlError {
            at: self.pos,
            message: m.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let t = self.rest().trim_start();
        self.pos = self.input.len() - t.len();
    }

    fn eat(&mut self, tok: &str) -> bool {
        if self.rest().starts_with(tok) {
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &str) -> Result<(), XmlError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{tok}'")))
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            let ok = if i == 0 {
                c.is_ascii_alphabetic() || c == '_'
            } else {
                c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-')
            };
            if !ok {
                break;
            }
            end = i + c.len_utf8();
        }
        if end == 0 {
            return Err(self.err("expected element name"));
        }
        self.pos += end;
        Ok(&rest[..end])
    }

    fn parse_attr(&mut self, key: &str) -> Result<&'a str, XmlError> {
        self.skip_ws();
        self.expect(key)?;
        self.expect("=")?;
        self.expect("\"")?;
        let rest = self.rest();
        let end = rest
            .find('"')
            .ok_or_else(|| self.err("unterminated attribute"))?;
        let v = &rest[..end];
        self.pos += end + 1;
        Ok(v)
    }

    fn parse_node_header(
        &mut self,
        alpha: &mut Alphabet,
    ) -> Result<(&'a str, Nid, Rat, bool), XmlError> {
        self.skip_ws();
        self.expect("<")?;
        let name = self.parse_name()?;
        alpha.intern(name);
        let nid = self
            .parse_attr("nid")?
            .parse::<u64>()
            .map_err(|e| self.err(format!("bad nid: {e}")))?;
        let val: Rat = self
            .parse_attr("val")?
            .parse()
            .map_err(|e| self.err(format!("bad val: {e}")))?;
        self.skip_ws();
        let self_closing = self.eat("/>");
        if !self_closing {
            self.expect(">")?;
        }
        Ok((name, Nid(nid), val, self_closing))
    }
}

/// Parses the XML-ish syntax into a tree, interning names into `alpha`.
pub fn parse_tree(input: &str, alpha: &mut Alphabet) -> Result<DataTree, XmlError> {
    let mut p = Parser { input, pos: 0 };
    let (name, nid, val, closed) = p.parse_node_header(alpha)?;
    let label = alpha.intern(name);
    let mut tree = DataTree::new(nid, label, val);
    if !closed {
        let root = tree.root();
        parse_children(&mut p, alpha, &mut tree, root, name)?;
    }
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(p.err("trailing input"));
    }
    Ok(tree)
}

fn parse_children(
    p: &mut Parser,
    alpha: &mut Alphabet,
    tree: &mut DataTree,
    parent: NodeRef,
    parent_name: &str,
) -> Result<(), XmlError> {
    loop {
        p.skip_ws();
        if p.eat("</") {
            let name = p.parse_name()?;
            if name != parent_name {
                return Err(p.err(format!(
                    "mismatched close tag: expected {parent_name}, got {name}"
                )));
            }
            p.skip_ws();
            p.expect(">")?;
            return Ok(());
        }
        let (name, nid, val, closed) = p.parse_node_header(alpha)?;
        let label = alpha.intern(name);
        let child = tree
            .add_child(parent, nid, label, val)
            .map_err(|e| p.err(e.to_string()))?;
        if !closed {
            parse_children(p, alpha, tree, child, name)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Alphabet, DataTree) {
        let mut alpha = Alphabet::new();
        let cat = alpha.intern("catalog");
        let prod = alpha.intern("product");
        let price = alpha.intern("price");
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        let p = t.add_child(t.root(), Nid(1), prod, Rat::ZERO).unwrap();
        t.add_child(p, Nid(2), price, Rat::new(399, 2)).unwrap();
        t.add_child(t.root(), Nid(3), prod, Rat::from(7)).unwrap();
        (alpha, t)
    }

    #[test]
    fn roundtrip() {
        let (mut alpha, t) = sample();
        let text = write_tree(&t, &alpha);
        let back = parse_tree(&text, &mut alpha).unwrap();
        assert!(t.same_tree(&back));
    }

    #[test]
    fn written_form_looks_like_xml() {
        let (alpha, t) = sample();
        let text = write_tree(&t, &alpha);
        assert!(text.starts_with("<catalog nid=\"0\" val=\"0\">"));
        assert!(text.contains("<price nid=\"2\" val=\"399/2\"/>"));
        assert!(text.trim_end().ends_with("</catalog>"));
    }

    #[test]
    fn parse_fresh_alphabet() {
        let (alpha, t) = sample();
        let text = write_tree(&t, &alpha);
        let mut fresh = Alphabet::new();
        let back = parse_tree(&text, &mut fresh).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(fresh.len(), 3);
    }

    #[test]
    fn errors() {
        let mut a = Alphabet::new();
        assert!(parse_tree("", &mut a).is_err());
        assert!(parse_tree("<a nid=\"0\" val=\"0\">", &mut a).is_err());
        assert!(parse_tree("<a nid=\"0\" val=\"0\"></b>", &mut a).is_err());
        assert!(parse_tree("<a nid=\"x\" val=\"0\"/>", &mut a).is_err());
        assert!(parse_tree("<a nid=\"0\" val=\"y\"/>", &mut a).is_err());
        assert!(parse_tree("<a nid=\"0\" val=\"0\"/><b nid=\"1\" val=\"0\"/>", &mut a).is_err());
        // Duplicate nid.
        let bad = "<a nid=\"0\" val=\"0\"><b nid=\"0\" val=\"0\"/></a>";
        assert!(parse_tree(bad, &mut a).is_err());
    }
}
