//! Max-flow (Dinic) and circulation-with-lower-bounds.
//!
//! Deciding whether a multiset of children can be assigned to the symbols
//! of a multiplicity atom — one symbol per child, with per-symbol counts
//! in `[lo, hi]` where `lo = 1` for `1`/`+` and `hi = 1` for `1`/`?` — is
//! a circulation-feasibility problem with lower bounds. This module
//! provides the generic solver; `iixml-core` uses it for exact membership
//! tests of data trees in `rep(T)`.

/// A directed flow network under construction.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    n: usize,
    // Edge arrays (paired: edge 2k and 2k+1 are an arc and its reverse).
    to: Vec<usize>,
    cap: Vec<i64>,
    head: Vec<Vec<usize>>,
}

/// Handle to an added edge, usable to query residual flow after solving.
#[derive(Clone, Copy, Debug)]
pub struct EdgeId(usize);

impl FlowNetwork {
    /// Creates a network with `n` vertices and no edges.
    pub fn new(n: usize) -> FlowNetwork {
        FlowNetwork {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Adds a directed edge `u -> v` with the given capacity.
    pub fn add_edge(&mut self, u: usize, v: usize, capacity: i64) -> EdgeId {
        debug_assert!(u < self.n && v < self.n && capacity >= 0);
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(capacity);
        self.head[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(id + 1);
        EdgeId(id)
    }

    /// The amount of flow pushed through an edge after [`max_flow`].
    ///
    /// [`max_flow`]: FlowNetwork::max_flow
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        self.cap[e.0 + 1]
    }

    /// Computes the maximum `s -> t` flow (Dinic's algorithm), mutating
    /// the residual capacities in place.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        let mut total = 0;
        loop {
            // BFS level graph.
            let mut level = vec![usize::MAX; self.n];
            level[s] = 0;
            let mut q = std::collections::VecDeque::from([s]);
            while let Some(u) = q.pop_front() {
                for &e in &self.head[u] {
                    let v = self.to[e];
                    if self.cap[e] > 0 && level[v] == usize::MAX {
                        level[v] = level[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            if level[t] == usize::MAX {
                return total;
            }
            // DFS blocking flow with iteration pointers.
            let mut it = vec![0usize; self.n];
            loop {
                let pushed = self.dfs(s, t, i64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
    }

    fn dfs(&mut self, u: usize, t: usize, limit: i64, level: &[usize], it: &mut [usize]) -> i64 {
        if u == t {
            return limit;
        }
        while it[u] < self.head[u].len() {
            let e = self.head[u][it[u]];
            let v = self.to[e];
            if self.cap[e] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[e]), level, it);
                if pushed > 0 {
                    self.cap[e] -= pushed;
                    self.cap[e ^ 1] += pushed;
                    return pushed;
                }
            }
            it[u] += 1;
        }
        0
    }
}

/// A circulation problem: edges with lower bounds and capacities.
#[derive(Clone, Debug, Default)]
pub struct Circulation {
    n: usize,
    edges: Vec<(usize, usize, i64, i64)>, // (u, v, lo, hi)
}

impl Circulation {
    /// Creates a circulation problem on `n` vertices.
    pub fn new(n: usize) -> Circulation {
        Circulation {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an arc `u -> v` with flow required in `[lo, hi]`.
    pub fn add_edge(&mut self, u: usize, v: usize, lo: i64, hi: i64) {
        debug_assert!(lo >= 0 && lo <= hi);
        self.edges.push((u, v, lo, hi));
    }

    /// Is there a feasible circulation meeting every bound?
    ///
    /// Uses the standard reduction: each lower bound `l` on `u -> v`
    /// becomes demand `l` at `v` and supply `l` at `u`, served by a
    /// super-source/sink; feasible iff the super-source saturates.
    pub fn feasible(&self) -> bool {
        let ss = self.n;
        let tt = self.n + 1;
        let mut net = FlowNetwork::new(self.n + 2);
        let mut demand = vec![0i64; self.n];
        for &(u, v, lo, hi) in &self.edges {
            net.add_edge(u, v, hi - lo);
            demand[u] -= lo;
            demand[v] += lo;
        }
        let mut need = 0;
        for (v, &d) in demand.iter().enumerate() {
            if d > 0 {
                net.add_edge(ss, v, d);
                need += d;
            } else if d < 0 {
                net.add_edge(v, tt, -d);
            }
        }
        net.max_flow(ss, tt) == need
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_max_flow() {
        // s=0, t=3; two disjoint unit paths.
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 1);
        n.add_edge(1, 3, 1);
        n.add_edge(0, 2, 1);
        n.add_edge(2, 3, 1);
        assert_eq!(n.max_flow(0, 3), 2);
    }

    #[test]
    fn bottleneck() {
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 10);
        n.add_edge(1, 2, 3);
        n.add_edge(2, 3, 10);
        assert_eq!(n.max_flow(0, 3), 3);
    }

    #[test]
    fn needs_residual_push_back() {
        // Classic diamond where naive augmenting over-commits.
        let mut n = FlowNetwork::new(4);
        n.add_edge(0, 1, 1);
        n.add_edge(0, 2, 1);
        n.add_edge(1, 2, 1);
        n.add_edge(1, 3, 1);
        n.add_edge(2, 3, 1);
        assert_eq!(n.max_flow(0, 3), 2);
    }

    #[test]
    fn flow_on_reports_per_edge_flow() {
        let mut n = FlowNetwork::new(3);
        let e = n.add_edge(0, 1, 5);
        n.add_edge(1, 2, 3);
        assert_eq!(n.max_flow(0, 2), 3);
        assert_eq!(n.flow_on(e), 3);
    }

    #[test]
    fn circulation_feasibility() {
        // Triangle with lower bound forcing flow around the cycle.
        let mut c = Circulation::new(3);
        c.add_edge(0, 1, 1, 2);
        c.add_edge(1, 2, 0, 2);
        c.add_edge(2, 0, 0, 2);
        assert!(c.feasible());
        // Lower bound that cannot return: infeasible.
        let mut c = Circulation::new(3);
        c.add_edge(0, 1, 1, 2);
        c.add_edge(1, 2, 0, 2);
        // no edge back to 0
        assert!(!c.feasible());
    }

    #[test]
    fn children_assignment_example() {
        // Atom a^1 b^* with children {feasible: a|b, b}. Encode:
        // source(0) -> child1(1), child2(2) [lo=hi=1]
        // child -> symbol a(3) / b(4); a -> sink lo1 hi1; b -> sink 0..inf
        // sink(5) -> source ∞.
        let mut c = Circulation::new(6);
        c.add_edge(0, 1, 1, 1);
        c.add_edge(0, 2, 1, 1);
        c.add_edge(1, 3, 0, 1); // child1 can be a
        c.add_edge(1, 4, 0, 1); // child1 can be b
        c.add_edge(2, 4, 0, 1); // child2 only b
        c.add_edge(3, 5, 1, 1); // a: exactly one
        c.add_edge(4, 5, 0, 10); // b: star
        c.add_edge(5, 0, 0, 10);
        assert!(c.feasible());
        // Remove child1's ability to be `a`: `a` lower bound now unmet.
        let mut c = Circulation::new(6);
        c.add_edge(0, 1, 1, 1);
        c.add_edge(0, 2, 1, 1);
        c.add_edge(1, 4, 0, 1);
        c.add_edge(2, 4, 0, 1);
        c.add_edge(3, 5, 1, 1);
        c.add_edge(4, 5, 0, 10);
        c.add_edge(5, 0, 0, 10);
        assert!(!c.feasible());
    }
}
