//! Data trees (Definition 2.1): finite rooted unordered trees whose nodes
//! carry a label from Σ, a data value from `Q`, and a *persistent node
//! identifier* from the infinite set `N`.

use crate::label::{Alphabet, Label};
use iixml_values::Rat;
use std::collections::HashMap;
use std::fmt;

/// A persistent node identifier (an element of the paper's infinite node
/// set `N`).
///
/// Identifiers are global: the answer `q(T)` of a ps-query re-uses the ids
/// of the matched source nodes (Remark 2.4), which is what allows
/// information from consecutive queries to be merged.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Nid(pub u64);

impl fmt::Display for Nid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A deterministic generator of fresh [`Nid`]s.
#[derive(Clone, Debug, Default)]
pub struct NidGen {
    next: u64,
}

impl NidGen {
    /// A generator starting at id 0.
    pub fn new() -> NidGen {
        NidGen::default()
    }

    /// A generator starting at the given id.
    pub fn starting_at(next: u64) -> NidGen {
        NidGen { next }
    }

    /// Produces a fresh identifier.
    pub fn fresh(&mut self) -> Nid {
        let n = Nid(self.next);
        self.next += 1;
        n
    }
}

/// An index into a [`DataTree`]'s node arena. Only meaningful for the tree
/// that produced it; persistent identity across trees is [`Nid`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeRef(pub u32);

impl NodeRef {
    fn ix(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct NodeData {
    nid: Nid,
    label: Label,
    value: Rat,
    parent: Option<NodeRef>,
    children: Vec<NodeRef>,
}

/// A data tree: an arena of nodes with a designated root.
///
/// Children are stored in insertion order but the tree is semantically
/// *unordered* (the paper's simplification); all comparisons
/// ([`DataTree::same_tree`], [`DataTree::isomorphic`]) and the prefix
/// relation are order-insensitive.
///
/// ```
/// use iixml_tree::{Alphabet, DataTree, Nid};
/// use iixml_values::Rat;
/// let mut alpha = Alphabet::new();
/// let cat = alpha.intern("catalog");
/// let prod = alpha.intern("product");
/// let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
/// let p = t.add_child(t.root(), Nid(1), prod, Rat::from(7)).unwrap();
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.label(p), prod);
/// assert_eq!(t.parent(p), Some(t.root()));
/// ```
#[derive(Clone, Debug)]
pub struct DataTree {
    nodes: Vec<NodeData>,
    root: NodeRef,
    by_nid: HashMap<Nid, NodeRef>,
}

/// Errors from tree construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A node with this id already exists in the tree.
    DuplicateNid(Nid),
    /// The referenced parent does not exist.
    BadParent(NodeRef),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::DuplicateNid(n) => write!(f, "duplicate node id {n}"),
            TreeError::BadParent(p) => write!(f, "invalid parent reference {p:?}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl DataTree {
    /// Creates a tree consisting of a single root node.
    pub fn new(nid: Nid, label: Label, value: Rat) -> DataTree {
        let root = NodeRef(0);
        let mut by_nid = HashMap::new();
        by_nid.insert(nid, root);
        DataTree {
            nodes: vec![NodeData {
                nid,
                label,
                value,
                parent: None,
                children: Vec::new(),
            }],
            root,
            by_nid,
        }
    }

    /// Adds a child under `parent` and returns its reference.
    pub fn add_child(
        &mut self,
        parent: NodeRef,
        nid: Nid,
        label: Label,
        value: Rat,
    ) -> Result<NodeRef, TreeError> {
        if parent.ix() >= self.nodes.len() {
            return Err(TreeError::BadParent(parent));
        }
        if self.by_nid.contains_key(&nid) {
            return Err(TreeError::DuplicateNid(nid));
        }
        let r = NodeRef(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            nid,
            label,
            value,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.ix()].children.push(r);
        self.by_nid.insert(nid, r);
        Ok(r)
    }

    /// The root reference.
    pub fn root(&self) -> NodeRef {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false: trees have at least a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The persistent id of a node.
    pub fn nid(&self, n: NodeRef) -> Nid {
        self.nodes[n.ix()].nid
    }

    /// The label of a node.
    pub fn label(&self, n: NodeRef) -> Label {
        self.nodes[n.ix()].label
    }

    /// The data value of a node.
    pub fn value(&self, n: NodeRef) -> Rat {
        self.nodes[n.ix()].value
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, n: NodeRef) -> Option<NodeRef> {
        self.nodes[n.ix()].parent
    }

    /// The children of a node.
    pub fn children(&self, n: NodeRef) -> &[NodeRef] {
        &self.nodes[n.ix()].children
    }

    /// Looks up a node by persistent id.
    pub fn by_nid(&self, nid: Nid) -> Option<NodeRef> {
        self.by_nid.get(&nid).copied()
    }

    /// Overwrites a node's label (used when instantiating witnesses of
    /// incomplete trees, where data-node symbols carry their label
    /// out-of-band).
    pub fn set_label(&mut self, n: NodeRef, label: Label) {
        self.nodes[n.ix()].label = label;
    }

    /// Overwrites a node's data value.
    pub fn set_value(&mut self, n: NodeRef, value: Rat) {
        self.nodes[n.ix()].value = value;
    }

    /// All node references in preorder (root first).
    pub fn preorder(&self) -> Vec<NodeRef> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Reverse keeps left-to-right insertion order in the output.
            stack.extend(self.children(n).iter().rev());
        }
        out
    }

    /// The depth of the tree (root alone = 1).
    pub fn depth(&self) -> usize {
        fn go(t: &DataTree, n: NodeRef) -> usize {
            1 + t.children(n).iter().map(|&c| go(t, c)).max().unwrap_or(0)
        }
        go(self, self.root)
    }

    /// Depth of a node below the root (root = 0).
    pub fn node_depth(&self, mut n: NodeRef) -> usize {
        let mut d = 0;
        while let Some(p) = self.parent(n) {
            d += 1;
            n = p;
        }
        d
    }

    /// Extracts the subtree rooted at `n` as a standalone tree (preserving
    /// node ids). Used by local queries `p@n` (Section 3.4).
    pub fn subtree(&self, n: NodeRef) -> DataTree {
        let mut out = DataTree::new(self.nid(n), self.label(n), self.value(n));
        fn copy(src: &DataTree, s: NodeRef, dst: &mut DataTree, d: NodeRef) {
            for &c in src.children(s) {
                let nc = dst
                    .add_child(d, src.nid(c), src.label(c), src.value(c))
                    .expect("source tree has unique nids");
                copy(src, c, dst, nc);
            }
        }
        let out_root = out.root();
        copy(self, n, &mut out, out_root);
        out
    }

    /// Grafts `other` as children of the node with the same root id in
    /// `self`, merging nodes that share ids. Used when a mediator extends
    /// a partial answer with the answers to local queries.
    ///
    /// Returns an error if `other`'s root id is absent from `self`, or if
    /// a shared node disagrees on label or value.
    pub fn graft(&mut self, other: &DataTree) -> Result<(), String> {
        let target = self
            .by_nid(other.nid(other.root()))
            .ok_or_else(|| format!("graft root {} not present", other.nid(other.root())))?;
        self.merge_children(target, other, other.root())
    }

    fn merge_children(
        &mut self,
        here: NodeRef,
        other: &DataTree,
        there: NodeRef,
    ) -> Result<(), String> {
        for &oc in other.children(there) {
            let nid = other.nid(oc);
            let child = match self.by_nid(nid) {
                Some(existing) => {
                    if self.label(existing) != other.label(oc)
                        || self.value(existing) != other.value(oc)
                    {
                        return Err(format!("node {nid} disagrees between trees"));
                    }
                    existing
                }
                None => self
                    .add_child(here, nid, other.label(oc), other.value(oc))
                    .map_err(|e| e.to_string())?,
            };
            self.merge_children(child, other, oc)?;
        }
        Ok(())
    }

    /// A canonical string key for the subtree at `n`: two subtrees have
    /// equal keys iff they are equal as unordered trees *including node
    /// ids*.
    pub fn canonical_key(&self, n: NodeRef) -> String {
        let mut kids: Vec<String> = self
            .children(n)
            .iter()
            .map(|&c| self.canonical_key(c))
            .collect();
        kids.sort();
        format!(
            "({}:{}:{}[{}])",
            self.nid(n),
            self.label(n).0,
            self.value(n),
            kids.join(",")
        )
    }

    /// Like [`DataTree::canonical_key`] but ignoring node ids (for
    /// comparisons "up to node identifiers", Theorem 3.6(ii)).
    pub fn shape_key(&self, n: NodeRef) -> String {
        let mut kids: Vec<String> = self
            .children(n)
            .iter()
            .map(|&c| self.shape_key(c))
            .collect();
        kids.sort();
        format!(
            "({}:{}[{}])",
            self.label(n).0,
            self.value(n),
            kids.join(",")
        )
    }

    /// Equality as unordered trees with node ids.
    pub fn same_tree(&self, other: &DataTree) -> bool {
        self.len() == other.len()
            && self.canonical_key(self.root()) == other.canonical_key(other.root())
    }

    /// Equality as unordered trees up to node ids.
    pub fn isomorphic(&self, other: &DataTree) -> bool {
        self.len() == other.len() && self.shape_key(self.root()) == other.shape_key(other.root())
    }

    /// Pretty-prints the tree with names from `alpha`, one node per line,
    /// indented by depth.
    pub fn display<'a>(&'a self, alpha: &'a Alphabet) -> DisplayTree<'a> {
        DisplayTree { tree: self, alpha }
    }
}

/// Helper returned by [`DataTree::display`].
pub struct DisplayTree<'a> {
    tree: &'a DataTree,
    alpha: &'a Alphabet,
}

impl fmt::Display for DisplayTree<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(
            t: &DataTree,
            alpha: &Alphabet,
            n: NodeRef,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            writeln!(
                f,
                "{:indent$}{} {} = {}",
                "",
                alpha.name(t.label(n)),
                t.nid(n),
                t.value(n),
                indent = depth * 2
            )?;
            for &c in t.children(n) {
                go(t, alpha, c, depth + 1, f)?;
            }
            Ok(())
        }
        go(self.tree, self.alpha, self.tree.root(), 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alpha() -> (Alphabet, Label, Label, Label) {
        let mut a = Alphabet::new();
        let r = a.intern("root");
        let x = a.intern("x");
        let y = a.intern("y");
        (a, r, x, y)
    }

    #[test]
    fn build_and_navigate() {
        let (_, r, x, y) = alpha();
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        let a = t.add_child(t.root(), Nid(1), x, Rat::from(1)).unwrap();
        let b = t.add_child(t.root(), Nid(2), y, Rat::from(2)).unwrap();
        let c = t.add_child(a, Nid(3), y, Rat::from(3)).unwrap();
        assert_eq!(t.len(), 4);
        assert_eq!(t.children(t.root()), &[a, b]);
        assert_eq!(t.parent(c), Some(a));
        assert_eq!(t.node_depth(c), 2);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.by_nid(Nid(3)), Some(c));
        assert_eq!(t.by_nid(Nid(9)), None);
        assert_eq!(t.preorder().len(), 4);
        assert_eq!(t.preorder()[0], t.root());
    }

    #[test]
    fn duplicate_nid_rejected() {
        let (_, r, x, _) = alpha();
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        assert_eq!(
            t.add_child(t.root(), Nid(0), x, Rat::ZERO),
            Err(TreeError::DuplicateNid(Nid(0)))
        );
    }

    #[test]
    fn unordered_equality() {
        let (_, r, x, y) = alpha();
        let mut t1 = DataTree::new(Nid(0), r, Rat::ZERO);
        t1.add_child(t1.root(), Nid(1), x, Rat::from(1)).unwrap();
        t1.add_child(t1.root(), Nid(2), y, Rat::from(2)).unwrap();
        let mut t2 = DataTree::new(Nid(0), r, Rat::ZERO);
        t2.add_child(t2.root(), Nid(2), y, Rat::from(2)).unwrap();
        t2.add_child(t2.root(), Nid(1), x, Rat::from(1)).unwrap();
        assert!(t1.same_tree(&t2));
        assert!(t1.isomorphic(&t2));
        // Different ids, same shape: isomorphic but not same_tree.
        let mut t3 = DataTree::new(Nid(7), r, Rat::ZERO);
        t3.add_child(t3.root(), Nid(8), x, Rat::from(1)).unwrap();
        t3.add_child(t3.root(), Nid(9), y, Rat::from(2)).unwrap();
        assert!(!t1.same_tree(&t3));
        assert!(t1.isomorphic(&t3));
        // Different value: neither.
        let mut t4 = DataTree::new(Nid(0), r, Rat::ZERO);
        t4.add_child(t4.root(), Nid(1), x, Rat::from(5)).unwrap();
        t4.add_child(t4.root(), Nid(2), y, Rat::from(2)).unwrap();
        assert!(!t1.same_tree(&t4));
        assert!(!t1.isomorphic(&t4));
    }

    #[test]
    fn subtree_extraction() {
        let (_, r, x, y) = alpha();
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        let a = t.add_child(t.root(), Nid(1), x, Rat::from(1)).unwrap();
        t.add_child(a, Nid(2), y, Rat::from(2)).unwrap();
        t.add_child(t.root(), Nid(3), y, Rat::from(3)).unwrap();
        let s = t.subtree(a);
        assert_eq!(s.len(), 2);
        assert_eq!(s.nid(s.root()), Nid(1));
        assert_eq!(s.children(s.root()).len(), 1);
    }

    #[test]
    fn graft_merges_shared_nodes() {
        let (_, r, x, y) = alpha();
        let mut base = DataTree::new(Nid(0), r, Rat::ZERO);
        let a = base
            .add_child(base.root(), Nid(1), x, Rat::from(1))
            .unwrap();
        // `extra` is a subtree rooted at the node with id 1, adding a new
        // child under it.
        let mut extra = DataTree::new(Nid(1), x, Rat::from(1));
        extra
            .add_child(extra.root(), Nid(5), y, Rat::from(9))
            .unwrap();
        base.graft(&extra).unwrap();
        assert_eq!(base.len(), 3);
        assert_eq!(base.children(a).len(), 1);
        // Grafting again is idempotent (node 5 already merged).
        base.graft(&extra).unwrap();
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn graft_rejects_conflicts() {
        let (_, r, x, _) = alpha();
        let mut base = DataTree::new(Nid(0), r, Rat::ZERO);
        base.add_child(base.root(), Nid(1), x, Rat::from(1))
            .unwrap();
        // Conflicting value for node 1's child id reused as root? Root id
        // 9 absent entirely:
        let stray = DataTree::new(Nid(9), x, Rat::from(1));
        assert!(base.graft(&stray).is_err());
        // Value conflict on shared node id.
        let mut conflict = DataTree::new(Nid(0), r, Rat::ZERO);
        conflict
            .add_child(conflict.root(), Nid(1), x, Rat::from(42))
            .unwrap();
        assert!(base.graft(&conflict).is_err());
    }

    #[test]
    fn nid_gen_is_sequential() {
        let mut g = NidGen::new();
        assert_eq!(g.fresh(), Nid(0));
        assert_eq!(g.fresh(), Nid(1));
        let mut g = NidGen::starting_at(100);
        assert_eq!(g.fresh(), Nid(100));
    }

    #[test]
    fn display_is_indented() {
        let (a, r, x, _) = alpha();
        let mut t = DataTree::new(Nid(0), r, Rat::ZERO);
        t.add_child(t.root(), Nid(1), x, Rat::from(1)).unwrap();
        let s = t.display(&a).to_string();
        assert!(s.contains("root n0 = 0"));
        assert!(s.contains("  x n1 = 1"));
    }
}
