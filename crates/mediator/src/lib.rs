#![warn(missing_docs)]

//! Guiding mediators (Section 3.4) and the size heuristics of
//! Section 3.2.
//!
//! When a query cannot be fully answered from the incomplete tree, the
//! mediator generates *local queries* `p@n` — ps-queries evaluated at
//! already-known nodes of the data tree — that fetch exactly the missing
//! information:
//!
//! * [`Mediator::complete`] implements the non-redundant completion of
//!   Theorem 3.19: the returned local queries avoid re-fetching known
//!   nodes, never overlap, and never certainly return empty answers.
//! * [`Completion::execute`] runs the local queries against a live
//!   source and grafts the answers into the known data tree, after which
//!   the original query is answerable locally.
//! * [`auxiliary_queries`] implements Proposition 3.13: the path queries
//!   that, when asked alongside each user query, keep Algorithm Refine's
//!   incomplete tree polynomial in the whole query-answer sequence.
//! * [`relax_label`] / [`relax`] implement the "graceful information
//!   loss" heuristic: merge the specializations of a label, trading
//!   precision (the result's `rep` is a superset) for size.

use iixml_core::{
    match_sets, ConditionalTreeType, Disjunction, IncompleteTree, SAtom, Sym, SymTarget,
};
use iixml_query::{PsQuery, QNodeRef};
use iixml_tree::{DataTree, Label, Mult, Nid};
use iixml_values::IntervalSet;
use std::collections::HashMap;
use std::fmt;

/// Failure executing a completion against a source (typed replacement
/// for the former bare-`String` errors, so the webhouse loop can react
/// per cause instead of aborting wholesale).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompletionError {
    /// A local query's anchor node is absent from the source — the
    /// signature of a source updated after the anchor was learned.
    MissingAnchor(Nid),
    /// An answer could not be merged into the known data tree (a shared
    /// node disagreed on label or value, or the answer's root is not a
    /// known node).
    Graft {
        /// Human-readable description from [`DataTree::graft`].
        reason: String,
    },
}

impl fmt::Display for CompletionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompletionError::MissingAnchor(n) => write!(f, "anchor {n} not in source"),
            CompletionError::Graft { reason } => write!(f, "graft failed: {reason}"),
        }
    }
}

impl std::error::Error for CompletionError {}

/// A local query `p@n`: evaluate `p` on the subtree of the source rooted
/// at the (already known) node `n`; `at = None` addresses the document
/// root when no data nodes are known yet.
#[derive(Clone, Debug)]
pub struct LocalQuery {
    /// The ps-query to ask.
    pub query: PsQuery,
    /// The anchor node (`None` = document root).
    pub at: Option<Nid>,
}

/// A set of local queries completing an incomplete tree relative to a
/// query (Theorem 3.19).
#[derive(Clone, Debug, Default)]
pub struct Completion {
    /// The local queries, in root-to-leaf generation order.
    pub queries: Vec<LocalQuery>,
}

impl Completion {
    /// Is the known information already sufficient (no queries needed)?
    pub fn is_complete(&self) -> bool {
        self.queries.is_empty()
    }

    /// Executes the completion against a live source document: evaluates
    /// each local query and grafts its answer into `known` (the data
    /// tree accumulated so far). After execution, `q(known) = q(source)`
    /// for the query the completion was generated for. Returns the total
    /// number of answer nodes shipped by the source.
    ///
    /// Execution is transactional: on error, `known` is left exactly as
    /// it was — a failed completion never leaves a half-grafted tree
    /// behind (the fault-model contract of the webhouse loop).
    pub fn execute(
        &self,
        source: &DataTree,
        known: &mut DataTree,
    ) -> Result<usize, CompletionError> {
        /// Wall time of executing a completion against a source.
        static OBS_EXECUTE_NS: iixml_obs::LazyHistogram =
            iixml_obs::LazyHistogram::new(iixml_obs::keys::MEDIATOR_EXECUTE_NS);
        /// Answer nodes shipped by sources, across all executions.
        static OBS_SHIPPED: iixml_obs::LazyCounter =
            iixml_obs::LazyCounter::new(iixml_obs::keys::MEDIATOR_SHIPPED_NODES);
        /// Local queries sent to sources.
        static OBS_LOCAL_QUERIES: iixml_obs::LazyCounter =
            iixml_obs::LazyCounter::new(iixml_obs::keys::MEDIATOR_LOCAL_QUERIES);

        let _span = OBS_EXECUTE_NS.time();
        OBS_LOCAL_QUERIES.add(self.queries.len() as u64);
        // Evaluations are independent reads of the source (the queries
        // of a completion are non-redundant, each asking for a distinct
        // missing piece), so they fan out one task per query. Grafting
        // stays sequential in generation order: grafts are root-to-leaf
        // dependent, and sequential application keeps the result (and
        // the first error surfaced) identical at any thread count.
        let answers = iixml_par::par_map_ref(&self.queries, 1, |lq| match lq.at {
            None => Ok(lq.query.eval(source)),
            Some(n) => lq
                .query
                .eval_at(source, n)
                .ok_or(CompletionError::MissingAnchor(n)),
        });
        let mut shipped = 0;
        let mut scratch = known.clone();
        for answer in answers {
            let answer = answer?;
            shipped += answer.len();
            if let Some(t) = answer.tree {
                scratch
                    .graft(&t)
                    .map_err(|e| CompletionError::Graft { reason: e })?;
            }
        }
        *known = scratch;
        OBS_SHIPPED.add(shipped as u64);
        Ok(shipped)
    }
}

/// Generates non-redundant completions (Theorem 3.19).
pub struct Mediator<'a> {
    it: &'a IncompleteTree,
}

impl<'a> Mediator<'a> {
    /// Wraps a (reachable) incomplete tree.
    pub fn new(it: &'a IncompleteTree) -> Mediator<'a> {
        Mediator { it }
    }

    /// Computes a non-redundant set of local queries whose answers allow
    /// `q` to be fully answered (Theorem 3.19, PTIME).
    ///
    /// The procedure descends the query pattern alongside the data tree:
    /// a child subquery that can only be answered by *instantiated*
    /// nodes recurses into them; a child subquery whose answer may
    /// involve *missing* information is kept in a pruned local query
    /// anchored at the current node.
    pub fn complete(&self, q: &PsQuery) -> Completion {
        /// Wall time of completion generation (Theorem 3.19 descent).
        static OBS_COMPLETE_NS: iixml_obs::LazyHistogram =
            iixml_obs::LazyHistogram::new(iixml_obs::keys::MEDIATOR_COMPLETE_NS);
        let _span = OBS_COMPLETE_NS.time();
        let trimmed = self.it.trim();
        let sets = match_sets(&trimmed, q);
        let mut out = Completion::default();
        let Some(td) = trimmed.data_tree() else {
            // Nothing known yet: ask the whole query at the root
            // (unless it certainly answers empty).
            let any_poss = trimmed
                .ty()
                .roots()
                .iter()
                .any(|r| sets.poss[&q.root()][r.ix()]);
            if any_poss {
                out.queries.push(LocalQuery {
                    query: q.clone(),
                    at: None,
                });
            }
            return out;
        };
        // Root must possibly match the known root.
        let root_nid = td.nid(td.root());
        let root_syms = self.syms_of(&trimmed, root_nid);
        if !root_syms.iter().any(|s| sets.poss[&q.root()][s.ix()]) {
            return out; // certainly empty answer: nothing to fetch
        }
        self.descend(&trimmed, &td, q, q.root(), root_nid, &sets, &mut out);
        out
    }

    /// Symbols targeting a given data node.
    fn syms_of(&self, it: &IncompleteTree, n: Nid) -> Vec<Sym> {
        it.ty()
            .syms()
            .filter(|&s| matches!(it.ty().info(s).target, SymTarget::Node(m) if m == n))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn descend(
        &self,
        it: &IncompleteTree,
        td: &DataTree,
        q: &PsQuery,
        m: QNodeRef,
        at: Nid,
        sets: &iixml_core::MatchSets,
        out: &mut Completion,
    ) {
        let kids = q.children(m);
        if kids.is_empty() {
            // A barred leaf extracts the whole subtree: if missing
            // content is possible below, fetch it.
            if q.barred(m) && self.missing_possible_below(it, at) {
                out.queries.push(LocalQuery {
                    query: q.subquery(m),
                    at: Some(at),
                });
            }
            return;
        }
        let node_syms = self.syms_of(it, at);
        // C: children whose answer may come from missing information
        // under `at`.
        let mut c_set: Vec<QNodeRef> = Vec::new();
        for &mi in kids {
            let from_missing = node_syms.iter().any(|&s| {
                it.ty().mu(s).atoms().iter().any(|a| {
                    a.entries().iter().any(|&(c, _)| {
                        !matches!(it.ty().info(c).target, SymTarget::Node(_))
                            && sets.poss[&mi][c.ix()]
                    })
                })
            });
            if from_missing {
                c_set.push(mi);
            }
        }
        if !c_set.is_empty() {
            out.queries.push(LocalQuery {
                query: q.subquery_restricted(m, &c_set),
                at: Some(at),
            });
        }
        // Children answerable only through instantiated nodes: recurse
        // into each data child whose type possibly matches. An anchor
        // absent from the data tree (caller passed knowledge that has
        // drifted from `td`) simply has no data children to descend
        // into; the executor reports `MissingAnchor` when the local
        // query above runs, so nothing is silently lost here.
        let Some(at_ref) = td.by_nid(at) else {
            return;
        };
        for &mi in kids {
            if c_set.contains(&mi) {
                continue;
            }
            for &child in td.children(at_ref) {
                let child_nid = td.nid(child);
                let child_syms = self.syms_of(it, child_nid);
                if child_syms.iter().any(|&s| sets.poss[&mi][s.ix()]) {
                    self.descend(it, td, q, mi, child_nid, sets, out);
                }
            }
        }
    }

    /// Can the subtree below a data node still contain unknown nodes?
    fn missing_possible_below(&self, it: &IncompleteTree, n: Nid) -> bool {
        // BFS through symbols reachable below n's symbols; any
        // label-targeted symbol reachable means unknown content.
        let mut stack: Vec<Sym> = self.syms_of(it, n);
        let mut seen: Vec<bool> = vec![false; it.ty().sym_count()];
        while let Some(s) = stack.pop() {
            if seen[s.ix()] {
                continue;
            }
            seen[s.ix()] = true;
            for atom in it.ty().mu(s).atoms() {
                for &(c, _) in atom.entries() {
                    if matches!(it.ty().info(c).target, SymTarget::Lab(_)) {
                        return true;
                    }
                    if !seen[c.ix()] {
                        stack.push(c);
                    }
                }
            }
        }
        false
    }
}

/// The auxiliary queries of Proposition 3.13 for a user query `q`: for
/// every pattern node `m`, the root-to-`m` path with all conditions
/// cleared, parents before children. Asking these alongside each user
/// query keeps the refined incomplete tree polynomial in the whole
/// sequence (all answer nodes become instantiated, so no `τ̄`/`τ̂`
/// case analysis accumulates).
pub fn auxiliary_queries(q: &PsQuery) -> Vec<PsQuery> {
    q.preorder().iter().map(|&m| q.path_to(m)).collect()
}

/// Merges all label-targeted specializations of `label` into a single
/// symbol whose condition is the union of the originals and whose µ is
/// the union of their disjunctions — the "gracefully lose information"
/// heuristic of Section 3.2. The result's `rep` is a superset of the
/// original's, and its size never larger.
pub fn relax_label(it: &IncompleteTree, label: Label) -> IncompleteTree {
    let ty = it.ty();
    let group: Vec<Sym> = ty
        .syms()
        .filter(|&s| matches!(ty.info(s).target, SymTarget::Lab(l) if l == label))
        .collect();
    if group.len() <= 1 {
        return it.clone();
    }
    let mut out = ConditionalTreeType::new();
    // Merged symbol first, then survivors; build a remap table.
    let merged_cond = group
        .iter()
        .fold(IntervalSet::empty(), |acc, &s| acc.union(&ty.info(s).cond));
    let merged = out.add_symbol(
        format!("merged:{}", label.0),
        SymTarget::Lab(label),
        merged_cond,
    );
    let mut remap: HashMap<Sym, Sym> = HashMap::new();
    for s in ty.syms() {
        if group.contains(&s) {
            remap.insert(s, merged);
        } else {
            let info = ty.info(s);
            let ns = out.add_symbol(info.name.clone(), info.target, info.cond.clone());
            remap.insert(s, ns);
        }
    }
    // µ: remap entries; collapsed duplicates widen to ⋆ (a sound
    // over-approximation) or + when some collapsed entry was mandatory.
    let remap_atom = |a: &SAtom| -> SAtom {
        let mut acc: HashMap<Sym, (usize, bool, Mult)> = HashMap::new();
        for &(c, m) in a.entries() {
            let nc = remap[&c];
            let e = acc.entry(nc).or_insert((0, false, m));
            e.0 += 1;
            e.1 |= m.mandatory();
            e.2 = m;
        }
        SAtom::new(
            acc.into_iter()
                .map(|(c, (count, mand, orig))| {
                    let m = if count == 1 {
                        orig
                    } else if mand {
                        Mult::Plus
                    } else {
                        Mult::Star
                    };
                    (c, m)
                })
                .collect(),
        )
    };
    // The merged symbol's µ: union of the group's disjunctions.
    let mut merged_atoms: Vec<SAtom> = Vec::new();
    for &s in &group {
        merged_atoms.extend(ty.mu(s).atoms().iter().map(&remap_atom));
    }
    merged_atoms.sort_by(|x, y| x.entries().iter().cmp(y.entries().iter()));
    merged_atoms.dedup();
    out.set_mu(merged, Disjunction(merged_atoms));
    for s in ty.syms() {
        if group.contains(&s) {
            continue;
        }
        let atoms = ty.mu(s).atoms().iter().map(&remap_atom).collect();
        out.set_mu(remap[&s], Disjunction(atoms));
    }
    out.set_roots(ty.roots().iter().map(|r| remap[r]).collect());
    // Relaxation is a lossy heuristic to begin with: if the rebuilt
    // type/node pair is somehow rejected, returning the tree unrelaxed
    // is always sound (the caller just gets no size reduction).
    match IncompleteTree::new(it.nodes().clone(), out) {
        Ok(relaxed) => relaxed.trim(),
        Err(_) => it.clone(),
    }
}

/// Repeatedly relaxes the label with the most specializations until the
/// tree's size drops below `target_size` or no label has more than one
/// specialization. Returns the relaxed tree.
pub fn relax(it: &IncompleteTree, target_size: usize) -> IncompleteTree {
    let mut cur = it.clone();
    loop {
        if cur.size() <= target_size {
            return cur;
        }
        // Most-specialized label.
        let ty = cur.ty();
        let mut counts: HashMap<Label, usize> = HashMap::new();
        for s in ty.syms() {
            if let SymTarget::Lab(l) = ty.info(s).target {
                *counts.entry(l).or_default() += 1;
            }
        }
        // Ties broken by smallest label, not by HashMap order.
        let Some((&label, &count)) = counts
            .iter()
            .max_by_key(|&(&l, &c)| (c, std::cmp::Reverse(l)))
        else {
            return cur;
        };
        if count <= 1 {
            return cur;
        }
        cur = relax_label(&cur, label);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_core::Refiner;
    use iixml_query::PsQueryBuilder;
    use iixml_tree::{Alphabet, Nid};
    use iixml_values::{Cond, Rat};

    /// The catalog source from the paper's running example, numeric
    /// encoding: cat elec=1; subcat camera=10, cdplayer=11.
    fn catalog(alpha: &mut Alphabet) -> DataTree {
        let cat = alpha.intern("catalog");
        let product = alpha.intern("product");
        let name = alpha.intern("name");
        let price = alpha.intern("price");
        let catl = alpha.intern("cat");
        let subcat = alpha.intern("subcat");
        let picture = alpha.intern("picture");
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        let mut next = 1u64;
        let mut add = |t: &mut DataTree, nm: i64, pr: i64, sub: i64, pics: &[i64]| {
            let root = t.root();
            let p = t.add_child(root, Nid(next), product, Rat::ZERO).unwrap();
            next += 1;
            t.add_child(p, Nid(next), name, Rat::from(nm)).unwrap();
            next += 1;
            t.add_child(p, Nid(next), price, Rat::from(pr)).unwrap();
            next += 1;
            let c = t.add_child(p, Nid(next), catl, Rat::from(1)).unwrap();
            next += 1;
            t.add_child(c, Nid(next), subcat, Rat::from(sub)).unwrap();
            next += 1;
            for &v in pics {
                t.add_child(p, Nid(next), picture, Rat::from(v)).unwrap();
                next += 1;
            }
        };
        add(&mut t, 100, 120, 10, &[501]); // Canon
        add(&mut t, 101, 199, 10, &[]); // Nikon
        add(&mut t, 102, 175, 11, &[]); // Sony cdplayer
        add(&mut t, 103, 250, 10, &[502]); // Olympus
        t
    }

    /// Query 1: name/price/subcat of elec products under 200.
    fn query1(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        b.child(p, "price", Cond::lt(Rat::from(200))).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::True).unwrap();
        b.build()
    }

    /// Query 4: list all cameras (name + cat/subcat=camera).
    fn query4(alpha: &mut Alphabet) -> PsQuery {
        let mut b = PsQueryBuilder::new(alpha, "catalog", Cond::True);
        let root = b.root();
        let p = b.child(root, "product", Cond::True).unwrap();
        b.child(p, "name", Cond::True).unwrap();
        let c = b.child(p, "cat", Cond::eq(Rat::from(1))).unwrap();
        b.child(c, "subcat", Cond::eq(Rat::from(10))).unwrap();
        b.build()
    }

    #[test]
    fn completion_makes_query_answerable() {
        let mut alpha = Alphabet::new();
        let source = catalog(&mut alpha);
        let q1 = query1(&mut alpha);
        let q4 = query4(&mut alpha);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q1, &q1.eval(&source)).unwrap();
        // q4 is not fully answerable: expensive cameras are unknown.
        let ans = refiner.current().query(&q4);
        assert!(!ans.fully_answerable());
        // Build and execute the completion.
        let med = Mediator::new(refiner.current());
        let completion = med.complete(&q4);
        assert!(!completion.is_complete());
        let mut known = refiner.data_tree().unwrap();
        completion.execute(&source, &mut known).unwrap();
        // The query now evaluates identically on known data and source.
        let on_known = q4.eval(&known).tree;
        let on_source = q4.eval(&source).tree;
        match (on_known, on_source) {
            (Some(a), Some(b)) => assert!(a.same_tree(&b)),
            (a, b) => assert_eq!(a.is_none(), b.is_none()),
        }
    }

    #[test]
    fn completion_empty_when_fully_answerable() {
        let mut alpha = Alphabet::new();
        let source = catalog(&mut alpha);
        let q1 = query1(&mut alpha);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q1, &q1.eval(&source)).unwrap();
        // Re-asking q1 needs nothing new... its answer came entirely
        // from q1, but products not matching q1 could still match
        // subqueries? No: q1's own answer is fixed by q^-1(A).
        let ans = refiner.current().query(&q1);
        assert!(ans.fully_answerable());
        let med = Mediator::new(refiner.current());
        let completion = med.complete(&q1);
        // The completion may be empty or consist of queries returning
        // nothing new; executing it must not change the answer.
        let mut known = refiner.data_tree().unwrap();
        completion.execute(&source, &mut known).unwrap();
        assert!(q1
            .eval(&known)
            .tree
            .unwrap()
            .same_tree(q1.eval(&source).tree.as_ref().unwrap()));
    }

    #[test]
    fn completion_against_empty_knowledge_asks_q_at_root() {
        let alpha = Alphabet::from_names([
            "catalog", "product", "name", "price", "cat", "subcat", "picture",
        ]);
        let mut a2 = alpha.clone();
        let q = query4(&mut a2);
        let refiner = Refiner::new(&alpha);
        let med = Mediator::new(refiner.current());
        let completion = med.complete(&q);
        assert_eq!(completion.queries.len(), 1);
        assert!(completion.queries[0].at.is_none());
    }

    #[test]
    fn completion_answers_do_not_overlap() {
        let mut alpha = Alphabet::new();
        let source = catalog(&mut alpha);
        let q1 = query1(&mut alpha);
        let q4 = query4(&mut alpha);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q1, &q1.eval(&source)).unwrap();
        let med = Mediator::new(refiner.current());
        let completion = med.complete(&q4);
        // Evaluate each local query; non-anchor answer nodes must be
        // pairwise disjoint.
        let mut seen: std::collections::HashSet<Nid> = std::collections::HashSet::new();
        for lq in &completion.queries {
            let ans = match lq.at {
                None => q4.eval(&source),
                Some(n) => lq.query.eval_at(&source, n).unwrap(),
            };
            if let Some(t) = ans.tree {
                for r in t.preorder() {
                    let nid = t.nid(r);
                    if Some(nid) == lq.at || nid == t.nid(t.root()) {
                        continue;
                    }
                    assert!(seen.insert(nid), "node {nid} returned by two local queries");
                }
            }
        }
    }

    #[test]
    fn auxiliary_queries_cover_all_pattern_nodes() {
        let mut alpha = Alphabet::new();
        let q = query1(&mut alpha);
        let aux = auxiliary_queries(&q);
        assert_eq!(aux.len(), q.len());
        for a in &aux {
            assert!(a.is_linear());
            for &m in a.preorder() {
                assert_eq!(*a.cond(m), Cond::True);
            }
        }
        // The longest auxiliary path reaches subcat:
        // catalog/product/cat/subcat.
        let max_depth = aux.iter().map(|a| a.len()).max().unwrap();
        assert_eq!(max_depth, 4);
    }

    #[test]
    fn relaxation_is_sound_and_smaller() {
        let mut alpha = Alphabet::new();
        let source = catalog(&mut alpha);
        let q1 = query1(&mut alpha);
        let q4 = query4(&mut alpha);
        let mut refiner = Refiner::new(&alpha);
        refiner.refine(&alpha, &q1, &q1.eval(&source)).unwrap();
        refiner.refine(&alpha, &q4, &q4.eval(&source)).unwrap();
        let it = refiner.current();
        let before = it.size();
        let relaxed = relax(it, before / 2);
        assert!(relaxed.size() < before, "relaxation shrinks the tree");
        // Soundness: everything represented stays represented.
        assert!(relaxed.contains(&source));
        let mut gen = iixml_tree::NidGen::starting_at(10_000);
        for _ in 0..3 {
            if let Some(w) = it.witness(&mut gen) {
                assert!(relaxed.contains(&w), "rep(relaxed) ⊇ rep(original)");
            }
        }
    }
}
