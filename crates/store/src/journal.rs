//! The session journal: durable event log + snapshots + recovery.
//!
//! [`SessionJournal`] persists a session's event stream (open, refine,
//! source-update, quarantine) as WAL records and periodically snapshots
//! the current incomplete tree. [`recover`] rebuilds the session state
//! by replaying the surviving records through the *real* Refine code —
//! optionally starting from the newest valid snapshot — with the same
//! guarantees the paper's Section 5 demands of a webhouse that catches
//! its warehouse lying: detect, then degrade to a sound state rather
//! than continue from a corrupt one.
//!
//! ## Discipline
//!
//! Appends follow redo-log order: an event is journaled *after* it has
//! been applied in memory. Refinement is transactional (an error leaves
//! the in-memory state unchanged), so a crash between apply and append
//! loses at most the one event that was never acknowledged as durable —
//! recovery is exact "up to the last durable record".
//!
//! ## Alphabet freezing
//!
//! `Session::open` takes its alphabet by value and never grows it; every
//! refine runs against that frozen Σ (whose labels are the universe of
//! the τ_a symbols in Lemma 3.2's construction). The `Open` record
//! persists Σ by name, and replay re-interns those names in order, so
//! label ids — and therefore the serialized knowledge, byte for byte —
//! come out identical. The flip side: an event mentioning labels *beyond*
//! the frozen alphabet has no durable spelling and is rejected with
//! [`StoreError::Unjournalable`] before it is applied.

use crate::error::StoreError;
use crate::io::StoreIo;
use crate::record::Record;
use crate::snapshot::{self, Snapshot};
use crate::wal::{self, FlushPolicy, GroupCommit, Wal};
use iixml_core::io::{parse_incomplete_xml, write_incomplete_xml};
use iixml_core::{IncompleteTree, Refiner};
use iixml_obs::{keys, LazyCounter};
use iixml_query::{parse_ps_query, Answer, MatchKind, PsQuery, QNodeRef};
use iixml_tree::xmlio::{parse_tree, write_tree};
use iixml_tree::{Alphabet, Nid};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Records replayed through Refine during recovery.
static OBS_REPLAYED: LazyCounter = LazyCounter::new(keys::STORE_REPLAYED);

/// A session's durable journal, open for appends.
pub struct SessionJournal {
    dir: PathBuf,
    writer: GroupCommit,
    /// Records appended so far (the journal's length).
    seq: u64,
    /// Take a snapshot every this many records (`None` = never).
    snapshot_every: Option<u64>,
    last_snapshot_seq: u64,
    /// The snapshot generation compaction may GC below: always one
    /// *behind* the newest snapshot, so the log keeps at least two
    /// `SnapshotRef` anchors and a torn tail that eats the newest one
    /// still leaves an anchor to re-align recovery.
    retire_floor: u64,
    /// The initial knowledge from the `Open` record, kept so snapshots
    /// can carry it (a compacted journal loses the `Open` record with
    /// its segment but must still replay quarantine resets).
    initial_xml: Option<String>,
}

impl SessionJournal {
    /// Default snapshot cadence for journaled sessions.
    pub const DEFAULT_SNAPSHOT_EVERY: u64 = 32;

    /// Creates a fresh journal in `dir` (which must not already hold
    /// one). The flush policy comes from the environment knobs
    /// ([`FlushPolicy::from_env`]); the default is durable-every-record.
    /// The I/O backend also comes from the environment
    /// ([`StoreIo::from_env`], real unless a fault knob is set).
    pub fn create(dir: &Path) -> Result<SessionJournal, StoreError> {
        SessionJournal::create_with_io(dir, StoreIo::from_env())
    }

    /// [`SessionJournal::create`] through an explicit I/O backend (tests
    /// and chaos harnesses inject faults here).
    pub fn create_with_io(dir: &Path, io: StoreIo) -> Result<SessionJournal, StoreError> {
        let writer = GroupCommit::new(Wal::create_with(dir, io)?, FlushPolicy::from_env());
        Ok(SessionJournal {
            dir: dir.to_path_buf(),
            writer,
            seq: 0,
            snapshot_every: Some(SessionJournal::DEFAULT_SNAPSHOT_EVERY),
            last_snapshot_seq: 0,
            retire_floor: 0,
            initial_xml: None,
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Records appended so far.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Sets the snapshot cadence (`None` disables automatic snapshots).
    pub fn set_snapshot_every(&mut self, every: Option<u64>) {
        self.snapshot_every = every.filter(|&n| n > 0);
    }

    /// Appends one record. Under the default flush policy the record is
    /// durable when this returns; under a batched policy it is durable
    /// once its batch flushes (see [`SessionJournal::sync`]).
    pub fn append(&mut self, rec: &Record) -> Result<(), StoreError> {
        self.writer.append(&rec.encode())?;
        self.seq += 1;
        Ok(())
    }

    /// The durability barrier: flushes any batched records to disk.
    /// After `sync()` returns `Ok`, every appended record is durable.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.writer.sync()
    }

    /// Advances the group-commit linger clock without appending (call
    /// from externally-driven step loops).
    pub fn tick(&mut self) -> Result<(), StoreError> {
        self.writer.tick()
    }

    /// Records accepted but not yet flushed to disk.
    pub fn pending_records(&self) -> u64 {
        self.writer.pending_records()
    }

    /// The sticky write-path fault that poisoned this journal's writer,
    /// if any. Once set, every further append/sync returns it: the
    /// journal fails safe instead of retrying-and-pretending.
    pub fn fault(&self) -> Option<&StoreError> {
        self.writer.fault()
    }

    /// The I/O backend this journal writes through.
    pub fn io(&self) -> &StoreIo {
        self.writer.io()
    }

    /// The active group-commit flush policy.
    pub fn flush_policy(&self) -> FlushPolicy {
        self.writer.policy()
    }

    /// Replaces the group-commit flush policy (flushing immediately if
    /// the buffered batch already exceeds the new bounds).
    pub fn set_flush_policy(&mut self, policy: FlushPolicy) -> Result<(), StoreError> {
        self.writer.set_policy(policy)
    }

    /// Sets the WAL segment roll threshold (tests and benches use small
    /// segments to exercise rolling and compaction).
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.writer.set_segment_bytes(bytes);
    }

    /// Journals the session opening: the frozen alphabet and the initial
    /// knowledge (already restricted to the source's declared type).
    pub fn log_open(
        &mut self,
        alpha: &Alphabet,
        initial: &IncompleteTree,
    ) -> Result<(), StoreError> {
        let names = alpha.labels().map(|l| alpha.name(l).to_string()).collect();
        let initial_xml = write_incomplete_xml(initial, alpha);
        self.initial_xml = Some(initial_xml.clone());
        self.append(&Record::Open {
            alpha: names,
            initial: initial_xml,
        })
    }

    /// Journals one applied Refine step. Fails with
    /// [`StoreError::Unjournalable`] when the query or answer uses
    /// labels the frozen alphabet cannot name — callers must perform
    /// this check *before* applying the step (use
    /// [`SessionJournal::check_journalable`]).
    pub fn log_refine(
        &mut self,
        alpha: &Alphabet,
        q: &PsQuery,
        ans: &Answer,
    ) -> Result<(), StoreError> {
        SessionJournal::check_journalable(alpha, q, ans)?;
        let mut provenance: Vec<(u64, bool, u32)> = ans
            .provenance
            .iter()
            .map(|(&nid, &kind)| match kind {
                MatchKind::Matched(m) => (nid.0, false, m.0),
                MatchKind::BarDescendant(m) => (nid.0, true, m.0),
            })
            .collect();
        provenance.sort_unstable();
        self.append(&Record::Refine {
            query: q.to_text(alpha),
            answer_tree: ans.tree.as_ref().map(|t| write_tree(t, alpha)),
            provenance,
        })
    }

    /// Verifies that a refine step has a durable spelling under the
    /// frozen alphabet — every label in the query and the answer tree
    /// must be nameable.
    pub fn check_journalable(
        alpha: &Alphabet,
        q: &PsQuery,
        ans: &Answer,
    ) -> Result<(), StoreError> {
        let named = alpha.len() as u32;
        for &m in q.preorder() {
            if q.label(m).0 >= named {
                return Err(StoreError::Unjournalable {
                    reason: format!(
                        "query node {} uses a label outside the session's frozen alphabet",
                        m.0
                    ),
                });
            }
        }
        if let Some(t) = &ans.tree {
            for r in t.preorder() {
                if t.label(r).0 >= named {
                    return Err(StoreError::Unjournalable {
                        reason: format!(
                            "answer node {} uses a label outside the session's frozen alphabet",
                            t.nid(r).0
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Journals a source update (knowledge reinitialized).
    pub fn log_source_update(&mut self) -> Result<(), StoreError> {
        self.append(&Record::SourceUpdate)
    }

    /// Journals a quarantine (knowledge caught lying, reinitialized).
    pub fn log_quarantine(&mut self) -> Result<(), StoreError> {
        self.append(&Record::Quarantine)
    }

    /// Takes a snapshot if the cadence says one is due. Call after every
    /// journaled event, passing the *current* knowledge.
    pub fn maybe_snapshot(
        &mut self,
        alpha: &Alphabet,
        knowledge: &IncompleteTree,
    ) -> Result<bool, StoreError> {
        match self.snapshot_every {
            Some(every) if self.seq - self.last_snapshot_seq >= every => {
                self.snapshot_now(alpha, knowledge)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Takes a snapshot unconditionally: syncs any batched records (so
    /// the snapshot never claims state beyond the durable log), writes
    /// the state atomically, journals a `SnapshotRef` pointing at it,
    /// syncs again, and retires any segments the snapshot now covers.
    pub fn snapshot_now(
        &mut self,
        alpha: &Alphabet,
        knowledge: &IncompleteTree,
    ) -> Result<(), StoreError> {
        self.sync()?;
        let snap = Snapshot {
            seq: self.seq,
            alpha: alpha.labels().map(|l| alpha.name(l).to_string()).collect(),
            initial: self.initial_xml.clone(),
            knowledge: write_incomplete_xml(knowledge, alpha),
        };
        let (file, crc) = snap.write_with(&self.dir, self.writer.io())?;
        let seq = self.seq;
        self.append(&Record::SnapshotRef { seq, file, crc })?;
        self.sync()?;
        self.retire_floor = self.retire_floor.max(self.last_snapshot_seq);
        self.last_snapshot_seq = seq;
        self.compact()?;
        Ok(())
    }

    /// Retires WAL segments fully covered by snapshots (file-level GC —
    /// no framing change). A segment is eligible when every record in
    /// it has index below the *previous* snapshot's `seq`: compaction
    /// deliberately lags one snapshot generation, so the log always
    /// keeps at least two `SnapshotRef` anchors — recovery of a
    /// compacted journal re-anchors scan positions on any surviving
    /// ref, and a torn tail that eats the newest ref must not take the
    /// only one. Only a contiguous oldest-first prefix is ever removed,
    /// and never the active segment. Returns the number of segments
    /// retired.
    pub fn compact(&mut self) -> Result<usize, StoreError> {
        if self.retire_floor == 0 {
            return Ok(0);
        }
        self.sync()?;
        let segs = Wal::segments(&self.dir)?;
        if segs.len() <= 1 {
            return Ok(0);
        }
        let outcome = wal::scan(&self.dir)?;
        if outcome.damage.is_some() {
            // Never compact around damage; recovery owns that path.
            return Ok(0);
        }
        // Earlier compactions may already have retired a prefix: the
        // surviving frames are always a contiguous suffix of the record
        // sequence, so the first frame's record index is seq − frames.
        let base = self.seq - outcome.frames.len() as u64;
        let covered = self.retire_floor;
        let mut last_in_segment: HashMap<PathBuf, u64> = HashMap::new();
        for (pos, frame) in outcome.frames.iter().enumerate() {
            last_in_segment.insert(frame.segment.clone(), base + pos as u64);
        }
        let mut retired = 0usize;
        for (_, path) in segs.iter().take(segs.len() - 1) {
            let retirable = match last_in_segment.get(path) {
                Some(&last) => last < covered,
                // A header-only segment holds no records.
                None => true,
            };
            if !retirable {
                break;
            }
            wal::retire_segment(&self.dir, self.writer.io(), path)?;
            retired += 1;
        }
        Ok(retired)
    }
}

/// How recovery reacts to mid-log corruption (torn tails are always
/// truncated — they are the normal crash artifact, not damage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryMode {
    /// Surface mid-log corruption as a typed error.
    Strict,
    /// Degrade: keep the verified prefix (seeded from the last good
    /// snapshot when one exists), report what was dropped.
    Degrade,
}

/// What recovery had to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryStatus {
    /// Every durable record survived (at most a torn tail was
    /// truncated).
    Clean,
    /// Durable records were lost to corruption; the state reflects the
    /// longest verified prefix.
    Recovered {
        /// Records dropped (destroyed, stranded, or undecodable).
        dropped_records: usize,
    },
}

/// The result of recovering a journal.
pub struct Recovered {
    /// The journal, reopened for appends after the replayed prefix.
    /// `None` when the log itself is beyond continuation (state came
    /// from a snapshot alone) — see `Session::recover` for the rebase
    /// path.
    pub journal: Option<SessionJournal>,
    /// The frozen alphabet from the `Open` record (or the snapshot, in
    /// the snapshot-only fallback).
    pub alpha: Alphabet,
    /// The initial knowledge from the `Open` record (`None` in the
    /// snapshot-only fallback).
    pub initial: Option<IncompleteTree>,
    /// The replayed session state.
    pub refiner: Refiner,
    /// Records reflected in the state (snapshot-covered + replayed).
    pub replayed: usize,
    /// Refine records among them.
    pub refines: usize,
    /// Quarantine records among them.
    pub quarantines: usize,
    /// Source-update records among them.
    pub source_updates: usize,
    /// Snapshot the replay started from, if any (records covered).
    pub from_snapshot: Option<u64>,
    /// Whether a torn tail was truncated.
    pub torn_tail: bool,
    /// Clean, or degraded with a drop count.
    pub status: RecoveryStatus,
}

/// Recovers the journal in `dir`: verifies checksums, truncates a torn
/// tail, replays surviving records through Refine, and — per `mode` —
/// either surfaces mid-log corruption as a typed error or degrades to
/// the longest verified prefix. Never panics on arbitrary directory
/// contents. The reopened writer goes through [`StoreIo::from_env`].
pub fn recover(dir: &Path, mode: RecoveryMode) -> Result<Recovered, StoreError> {
    recover_with_io(dir, mode, StoreIo::from_env())
}

/// [`recover`] with an explicit I/O backend for the reopened writer.
/// The read/repair side (scan, truncate, sweep) always uses real I/O:
/// recovery itself must make progress even under an injector, and the
/// contract under test is the *write* path.
pub fn recover_with_io(
    dir: &Path,
    mode: RecoveryMode,
    io: StoreIo,
) -> Result<Recovered, StoreError> {
    // A directory with no segments left (a prior repair may have removed
    // them all) is an empty log, not a dead end: a surviving snapshot
    // can still supply the state. `Missing` resurfaces below only when
    // there is no snapshot either.
    let outcome = match wal::scan(dir) {
        Ok(outcome) => outcome,
        Err(StoreError::Missing { .. }) => wal::ScanOutcome {
            frames: Vec::new(),
            damage: None,
        },
        Err(e) => return Err(e),
    };
    let mut dropped = 0usize;
    let mut torn_tail = false;
    // First: resolve physical damage. The log is physically truncated at
    // the first bad byte either way; what differs is whether destroyed
    // durable records are an error or a degradation.
    if let Some(damage) = &outcome.damage {
        if damage.is_torn_tail() {
            torn_tail = true;
        } else {
            match mode {
                RecoveryMode::Strict => {
                    return Err(StoreError::Corrupt {
                        segment: damage.segment.clone(),
                        offset: damage.offset,
                        reason: damage.reason.clone(),
                        stranded: damage.stranded,
                    });
                }
                RecoveryMode::Degrade => dropped += damage.records_lost(),
            }
        }
        wal::repair(dir, damage)?;
    }
    // Clean up any half-written snapshot temp file and any segment
    // tombstone left by a crash mid-retirement.
    snapshot::sweep_tmp(dir)?;
    wal::sweep_retired(dir)?;

    // Second: decode the verified frames. A frame that passes its CRC
    // but does not decode is corruption at the record layer (e.g. a
    // rewritten payload with a recomputed checksum); the log is cut
    // there so recovery is idempotent.
    let mut records: Vec<Record> = Vec::with_capacity(outcome.frames.len());
    for (i, frame) in outcome.frames.iter().enumerate() {
        match Record::decode_at(&frame.payload, i) {
            Ok(r) => records.push(r),
            Err(e) => match mode {
                RecoveryMode::Strict => return Err(e),
                RecoveryMode::Degrade => {
                    dropped += outcome.frames.len() - i;
                    wal::truncate_at(dir, &frame.segment, frame.offset)?;
                    break;
                }
            },
        }
    }

    // Third: re-anchor scan positions to record indices. A compacted
    // journal no longer starts at record 0 — its leading segments were
    // retired under a snapshot — but any surviving `SnapshotRef` pins
    // the alignment: a ref carrying `seq` at scan position `p` means the
    // first surviving frame is record `seq − p`. All anchors agree,
    // because compaction only ever removes whole leading segments, so
    // the surviving frames are a contiguous suffix of the record
    // sequence. A journal opening with its `Open` record is anchored at
    // zero by construction.
    let open_first = matches!(records.first(), Some(Record::Open { .. }));
    let base: Option<u64> = if open_first {
        Some(0)
    } else {
        records.iter().enumerate().rev().find_map(|(p, r)| match r {
            Record::SnapshotRef { seq, .. } if *seq >= p as u64 => Some(*seq - p as u64),
            _ => None,
        })
    };
    // How many records the journal provably held, counting the retired
    // prefix (falls back to the surviving count when unanchored).
    let known_total = base.map_or(records.len() as u64, |b| b + records.len() as u64);

    // Find a starting state. Prefer the newest valid snapshot covering
    // no more records than the journal held; otherwise replay from the
    // Open record.
    let usable_snapshot = best_snapshot(dir, known_total);

    // In Degrade mode, a verified snapshot *ahead* of the surviving log
    // is the Section 5 degradation target: the records between the
    // log's end and the snapshot were destroyed, but the snapshot is a
    // real, checksummed state the session reached — strictly more of
    // the history than the surviving prefix proves. The log below it
    // cannot be continued (appends after the gap would contradict the
    // state), so this path returns `journal: None` and the caller
    // rebases onto a fresh journal.
    if mode == RecoveryMode::Degrade {
        let ahead = best_snapshot(dir, u64::MAX)
            .filter(|s| s.seq > known_total)
            // When the Open record survived, only trust a snapshot that
            // agrees with it on the alphabet.
            .filter(|s| match records.first() {
                Some(Record::Open { alpha, .. }) => &s.alpha == alpha,
                _ => true,
            });
        if let Some(s) = ahead {
            let alpha = Alphabet::from_names(s.alpha.iter().map(String::as_str));
            let mut parse_alpha = alpha.clone();
            let state = parse_incomplete_xml(&s.knowledge, &mut parse_alpha).map_err(|e| {
                StoreError::SnapshotCorrupt {
                    path: dir.join(Snapshot::file_name(s.seq)),
                    reason: format!("knowledge does not parse: {e}"),
                }
            })?;
            // At least the records between the surviving prefix and the
            // snapshot were destroyed; the damage-derived count may
            // undercount them (stranded frames beyond the first bad
            // byte are estimated, destroyed ones are not).
            let destroyed = (s.seq as usize).saturating_sub(known_total as usize);
            return Ok(Recovered {
                journal: None,
                alpha,
                initial: None,
                refiner: Refiner::from_tree(state),
                replayed: s.seq as usize,
                refines: 0,
                quarantines: 0,
                source_updates: 0,
                from_snapshot: Some(s.seq),
                torn_tail,
                status: RecoveryStatus::Recovered {
                    dropped_records: dropped.max(destroyed).max(1),
                },
            });
        }
    }

    // Anchored continuation: a compacted journal (no Open record, but a
    // SnapshotRef anchor) seeds from the snapshot the compaction was
    // taken under — which, since v2, carries the initial knowledge so
    // quarantine and source-update resets in the tail still replay —
    // then replays the surviving tail. Undamaged compacted journals
    // recover `Clean` this way in both modes: a retired prefix is GC,
    // not loss.
    if !open_first {
        if let Some(b) = base.filter(|&b| b > 0) {
            let seed = usable_snapshot
                .as_ref()
                .filter(|s| s.seq >= b && s.initial.is_some());
            if let Some(s) = seed {
                let alpha = Alphabet::from_names(s.alpha.iter().map(String::as_str));
                let mut parse_alpha = alpha.clone();
                let snap_path = dir.join(Snapshot::file_name(s.seq));
                let initial_xml = s.initial.clone().unwrap_or_default();
                let initial =
                    parse_incomplete_xml(&initial_xml, &mut parse_alpha).map_err(|e| {
                        StoreError::SnapshotCorrupt {
                            path: snap_path.clone(),
                            reason: format!("initial knowledge does not parse: {e}"),
                        }
                    })?;
                let state = parse_incomplete_xml(&s.knowledge, &mut parse_alpha).map_err(|e| {
                    StoreError::SnapshotCorrupt {
                        path: snap_path,
                        reason: format!("knowledge does not parse: {e}"),
                    }
                })?;
                let mut refiner = Refiner::from_tree(state);
                let mut refines = 0usize;
                let mut quarantines = 0usize;
                let mut source_updates = 0usize;
                // Scan position of the first record past the snapshot
                // (its own SnapshotRef — a replay noop).
                let start_pos = (s.seq - b) as usize;
                let mut applied = s.seq as usize;
                for (i, rec) in records.iter().enumerate().skip(start_pos) {
                    let index = b as usize + i;
                    let result =
                        replay_one(rec, &alpha, &mut parse_alpha, &mut refiner, &initial, index);
                    match result {
                        Ok(kind) => {
                            match kind {
                                ReplayKind::Refine => refines += 1,
                                ReplayKind::Quarantine => quarantines += 1,
                                ReplayKind::SourceUpdate => source_updates += 1,
                                ReplayKind::Noop => {}
                            }
                            applied = index + 1;
                            OBS_REPLAYED.incr();
                        }
                        Err(e) => match mode {
                            RecoveryMode::Strict => return Err(e),
                            RecoveryMode::Degrade => {
                                dropped += records.len() - i;
                                let frame = &outcome.frames[i];
                                wal::truncate_at(dir, &frame.segment, frame.offset)?;
                                break;
                            }
                        },
                    }
                }
                // Counters cover what is visible: the surviving records
                // below the snapshot plus the replayed tail (records
                // retired with their segments are gone entirely).
                for rec in records.iter().take(start_pos) {
                    match rec {
                        Record::Refine { .. } => refines += 1,
                        Record::Quarantine => quarantines += 1,
                        Record::SourceUpdate => source_updates += 1,
                        _ => {}
                    }
                }
                let writer =
                    GroupCommit::new(Wal::open_append_with(dir, io)?, FlushPolicy::from_env());
                let journal = SessionJournal {
                    dir: dir.to_path_buf(),
                    writer,
                    seq: applied as u64,
                    snapshot_every: Some(SessionJournal::DEFAULT_SNAPSHOT_EVERY),
                    last_snapshot_seq: s.seq,
                    retire_floor: 0,
                    initial_xml: Some(initial_xml),
                };
                return Ok(Recovered {
                    journal: Some(journal),
                    alpha,
                    initial: Some(initial),
                    refiner,
                    replayed: applied,
                    refines,
                    quarantines,
                    source_updates,
                    from_snapshot: Some(s.seq),
                    torn_tail,
                    status: if dropped > 0 {
                        RecoveryStatus::Recovered {
                            dropped_records: dropped,
                        }
                    } else {
                        RecoveryStatus::Clean
                    },
                });
            }
            // No usable anchored seed (snapshot files destroyed): fall
            // through — Degrade's snapshot-only fallback may still
            // apply; Strict surfaces the headless log below.
        }
    }

    let open = match records.first() {
        Some(Record::Open { alpha, initial }) => Some((alpha.clone(), initial.clone())),
        _ => None,
    };
    let (alpha, mut parse_alpha, mut refiner, initial, start, from_snapshot) =
        match (&open, &usable_snapshot) {
            (Some((names, initial_xml)), snap) => {
                let alpha = Alphabet::from_names(names.iter().map(String::as_str));
                let mut parse_alpha = alpha.clone();
                let initial = parse_incomplete_xml(initial_xml, &mut parse_alpha).map_err(|e| {
                    StoreError::BadRecord {
                        index: 0,
                        reason: format!("initial knowledge does not parse: {e}"),
                    }
                })?;
                // Only trust a snapshot that agrees with the Open record
                // on the alphabet (ids must line up for replayed text).
                let snap = snap.as_ref().filter(|s| &s.alpha == names);
                match snap {
                    Some(s) => {
                        let state =
                            parse_incomplete_xml(&s.knowledge, &mut parse_alpha).map_err(|e| {
                                StoreError::SnapshotCorrupt {
                                    path: dir.join(Snapshot::file_name(s.seq)),
                                    reason: format!("knowledge does not parse: {e}"),
                                }
                            })?;
                        let seq = s.seq;
                        (
                            alpha,
                            parse_alpha,
                            Refiner::from_tree(state),
                            initial,
                            seq as usize,
                            Some(seq),
                        )
                    }
                    None => (
                        alpha,
                        parse_alpha,
                        Refiner::from_tree(initial.clone()),
                        initial,
                        1,
                        None,
                    ),
                }
            }
            (None, Some(s)) => {
                // Snapshot-only fallback: the Open record (and with it
                // every earlier record) is gone, but a verified snapshot
                // still gives a sound state to degrade to.
                if mode == RecoveryMode::Strict {
                    return Err(StoreError::BadRecord {
                        index: 0,
                        reason: "journal does not start with an open record".into(),
                    });
                }
                let alpha = Alphabet::from_names(s.alpha.iter().map(String::as_str));
                let mut parse_alpha = alpha.clone();
                let state = parse_incomplete_xml(&s.knowledge, &mut parse_alpha).map_err(|e| {
                    StoreError::SnapshotCorrupt {
                        path: dir.join(Snapshot::file_name(s.seq)),
                        reason: format!("knowledge does not parse: {e}"),
                    }
                })?;
                dropped += records.len();
                return Ok(Recovered {
                    journal: None,
                    alpha,
                    initial: None,
                    refiner: Refiner::from_tree(state),
                    replayed: s.seq as usize,
                    refines: 0,
                    quarantines: 0,
                    source_updates: 0,
                    from_snapshot: Some(s.seq),
                    torn_tail,
                    status: RecoveryStatus::Recovered {
                        dropped_records: dropped.max(1),
                    },
                });
            }
            (None, None) => {
                return Err(match records.len() {
                    0 => StoreError::Missing {
                        dir: dir.to_path_buf(),
                    },
                    _ => StoreError::BadRecord {
                        index: 0,
                        reason: format!(
                            "journal starts with a {} record, not open",
                            records[0].kind()
                        ),
                    },
                });
            }
        };

    // Fourth: replay the tail through the real Refine code.
    let mut refines = 0usize;
    let mut quarantines = 0usize;
    let mut source_updates = 0usize;
    let mut applied = start;
    for (i, rec) in records.iter().enumerate().skip(start) {
        let result = replay_one(rec, &alpha, &mut parse_alpha, &mut refiner, &initial, i);
        match result {
            Ok(kind) => {
                match kind {
                    ReplayKind::Refine => refines += 1,
                    ReplayKind::Quarantine => quarantines += 1,
                    ReplayKind::SourceUpdate => source_updates += 1,
                    ReplayKind::Noop => {}
                }
                applied = i + 1;
                OBS_REPLAYED.incr();
            }
            Err(e) => match mode {
                RecoveryMode::Strict => return Err(e),
                RecoveryMode::Degrade => {
                    dropped += records.len() - i;
                    let frame = &outcome.frames[i];
                    wal::truncate_at(dir, &frame.segment, frame.offset)?;
                    break;
                }
            },
        }
    }

    // Reopen for appends after the surviving prefix.
    let writer = GroupCommit::new(Wal::open_append_with(dir, io)?, FlushPolicy::from_env());
    let journal = SessionJournal {
        dir: dir.to_path_buf(),
        writer,
        seq: applied as u64,
        snapshot_every: Some(SessionJournal::DEFAULT_SNAPSHOT_EVERY),
        last_snapshot_seq: from_snapshot.unwrap_or(0),
        retire_floor: 0,
        initial_xml: open.as_ref().map(|(_, xml)| xml.clone()),
    };
    // Session-level counters want totals over the whole journal, not
    // just the replayed tail: count the snapshot-covered prefix too.
    for rec in records.iter().take(start) {
        match rec {
            Record::Refine { .. } => refines += 1,
            Record::Quarantine => quarantines += 1,
            Record::SourceUpdate => source_updates += 1,
            _ => {}
        }
    }
    Ok(Recovered {
        journal: Some(journal),
        alpha,
        initial: Some(initial),
        refiner,
        replayed: applied,
        refines,
        quarantines,
        source_updates,
        from_snapshot,
        torn_tail,
        status: if dropped > 0 {
            RecoveryStatus::Recovered {
                dropped_records: dropped,
            }
        } else {
            RecoveryStatus::Clean
        },
    })
}

enum ReplayKind {
    Refine,
    Quarantine,
    SourceUpdate,
    Noop,
}

fn replay_one(
    rec: &Record,
    alpha: &Alphabet,
    parse_alpha: &mut Alphabet,
    refiner: &mut Refiner,
    initial: &IncompleteTree,
    index: usize,
) -> Result<ReplayKind, StoreError> {
    let bad = |reason: String| StoreError::BadRecord { index, reason };
    match rec {
        Record::Open { .. } => Err(bad("open record past position 0".into())),
        Record::Refine {
            query,
            answer_tree,
            provenance,
        } => {
            let q = parse_ps_query(query, parse_alpha)
                .map_err(|e| bad(format!("query does not parse: {e}")))?;
            let tree = match answer_tree {
                None => None,
                Some(text) => Some(
                    parse_tree(text, parse_alpha)
                        .map_err(|e| bad(format!("answer tree does not parse: {e}")))?,
                ),
            };
            let mut prov: HashMap<Nid, MatchKind> = HashMap::with_capacity(provenance.len());
            for &(nid, barred, qnode) in provenance {
                let kind = if barred {
                    MatchKind::BarDescendant(QNodeRef(qnode))
                } else {
                    MatchKind::Matched(QNodeRef(qnode))
                };
                prov.insert(Nid(nid), kind);
            }
            let ans = Answer {
                tree,
                provenance: prov,
            };
            refiner
                .refine(alpha, &q, &ans)
                .map_err(|e| bad(format!("refine replay failed: {e}")))?;
            Ok(ReplayKind::Refine)
        }
        Record::SourceUpdate => {
            *refiner = Refiner::from_tree(initial.clone());
            Ok(ReplayKind::SourceUpdate)
        }
        Record::Quarantine => {
            *refiner = Refiner::from_tree(initial.clone());
            Ok(ReplayKind::Quarantine)
        }
        Record::SnapshotRef { .. } => Ok(ReplayKind::Noop),
    }
}

/// The newest snapshot in `dir` that verifies and covers at most
/// `max_seq` records. Corrupt snapshots are skipped (recovery falls back
/// to older ones, then to full replay).
fn best_snapshot(dir: &Path, max_seq: u64) -> Option<Snapshot> {
    let list = snapshot::list(dir).ok()?;
    list.iter()
        .rev()
        .filter(|&&(seq, _)| seq <= max_seq)
        .find_map(|(_, path)| Snapshot::load(path).ok())
}
