//! # iixml-store — durable session journal
//!
//! A mediator session (Section 5 of the paper) accumulates knowledge
//! through a chain of Refine steps; losing the process loses the chain.
//! This crate makes the chain durable without any external dependency:
//!
//! * **WAL** ([`wal`]) — append-only segments of length-prefixed,
//!   CRC-32-checksummed records, one per session event (open, refine,
//!   source-update, quarantine, snapshot-ref). Query and answer payloads
//!   reuse the workspace's existing text formats, so the log is
//!   human-inspectable.
//! * **Snapshots** ([`snapshot`]) — periodic checksummed captures of the
//!   current incomplete tree, written atomically (tmp + rename), so
//!   recovery is snapshot + tail-replay instead of full-chain replay.
//! * **Recovery** ([`journal::recover`]) — verifies every checksum,
//!   truncates a torn tail (the normal crash artifact), replays
//!   surviving records through the *real* Refine code, and surfaces
//!   mid-log corruption as a typed [`StoreError`] — or, in
//!   [`RecoveryMode::Degrade`], falls back to the last good snapshot and
//!   reports [`RecoveryStatus::Recovered`] with the number of dropped
//!   records, the same detect-then-degrade posture the paper's
//!   quarantine policy takes toward a lying warehouse.
//! * **Injection** ([`inject`]) — a seeded [`Corruptor`] producing
//!   reproducible torn writes and bit flips, so the recovery invariant
//!   is continuously exercised (see `tests/store_recovery.rs` and the
//!   CI crash matrix).
//! * **Fault-injectable I/O** ([`io`]) — every durability-bearing
//!   syscall goes through a [`StoreIo`] handle: `real()` in production,
//!   or a seeded injector (`faulty`/`fail_at`, also reachable via the
//!   `IIXML_STORE_FAULT_*` env knobs) that models EIO, ENOSPC, short
//!   writes, and fsync-failure-drops-buffered-pages. The fail-safe
//!   contract: a failed write or fsync permanently poisons the writer
//!   (sticky fault, no retry-and-pretend), so every lost record
//!   corresponds to a reported fault — never a silent drop.
//!
//! Observability: `store.appends`, `store.fsyncs`, `store.replayed`,
//! `store.torn_tails`, `store.crc_rejects`, `store.snapshot_bytes`,
//! `store.io_faults`, and `store.dir_sync_fails` flow through
//! `iixml-obs` like every other subsystem.

pub mod crc;
pub mod error;
pub mod format;
pub mod inject;
pub mod io;
pub mod journal;
pub mod record;
pub mod snapshot;
pub mod wal;

pub use error::StoreError;
pub use inject::{Corruptor, Injury};
pub use io::{Fault, IoOp, StoreIo};
pub use journal::{recover, Recovered, RecoveryMode, RecoveryStatus, SessionJournal};
pub use record::Record;
pub use snapshot::Snapshot;
pub use wal::{take_drop_fault, FlushPolicy, GroupCommit};
