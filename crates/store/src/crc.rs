//! CRC-32 (IEEE 802.3, the zlib/Ethernet polynomial), table-driven.
//!
//! Every WAL frame and snapshot carries a CRC so recovery can tell a
//! torn write (the expected crash artifact) from silent bit rot. The
//! implementation is slicing-by-8 — eight 256-entry tables built at
//! compile time, consuming the input eight bytes per step — because
//! the checksum sits on the group-commit append hot path, where it
//! would otherwise rival the amortized fsync. `std`-only, like
//! everything in this workspace; the classic byte-at-a-time walk
//! (row 0 of the table) still handles the tail.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 tables: row 0 is the classic byte-at-a-time table;
/// row `k` advances a byte that still has `k` more input bytes after
/// it in the current 8-byte window.
static TABLE: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut table = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = table[k - 1][i];
            table[k][i] = (prev >> 8) ^ table[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    table
}

/// CRC-32 of `data` (full-buffer convenience).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        // `chunks_exact(8)` guarantees the window; fold the first word
        // through the running crc, the second straight from the input.
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = TABLE[7][(lo & 0xFF) as usize]
            ^ TABLE[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLE[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLE[4][(lo >> 24) as usize]
            ^ TABLE[3][(hi & 0xFF) as usize]
            ^ TABLE[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLE[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLE[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLE[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length() {
        // The tail loop IS the classic algorithm; feeding it whole
        // inputs gives the reference the sliced path must match,
        // straddling every alignment of the 8-byte window.
        fn bytewise(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc = (crc >> 8) ^ TABLE[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        }
        for len in 0..70usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(crc32(&data), bytewise(&data), "length {len}");
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"incomplete information");
        let mut flipped = b"incomplete information".to_vec();
        flipped[5] ^= 0x10;
        assert_ne!(a, crc32(&flipped));
    }
}
