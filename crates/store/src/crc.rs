//! CRC-32 (IEEE 802.3, the zlib/Ethernet polynomial), table-driven.
//!
//! Every WAL frame and snapshot carries a CRC so recovery can tell a
//! torn write (the expected crash artifact) from silent bit rot. The
//! implementation is the standard reflected-polynomial byte-at-a-time
//! table walk — `std`-only, like everything in this workspace.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// The 256-entry lookup table, built at compile time.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (full-buffer convenience).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"incomplete information");
        let mut flipped = b"incomplete information".to_vec();
        flipped[5] ^= 0x10;
        assert_ne!(a, crc32(&flipped));
    }
}
