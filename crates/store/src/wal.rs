//! The write-ahead log: append-only segment files of checksummed,
//! length-prefixed frames.
//!
//! ## On-disk layout
//!
//! A journal directory holds segments `seg-NNNNNN.wal`. Each segment
//! starts with an 8-byte header — magic `IIXJWAL` plus one format
//! version byte (see CONTRIBUTING.md's versioning policy) — followed by
//! frames:
//!
//! ```text
//! +------+--------------+--------------+---------------+
//! | REC! | len: u32 LE  | crc32: u32 LE| payload (len) |
//! +------+--------------+--------------+---------------+
//! ```
//!
//! The per-frame magic makes frames re-synchronizable: after damage,
//! [`scan`] can count how many valid-looking frames are stranded beyond
//! it, which is what distinguishes a *torn tail* (the normal crash
//! artifact — nothing durable was lost) from *mid-log corruption* (bit
//! rot or tampering — durable records were destroyed).
//!
//! Segments roll at [`Wal::DEFAULT_SEGMENT_BYTES`] so long chains spread
//! over many files and damage stays localized.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::io::{StoreFile, StoreIo};
use iixml_obs::{keys, LazyCounter};
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Frames appended to the WAL.
static OBS_APPENDS: LazyCounter = LazyCounter::new(keys::STORE_APPENDS);
/// `fsync`/`sync_data` calls issued (appends and snapshot writes).
pub(crate) static OBS_FSYNCS: LazyCounter = LazyCounter::new(keys::STORE_FSYNCS);
/// Frames rejected by checksum verification during scans.
pub(crate) static OBS_CRC_REJECTS: LazyCounter = LazyCounter::new(keys::STORE_CRC_REJECTS);
/// Torn tails truncated during recovery.
static OBS_TORN_TAILS: LazyCounter = LazyCounter::new(keys::STORE_TORN_TAILS);
/// Records accepted into a group-commit buffer.
static OBS_BATCHED_APPENDS: LazyCounter = LazyCounter::new(keys::STORE_BATCHED_APPENDS);
/// Group-commit buffer flushes (each is one write + one fsync).
static OBS_BATCH_FLUSHES: LazyCounter = LazyCounter::new(keys::STORE_BATCH_FLUSHES);
/// Segments retired by compaction.
static OBS_SEGMENTS_RETIRED: LazyCounter = LazyCounter::new(keys::STORE_SEGMENTS_RETIRED);
/// Write-path I/O faults observed (each poisons its writer or aborts
/// its snapshot; see DESIGN.md §14).
pub(crate) static OBS_IO_FAULTS: LazyCounter = LazyCounter::new(keys::STORE_IO_FAULTS);
/// Directory-fsync failures (propagated to the caller and counted,
/// never `.is_ok()`-swallowed).
pub(crate) static OBS_DIR_SYNC_FAILS: LazyCounter = LazyCounter::new(keys::STORE_DIR_SYNC_FAILS);

/// The most recent flush failure recorded by a [`GroupCommit`] drop — a
/// crash-path fault with no caller left to report to. Held here so it
/// is *recorded*, never silently discarded; [`take_drop_fault`] hands
/// it to whoever inspects the wreckage next (webhouse surfaces it as a
/// sticky `journal_fault`).
static DROP_FAULT: Mutex<Option<StoreError>> = Mutex::new(None);

fn note_drop_fault(e: StoreError) {
    // The io-faults counter was already bumped when the WAL poisoned
    // itself; this slot only keeps the error itself reachable.
    match DROP_FAULT.lock() {
        Ok(mut slot) => *slot = Some(e),
        Err(poisoned) => *poisoned.into_inner() = Some(e),
    }
}

/// Takes (and clears) the most recent drop-time flush failure. `None`
/// means every dropped writer flushed cleanly since the last call.
pub fn take_drop_fault() -> Option<StoreError> {
    match DROP_FAULT.lock() {
        Ok(mut slot) => slot.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    }
}

pub use crate::format::{FORMAT_VERSION, FRAME_MAGIC, SEGMENT_MAGIC};

use crate::format::{FRAME_HEADER_LEN, SEGMENT_HEADER_LEN};

/// An open WAL, positioned for appends at the tail of the newest
/// segment.
///
/// ## Fail-safe poisoning
///
/// The first failed write, fsync, or roll permanently poisons the
/// writer: the fault is held sticky and every later append returns it.
/// After a write-path failure the on-disk suffix is unknown — a short
/// write may have torn a frame — and appending past it could bury the
/// tear under valid-looking bytes, turning a benign torn tail into
/// mid-log corruption. The writer stays down; recovery owns the
/// directory (DESIGN.md §14).
pub struct Wal {
    dir: PathBuf,
    io: StoreIo,
    seg_index: u64,
    file: StoreFile,
    seg_len: u64,
    /// Roll to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Issue `sync_data` after every append (on by default; benches may
    /// turn it off to measure the in-memory cost separately).
    pub sync: bool,
    /// The sticky fault, once a write-path operation has failed.
    fault: Option<StoreError>,
}

impl Wal {
    /// Default segment roll size.
    pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

    fn seg_path(dir: &Path, index: u64) -> PathBuf {
        dir.join(format!("seg-{index:06}.wal"))
    }

    /// Sorted (index, path) pairs of the segments present in `dir`.
    pub fn segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(idx) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((idx, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    fn write_header(io: &StoreIo, path: &Path) -> Result<StoreFile, StoreError> {
        let mut file = io.create_new(path)?;
        let mut header = [0u8; SEGMENT_HEADER_LEN];
        header[..7].copy_from_slice(&SEGMENT_MAGIC);
        header[7] = FORMAT_VERSION;
        file.write_all(&header)?;
        Ok(file)
    }

    /// Creates a fresh WAL in `dir` (creating the directory if needed),
    /// on the I/O implementation the `IIXML_STORE_FAULT_*` environment
    /// selects (real unless the knobs are set). Fails if segments
    /// already exist — recovery, not blind appending, is the way into
    /// an existing journal.
    pub fn create(dir: &Path) -> Result<Wal, StoreError> {
        Wal::create_with(dir, StoreIo::from_env())
    }

    /// [`Wal::create`] on an explicit I/O implementation (tests and the
    /// CLI's disk-fault stage thread a faulty one here).
    pub fn create_with(dir: &Path, io: StoreIo) -> Result<Wal, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        if !Wal::segments(dir)?.is_empty() {
            return Err(StoreError::Io {
                path: dir.to_path_buf(),
                message: "journal already exists (recover it instead of overwriting)".into(),
            });
        }
        let path = Wal::seg_path(dir, 0);
        let file = Wal::write_header(&io, &path)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            io,
            seg_index: 0,
            file,
            seg_len: SEGMENT_HEADER_LEN as u64,
            segment_bytes: Wal::DEFAULT_SEGMENT_BYTES,
            sync: true,
            fault: None,
        })
    }

    /// Opens an existing WAL for appending at the tail of its newest
    /// segment. The caller is responsible for having scanned (and
    /// repaired) the log first — appending after unverified bytes would
    /// bury them.
    pub fn open_append(dir: &Path) -> Result<Wal, StoreError> {
        Wal::open_append_with(dir, StoreIo::from_env())
    }

    /// [`Wal::open_append`] on an explicit I/O implementation.
    pub fn open_append_with(dir: &Path, io: StoreIo) -> Result<Wal, StoreError> {
        let segs = Wal::segments(dir)?;
        let Some(&(seg_index, ref path)) = segs.last() else {
            return Err(StoreError::Missing {
                dir: dir.to_path_buf(),
            });
        };
        let file = io.open_append(path)?;
        let seg_len = file.len();
        Ok(Wal {
            dir: dir.to_path_buf(),
            io,
            seg_index,
            file,
            seg_len,
            segment_bytes: Wal::DEFAULT_SEGMENT_BYTES,
            sync: true,
            fault: None,
        })
    }

    /// The I/O implementation this writer runs on.
    pub fn io(&self) -> &StoreIo {
        &self.io
    }

    /// The sticky write-path fault, if this writer is poisoned.
    pub fn fault(&self) -> Option<&StoreError> {
        self.fault.as_ref()
    }

    /// Appends one frame and (by default) syncs it to disk.
    #[inline]
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        encode_frame_into(&mut frame, payload);
        self.write_batch(&frame, 1)
    }

    /// Writes `records` already-encoded frames in one `write_all` and
    /// (when `sync` is on) one `sync_data`. The roll check happens once,
    /// before the write, so a whole batch always lands in a single
    /// segment — segments may overshoot `segment_bytes` by up to one
    /// batch, which scans and compaction are indifferent to.
    ///
    /// The first failure poisons the writer permanently (see the type
    /// docs); later calls return a clone of the same fault without
    /// touching the disk.
    #[inline]
    pub(crate) fn write_batch(&mut self, bytes: &[u8], records: u64) -> Result<(), StoreError> {
        if let Some(f) = &self.fault {
            return Err(f.clone());
        }
        let result = self.try_write_batch(bytes, records);
        if let Err(e) = &result {
            self.fault = Some(e.clone());
            OBS_IO_FAULTS.incr();
        }
        result
    }

    #[inline]
    fn try_write_batch(&mut self, bytes: &[u8], records: u64) -> Result<(), StoreError> {
        if self.seg_len >= self.segment_bytes {
            self.roll()?;
        }
        self.file.write_all(bytes)?;
        if self.sync {
            self.file.sync_data()?;
            OBS_FSYNCS.incr();
        }
        self.seg_len += bytes.len() as u64;
        OBS_APPENDS.add(records);
        Ok(())
    }

    fn roll(&mut self) -> Result<(), StoreError> {
        let path = Wal::seg_path(&self.dir, self.seg_index + 1);
        self.file = Wal::write_header(&self.io, &path)?;
        self.seg_index += 1;
        self.seg_len = SEGMENT_HEADER_LEN as u64;
        Ok(())
    }
}

/// Encodes one `REC!` frame (header + payload) onto the end of `buf`.
/// Public so the bench's raw-syscall baseline can produce byte-identical
/// frames without going through a writer.
pub fn encode_frame_into(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.reserve(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// When a group-commit buffer is forced to disk.
///
/// The linger bound counts *logical ticks*, not wall-clock time: the
/// clock advances once per [`GroupCommit::append`] or
/// [`GroupCommit::tick`] call, so byte-for-byte reproducible runs stay
/// reproducible (iixml-vet's determinism rule bans wall-clock reads on
/// these paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushPolicy {
    /// Flush once the buffered frames reach this many bytes.
    pub max_batch_bytes: u64,
    /// Flush once this many records are buffered.
    pub max_batch_records: u64,
    /// Flush once the oldest buffered record has waited this many ticks.
    pub max_linger_ticks: u64,
}

impl Default for FlushPolicy {
    /// Durable-every-record: byte-compatible with the pre-group-commit
    /// writer. Every append flushes (and fsyncs) immediately, so an
    /// acknowledged record is always on disk — the assumption the
    /// existing crash tests and `Session::open_journaled` callers make.
    fn default() -> FlushPolicy {
        FlushPolicy {
            max_batch_bytes: Wal::DEFAULT_SEGMENT_BYTES,
            max_batch_records: 1,
            max_linger_ticks: 0,
        }
    }
}

impl FlushPolicy {
    /// A throughput-oriented policy: up to 64 records (or a segment's
    /// worth of bytes) per fsync, with a 64-tick linger bound.
    pub fn batched() -> FlushPolicy {
        FlushPolicy {
            max_batch_bytes: Wal::DEFAULT_SEGMENT_BYTES,
            max_batch_records: 64,
            max_linger_ticks: 64,
        }
    }

    /// The default policy overridden by the `IIXML_STORE_BATCH_BYTES`,
    /// `IIXML_STORE_BATCH_RECS` and `IIXML_STORE_LINGER` environment
    /// knobs (unset or unparsable values keep the default).
    pub fn from_env() -> FlushPolicy {
        fn read(key: &str) -> Option<u64> {
            std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
        }
        let mut policy = FlushPolicy::default();
        if let Some(v) = read(keys::ENV_STORE_BATCH_BYTES) {
            policy.max_batch_bytes = v.max(1);
        }
        if let Some(v) = read(keys::ENV_STORE_BATCH_RECS) {
            policy.max_batch_records = v.max(1);
        }
        if let Some(v) = read(keys::ENV_STORE_LINGER) {
            policy.max_linger_ticks = v;
        }
        policy
    }
}

/// A group-commit writer over a [`Wal`]: appends buffer encoded frames
/// in memory and a *flush* moves the whole batch to disk with a single
/// `write_all` + `sync_data`, amortizing the fsync that dominates
/// per-record append cost.
///
/// Durability contract: a record is durable only once its batch has
/// flushed. [`GroupCommit::sync`] is the explicit barrier — after it
/// returns, every accepted record is on disk (read-your-writes at
/// commit points). A crash mid-batch tears the batch's frames at some
/// byte; the scan classifies that as a torn tail and recovery resumes
/// from the last fully-fsynced batch. Records never reorder: the
/// buffer preserves append order and flushes are sequential.
///
/// Fail-safe: the first failed flush poisons the underlying [`Wal`];
/// from then on `append`, `tick`, and `sync` all return the sticky
/// fault and nothing more reaches the disk — no retry-and-pretend over
/// an unknown on-disk suffix. Dropping a `GroupCommit` still flushes,
/// but a failure there is *recorded* (the drop-fault slot and the
/// `store.io_faults` counter — see [`take_drop_fault`]), never
/// silently discarded; callers that need the guarantee synchronously
/// call [`GroupCommit::sync`].
pub struct GroupCommit {
    wal: Wal,
    policy: FlushPolicy,
    buf: Vec<u8>,
    buffered: u64,
    tick: u64,
    oldest_tick: u64,
}

impl GroupCommit {
    /// Wraps `wal` with the given flush policy. The inner WAL's `sync`
    /// flag is forced on: the batch write is the one sync point.
    pub fn new(mut wal: Wal, policy: FlushPolicy) -> GroupCommit {
        wal.sync = true;
        GroupCommit {
            wal,
            policy,
            buf: Vec::new(),
            buffered: 0,
            tick: 0,
            oldest_tick: 0,
        }
    }

    /// The active flush policy.
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Replaces the flush policy, flushing immediately if the buffered
    /// batch already exceeds the new bounds.
    pub fn set_policy(&mut self, policy: FlushPolicy) -> Result<(), StoreError> {
        self.policy = policy;
        self.flush_if_due()
    }

    /// Sets the segment roll threshold on the inner WAL.
    pub fn set_segment_bytes(&mut self, bytes: u64) {
        self.wal.segment_bytes = bytes.max(SEGMENT_HEADER_LEN as u64 + 1);
    }

    /// Records accepted but not yet flushed to disk.
    pub fn pending_records(&self) -> u64 {
        self.buffered
    }

    /// The I/O implementation the inner WAL runs on.
    pub fn io(&self) -> &StoreIo {
        self.wal.io()
    }

    /// The sticky write-path fault, if this writer is poisoned.
    pub fn fault(&self) -> Option<&StoreError> {
        self.wal.fault()
    }

    /// Accepts one record into the batch, flushing when the policy says
    /// the batch is due. Advances the logical clock by one tick.
    /// A poisoned writer accepts nothing and returns its sticky fault.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if let Some(f) = self.wal.fault() {
            return Err(f.clone());
        }
        self.tick += 1;
        if self.buffered == 0 {
            self.oldest_tick = self.tick;
        }
        encode_frame_into(&mut self.buf, payload);
        self.buffered += 1;
        OBS_BATCHED_APPENDS.incr();
        self.flush_if_due()
    }

    /// Advances the logical clock without appending, flushing when the
    /// oldest buffered record has lingered past the policy bound. Call
    /// this from externally-driven step loops so a lightly-loaded
    /// session cannot hold records in memory indefinitely.
    pub fn tick(&mut self) -> Result<(), StoreError> {
        self.tick += 1;
        self.flush_if_due()
    }

    fn flush_if_due(&mut self) -> Result<(), StoreError> {
        if self.buffered == 0 {
            return Ok(());
        }
        let due = self.buffered >= self.policy.max_batch_records
            || self.buf.len() as u64 >= self.policy.max_batch_bytes
            || self.tick.saturating_sub(self.oldest_tick) >= self.policy.max_linger_ticks;
        if due {
            self.sync()
        } else {
            Ok(())
        }
    }

    /// The durability barrier: flushes any buffered records (one write,
    /// one fsync). After `sync()` returns `Ok`, every accepted record is
    /// on disk. A no-op when nothing is buffered and the writer is
    /// healthy; a poisoned writer returns its sticky fault — it cannot
    /// promise durability for anything, buffered or not.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(f) = self.wal.fault() {
            return Err(f.clone());
        }
        if self.buffered == 0 {
            return Ok(());
        }
        // On failure the batch stays buffered: the records were never
        // acknowledged as durable, and the poisoned WAL refuses them
        // anyway — recovery reports them as lost *with* the fault.
        self.wal.write_batch(&self.buf, self.buffered)?;
        self.buf.clear();
        self.buffered = 0;
        OBS_BATCH_FLUSHES.incr();
        Ok(())
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        // A failed flush here has no caller to report to, but it must
        // not vanish: record it in the drop-fault slot and the
        // io-faults counter. An already-poisoned writer reported its
        // fault when it happened — drop stays quiet then.
        if self.wal.fault().is_some() {
            return;
        }
        if let Err(e) = self.sync() {
            note_drop_fault(e);
        }
    }
}

/// Atomically retires a snapshot-covered segment: rename to a
/// `.retired` name — invisible to [`Wal::segments`], so scans and
/// appends already behave as if it were gone — then directory sync,
/// then delete. A crash *or failure* between the steps leaves either
/// the live segment (retirement simply did not happen) or a `.retired`
/// tombstone, which [`sweep_retired`] removes at recovery; a failed
/// directory sync propagates (counted in `store.dir_sync_fails`)
/// instead of letting an unsynced rename masquerade as durable.
pub(crate) fn retire_segment(dir: &Path, io: &StoreIo, segment: &Path) -> Result<(), StoreError> {
    let Some(name) = segment.file_name() else {
        return Err(StoreError::Io {
            path: segment.to_path_buf(),
            message: "segment path has no file name".into(),
        });
    };
    let mut tomb = name.to_os_string();
    tomb.push(".retired");
    let tomb = dir.join(tomb);
    io.rename(segment, &tomb)?;
    match io.dir_sync(dir) {
        Ok(()) => OBS_FSYNCS.incr(),
        Err(e) => {
            // The tombstone stays behind; sweep_retired removes it the
            // next time recovery visits the directory.
            OBS_DIR_SYNC_FAILS.incr();
            return Err(e);
        }
    }
    io.remove_file(&tomb)?;
    OBS_SEGMENTS_RETIRED.incr();
    Ok(())
}

/// Removes `.retired` tombstones left by a crash mid-retirement (the
/// counterpart of [`crate::snapshot::sweep_tmp`] for segments).
pub(crate) fn sweep_retired(dir: &Path) -> Result<(), StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("seg-") && name.ends_with(".retired") {
            let path = entry.path();
            std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
        }
    }
    Ok(())
}

/// How a scan's first bad byte was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// The file ends inside a frame header or inside a frame's declared
    /// payload — the shape of an interrupted write.
    Torn,
    /// Bytes where a frame should start are not `REC!`.
    BadMagic,
    /// A complete frame is present but its checksum disagrees.
    BadCrc,
    /// A segment header is malformed (wrong magic).
    BadHeader,
}

/// The first damage a scan found, plus what lies beyond it.
#[derive(Debug, Clone)]
pub struct Damage {
    /// Segment file where the damage starts.
    pub segment: PathBuf,
    /// Byte offset of the first bad byte within that segment.
    pub offset: u64,
    /// Classification of the bad bytes.
    pub kind: DamageKind,
    /// Human-readable detail.
    pub reason: String,
    /// Valid-looking frames found beyond the damage (by re-syncing on
    /// the frame magic and in later segments). They are unusable —
    /// Refine chains are order-dependent — but their presence proves the
    /// damage is mid-log corruption rather than a torn tail.
    pub stranded: usize,
}

impl Damage {
    /// Is this the benign crash artifact (an interrupted final write),
    /// as opposed to destroyed durable records?
    ///
    /// A torn or garbage tail with nothing valid beyond it is benign —
    /// the interrupted record was never acknowledged as durable. A
    /// complete frame failing its CRC, or any valid frame stranded
    /// beyond the damage, means durable bytes were altered.
    pub fn is_torn_tail(&self) -> bool {
        self.stranded == 0 && matches!(self.kind, DamageKind::Torn | DamageKind::BadMagic)
    }

    /// Records destroyed by the damage: none for a torn tail; at least
    /// the damaged record plus everything stranded otherwise.
    pub fn records_lost(&self) -> usize {
        if self.is_torn_tail() {
            0
        } else {
            self.stranded + 1
        }
    }
}

/// One verified frame, with its physical position (so recovery can
/// truncate the log at any record boundary).
#[derive(Debug, Clone)]
pub struct Frame {
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
    /// Segment file holding the frame.
    pub segment: PathBuf,
    /// Byte offset of the frame header within that segment.
    pub offset: u64,
}

/// The result of scanning a journal directory: every verified frame up
/// to the first damage, in append order, plus the damage (if any).
#[derive(Debug)]
pub struct ScanOutcome {
    /// Verified frames in order.
    pub frames: Vec<Frame>,
    /// The first damage found, if any. `None` means the log is clean to
    /// its end.
    pub damage: Option<Damage>,
}

/// Counts valid frames in `buf` starting at `from`, re-syncing on the
/// frame magic (used only beyond a damage point).
fn count_resynced_frames(buf: &[u8], mut from: usize) -> usize {
    let mut count = 0;
    while from + FRAME_HEADER_LEN <= buf.len() {
        if buf[from..from + 4] == FRAME_MAGIC {
            let len =
                u32::from_le_bytes([buf[from + 4], buf[from + 5], buf[from + 6], buf[from + 7]])
                    as usize;
            let crc =
                u32::from_le_bytes([buf[from + 8], buf[from + 9], buf[from + 10], buf[from + 11]]);
            let start = from + FRAME_HEADER_LEN;
            if let Some(end) = start.checked_add(len) {
                if end <= buf.len() && crc32(&buf[start..end]) == crc {
                    count += 1;
                    from = end;
                    continue;
                }
            }
        }
        from += 1;
    }
    count
}

/// Scans the journal in `dir`: verifies segment headers and every
/// frame's length and CRC, stopping at the first damage and classifying
/// it. Returns [`StoreError::Missing`] when no segments exist and
/// [`StoreError::VersionMismatch`] when the *first* segment announces a
/// format this build does not speak (later segments' headers are data
/// like any other — damage, not a version wall).
pub fn scan(dir: &Path) -> Result<ScanOutcome, StoreError> {
    let segs = Wal::segments(dir)?;
    if segs.is_empty() {
        return Err(StoreError::Missing {
            dir: dir.to_path_buf(),
        });
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut damage: Option<Damage> = None;
    let mut bufs: Vec<(PathBuf, Vec<u8>)> = Vec::with_capacity(segs.len());
    for (_, path) in &segs {
        let mut buf = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| StoreError::io(path, e))?;
        bufs.push((path.clone(), buf));
    }
    'segments: for (si, (path, buf)) in bufs.iter().enumerate() {
        // Header.
        if buf.len() < SEGMENT_HEADER_LEN || buf[..7] != SEGMENT_MAGIC {
            damage = Some(Damage {
                segment: path.clone(),
                offset: 0,
                kind: if buf.len() < SEGMENT_HEADER_LEN {
                    DamageKind::Torn
                } else {
                    DamageKind::BadHeader
                },
                reason: "segment header malformed".into(),
                stranded: count_resynced_frames(buf, 0)
                    + bufs[si + 1..]
                        .iter()
                        .map(|(_, b)| count_resynced_frames(b, 0))
                        .sum::<usize>(),
            });
            break 'segments;
        }
        if buf[7] != FORMAT_VERSION {
            if si == 0 {
                return Err(StoreError::VersionMismatch {
                    found: buf[7],
                    supported: FORMAT_VERSION,
                });
            }
            damage = Some(Damage {
                segment: path.clone(),
                offset: 7,
                kind: DamageKind::BadHeader,
                reason: format!("segment announces version {}", buf[7]),
                stranded: count_resynced_frames(buf, SEGMENT_HEADER_LEN)
                    + bufs[si + 1..]
                        .iter()
                        .map(|(_, b)| count_resynced_frames(b, 0))
                        .sum::<usize>(),
            });
            break 'segments;
        }
        // Frames.
        let mut pos = SEGMENT_HEADER_LEN;
        while pos < buf.len() {
            let bad = |kind: DamageKind, reason: String, resync_from: usize| Damage {
                segment: path.clone(),
                offset: pos as u64,
                kind,
                reason,
                stranded: count_resynced_frames(buf, resync_from)
                    + bufs[si + 1..]
                        .iter()
                        .map(|(_, b)| count_resynced_frames(b, 0))
                        .sum::<usize>(),
            };
            if pos + FRAME_HEADER_LEN > buf.len() {
                damage = Some(bad(
                    DamageKind::Torn,
                    "file ends inside a frame header".into(),
                    pos + 1,
                ));
                break 'segments;
            }
            if buf[pos..pos + 4] != FRAME_MAGIC {
                damage = Some(bad(
                    DamageKind::BadMagic,
                    "bytes where a frame should start are not a frame".into(),
                    pos + 1,
                ));
                break 'segments;
            }
            let len = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]])
                as usize;
            let crc =
                u32::from_le_bytes([buf[pos + 8], buf[pos + 9], buf[pos + 10], buf[pos + 11]]);
            let start = pos + FRAME_HEADER_LEN;
            let Some(end) = start.checked_add(len) else {
                damage = Some(bad(
                    DamageKind::Torn,
                    "frame length overflows".into(),
                    pos + 1,
                ));
                break 'segments;
            };
            if end > buf.len() {
                damage = Some(bad(
                    DamageKind::Torn,
                    format!("file ends inside a {len}-byte frame"),
                    pos + 1,
                ));
                break 'segments;
            }
            if crc32(&buf[start..end]) != crc {
                OBS_CRC_REJECTS.incr();
                damage = Some(bad(
                    DamageKind::BadCrc,
                    "frame checksum mismatch".into(),
                    end,
                ));
                break 'segments;
            }
            frames.push(Frame {
                payload: buf[start..end].to_vec(),
                segment: path.clone(),
                offset: pos as u64,
            });
            pos = end;
        }
    }
    Ok(ScanOutcome { frames, damage })
}

/// Truncates the journal at a frame boundary: `segment` is cut at
/// `offset` (or removed entirely when the cut falls inside its header)
/// and every later segment is deleted. After truncation,
/// [`Wal::open_append`] continues cleanly from the preceding frame.
pub fn truncate_at(dir: &Path, segment: &Path, offset: u64) -> Result<(), StoreError> {
    let segs = Wal::segments(dir)?;
    let mut past = false;
    for (_, path) in &segs {
        if past {
            std::fs::remove_file(path).map_err(|e| StoreError::io(path, e))?;
            continue;
        }
        if path == segment {
            past = true;
            if offset < SEGMENT_HEADER_LEN as u64 {
                std::fs::remove_file(path).map_err(|e| StoreError::io(path, e))?;
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| StoreError::io(path, e))?;
                f.set_len(offset).map_err(|e| StoreError::io(path, e))?;
                f.sync_data().map_err(|e| StoreError::io(path, e))?;
                OBS_FSYNCS.incr();
            }
        }
    }
    Ok(())
}

/// Truncates the journal at a scan's damage point: the damaged segment
/// is cut at the first bad byte (or removed entirely when the damage
/// starts in its header) and every later segment is deleted. After
/// repair, [`Wal::open_append`] continues cleanly from the last verified
/// frame.
pub fn repair(dir: &Path, damage: &Damage) -> Result<(), StoreError> {
    if damage.is_torn_tail() {
        OBS_TORN_TAILS.incr();
    }
    truncate_at(dir, &damage.segment, damage.offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iixml-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp("roundtrip");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..10u32 {
            wal.append(format!("payload-{i}").as_bytes()).unwrap();
        }
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 10);
        assert_eq!(out.frames[3].payload, b"payload-3");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll() {
        let dir = tmp("roll");
        let mut wal = Wal::create(&dir).unwrap();
        wal.segment_bytes = 64; // force frequent rolls
        for i in 0..20u32 {
            wal.append(format!("record number {i} with some padding").as_bytes())
                .unwrap();
        }
        assert!(Wal::segments(&dir).unwrap().len() > 1, "no roll happened");
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 20);
        // Appending after reopen continues the chain.
        let mut wal = Wal::open_append(&dir).unwrap();
        wal.append(b"after reopen").unwrap();
        assert_eq!(scan(&dir).unwrap().frames.len(), 21);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_benign_and_repairable() {
        let dir = tmp("torn");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..5u32 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        // Tear the last frame: cut 3 bytes off the file.
        let (_, path) = Wal::segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let out = scan(&dir).unwrap();
        assert_eq!(out.frames.len(), 4);
        let damage = out.damage.unwrap();
        assert!(damage.is_torn_tail());
        assert_eq!(damage.records_lost(), 0);
        repair(&dir, &damage).unwrap();
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 4);
        // And the repaired log accepts appends again.
        let mut wal = Wal::open_append(&dir).unwrap();
        wal.append(b"rec-4-again").unwrap();
        assert_eq!(scan(&dir).unwrap().frames.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn midlog_bitflip_is_detected_with_stranded_count() {
        let dir = tmp("bitflip");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..6u32 {
            wal.append(format!("record payload {i}").as_bytes())
                .unwrap();
        }
        let (_, path) = Wal::segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the 3rd frame's payload.
        let frame = SEGMENT_HEADER_LEN + 2 * (FRAME_HEADER_LEN + b"record payload 0".len());
        bytes[frame + FRAME_HEADER_LEN + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let out = scan(&dir).unwrap();
        assert_eq!(out.frames.len(), 2);
        let damage = out.damage.unwrap();
        assert_eq!(damage.kind, DamageKind::BadCrc);
        assert!(!damage.is_torn_tail());
        assert_eq!(damage.stranded, 3, "three records stranded beyond the flip");
        assert_eq!(damage.records_lost(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_default_policy_is_durable_every_record() {
        let dir = tmp("gc-default");
        let mut gc = GroupCommit::new(Wal::create(&dir).unwrap(), FlushPolicy::default());
        gc.append(b"rec-0").unwrap();
        assert_eq!(
            gc.pending_records(),
            0,
            "default policy flushes each append"
        );
        assert_eq!(scan(&dir).unwrap().frames.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_record_threshold() {
        let dir = tmp("gc-records");
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: 4,
            max_linger_ticks: u64::MAX,
        };
        let mut gc = GroupCommit::new(Wal::create(&dir).unwrap(), policy);
        for i in 0..3u32 {
            gc.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        assert_eq!(gc.pending_records(), 3);
        assert_eq!(scan(&dir).unwrap().frames.len(), 0, "batch still in memory");
        gc.append(b"rec-3").unwrap();
        assert_eq!(gc.pending_records(), 0);
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 4);
        assert_eq!(out.frames[2].payload, b"rec-2");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_sync_is_the_read_your_writes_barrier() {
        let dir = tmp("gc-sync");
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: u64::MAX,
            max_linger_ticks: u64::MAX,
        };
        let mut gc = GroupCommit::new(Wal::create(&dir).unwrap(), policy);
        for i in 0..5u32 {
            gc.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        assert_eq!(scan(&dir).unwrap().frames.len(), 0);
        gc.sync().unwrap();
        assert_eq!(gc.pending_records(), 0);
        assert_eq!(scan(&dir).unwrap().frames.len(), 5);
        // Idempotent.
        gc.sync().unwrap();
        assert_eq!(scan(&dir).unwrap().frames.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_linger_bound_flushes_on_ticks() {
        let dir = tmp("gc-linger");
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: u64::MAX,
            max_linger_ticks: 4,
        };
        let mut gc = GroupCommit::new(Wal::create(&dir).unwrap(), policy);
        gc.append(b"lonely").unwrap();
        for _ in 0..2 {
            gc.tick().unwrap();
            assert_eq!(gc.pending_records(), 1, "still within the linger bound");
        }
        for _ in 0..2 {
            gc.tick().unwrap();
        }
        assert_eq!(gc.pending_records(), 0, "linger bound reached");
        assert_eq!(scan(&dir).unwrap().frames.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_drop_flushes_best_effort() {
        let dir = tmp("gc-drop");
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: u64::MAX,
            max_linger_ticks: u64::MAX,
        };
        let mut gc = GroupCommit::new(Wal::create(&dir).unwrap(), policy);
        gc.append(b"rec-0").unwrap();
        gc.append(b"rec-1").unwrap();
        drop(gc);
        assert_eq!(scan(&dir).unwrap().frames.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_batch_recovers_to_last_flushed_batch() {
        let dir = tmp("gc-torn");
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: 3,
            max_linger_ticks: u64::MAX,
        };
        let mut gc = GroupCommit::new(Wal::create(&dir).unwrap(), policy);
        for i in 0..3u32 {
            gc.append(format!("first-batch-{i}").as_bytes()).unwrap();
        }
        let (_, path) = Wal::segments(&dir).unwrap().pop().unwrap();
        let flushed_len = std::fs::metadata(&path).unwrap().len();
        for i in 0..3u32 {
            gc.append(format!("second-batch-{i}").as_bytes()).unwrap();
        }
        drop(gc);
        // Tear the second batch mid-write: keep its first frame plus a
        // few bytes of the second, as an interrupted write would.
        let torn = flushed_len + (FRAME_HEADER_LEN + b"second-batch-0".len()) as u64 + 5;
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(torn)
            .unwrap();
        let out = scan(&dir).unwrap();
        assert_eq!(out.frames.len(), 4, "first batch plus the intact frame");
        let damage = out.damage.unwrap();
        assert!(
            damage.is_torn_tail(),
            "torn batch is the benign crash shape"
        );
        assert_eq!(damage.records_lost(), 0);
        repair(&dir, &damage).unwrap();
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retired_segments_vanish_and_scans_continue() {
        let dir = tmp("retire");
        let mut wal = Wal::create(&dir).unwrap();
        wal.segment_bytes = 64; // force rolls
        for i in 0..20u32 {
            wal.append(format!("record number {i} with some padding").as_bytes())
                .unwrap();
        }
        let segs = Wal::segments(&dir).unwrap();
        assert!(segs.len() > 2);
        let before = scan(&dir).unwrap().frames.len();
        let dropped = {
            let first = &segs[0].1;
            let bytes = std::fs::read(first).unwrap();
            let count = scan(&dir)
                .unwrap()
                .frames
                .iter()
                .filter(|f| &f.segment == first)
                .count();
            assert!(bytes.len() > SEGMENT_HEADER_LEN);
            retire_segment(&dir, &StoreIo::real(), first).unwrap();
            count
        };
        let after = Wal::segments(&dir).unwrap();
        assert_eq!(after.len(), segs.len() - 1);
        assert!(after[0].0 > 0, "first index retired");
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none(), "scan tolerates a retired prefix");
        assert_eq!(out.frames.len(), before - dropped);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_retired_removes_tombstones() {
        let dir = tmp("sweep-retired");
        let mut wal = Wal::create(&dir).unwrap();
        wal.append(b"live").unwrap();
        std::fs::write(dir.join("seg-000099.wal.retired"), b"junk").unwrap();
        sweep_retired(&dir).unwrap();
        assert!(!dir.join("seg-000099.wal.retired").exists());
        assert_eq!(scan(&dir).unwrap().frames.len(), 1, "live data untouched");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_flush_poisons_the_writer_permanently() {
        use crate::io::{Fault, IoOp};
        let dir = tmp("poison");
        let io = StoreIo::faulty(11, 0.0);
        let mut gc = GroupCommit::new(
            Wal::create_with(&dir, io.clone()).unwrap(),
            FlushPolicy::default(),
        );
        gc.append(b"durable").unwrap();
        io.inject_once(IoOp::Sync, Fault::Eio);
        let first = gc.append(b"doomed").unwrap_err();
        // Sticky: every later operation returns the same fault without
        // touching the disk, and nothing pretends to be durable.
        assert_eq!(gc.append(b"after").unwrap_err(), first);
        assert_eq!(gc.sync().unwrap_err(), first);
        assert_eq!(gc.tick().unwrap_err(), first);
        assert_eq!(gc.fault(), Some(&first));
        drop(gc);
        assert_eq!(
            take_drop_fault(),
            None,
            "an already-reported fault is not re-reported at drop"
        );
        // The acknowledged record survives. (The unacknowledged one may
        // too — a failed fsync leaves page-cache fate undefined, and
        // EIO without page loss keeps the bytes; that is not a *loss*.)
        let out = scan(&dir).unwrap();
        assert_eq!(out.frames[0].payload, b"durable");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_time_flush_failure_is_recorded_not_swallowed() {
        use crate::io::{Fault, IoOp};
        let dir = tmp("drop-fault");
        let io = StoreIo::faulty(13, 0.0);
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: u64::MAX,
            max_linger_ticks: u64::MAX,
        };
        let mut gc = GroupCommit::new(Wal::create_with(&dir, io.clone()).unwrap(), policy);
        let _ = take_drop_fault();
        gc.append(b"buffered").unwrap();
        io.inject_once(IoOp::Write, Fault::Enospc);
        drop(gc);
        let fault = take_drop_fault().expect("drop-time failure must be recorded");
        assert!(matches!(fault, StoreError::Io { .. }));
        assert_eq!(take_drop_fault(), None, "the slot is take-once");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_loss_rolls_back_to_the_sync_barrier() {
        use crate::io::{Fault, IoOp};
        let dir = tmp("fsyncgate");
        let io = StoreIo::faulty(17, 0.0);
        let policy = FlushPolicy {
            max_batch_bytes: u64::MAX,
            max_batch_records: 2,
            max_linger_ticks: u64::MAX,
        };
        let mut gc = GroupCommit::new(Wal::create_with(&dir, io.clone()).unwrap(), policy);
        gc.append(b"acked-0").unwrap();
        gc.append(b"acked-1").unwrap(); // flush: both durable
        io.inject_once(IoOp::Sync, Fault::FsyncLoss);
        gc.append(b"lost-0").unwrap();
        assert!(gc.append(b"lost-1").is_err(), "second flush fails");
        drop(gc);
        // The unsynced batch vanished with the failed fsync; the log is
        // clean up to the last acknowledged barrier.
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 2);
        assert_eq!(out.frames[1].payload, b"acked-1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retire_dir_sync_failure_propagates_and_leaves_the_tombstone() {
        use crate::io::{Fault, IoOp};
        let dir = tmp("retire-fault");
        let io = StoreIo::faulty(19, 0.0);
        let mut wal = Wal::create_with(&dir, io.clone()).unwrap();
        wal.segment_bytes = 64;
        for i in 0..20u32 {
            wal.append(format!("record number {i} with some padding").as_bytes())
                .unwrap();
        }
        let segs = Wal::segments(&dir).unwrap();
        let first = segs[0].1.clone();
        io.inject_once(IoOp::DirSync, Fault::Eio);
        assert!(retire_segment(&dir, &io, &first).is_err());
        let tomb = dir.join(format!(
            "{}.retired",
            first.file_name().unwrap().to_str().unwrap()
        ));
        assert!(tomb.exists(), "tombstone left for sweep_retired");
        assert!(!first.exists());
        sweep_retired(&dir).unwrap();
        assert!(!tomb.exists());
        assert!(scan(&dir).unwrap().damage.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_of_arbitrary_bytes_never_panics() {
        let dir = tmp("arb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000000.wal");
        for junk in [
            &b""[..],
            &b"IIX"[..],
            &b"IIXJWAL\x01REC!\xff\xff\xff\xff\0\0\0\0"[..],
            &[0u8; 64][..],
        ] {
            std::fs::write(&path, junk).unwrap();
            let _ = scan(&dir);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
