//! The write-ahead log: append-only segment files of checksummed,
//! length-prefixed frames.
//!
//! ## On-disk layout
//!
//! A journal directory holds segments `seg-NNNNNN.wal`. Each segment
//! starts with an 8-byte header — magic `IIXJWAL` plus one format
//! version byte (see CONTRIBUTING.md's versioning policy) — followed by
//! frames:
//!
//! ```text
//! +------+--------------+--------------+---------------+
//! | REC! | len: u32 LE  | crc32: u32 LE| payload (len) |
//! +------+--------------+--------------+---------------+
//! ```
//!
//! The per-frame magic makes frames re-synchronizable: after damage,
//! [`scan`] can count how many valid-looking frames are stranded beyond
//! it, which is what distinguishes a *torn tail* (the normal crash
//! artifact — nothing durable was lost) from *mid-log corruption* (bit
//! rot or tampering — durable records were destroyed).
//!
//! Segments roll at [`Wal::DEFAULT_SEGMENT_BYTES`] so long chains spread
//! over many files and damage stays localized.

use crate::crc::crc32;
use crate::error::StoreError;
use iixml_obs::{keys, LazyCounter};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Frames appended to the WAL.
static OBS_APPENDS: LazyCounter = LazyCounter::new(keys::STORE_APPENDS);
/// `fsync`/`sync_data` calls issued (appends and snapshot writes).
pub(crate) static OBS_FSYNCS: LazyCounter = LazyCounter::new(keys::STORE_FSYNCS);
/// Frames rejected by checksum verification during scans.
pub(crate) static OBS_CRC_REJECTS: LazyCounter = LazyCounter::new(keys::STORE_CRC_REJECTS);
/// Torn tails truncated during recovery.
static OBS_TORN_TAILS: LazyCounter = LazyCounter::new(keys::STORE_TORN_TAILS);

pub use crate::format::{FORMAT_VERSION, FRAME_MAGIC, SEGMENT_MAGIC};

use crate::format::{FRAME_HEADER_LEN, SEGMENT_HEADER_LEN};

/// An open WAL, positioned for appends at the tail of the newest
/// segment.
pub struct Wal {
    dir: PathBuf,
    seg_index: u64,
    file: File,
    seg_len: u64,
    /// Roll to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
    /// Issue `sync_data` after every append (on by default; benches may
    /// turn it off to measure the in-memory cost separately).
    pub sync: bool,
}

impl Wal {
    /// Default segment roll size.
    pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

    fn seg_path(dir: &Path, index: u64) -> PathBuf {
        dir.join(format!("seg-{index:06}.wal"))
    }

    /// Sorted (index, path) pairs of the segments present in `dir`.
    pub fn segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(idx) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((idx, entry.path()));
            }
        }
        out.sort();
        Ok(out)
    }

    fn write_header(path: &Path) -> Result<File, StoreError> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        let mut header = [0u8; SEGMENT_HEADER_LEN];
        header[..7].copy_from_slice(&SEGMENT_MAGIC);
        header[7] = FORMAT_VERSION;
        file.write_all(&header)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(file)
    }

    /// Creates a fresh WAL in `dir` (creating the directory if needed).
    /// Fails if segments already exist — recovery, not blind appending,
    /// is the way into an existing journal.
    pub fn create(dir: &Path) -> Result<Wal, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, e))?;
        if !Wal::segments(dir)?.is_empty() {
            return Err(StoreError::Io {
                path: dir.to_path_buf(),
                message: "journal already exists (recover it instead of overwriting)".into(),
            });
        }
        let path = Wal::seg_path(dir, 0);
        let file = Wal::write_header(&path)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            seg_index: 0,
            file,
            seg_len: SEGMENT_HEADER_LEN as u64,
            segment_bytes: Wal::DEFAULT_SEGMENT_BYTES,
            sync: true,
        })
    }

    /// Opens an existing WAL for appending at the tail of its newest
    /// segment. The caller is responsible for having scanned (and
    /// repaired) the log first — appending after unverified bytes would
    /// bury them.
    pub fn open_append(dir: &Path) -> Result<Wal, StoreError> {
        let segs = Wal::segments(dir)?;
        let Some(&(seg_index, ref path)) = segs.last() else {
            return Err(StoreError::Missing {
                dir: dir.to_path_buf(),
            });
        };
        let meta = std::fs::metadata(path).map_err(|e| StoreError::io(path, e))?;
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            seg_index,
            file,
            seg_len: meta.len(),
            segment_bytes: Wal::DEFAULT_SEGMENT_BYTES,
            sync: true,
        })
    }

    /// Appends one frame and (by default) syncs it to disk.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if self.seg_len >= self.segment_bytes {
            self.roll()?;
        }
        let path = Wal::seg_path(&self.dir, self.seg_index);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        frame.extend_from_slice(&FRAME_MAGIC);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(&path, e))?;
        if self.sync {
            self.file
                .sync_data()
                .map_err(|e| StoreError::io(&path, e))?;
            OBS_FSYNCS.incr();
        }
        self.seg_len += frame.len() as u64;
        OBS_APPENDS.incr();
        Ok(())
    }

    fn roll(&mut self) -> Result<(), StoreError> {
        self.seg_index += 1;
        let path = Wal::seg_path(&self.dir, self.seg_index);
        self.file = Wal::write_header(&path)?;
        self.seg_len = SEGMENT_HEADER_LEN as u64;
        Ok(())
    }
}

/// How a scan's first bad byte was classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DamageKind {
    /// The file ends inside a frame header or inside a frame's declared
    /// payload — the shape of an interrupted write.
    Torn,
    /// Bytes where a frame should start are not `REC!`.
    BadMagic,
    /// A complete frame is present but its checksum disagrees.
    BadCrc,
    /// A segment header is malformed (wrong magic).
    BadHeader,
}

/// The first damage a scan found, plus what lies beyond it.
#[derive(Debug, Clone)]
pub struct Damage {
    /// Segment file where the damage starts.
    pub segment: PathBuf,
    /// Byte offset of the first bad byte within that segment.
    pub offset: u64,
    /// Classification of the bad bytes.
    pub kind: DamageKind,
    /// Human-readable detail.
    pub reason: String,
    /// Valid-looking frames found beyond the damage (by re-syncing on
    /// the frame magic and in later segments). They are unusable —
    /// Refine chains are order-dependent — but their presence proves the
    /// damage is mid-log corruption rather than a torn tail.
    pub stranded: usize,
}

impl Damage {
    /// Is this the benign crash artifact (an interrupted final write),
    /// as opposed to destroyed durable records?
    ///
    /// A torn or garbage tail with nothing valid beyond it is benign —
    /// the interrupted record was never acknowledged as durable. A
    /// complete frame failing its CRC, or any valid frame stranded
    /// beyond the damage, means durable bytes were altered.
    pub fn is_torn_tail(&self) -> bool {
        self.stranded == 0 && matches!(self.kind, DamageKind::Torn | DamageKind::BadMagic)
    }

    /// Records destroyed by the damage: none for a torn tail; at least
    /// the damaged record plus everything stranded otherwise.
    pub fn records_lost(&self) -> usize {
        if self.is_torn_tail() {
            0
        } else {
            self.stranded + 1
        }
    }
}

/// One verified frame, with its physical position (so recovery can
/// truncate the log at any record boundary).
#[derive(Debug, Clone)]
pub struct Frame {
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
    /// Segment file holding the frame.
    pub segment: PathBuf,
    /// Byte offset of the frame header within that segment.
    pub offset: u64,
}

/// The result of scanning a journal directory: every verified frame up
/// to the first damage, in append order, plus the damage (if any).
#[derive(Debug)]
pub struct ScanOutcome {
    /// Verified frames in order.
    pub frames: Vec<Frame>,
    /// The first damage found, if any. `None` means the log is clean to
    /// its end.
    pub damage: Option<Damage>,
}

/// Counts valid frames in `buf` starting at `from`, re-syncing on the
/// frame magic (used only beyond a damage point).
fn count_resynced_frames(buf: &[u8], mut from: usize) -> usize {
    let mut count = 0;
    while from + FRAME_HEADER_LEN <= buf.len() {
        if buf[from..from + 4] == FRAME_MAGIC {
            let len =
                u32::from_le_bytes([buf[from + 4], buf[from + 5], buf[from + 6], buf[from + 7]])
                    as usize;
            let crc =
                u32::from_le_bytes([buf[from + 8], buf[from + 9], buf[from + 10], buf[from + 11]]);
            let start = from + FRAME_HEADER_LEN;
            if let Some(end) = start.checked_add(len) {
                if end <= buf.len() && crc32(&buf[start..end]) == crc {
                    count += 1;
                    from = end;
                    continue;
                }
            }
        }
        from += 1;
    }
    count
}

/// Scans the journal in `dir`: verifies segment headers and every
/// frame's length and CRC, stopping at the first damage and classifying
/// it. Returns [`StoreError::Missing`] when no segments exist and
/// [`StoreError::VersionMismatch`] when the *first* segment announces a
/// format this build does not speak (later segments' headers are data
/// like any other — damage, not a version wall).
pub fn scan(dir: &Path) -> Result<ScanOutcome, StoreError> {
    let segs = Wal::segments(dir)?;
    if segs.is_empty() {
        return Err(StoreError::Missing {
            dir: dir.to_path_buf(),
        });
    }
    let mut frames: Vec<Frame> = Vec::new();
    let mut damage: Option<Damage> = None;
    let mut bufs: Vec<(PathBuf, Vec<u8>)> = Vec::with_capacity(segs.len());
    for (_, path) in &segs {
        let mut buf = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut buf))
            .map_err(|e| StoreError::io(path, e))?;
        bufs.push((path.clone(), buf));
    }
    'segments: for (si, (path, buf)) in bufs.iter().enumerate() {
        // Header.
        if buf.len() < SEGMENT_HEADER_LEN || buf[..7] != SEGMENT_MAGIC {
            damage = Some(Damage {
                segment: path.clone(),
                offset: 0,
                kind: if buf.len() < SEGMENT_HEADER_LEN {
                    DamageKind::Torn
                } else {
                    DamageKind::BadHeader
                },
                reason: "segment header malformed".into(),
                stranded: count_resynced_frames(buf, 0)
                    + bufs[si + 1..]
                        .iter()
                        .map(|(_, b)| count_resynced_frames(b, 0))
                        .sum::<usize>(),
            });
            break 'segments;
        }
        if buf[7] != FORMAT_VERSION {
            if si == 0 {
                return Err(StoreError::VersionMismatch {
                    found: buf[7],
                    supported: FORMAT_VERSION,
                });
            }
            damage = Some(Damage {
                segment: path.clone(),
                offset: 7,
                kind: DamageKind::BadHeader,
                reason: format!("segment announces version {}", buf[7]),
                stranded: count_resynced_frames(buf, SEGMENT_HEADER_LEN)
                    + bufs[si + 1..]
                        .iter()
                        .map(|(_, b)| count_resynced_frames(b, 0))
                        .sum::<usize>(),
            });
            break 'segments;
        }
        // Frames.
        let mut pos = SEGMENT_HEADER_LEN;
        while pos < buf.len() {
            let bad = |kind: DamageKind, reason: String, resync_from: usize| Damage {
                segment: path.clone(),
                offset: pos as u64,
                kind,
                reason,
                stranded: count_resynced_frames(buf, resync_from)
                    + bufs[si + 1..]
                        .iter()
                        .map(|(_, b)| count_resynced_frames(b, 0))
                        .sum::<usize>(),
            };
            if pos + FRAME_HEADER_LEN > buf.len() {
                damage = Some(bad(
                    DamageKind::Torn,
                    "file ends inside a frame header".into(),
                    pos + 1,
                ));
                break 'segments;
            }
            if buf[pos..pos + 4] != FRAME_MAGIC {
                damage = Some(bad(
                    DamageKind::BadMagic,
                    "bytes where a frame should start are not a frame".into(),
                    pos + 1,
                ));
                break 'segments;
            }
            let len = u32::from_le_bytes([buf[pos + 4], buf[pos + 5], buf[pos + 6], buf[pos + 7]])
                as usize;
            let crc =
                u32::from_le_bytes([buf[pos + 8], buf[pos + 9], buf[pos + 10], buf[pos + 11]]);
            let start = pos + FRAME_HEADER_LEN;
            let Some(end) = start.checked_add(len) else {
                damage = Some(bad(
                    DamageKind::Torn,
                    "frame length overflows".into(),
                    pos + 1,
                ));
                break 'segments;
            };
            if end > buf.len() {
                damage = Some(bad(
                    DamageKind::Torn,
                    format!("file ends inside a {len}-byte frame"),
                    pos + 1,
                ));
                break 'segments;
            }
            if crc32(&buf[start..end]) != crc {
                OBS_CRC_REJECTS.incr();
                damage = Some(bad(
                    DamageKind::BadCrc,
                    "frame checksum mismatch".into(),
                    end,
                ));
                break 'segments;
            }
            frames.push(Frame {
                payload: buf[start..end].to_vec(),
                segment: path.clone(),
                offset: pos as u64,
            });
            pos = end;
        }
    }
    Ok(ScanOutcome { frames, damage })
}

/// Truncates the journal at a frame boundary: `segment` is cut at
/// `offset` (or removed entirely when the cut falls inside its header)
/// and every later segment is deleted. After truncation,
/// [`Wal::open_append`] continues cleanly from the preceding frame.
pub fn truncate_at(dir: &Path, segment: &Path, offset: u64) -> Result<(), StoreError> {
    let segs = Wal::segments(dir)?;
    let mut past = false;
    for (_, path) in &segs {
        if past {
            std::fs::remove_file(path).map_err(|e| StoreError::io(path, e))?;
            continue;
        }
        if path == segment {
            past = true;
            if offset < SEGMENT_HEADER_LEN as u64 {
                std::fs::remove_file(path).map_err(|e| StoreError::io(path, e))?;
            } else {
                let f = OpenOptions::new()
                    .write(true)
                    .open(path)
                    .map_err(|e| StoreError::io(path, e))?;
                f.set_len(offset).map_err(|e| StoreError::io(path, e))?;
                f.sync_data().map_err(|e| StoreError::io(path, e))?;
                OBS_FSYNCS.incr();
            }
        }
    }
    Ok(())
}

/// Truncates the journal at a scan's damage point: the damaged segment
/// is cut at the first bad byte (or removed entirely when the damage
/// starts in its header) and every later segment is deleted. After
/// repair, [`Wal::open_append`] continues cleanly from the last verified
/// frame.
pub fn repair(dir: &Path, damage: &Damage) -> Result<(), StoreError> {
    if damage.is_torn_tail() {
        OBS_TORN_TAILS.incr();
    }
    truncate_at(dir, &damage.segment, damage.offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iixml-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp("roundtrip");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..10u32 {
            wal.append(format!("payload-{i}").as_bytes()).unwrap();
        }
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 10);
        assert_eq!(out.frames[3].payload, b"payload-3");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll() {
        let dir = tmp("roll");
        let mut wal = Wal::create(&dir).unwrap();
        wal.segment_bytes = 64; // force frequent rolls
        for i in 0..20u32 {
            wal.append(format!("record number {i} with some padding").as_bytes())
                .unwrap();
        }
        assert!(Wal::segments(&dir).unwrap().len() > 1, "no roll happened");
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 20);
        // Appending after reopen continues the chain.
        let mut wal = Wal::open_append(&dir).unwrap();
        wal.append(b"after reopen").unwrap();
        assert_eq!(scan(&dir).unwrap().frames.len(), 21);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_benign_and_repairable() {
        let dir = tmp("torn");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..5u32 {
            wal.append(format!("rec-{i}").as_bytes()).unwrap();
        }
        // Tear the last frame: cut 3 bytes off the file.
        let (_, path) = Wal::segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let out = scan(&dir).unwrap();
        assert_eq!(out.frames.len(), 4);
        let damage = out.damage.unwrap();
        assert!(damage.is_torn_tail());
        assert_eq!(damage.records_lost(), 0);
        repair(&dir, &damage).unwrap();
        let out = scan(&dir).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 4);
        // And the repaired log accepts appends again.
        let mut wal = Wal::open_append(&dir).unwrap();
        wal.append(b"rec-4-again").unwrap();
        assert_eq!(scan(&dir).unwrap().frames.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn midlog_bitflip_is_detected_with_stranded_count() {
        let dir = tmp("bitflip");
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..6u32 {
            wal.append(format!("record payload {i}").as_bytes())
                .unwrap();
        }
        let (_, path) = Wal::segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the 3rd frame's payload.
        let frame = SEGMENT_HEADER_LEN + 2 * (FRAME_HEADER_LEN + b"record payload 0".len());
        bytes[frame + FRAME_HEADER_LEN + 4] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let out = scan(&dir).unwrap();
        assert_eq!(out.frames.len(), 2);
        let damage = out.damage.unwrap();
        assert_eq!(damage.kind, DamageKind::BadCrc);
        assert!(!damage.is_torn_tail());
        assert_eq!(damage.stranded, 3, "three records stranded beyond the flip");
        assert_eq!(damage.records_lost(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_of_arbitrary_bytes_never_panics() {
        let dir = tmp("arb");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000000.wal");
        for junk in [
            &b""[..],
            &b"IIX"[..],
            &b"IIXJWAL\x01REC!\xff\xff\xff\xff\0\0\0\0"[..],
            &[0u8; 64][..],
        ] {
            std::fs::write(&path, junk).unwrap();
            let _ = scan(&dir);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
