//! Deterministic crash/corruption injection for the journal.
//!
//! The recovery invariant ("replay the surviving prefix or degrade,
//! never diverge, never panic") is only as credible as the damage it was
//! tested against. [`Corruptor`] produces that damage reproducibly: it
//! is seeded like `FaultySource` (PR 2's unreliable-source model), so a
//! failing case's seed pins the exact torn byte or flipped bit.

use crate::error::StoreError;
use crate::wal::Wal;
use iixml_gen::rng::DetRng;
use std::path::{Path, PathBuf};

/// What a [`Corruptor`] did to the journal (so tests can assert the
/// matching recovery behavior).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injury {
    /// The file was truncated to `len` bytes (a torn write).
    Truncated {
        /// The file injured.
        path: PathBuf,
        /// Its new length.
        len: u64,
    },
    /// One bit was flipped at `offset` (silent corruption).
    BitFlip {
        /// The file injured.
        path: PathBuf,
        /// Byte offset of the flip.
        offset: u64,
        /// The XOR mask applied (exactly one bit set).
        mask: u8,
    },
    /// The directory had no bytes to injure.
    Nothing,
}

/// A seeded source of filesystem damage.
pub struct Corruptor {
    rng: DetRng,
}

impl Corruptor {
    /// A corruptor with the given seed (same convention as
    /// `FaultySource`: equal seeds, equal damage).
    pub fn new(seed: u64) -> Corruptor {
        Corruptor {
            rng: DetRng::new(seed ^ 0xC0_44_07_7E_D0_15_EA_5E),
        }
    }

    /// Segment files of `dir`, newest last (the injection surface).
    fn targets(dir: &Path) -> Result<Vec<PathBuf>, StoreError> {
        Ok(Wal::segments(dir)?.into_iter().map(|(_, p)| p).collect())
    }

    /// Truncates the newest segment at a random point (simulates a crash
    /// mid-append: the classic torn write).
    pub fn tear_tail(&mut self, dir: &Path) -> Result<Injury, StoreError> {
        let Some(path) = Corruptor::targets(dir)?.pop() else {
            return Ok(Injury::Nothing);
        };
        let len = std::fs::metadata(&path)
            .map_err(|e| StoreError::io(&path, e))?
            .len();
        if len == 0 {
            return Ok(Injury::Nothing);
        }
        let cut = self.rng.below(len);
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .and_then(|f| f.set_len(cut))
            .map_err(|e| StoreError::io(&path, e))?;
        Ok(Injury::Truncated { path, len: cut })
    }

    /// Flips one random bit in a random segment (simulates bit rot or
    /// tampering anywhere in the log, header bytes included).
    pub fn flip_bit(&mut self, dir: &Path) -> Result<Injury, StoreError> {
        let targets = Corruptor::targets(dir)?;
        if targets.is_empty() {
            return Ok(Injury::Nothing);
        }
        let path = targets[self.rng.below(targets.len() as u64) as usize].clone();
        let mut bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
        if bytes.is_empty() {
            return Ok(Injury::Nothing);
        }
        let offset = self.rng.below(bytes.len() as u64);
        let mask = 1u8 << self.rng.below(8);
        bytes[offset as usize] ^= mask;
        std::fs::write(&path, &bytes).map_err(|e| StoreError::io(&path, e))?;
        Ok(Injury::BitFlip { path, offset, mask })
    }

    /// One random injury: a torn tail or a bit flip, evenly mixed — the
    /// test harness's workhorse.
    pub fn injure(&mut self, dir: &Path) -> Result<Injury, StoreError> {
        if self.rng.bool(0.5) {
            self.tear_tail(dir)
        } else {
            self.flip_bit(dir)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal_fixture(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iixml-inject-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wal = Wal::create(&dir).unwrap();
        for i in 0..8u32 {
            wal.append(format!("record {i}").as_bytes()).unwrap();
        }
        dir
    }

    #[test]
    fn same_seed_same_injury() {
        let d1 = journal_fixture("det-a");
        let d2 = journal_fixture("det-b");
        let i1 = Corruptor::new(42).injure(&d1).unwrap();
        let i2 = Corruptor::new(42).injure(&d2).unwrap();
        // Compare everything but the directory-dependent path.
        match (i1, i2) {
            (Injury::Truncated { len: a, .. }, Injury::Truncated { len: b, .. }) => {
                assert_eq!(a, b)
            }
            (
                Injury::BitFlip {
                    offset: a,
                    mask: m1,
                    ..
                },
                Injury::BitFlip {
                    offset: b,
                    mask: m2,
                    ..
                },
            ) => {
                assert_eq!((a, m1), (b, m2))
            }
            (a, b) => panic!("different injuries from the same seed: {a:?} vs {b:?}"),
        }
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn injuries_damage_the_scan() {
        let mut seen_damage = false;
        for seed in 0..20u64 {
            let dir = journal_fixture(&format!("dmg-{seed}"));
            Corruptor::new(seed).injure(&dir).unwrap();
            let out = crate::wal::scan(&dir);
            match out {
                Ok(o) => seen_damage |= o.damage.is_some(),
                Err(_) => seen_damage = true,
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
        assert!(seen_damage, "20 seeds never damaged an 8-record log");
    }
}
