//! The session-event records the journal persists.
//!
//! A mediator session is a chain of Refine steps `T ← T ∩ q⁻¹(A)`
//! (Lemmas 3.2–3.3, Theorem 3.4) punctuated by §5-style resets
//! (quarantine, source update). Each event becomes one record; replaying
//! the surviving records through the *real* Refine code reconstructs the
//! session state exactly.
//!
//! Payload encoding is a tag byte followed by length-prefixed fields
//! (`u32` little-endian lengths, `u64` little-endian ids). Query and
//! answer payloads reuse the existing text formats — queries via
//! `PsQuery::to_text` / `parse_ps_query`, trees via `xmlio`, incomplete
//! trees via `core::io` — so the journal stays human-inspectable with
//! `xxd` and inherits those parsers' round-trip guarantees. The decoder
//! is total: arbitrary bytes yield `Err`, never a panic, and length
//! prefixes are bounds-checked before any allocation.

use crate::error::StoreError;

/// One session event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// The session opened: the alphabet Σ fixed for the whole chain and
    /// the initial knowledge (the universal tree, already restricted to
    /// the source's declared type per Theorem 3.5), serialized with
    /// `core::io::write_incomplete_xml`.
    Open {
        /// Label names in interning order (ids are implicit positions).
        alpha: Vec<String>,
        /// The initial incomplete tree, XML text form.
        initial: String,
    },
    /// One Refine step: the query (text syntax) and the answer it
    /// returned — the answer tree in `xmlio` form plus the per-node
    /// match provenance Algorithm Refine needs to build `T_{q,A}`.
    Refine {
        /// The ps-query, `PsQuery::to_text` form.
        query: String,
        /// The answer tree (`None` = the empty answer), `xmlio` form.
        answer_tree: Option<String>,
        /// `(nid, barred?, pattern node)` triples, sorted by nid:
        /// `barred? = false` means `MatchKind::Matched`, `true` means
        /// `MatchKind::BarDescendant`.
        provenance: Vec<(u64, bool, u32)>,
    },
    /// The source document was replaced; knowledge was reinitialized to
    /// the declared type (Section 5's conservative policy).
    SourceUpdate,
    /// The knowledge was caught lying and quarantined (reinitialized).
    Quarantine,
    /// A snapshot of the state after the preceding `seq` records was
    /// durably written to `file` with payload checksum `crc`. Purely an
    /// optimization marker: recovery that distrusts the snapshot can
    /// ignore it and replay the full chain.
    SnapshotRef {
        /// Number of records the snapshot covers (its state is "after
        /// records `0..seq`").
        seq: u64,
        /// Snapshot file name within the journal directory.
        file: String,
        /// CRC-32 of the snapshot payload (also stored in the file).
        crc: u32,
    },
}

use crate::format::{TAG_OPEN, TAG_QUARANTINE, TAG_REFINE, TAG_SNAPSHOT_REF, TAG_SOURCE_UPDATE};

impl Record {
    /// Short human name (used in error messages and `--journal` logs).
    pub fn kind(&self) -> &'static str {
        match self {
            Record::Open { .. } => "open",
            Record::Refine { .. } => "refine",
            Record::SourceUpdate => "source-update",
            Record::Quarantine => "quarantine",
            Record::SnapshotRef { .. } => "snapshot-ref",
        }
    }

    /// Serializes the record payload (framing — length, CRC — is the
    /// WAL's job).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Record::Open { alpha, initial } => {
                out.push(TAG_OPEN);
                put_u32(&mut out, alpha.len() as u32);
                for name in alpha {
                    put_bytes(&mut out, name.as_bytes());
                }
                put_bytes(&mut out, initial.as_bytes());
            }
            Record::Refine {
                query,
                answer_tree,
                provenance,
            } => {
                out.push(TAG_REFINE);
                put_bytes(&mut out, query.as_bytes());
                match answer_tree {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        put_bytes(&mut out, t.as_bytes());
                    }
                }
                put_u32(&mut out, provenance.len() as u32);
                for &(nid, barred, qnode) in provenance {
                    put_u64(&mut out, nid);
                    out.push(barred as u8);
                    put_u32(&mut out, qnode);
                }
            }
            Record::SourceUpdate => out.push(TAG_SOURCE_UPDATE),
            Record::Quarantine => out.push(TAG_QUARANTINE),
            Record::SnapshotRef { seq, file, crc } => {
                out.push(TAG_SNAPSHOT_REF);
                put_u64(&mut out, *seq);
                put_u32(&mut out, *crc);
                put_bytes(&mut out, file.as_bytes());
            }
        }
        out
    }

    /// Decodes a record payload. Total: any byte string yields `Ok` or
    /// `Err`, and every length prefix is checked against the remaining
    /// input before allocation, so corrupt lengths cannot OOM.
    pub fn decode(payload: &[u8]) -> Result<Record, String> {
        let mut r = Reader::new(payload);
        let rec = match r.u8()? {
            TAG_OPEN => {
                let n = r.u32()? as usize;
                if n > payload.len() {
                    return Err(format!("alphabet count {n} exceeds payload"));
                }
                let mut alpha = Vec::with_capacity(n);
                for _ in 0..n {
                    alpha.push(r.string()?);
                }
                let initial = r.string()?;
                Record::Open { alpha, initial }
            }
            TAG_REFINE => {
                let query = r.string()?;
                let answer_tree = match r.u8()? {
                    0 => None,
                    1 => Some(r.string()?),
                    other => return Err(format!("bad answer marker {other}")),
                };
                let n = r.u32()? as usize;
                // Each entry is 13 bytes; reject counts the remaining
                // input cannot possibly hold.
                if n > r.remaining() / 13 {
                    return Err(format!("provenance count {n} exceeds payload"));
                }
                let mut provenance = Vec::with_capacity(n);
                for _ in 0..n {
                    let nid = r.u64()?;
                    let barred = match r.u8()? {
                        0 => false,
                        1 => true,
                        other => return Err(format!("bad provenance kind {other}")),
                    };
                    let qnode = r.u32()?;
                    provenance.push((nid, barred, qnode));
                }
                Record::Refine {
                    query,
                    answer_tree,
                    provenance,
                }
            }
            TAG_SOURCE_UPDATE => Record::SourceUpdate,
            TAG_QUARANTINE => Record::Quarantine,
            TAG_SNAPSHOT_REF => {
                let seq = r.u64()?;
                let crc = r.u32()?;
                let file = r.string()?;
                Record::SnapshotRef { seq, file, crc }
            }
            other => return Err(format!("unknown record tag {other}")),
        };
        if r.remaining() != 0 {
            return Err(format!("{} trailing payload bytes", r.remaining()));
        }
        Ok(rec)
    }

    /// `decode` adapted to the journal's typed error, with the record's
    /// index attached.
    pub fn decode_at(payload: &[u8], index: usize) -> Result<Record, StoreError> {
        Record::decode(payload).map_err(|reason| StoreError::BadRecord { index, reason })
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A bounds-checked little-endian reader (the decoder's only input
/// path, so every primitive read is total).
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: need {n}, have {}",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| format!("invalid utf-8: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(r: Record) {
        let bytes = r.encode();
        assert_eq!(Record::decode(&bytes).unwrap(), r);
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Record::Open {
            alpha: vec!["catalog".into(), "produit é".into()],
            initial: "<incomplete>\n</incomplete>\n".into(),
        });
        roundtrip(Record::Refine {
            query: "catalog/product{price[< 200]}".into(),
            answer_tree: Some("<catalog nid=\"0\" val=\"0\"/>".into()),
            provenance: vec![(0, false, 0), (7, true, 2)],
        });
        roundtrip(Record::Refine {
            query: "a".into(),
            answer_tree: None,
            provenance: vec![],
        });
        roundtrip(Record::SourceUpdate);
        roundtrip(Record::Quarantine);
        roundtrip(Record::SnapshotRef {
            seq: 42,
            file: "snap-000042.snap".into(),
            crc: 0xDEADBEEF,
        });
    }

    #[test]
    fn truncations_fail_cleanly() {
        let bytes = Record::Refine {
            query: "catalog/product".into(),
            answer_tree: Some("<catalog nid=\"0\" val=\"0\"/>".into()),
            provenance: vec![(3, false, 1)],
        }
        .encode();
        for cut in 0..bytes.len() {
            assert!(Record::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A Refine record claiming 4 billion provenance entries.
        let mut bytes = vec![TAG_REFINE];
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'a');
        bytes.push(0); // empty answer
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Record::decode(&bytes).is_err());
    }
}
