//! The single registry of every frozen on-disk spelling.
//!
//! Everything a journal directory's bytes can begin with — segment and
//! frame magics, snapshot magic, format versions, record tag bytes —
//! is declared here and nowhere else. The rest of the crate imports
//! these constants; `iixml-vet`'s `format` rule rejects any stray
//! `IIXJWAL` / `REC!` / `IIXSNAP` literal outside this module *and*
//! checks that the spellings below still match the frozen alphabet, so
//! neither a new call site nor an accidental edit here can silently
//! fork the format. Version-bump policy is in CONTRIBUTING.md
//! ("On-disk format versioning").

/// Magic opening every WAL segment file.
pub const SEGMENT_MAGIC: [u8; 7] = *b"IIXJWAL";
/// The WAL format version this build reads and writes. Bump on any
/// layout change (see CONTRIBUTING.md).
pub const FORMAT_VERSION: u8 = 1;
/// Magic opening every WAL frame.
pub const FRAME_MAGIC: [u8; 4] = *b"REC!";
/// Segment header: magic + version byte.
pub const SEGMENT_HEADER_LEN: usize = 8;
/// Frame header: magic + u32 length + u32 CRC.
pub const FRAME_HEADER_LEN: usize = 12;

/// Magic opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 7] = *b"IIXSNAP";
/// Snapshot format version this build writes (bumped independently of
/// the WAL's; see CONTRIBUTING.md). Version 2 added the initial
/// knowledge to the payload so a compacted journal — one whose `Open`
/// record was retired with its segment — can still replay quarantine
/// and source-update resets in the tail.
pub const SNAPSHOT_VERSION: u8 = 2;
/// The first snapshot version ever shipped (no initial-knowledge
/// field). Readers keep every version: v1 files still decode, with
/// [`crate::Snapshot::initial`] absent.
pub const SNAPSHOT_VERSION_V1: u8 = 1;
/// Snapshot header: magic + version byte + u32 CRC.
pub const SNAPSHOT_HEADER_LEN: usize = 12;

/// Record payload tag: session open.
pub const TAG_OPEN: u8 = 1;
/// Record payload tag: one Refine step.
pub const TAG_REFINE: u8 = 2;
/// Record payload tag: source replaced, knowledge reinitialized.
pub const TAG_SOURCE_UPDATE: u8 = 3;
/// Record payload tag: knowledge quarantined.
pub const TAG_QUARANTINE: u8 = 4;
/// Record payload tag: snapshot marker.
pub const TAG_SNAPSHOT_REF: u8 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    /// The frozen alphabet, spelled out once more on purpose: this test
    /// (and the identical check in `iixml-vet`) is the tripwire against
    /// an accidental edit to the constants above.
    #[test]
    fn spellings_are_frozen() {
        assert_eq!(&SEGMENT_MAGIC, b"IIXJWAL");
        assert_eq!(&FRAME_MAGIC, b"REC!");
        assert_eq!(&SNAPSHOT_MAGIC, b"IIXSNAP");
        assert_eq!(SEGMENT_HEADER_LEN, SEGMENT_MAGIC.len() + 1);
        assert_eq!(FRAME_HEADER_LEN, FRAME_MAGIC.len() + 4 + 4);
        assert_eq!(SNAPSHOT_HEADER_LEN, SNAPSHOT_MAGIC.len() + 1 + 4);
        // Version bytes are never reused (CONTRIBUTING.md): the current
        // write version must stay strictly above every retired one.
        const { assert!(SNAPSHOT_VERSION > SNAPSHOT_VERSION_V1) };
        assert_eq!(
            [
                TAG_OPEN,
                TAG_REFINE,
                TAG_SOURCE_UPDATE,
                TAG_QUARANTINE,
                TAG_SNAPSHOT_REF
            ],
            [1, 2, 3, 4, 5]
        );
    }
}
