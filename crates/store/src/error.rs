//! Typed errors for the durability layer.
//!
//! Everything that can go wrong between the session loop and the disk
//! gets a name, so recovery policy (retry, truncate, degrade to a
//! snapshot, quarantine) can react per cause — the same discipline the
//! fault model applies to unreliable *sources*.

use std::fmt;
use std::path::PathBuf;

/// A failure in the journal/snapshot layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// `std::io::Error` rendered (the kind survives in the text).
        message: String,
    },
    /// The directory holds no journal (no `Open` record / no segments).
    Missing {
        /// The directory that was probed.
        dir: PathBuf,
    },
    /// A segment header or snapshot header carries a format version this
    /// build does not speak (see CONTRIBUTING.md's versioning policy).
    VersionMismatch {
        /// The version byte found on disk.
        found: u8,
        /// The version this build writes and reads.
        supported: u8,
    },
    /// A frame or header failed structural or checksum verification
    /// *mid-log* — valid records exist beyond the damage, so this is
    /// bit rot or tampering, not a torn tail.
    Corrupt {
        /// The segment file in which the damage starts.
        segment: PathBuf,
        /// Byte offset of the first bad frame within that segment.
        offset: u64,
        /// What failed (magic, length, CRC, decode).
        reason: String,
        /// Valid-looking frames stranded beyond the damage (they are
        /// unusable: the refine chain is order-dependent).
        stranded: usize,
    },
    /// A record decoded but cannot be applied: the journal's first
    /// record is not `Open`, a payload field is malformed, or replaying
    /// a record through Refine failed.
    BadRecord {
        /// Zero-based index of the record in the journal.
        index: usize,
        /// What was wrong.
        reason: String,
    },
    /// An event cannot be expressed in the durable format: a query or
    /// answer uses labels the session's frozen alphabet has no names
    /// for. Surfaced *before* the event is applied, so journal and
    /// in-memory state never diverge.
    Unjournalable {
        /// What could not be serialized.
        reason: String,
    },
    /// A snapshot file failed its checksum or could not be parsed.
    /// Recovery falls back to an earlier snapshot or a full replay; this
    /// error only surfaces when a caller loads a snapshot directly.
    SnapshotCorrupt {
        /// The snapshot file.
        path: PathBuf,
        /// What failed.
        reason: String,
    },
}

impl StoreError {
    /// Convenience constructor wrapping an `std::io::Error`.
    pub fn io(path: impl Into<PathBuf>, e: std::io::Error) -> StoreError {
        StoreError::Io {
            path: path.into(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "journal io error at {}: {message}", path.display())
            }
            StoreError::Missing { dir } => {
                write!(f, "no journal found in {}", dir.display())
            }
            StoreError::VersionMismatch { found, supported } => write!(
                f,
                "journal format version {found} not supported (this build speaks {supported})"
            ),
            StoreError::Corrupt {
                segment,
                offset,
                reason,
                stranded,
            } => write!(
                f,
                "corruption in {} at byte {offset}: {reason} ({stranded} record(s) stranded beyond it)",
                segment.display()
            ),
            StoreError::BadRecord { index, reason } => {
                write!(f, "bad journal record #{index}: {reason}")
            }
            StoreError::Unjournalable { reason } => {
                write!(f, "event not journalable: {reason}")
            }
            StoreError::SnapshotCorrupt { path, reason } => {
                write!(f, "snapshot {} rejected: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}
