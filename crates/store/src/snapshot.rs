//! Checksummed snapshots of the session state.
//!
//! A snapshot captures the alphabet and the current incomplete tree
//! (serialized with `core::io::write_incomplete_xml`) after a known
//! number of journal records, so recovery can start from it and replay
//! only the tail instead of the whole Refine chain.
//!
//! ## On-disk layout
//!
//! `snap-NNNNNN.snap` (NNNNNN = records covered), containing:
//!
//! ```text
//! +---------+---------+--------------+---------+
//! | IIXSNAP | version | crc32: u32 LE| payload |
//! +---------+---------+--------------+---------+
//! ```
//!
//! The payload (version 2) is the record count (`u64` LE), the alphabet
//! (count plus length-prefixed names in interning order), the initial
//! knowledge (presence byte plus length-prefixed XML), and the current
//! knowledge XML — everything needed to rebuild a `Refiner`, and to
//! replay quarantine/source-update resets in the tail, without the
//! journal prefix. Version-1 files (no initial field) still decode;
//! see CONTRIBUTING.md's versioning policy.
//!
//! Writes are atomic: the bytes go to a `.tmp` file, are synced, and the
//! file is renamed into place (then the directory is synced). A crash
//! mid-snapshot leaves at worst a stale `.tmp`, never a half snapshot
//! under the real name.

use crate::crc::crc32;
use crate::error::StoreError;
use crate::io::StoreIo;
use crate::wal::{OBS_DIR_SYNC_FAILS, OBS_FSYNCS, OBS_IO_FAULTS};
use iixml_obs::{keys, LazyHistogram};
use std::fs::File;
use std::io::Read;
use std::path::{Path, PathBuf};

/// Snapshot payload sizes, in bytes.
static OBS_SNAPSHOT_BYTES: LazyHistogram = LazyHistogram::new(keys::STORE_SNAPSHOT_BYTES);

pub use crate::format::{SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SNAPSHOT_VERSION_V1};

use crate::format::SNAPSHOT_HEADER_LEN as HEADER_LEN;

/// A decoded snapshot: session state after `seq` journal records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of journal records this state reflects.
    pub seq: u64,
    /// Alphabet names in interning order.
    pub alpha: Vec<String>,
    /// The session's initial knowledge (`core::io` XML form), so a
    /// journal whose `Open` record was compacted away can still replay
    /// reset records. `None` when decoded from a version-1 file.
    pub initial: Option<String>,
    /// The knowledge (incomplete tree), `core::io` XML form.
    pub knowledge: String,
}

impl Snapshot {
    /// File name for the snapshot covering `seq` records.
    pub fn file_name(seq: u64) -> String {
        format!("snap-{seq:06}.snap")
    }

    fn payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.alpha.len() as u32).to_le_bytes());
        for name in &self.alpha {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
        }
        match &self.initial {
            None => out.push(0),
            Some(initial) => {
                out.push(1);
                out.extend_from_slice(&(initial.len() as u32).to_le_bytes());
                out.extend_from_slice(initial.as_bytes());
            }
        }
        out.extend_from_slice(&(self.knowledge.len() as u32).to_le_bytes());
        out.extend_from_slice(self.knowledge.as_bytes());
        out
    }

    /// Writes the snapshot into `dir` atomically. Returns the file name
    /// and payload CRC (recorded in the journal's `SnapshotRef`).
    pub fn write(&self, dir: &Path) -> Result<(String, u32), StoreError> {
        self.write_with(dir, &StoreIo::real())
    }

    /// [`Snapshot::write`] through an explicit [`StoreIo`] handle.
    ///
    /// Fail-safe: any step's failure aborts cleanly — the `.tmp` file is
    /// removed, the previously installed snapshot (if any) is untouched,
    /// and the error is returned with `store.io_faults` bumped. A
    /// dir-fsync failure *after* the rename still fails the call (the
    /// install may not survive a power cut), but leaves the complete,
    /// checksummed file in place; the caller never records a
    /// `SnapshotRef` for it, so recovery treats it as a bonus anchor at
    /// best.
    pub fn write_with(&self, dir: &Path, io: &StoreIo) -> Result<(String, u32), StoreError> {
        let payload = self.payload();
        let crc = crc32(&payload);
        let name = Snapshot::file_name(self.seq);
        let tmp = dir.join(format!("{name}.tmp"));
        let dest = dir.join(&name);
        match write_steps(&payload, crc, io, &tmp, &dest, dir) {
            Ok(()) => {
                OBS_SNAPSHOT_BYTES.observe(payload.len() as u64);
                Ok((name, crc))
            }
            Err(e) => {
                OBS_IO_FAULTS.incr();
                if tmp.exists() {
                    match io.remove_file(&tmp) {
                        Ok(()) => {}
                        // The stale tmp is swept at the next recovery;
                        // the original fault is the one worth reporting.
                        Err(_) => OBS_IO_FAULTS.incr(),
                    }
                }
                Err(e)
            }
        }
    }

    /// Loads and verifies a snapshot file. Total over arbitrary bytes:
    /// corrupt input yields [`StoreError::SnapshotCorrupt`] (or
    /// `VersionMismatch`), never a panic.
    pub fn load(path: &Path) -> Result<Snapshot, StoreError> {
        let mut bytes = Vec::new();
        File::open(path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io(path, e))?;
        Snapshot::decode(path, &bytes)
    }

    /// Verifies and decodes snapshot file bytes (header + payload).
    pub fn decode(path: &Path, bytes: &[u8]) -> Result<Snapshot, StoreError> {
        let corrupt = |reason: &str| StoreError::SnapshotCorrupt {
            path: path.to_path_buf(),
            reason: reason.to_string(),
        };
        if bytes.len() < HEADER_LEN {
            return Err(corrupt("file shorter than header"));
        }
        if bytes[..7] != SNAPSHOT_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = bytes[7];
        if version != SNAPSHOT_VERSION && version != SNAPSHOT_VERSION_V1 {
            return Err(StoreError::VersionMismatch {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let crc = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let payload = &bytes[HEADER_LEN..];
        if crc32(payload) != crc {
            crate::wal::OBS_CRC_REJECTS.incr();
            return Err(corrupt("payload checksum mismatch"));
        }
        // The payload is checksum-verified, but stay total anyway — the
        // CRC could itself have been rewritten along with the payload.
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            if payload.len() - *pos < n {
                return Err(corrupt("truncated payload"));
            }
            let s = &payload[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let b = take(&mut pos, 8)?;
        let seq = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        let b = take(&mut pos, 4)?;
        let n = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        if n > payload.len() {
            return Err(corrupt("alphabet count exceeds payload"));
        }
        let mut alpha = Vec::with_capacity(n);
        for _ in 0..n {
            let b = take(&mut pos, 4)?;
            let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
            let s = take(&mut pos, len)?;
            alpha.push(
                String::from_utf8(s.to_vec()).map_err(|_| corrupt("alphabet name not utf-8"))?,
            );
        }
        // Version 1 has no initial-knowledge field; version 2 carries a
        // presence byte followed by the length-prefixed XML.
        let initial = if version == SNAPSHOT_VERSION_V1 {
            None
        } else {
            match take(&mut pos, 1)? {
                [0] => None,
                [1] => {
                    let b = take(&mut pos, 4)?;
                    let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
                    let s = take(&mut pos, len)?;
                    Some(
                        String::from_utf8(s.to_vec())
                            .map_err(|_| corrupt("initial knowledge not utf-8"))?,
                    )
                }
                _ => return Err(corrupt("bad initial-knowledge presence byte")),
            }
        };
        let b = take(&mut pos, 4)?;
        let len = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        let s = take(&mut pos, len)?;
        let knowledge =
            String::from_utf8(s.to_vec()).map_err(|_| corrupt("knowledge not utf-8"))?;
        if pos != payload.len() {
            return Err(corrupt("trailing payload bytes"));
        }
        Ok(Snapshot {
            seq,
            alpha,
            initial,
            knowledge,
        })
    }
}

/// The fallible step sequence of an atomic snapshot install:
/// create tmp → write header + payload → fsync → rename → dir-fsync.
/// Dir-fsync failures are propagated, not `.is_ok()`-swallowed — only a
/// platform that cannot sync directories at all (`Unsupported`) is
/// excused, inside [`StoreIo::dir_sync`].
fn write_steps(
    payload: &[u8],
    crc: u32,
    io: &StoreIo,
    tmp: &Path,
    dest: &Path,
    dir: &Path,
) -> Result<(), StoreError> {
    let mut f = io.create(tmp)?;
    f.write_all(&SNAPSHOT_MAGIC)?;
    f.write_all(&[SNAPSHOT_VERSION])?;
    f.write_all(&crc.to_le_bytes())?;
    f.write_all(payload)?;
    f.sync_data()?;
    OBS_FSYNCS.incr();
    drop(f);
    io.rename(tmp, dest)?;
    match io.dir_sync(dir) {
        Ok(()) => {
            OBS_FSYNCS.incr();
            Ok(())
        }
        Err(e) => {
            OBS_DIR_SYNC_FAILS.incr();
            Err(e)
        }
    }
}

/// Lists snapshot files in `dir`, sorted by covered record count.
pub fn list(dir: &Path) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Removes stale `.tmp` files left by a crash mid-snapshot.
pub fn sweep_tmp(dir: &Path) -> Result<(), StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| StoreError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io(dir, e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("snap-") && name.ends_with(".tmp") {
            let path = entry.path();
            std::fs::remove_file(&path).map_err(|e| StoreError::io(&path, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iixml-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Snapshot {
        Snapshot {
            seq: 17,
            alpha: vec!["catalog".into(), "product".into(), "priçe".into()],
            initial: Some("<incomplete>\n</incomplete>\n".into()),
            knowledge: "<incomplete>\n  <data-node nid=\"0\" label=\"catalog\"/>\n</incomplete>\n"
                .into(),
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let dir = tmp("roundtrip");
        let snap = sample();
        let (name, crc) = snap.write(&dir).unwrap();
        assert_eq!(name, "snap-000017.snap");
        assert_ne!(crc, 0);
        let loaded = Snapshot::load(&dir.join(&name)).unwrap();
        assert_eq!(loaded, snap);
        assert_eq!(list(&dir).unwrap(), vec![(17, dir.join(&name))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_is_rejected() {
        let dir = tmp("bitflip");
        let (name, _) = sample().write(&dir).unwrap();
        let path = dir.join(&name);
        let bytes = std::fs::read(&path).unwrap();
        for i in [0usize, 7, 9, HEADER_LEN + 3, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x40;
            std::fs::write(&path, &flipped).unwrap();
            assert!(Snapshot::load(&path).is_err(), "flip at byte {i} accepted");
        }
        // Restore and confirm it still loads (the flips were the problem).
        std::fs::write(&path, &bytes).unwrap();
        assert!(Snapshot::load(&path).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_initial_roundtrips() {
        let dir = tmp("noinit");
        let snap = Snapshot {
            initial: None,
            ..sample()
        };
        let (name, _) = snap.write(&dir).unwrap();
        assert_eq!(Snapshot::load(&dir.join(&name)).unwrap(), snap);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The pinned version-1 bytes (CONTRIBUTING.md: readers keep every
    /// version they ever shipped). Layout: magic, version 1, payload
    /// CRC, then seq / alphabet / knowledge — no initial field.
    #[test]
    fn version_1_files_still_decode() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&7u32.to_le_bytes());
        payload.extend_from_slice(b"catalog");
        let knowledge = b"<incomplete>\n</incomplete>\n";
        payload.extend_from_slice(&(knowledge.len() as u32).to_le_bytes());
        payload.extend_from_slice(knowledge);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SNAPSHOT_MAGIC);
        bytes.push(SNAPSHOT_VERSION_V1);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let snap = Snapshot::decode(Path::new("pinned-v1.snap"), &bytes).unwrap();
        assert_eq!(snap.seq, 3);
        assert_eq!(snap.alpha, vec!["catalog".to_string()]);
        assert_eq!(snap.initial, None);
        assert_eq!(snap.knowledge, String::from_utf8_lossy(knowledge));
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        let dir = tmp("arb");
        let path = dir.join("snap-000000.snap");
        for junk in [
            &b""[..],
            &b"IIXSNAP"[..],
            &b"IIXSNAP\x01\0\0\0\0"[..],
            &[0xFFu8; 40][..],
        ] {
            std::fs::write(&path, junk).unwrap();
            assert!(Snapshot::load(&path).is_err());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_aborts_cleanly_and_keeps_the_old_snapshot() {
        use crate::io::{Fault, IoOp};
        let dir = tmp("abort");
        let old = Snapshot { seq: 5, ..sample() };
        old.write(&dir).unwrap();
        let io = StoreIo::faulty(23, 0.0);
        for fault in [
            (IoOp::Write, Fault::Enospc),
            (IoOp::Write, Fault::ShortWrite),
            (IoOp::Sync, Fault::Eio),
            (IoOp::Rename, Fault::Eio),
        ] {
            io.inject_once(fault.0, fault.1);
            let next = Snapshot { seq: 9, ..sample() };
            assert!(next.write_with(&dir, &io).is_err());
            assert!(
                !dir.join("snap-000009.snap.tmp").exists(),
                "tmp removed after {fault:?}"
            );
            assert!(!dir.join("snap-000009.snap").exists());
            // The previously installed snapshot is intact.
            let survivor = Snapshot::load(&dir.join(Snapshot::file_name(5))).unwrap();
            assert_eq!(survivor, old);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn post_rename_dir_sync_failure_still_fails_the_call() {
        use crate::io::{Fault, IoOp};
        let dir = tmp("dirsync");
        let io = StoreIo::faulty(29, 0.0);
        io.inject_once(IoOp::DirSync, Fault::Eio);
        let snap = sample();
        assert!(snap.write_with(&dir, &io).is_err());
        // The install happened (complete, checksummed file) but was not
        // acknowledged; the caller writes no SnapshotRef for it.
        assert!(Snapshot::load(&dir.join(Snapshot::file_name(17))).is_ok());
        assert!(!dir
            .join(format!("{}.tmp", Snapshot::file_name(17)))
            .exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_removes_stale_tmp() {
        let dir = tmp("sweep");
        std::fs::write(dir.join("snap-000003.snap.tmp"), b"half-written").unwrap();
        sample().write(&dir).unwrap();
        sweep_tmp(&dir).unwrap();
        assert!(!dir.join("snap-000003.snap.tmp").exists());
        assert_eq!(list(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
