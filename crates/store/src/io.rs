//! Pluggable storage I/O: real syscalls, or seeded write-path faults.
//!
//! [`StoreIo`] is the single seam between the durability layer and the
//! filesystem. [`StoreIo::real`] performs exactly the syscalls the
//! crate always made; [`StoreIo::faulty`] and [`StoreIo::fail_at`] wrap
//! them in a SplitMix64-seeded injector — the *write-path* sibling of
//! [`crate::inject::Corruptor`], which only injures bytes at rest —
//! that can fail an operation with EIO or ENOSPC, land only a prefix of
//! a write, or model the "fsyncgate" failure class: a failed
//! `sync_data` that also discards the unsynced page cache, exactly as
//! real kernels do (the dirty pages are marked clean on the first
//! failed fsync, so retrying the fsync later reports success while the
//! bytes are gone).
//!
//! The fail-safe contract built on top of this seam lives in
//! [`crate::wal`]: a failed write or fsync permanently poisons the
//! writer; see DESIGN.md §14.
//!
//! Injection is deterministic: equal seeds and equal operation
//! schedules produce equal faults, so a failing chaos-matrix case is
//! pinned by its seed. Targeted tests can also queue a one-shot fault
//! for a specific operation kind with [`StoreIo::inject_once`].

use crate::error::StoreError;
use iixml_gen::rng::DetRng;
use iixml_obs::keys;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// The operation kinds the durability layer performs through
/// [`StoreIo`] (the injector's targeting granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Creating or opening a file for writing (segment, snapshot tmp).
    Create,
    /// `write_all` of frame or snapshot bytes.
    Write,
    /// `sync_data` on a file.
    Sync,
    /// `rename` (snapshot install, segment retirement).
    Rename,
    /// `remove_file` (tombstones, aborted snapshot tmp files).
    Remove,
    /// `sync_data` on the containing directory.
    DirSync,
}

/// The failure a faulty [`StoreIo`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The device reported an error (EIO).
    Eio,
    /// No space left on device (ENOSPC).
    Enospc,
    /// A prefix of the bytes lands on disk, then EIO — the shape of a
    /// torn write.
    ShortWrite,
    /// The fsync fails *and* the unsynced bytes are dropped from the
    /// file, as a kernel drops dirty pages it could not write back.
    FsyncLoss,
}

impl Fault {
    fn to_error(self, path: &Path) -> StoreError {
        let message = match self {
            Fault::Eio => "injected fault: Input/output error (os error 5)",
            Fault::Enospc => "injected fault: No space left on device (os error 28)",
            Fault::ShortWrite => {
                "injected fault: short write, then Input/output error (os error 5)"
            }
            Fault::FsyncLoss => {
                "injected fault: fsync failed and dropped unsynced pages (os error 5)"
            }
        };
        StoreError::Io {
            path: path.to_path_buf(),
            message: message.into(),
        }
    }
}

/// Seed-mixing constant, same idiom as [`crate::inject::Corruptor`]:
/// the injector draws from a stream disjoint from every other consumer
/// of the same base seed.
const SEED_MIX: u64 = 0xD15C_FA01_7E57_ED10;

struct FaultPlan {
    rng: DetRng,
    /// Per-operation fault probability.
    rate: f64,
    /// Fail exactly the Nth operation (1-based), regardless of `rate`.
    fail_at: Option<u64>,
    /// Operations decided so far.
    ops: u64,
    /// One-shot targeted faults, consumed on the next matching op.
    queued: Vec<(IoOp, Fault)>,
    /// Every fault injected, in order (ground truth for the chaos
    /// matrix's "no silent loss" assertion).
    injected: Vec<(IoOp, Fault)>,
}

enum Backend {
    Real,
    Faulty(Mutex<FaultPlan>),
}

/// A cloneable handle to a storage I/O implementation. Clones share the
/// same injector state, so one schedule spans every file the writer
/// touches.
#[derive(Clone)]
pub struct StoreIo(Arc<Backend>);

impl StoreIo {
    /// Exactly today's syscalls, no interposition.
    pub fn real() -> StoreIo {
        StoreIo(Arc::new(Backend::Real))
    }

    /// A seeded injector failing each operation with probability
    /// `rate` (clamped to `[0, 1]`). Equal seeds, equal fault
    /// schedules.
    pub fn faulty(seed: u64, rate: f64) -> StoreIo {
        StoreIo::plan(seed, rate.clamp(0.0, 1.0), None)
    }

    /// A seeded injector failing exactly the `nth` operation (1-based;
    /// the fault kind is still drawn from the seed).
    pub fn fail_at(seed: u64, nth: u64) -> StoreIo {
        StoreIo::plan(seed, 0.0, Some(nth.max(1)))
    }

    fn plan(seed: u64, rate: f64, fail_at: Option<u64>) -> StoreIo {
        StoreIo(Arc::new(Backend::Faulty(Mutex::new(FaultPlan {
            rng: DetRng::new(seed ^ SEED_MIX),
            rate,
            fail_at,
            ops: 0,
            queued: Vec::new(),
            injected: Vec::new(),
        }))))
    }

    /// The implementation the `IIXML_STORE_FAULT_*` environment knobs
    /// select: real I/O unless `IIXML_STORE_FAULT_AT` (fail the Nth
    /// operation) or `IIXML_STORE_FAULT_RATE` (per-operation
    /// probability) is set; `IIXML_STORE_FAULT_SEED` seeds the
    /// injector.
    pub fn from_env() -> StoreIo {
        fn read(key: &str) -> Option<String> {
            std::env::var(key).ok()
        }
        let seed = read(keys::ENV_STORE_FAULT_SEED)
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0xD15Cu64);
        let at = read(keys::ENV_STORE_FAULT_AT).and_then(|v| v.trim().parse::<u64>().ok());
        let rate = read(keys::ENV_STORE_FAULT_RATE).and_then(|v| v.trim().parse::<f64>().ok());
        match (at, rate) {
            (Some(n), _) => StoreIo::fail_at(seed, n),
            (None, Some(r)) => StoreIo::faulty(seed, r),
            (None, None) => StoreIo::real(),
        }
    }

    /// Is this the real, uninterposed implementation?
    pub fn is_real(&self) -> bool {
        matches!(&*self.0, Backend::Real)
    }

    /// Queues a one-shot fault consumed by the next operation of kind
    /// `op` (surgical injection for targeted tests). No-op on a real
    /// handle.
    pub fn inject_once(&self, op: IoOp, fault: Fault) {
        if let Backend::Faulty(plan) = &*self.0 {
            lock(plan).queued.push((op, fault));
        }
    }

    /// Every fault injected so far, in order — the ground truth a test
    /// compares reported faults against.
    pub fn injected(&self) -> Vec<(IoOp, Fault)> {
        match &*self.0 {
            Backend::Real => Vec::new(),
            Backend::Faulty(plan) => lock(plan).injected.clone(),
        }
    }

    /// Fast-path wrapper: on the real backend this folds to a
    /// discriminant check, cheap enough to sit on every write. The
    /// injector's bookkeeping lives out of line.
    #[inline]
    fn decide(&self, op: IoOp) -> Option<Fault> {
        match &*self.0 {
            Backend::Real => None,
            Backend::Faulty(plan) => StoreIo::decide_faulty(plan, op),
        }
    }

    fn decide_faulty(plan: &Mutex<FaultPlan>, op: IoOp) -> Option<Fault> {
        let mut p = lock(plan);
        if let Some(pos) = p.queued.iter().position(|&(o, _)| o == op) {
            let (_, fault) = p.queued.remove(pos);
            p.injected.push((op, fault));
            return Some(fault);
        }
        p.ops += 1;
        let rate = p.rate;
        let due = p.fail_at == Some(p.ops) || (rate > 0.0 && p.rng.bool(rate));
        if !due {
            return None;
        }
        // Draw a fault kind that makes sense for the operation.
        let fault = match op {
            IoOp::Write => *p
                .rng
                .choose(&[Fault::Eio, Fault::Enospc, Fault::ShortWrite]),
            IoOp::Sync => *p.rng.choose(&[Fault::Eio, Fault::FsyncLoss]),
            _ => *p.rng.choose(&[Fault::Eio, Fault::Enospc]),
        };
        p.injected.push((op, fault));
        Some(fault)
    }

    /// Creates a file that must not already exist (WAL segments), open
    /// for writing.
    pub(crate) fn create_new(&self, path: &Path) -> Result<StoreFile, StoreError> {
        if let Some(f) = self.decide(IoOp::Create) {
            return Err(f.to_error(path));
        }
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(self.wrap(file, path, 0))
    }

    /// Creates (or truncates) a file, open for writing (snapshot tmp
    /// files).
    pub(crate) fn create(&self, path: &Path) -> Result<StoreFile, StoreError> {
        if let Some(f) = self.decide(IoOp::Create) {
            return Err(f.to_error(path));
        }
        let file = File::create(path).map_err(|e| StoreError::io(path, e))?;
        Ok(self.wrap(file, path, 0))
    }

    /// Opens an existing file for appending; its current length is
    /// taken as already durable (recovery verified it).
    pub(crate) fn open_append(&self, path: &Path) -> Result<StoreFile, StoreError> {
        if let Some(f) = self.decide(IoOp::Create) {
            return Err(f.to_error(path));
        }
        let len = std::fs::metadata(path)
            .map_err(|e| StoreError::io(path, e))?
            .len();
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| StoreError::io(path, e))?;
        Ok(self.wrap(file, path, len))
    }

    fn wrap(&self, file: File, path: &Path, len: u64) -> StoreFile {
        StoreFile {
            io: self.clone(),
            file,
            path: path.to_path_buf(),
            len,
            synced_len: len,
        }
    }

    /// Renames `from` to `to` (atomic within a directory).
    pub(crate) fn rename(&self, from: &Path, to: &Path) -> Result<(), StoreError> {
        if let Some(f) = self.decide(IoOp::Rename) {
            return Err(f.to_error(from));
        }
        std::fs::rename(from, to).map_err(|e| StoreError::io(from, e))
    }

    /// Removes a file.
    pub(crate) fn remove_file(&self, path: &Path) -> Result<(), StoreError> {
        if let Some(f) = self.decide(IoOp::Remove) {
            return Err(f.to_error(path));
        }
        std::fs::remove_file(path).map_err(|e| StoreError::io(path, e))
    }

    /// Syncs a directory so a rename or removal inside it is durable.
    /// Platforms that cannot fsync a directory handle report
    /// `Unsupported`, which is a capability gap, not a lost
    /// acknowledgment — every other failure propagates.
    pub(crate) fn dir_sync(&self, dir: &Path) -> Result<(), StoreError> {
        if let Some(f) = self.decide(IoOp::DirSync) {
            return Err(f.to_error(dir));
        }
        let d = File::open(dir).map_err(|e| StoreError::io(dir, e))?;
        match d.sync_data() {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => Ok(()),
            Err(e) => Err(StoreError::io(dir, e)),
        }
    }
}

/// Locks an injector plan; a poisoned lock yields the inner state (the
/// plan has no invariants a panicked holder could have broken
/// half-way).
fn lock(plan: &Mutex<FaultPlan>) -> MutexGuard<'_, FaultPlan> {
    match plan.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A writable file handle routed through a [`StoreIo`]. Tracks the
/// written and last-synced lengths so the injector can model
/// fsync-failure-drops-buffered-pages faithfully.
pub struct StoreFile {
    io: StoreIo,
    file: File,
    path: PathBuf,
    len: u64,
    synced_len: u64,
}

impl StoreFile {
    /// Bytes written so far (durable or not).
    pub(crate) fn len(&self) -> u64 {
        self.len
    }

    /// Writes all of `bytes`, or fails having written either nothing
    /// (EIO/ENOSPC) or a prefix (short write).
    #[inline]
    pub(crate) fn write_all(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        match self.io.decide(IoOp::Write) {
            None => {
                self.file
                    .write_all(bytes)
                    .map_err(|e| StoreError::io(&self.path, e))?;
                self.len += bytes.len() as u64;
                Ok(())
            }
            Some(Fault::ShortWrite) => {
                let (prefix, _) = bytes.split_at(bytes.len() / 2);
                // A prefix lands, the rest does not — the torn shape of
                // a failing write. If even the prefix fails to land,
                // strictly less survives, which recovery treats the
                // same way.
                self.len += self
                    .file
                    .write_all(prefix)
                    .map(|()| prefix.len() as u64)
                    .unwrap_or(0);
                Err(Fault::ShortWrite.to_error(&self.path))
            }
            Some(fault) => Err(fault.to_error(&self.path)),
        }
    }

    /// Syncs written bytes to disk. An injected [`Fault::FsyncLoss`]
    /// also truncates the file back to its last successfully-synced
    /// length, modeling a kernel dropping the dirty pages it failed to
    /// write back.
    pub(crate) fn sync_data(&mut self) -> Result<(), StoreError> {
        match self.io.decide(IoOp::Sync) {
            None => {
                self.file
                    .sync_data()
                    .map_err(|e| StoreError::io(&self.path, e))?;
                self.synced_len = self.len;
                Ok(())
            }
            Some(Fault::FsyncLoss) => {
                // fsyncgate: the unsynced suffix vanishes with the
                // failed writeback. If even the truncation fails, the
                // bytes merely survive — less loss than the model
                // permits, never more.
                self.len = self
                    .file
                    .set_len(self.synced_len)
                    .map(|()| self.synced_len)
                    .unwrap_or(self.len);
                Err(Fault::FsyncLoss.to_error(&self.path))
            }
            Some(fault) => Err(fault.to_error(&self.path)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iixml-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn real_io_roundtrips() {
        let dir = tmp("real");
        let io = StoreIo::real();
        assert!(io.is_real());
        let path = dir.join("f");
        let mut f = io.create_new(&path).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        assert_eq!(f.len(), 5);
        drop(f);
        let mut f = io.open_append(&path).unwrap();
        f.write_all(b" world").unwrap();
        assert_eq!(f.len(), 11);
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"hello world");
        let moved = dir.join("g");
        io.rename(&path, &moved).unwrap();
        io.dir_sync(&dir).unwrap();
        io.remove_file(&moved).unwrap();
        assert!(io.injected().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fail_at_hits_exactly_the_nth_operation() {
        let dir = tmp("nth");
        // Ops: create (1), write (2), sync (3) — fail the write.
        let io = StoreIo::fail_at(7, 2);
        let mut f = io.create_new(&dir.join("f")).unwrap();
        let err = f.write_all(b"doomed").unwrap_err();
        assert!(matches!(err, StoreError::Io { .. }));
        assert_eq!(io.injected().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let run = |seed: u64| -> Vec<(IoOp, Fault)> {
            let dir = tmp(&format!("det-{seed}-{}", std::process::id()));
            let io = StoreIo::faulty(seed, 0.5);
            for i in 0..8 {
                let path = dir.join(format!("f{i}"));
                if let Ok(mut f) = io.create_new(&path) {
                    let _ = f.write_all(b"payload").and_then(|()| f.sync_data());
                }
            }
            let injected = io.injected();
            std::fs::remove_dir_all(&dir).unwrap();
            injected
        };
        assert_eq!(run(42), run(42));
        assert!(!run(42).is_empty(), "rate 0.5 over 24 ops injected nothing");
    }

    #[test]
    fn fsync_loss_drops_unsynced_bytes_only() {
        let dir = tmp("fsyncgate");
        let io = StoreIo::faulty(1, 0.0);
        let path = dir.join("f");
        let mut f = io.create_new(&path).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap();
        f.write_all(b" doomed").unwrap();
        io.inject_once(IoOp::Sync, Fault::FsyncLoss);
        assert!(f.sync_data().is_err());
        drop(f);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"durable",
            "synced bytes survive, unsynced bytes are gone"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_lands_a_prefix() {
        let dir = tmp("short");
        let io = StoreIo::faulty(1, 0.0);
        let path = dir.join("f");
        let mut f = io.create_new(&path).unwrap();
        io.inject_once(IoOp::Write, Fault::ShortWrite);
        assert!(f.write_all(b"0123456789").is_err());
        assert_eq!(f.len(), 5, "half the bytes landed");
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
