//! Canonicalization of ps-queries for containment checking.
//!
//! A ps-query's *canonical form* is its label-sorted traversal: the
//! same pattern built in any child order yields the same canonical
//! order, interval-normalized conditions (`cond_set`, already
//! maintained by the builder) and the same barred-leaf placement. The
//! signature pass ([`crate::sig`]) and the containment descent both
//! consume queries through this module, so structurally equal queries
//! are indistinguishable to them regardless of construction order.

use iixml_query::{PsQuery, QNodeRef};
use iixml_tree::Label;

/// Does the query evaluate to the empty answer on *every* document?
///
/// Every pattern node is mandatory (a valuation must map all of them),
/// so one node with an unsatisfiable interval-normal condition voids
/// the whole query. Barred-node simplification falls out of the same
/// rule: a barred leaf with an empty condition voids the query rather
/// than extracting an empty subtree.
pub fn is_unsatisfiable(q: &PsQuery) -> bool {
    q.preorder().iter().any(|&m| q.cond_set(m).is_empty())
}

/// The children of `m` in canonical (ascending label id) order.
///
/// Sibling labels are unique, so this order is strict and total.
pub fn sorted_children(q: &PsQuery, m: QNodeRef) -> Vec<QNodeRef> {
    let mut kids = q.children(m).to_vec();
    kids.sort_by_key(|&c| q.label(c).0);
    kids
}

/// Looks up the unique child of `m` carrying label `l`, if any.
pub fn child_by_label(q: &PsQuery, m: QNodeRef, l: Label) -> Option<QNodeRef> {
    q.children(m).iter().copied().find(|&c| q.label(c) == l)
}

/// All pattern nodes in canonical order: preorder with children
/// visited label-ascending. Two queries with equal skeletons visit
/// corresponding nodes at the same positions.
pub fn canonical_order(q: &PsQuery) -> Vec<QNodeRef> {
    let mut out = Vec::with_capacity(q.len());
    let mut stack = vec![q.root()];
    while let Some(m) = stack.pop() {
        out.push(m);
        let mut kids = sorted_children(q, m);
        kids.reverse();
        stack.append(&mut kids);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::parse_ps_query;
    use iixml_tree::Alphabet;

    #[test]
    fn canonical_order_ignores_construction_order() {
        let mut alpha = Alphabet::new();
        // Intern in a fixed order first so both spellings share ids.
        for n in ["catalog", "product", "name", "price", "cat"] {
            alpha.intern(n);
        }
        let a = parse_ps_query("catalog/product{name, price, cat}", &mut alpha).unwrap();
        let b = parse_ps_query("catalog/product{cat, price, name}", &mut alpha).unwrap();
        let la: Vec<_> = canonical_order(&a).iter().map(|&m| a.label(m)).collect();
        let lb: Vec<_> = canonical_order(&b).iter().map(|&m| b.label(m)).collect();
        assert_eq!(la, lb);
    }

    #[test]
    fn unsatisfiable_detection() {
        let mut alpha = Alphabet::new();
        let sat = parse_ps_query("a/b[< 10]", &mut alpha).unwrap();
        assert!(!is_unsatisfiable(&sat));
        let unsat = parse_ps_query("a/b[< 10 & > 10]", &mut alpha).unwrap();
        assert!(is_unsatisfiable(&unsat));
        let unsat_root = parse_ps_query("a[false]/b", &mut alpha).unwrap();
        assert!(is_unsatisfiable(&unsat_root));
    }

    #[test]
    fn child_lookup() {
        let mut alpha = Alphabet::new();
        let q = parse_ps_query("r{a, b}", &mut alpha).unwrap();
        let b_lab = alpha.get("b").unwrap();
        let c = child_by_label(&q, q.root(), b_lab).unwrap();
        assert_eq!(q.label(c), b_lab);
        let missing = alpha.intern("zzz");
        assert!(child_by_label(&q, q.root(), missing).is_none());
    }
}
