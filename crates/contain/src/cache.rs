//! The containment-keyed answer cache.
//!
//! Each entry records a query whose *exact* source answer has already
//! been obtained, together with that answer's tree. On lookup, an
//! incoming query `q` is checked for containment in a recorded query
//! `p`; on `q ⊑ p` the cached answer tree is re-evaluated under `q`,
//! which reproduces the source's answer for `q` byte-for-byte (same
//! node ids, same sibling order, same provenance — see the crate
//! docs), so callers can skip the source round-trip entirely.
//!
//! Lookups are pruned by skeleton signature before the exact descent
//! runs. The cache is *sound by construction*: a miss merely costs the
//! normal fetch, and a hit feeds downstream refinement input identical
//! to what the source would have produced.

use crate::sig::Signer;
use crate::{canon, contained_in};
use iixml_query::{Answer, PsQuery};
use iixml_tree::DataTree;

/// Upper bound on recorded entries; the oldest entry is evicted first.
/// Maximal-element dedup keeps real workloads far below this.
const MAX_ENTRIES: usize = 64;

struct Entry {
    query: PsQuery,
    skeleton: u32,
    /// The exact answer tree of `query` at the source (`None` = the
    /// empty answer). Preserves the source's sibling order, which
    /// downstream refinement is sensitive to.
    answer: Option<DataTree>,
}

/// A cache of exactly-answered queries, keyed by containment.
#[derive(Default)]
pub struct AnswerCache {
    signer: Signer,
    entries: Vec<Entry>,
    checks: u64,
    hits: u64,
    fast_rejects: u64,
}

impl AnswerCache {
    /// A fresh, empty cache.
    pub fn new() -> AnswerCache {
        AnswerCache {
            signer: Signer::new(),
            entries: Vec::new(),
            checks: 0,
            hits: 0,
            fast_rejects: 0,
        }
    }

    /// Tries to answer `q` from recorded knowledge. `Some(answer)` is
    /// byte-identical to what the source would return for `q` right
    /// now; `None` means no recorded query provably subsumes `q`.
    pub fn lookup(&mut self, q: &PsQuery) -> Option<Answer> {
        self.checks += 1;
        // An unsatisfiable query answers empty on every document — no
        // entry needed, and the source would say the same.
        if canon::is_unsatisfiable(q) {
            self.hits += 1;
            return Some(Answer::empty());
        }
        let skeleton = self.signer.sign(q).skeleton;
        for e in &self.entries {
            if e.skeleton != skeleton {
                // Differing skeletons can never contain a satisfiable
                // query: exact reject without the descent.
                self.fast_rejects += 1;
                continue;
            }
            if contained_in(q, &e.query).is_contained() {
                self.hits += 1;
                return Some(match &e.answer {
                    Some(t) => q.eval(t),
                    None => Answer::empty(),
                });
            }
        }
        None
    }

    /// Records the exact source answer for `q`. Entries are kept
    /// maximal: recording is skipped when an existing entry already
    /// subsumes `q`, and entries that `q` subsumes are dropped.
    pub fn record(&mut self, q: &PsQuery, ans: &Answer) {
        if canon::is_unsatisfiable(q) {
            return;
        }
        if self
            .entries
            .iter()
            .any(|e| contained_in(q, &e.query).is_contained())
        {
            return;
        }
        self.entries
            .retain(|e| !contained_in(&e.query, q).is_contained());
        if self.entries.len() >= MAX_ENTRIES {
            self.entries.remove(0);
        }
        let skeleton = self.signer.sign(q).skeleton;
        self.entries.push(Entry {
            query: q.clone(),
            skeleton,
            answer: ans.tree.clone(),
        });
    }

    /// Drops all entries (knowledge reset / source update /
    /// quarantine). Counters survive for observability.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Containment lookups performed.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Lookups answered from recorded knowledge.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Candidate entries skipped on skeleton signature alone.
    pub fn fast_rejects(&self) -> u64 {
        self.fast_rejects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iixml_query::parse_ps_query;
    use iixml_tree::{Alphabet, Nid};
    use iixml_values::Rat;

    /// Ordered rendering: node ids, labels, values and child counts in
    /// preorder, which is exactly what downstream refinement consumes.
    fn render(t: &Option<DataTree>) -> String {
        let Some(t) = t else {
            return String::from("empty");
        };
        let mut out = String::new();
        for n in t.preorder() {
            out.push_str(&format!(
                "{}:{}={}/{};",
                t.nid(n).0,
                t.label(n).0,
                t.value(n),
                t.children(n).len()
            ));
        }
        out
    }

    /// Two products: one at price 120 (camera), one at 250 (cdplayer).
    fn doc(alpha: &mut Alphabet) -> DataTree {
        let cat = alpha.intern("catalog");
        let product = alpha.intern("product");
        let price = alpha.intern("price");
        let name = alpha.intern("name");
        let mut t = DataTree::new(Nid(0), cat, Rat::ZERO);
        let root = t.root();
        let p1 = t.add_child(root, Nid(1), product, Rat::ZERO).unwrap();
        t.add_child(p1, Nid(2), name, Rat::from(100)).unwrap();
        t.add_child(p1, Nid(3), price, Rat::from(120)).unwrap();
        let p2 = t.add_child(root, Nid(4), product, Rat::ZERO).unwrap();
        t.add_child(p2, Nid(5), name, Rat::from(101)).unwrap();
        t.add_child(p2, Nid(6), price, Rat::from(250)).unwrap();
        t
    }

    #[test]
    fn hit_reproduces_the_source_answer_exactly() {
        let mut alpha = Alphabet::new();
        let t = doc(&mut alpha);
        let wide = parse_ps_query("catalog/product{name, price[< 300]}", &mut alpha).unwrap();
        let narrow = parse_ps_query("catalog/product{name, price[< 200]}", &mut alpha).unwrap();
        let mut cache = AnswerCache::new();
        cache.record(&wide, &wide.eval(&t));
        let hit = cache.lookup(&narrow).expect("narrow ⊑ wide");
        let reference = narrow.eval(&t);
        assert_eq!(
            render(&hit.tree),
            render(&reference.tree),
            "hit answer must be byte-identical to the source answer"
        );
        let mut hp: Vec<_> = hit.provenance.iter().collect();
        let mut rp: Vec<_> = reference.provenance.iter().collect();
        hp.sort_by_key(|(n, _)| n.0);
        rp.sort_by_key(|(n, _)| n.0);
        assert_eq!(hp, rp);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.checks(), 1);
    }

    #[test]
    fn miss_on_uncontained_query() {
        let mut alpha = Alphabet::new();
        let t = doc(&mut alpha);
        let narrow = parse_ps_query("catalog/product{name, price[< 200]}", &mut alpha).unwrap();
        let wide = parse_ps_query("catalog/product{name, price[< 300]}", &mut alpha).unwrap();
        let other = parse_ps_query("catalog/vendor", &mut alpha).unwrap();
        let mut cache = AnswerCache::new();
        cache.record(&narrow, &narrow.eval(&t));
        assert!(cache.lookup(&wide).is_none(), "wider query must miss");
        assert!(cache.lookup(&other).is_none(), "other skeleton must miss");
        // The skeleton-differing lookup was pruned without a descent.
        assert!(cache.fast_rejects() >= 1);
    }

    #[test]
    fn empty_recorded_answer_hits_empty() {
        let mut alpha = Alphabet::new();
        let t = doc(&mut alpha);
        let none = parse_ps_query("catalog/product/price[> 1000]", &mut alpha).unwrap();
        let narrower = parse_ps_query("catalog/product/price[> 2000]", &mut alpha).unwrap();
        let mut cache = AnswerCache::new();
        let ans = none.eval(&t);
        assert!(ans.is_empty());
        cache.record(&none, &ans);
        let hit = cache.lookup(&narrower).expect("narrower ⊑ none");
        assert!(hit.is_empty());
    }

    #[test]
    fn unsatisfiable_lookup_hits_without_entries() {
        let mut alpha = Alphabet::new();
        let unsat = parse_ps_query("catalog/price[< 1 & > 2]", &mut alpha).unwrap();
        let mut cache = AnswerCache::new();
        let hit = cache
            .lookup(&unsat)
            .expect("unsat is contained in anything");
        assert!(hit.is_empty());
    }

    #[test]
    fn entries_stay_maximal() {
        let mut alpha = Alphabet::new();
        let t = doc(&mut alpha);
        let narrow = parse_ps_query("catalog/product/price[< 100]", &mut alpha).unwrap();
        let wide = parse_ps_query("catalog/product/price[< 300]", &mut alpha).unwrap();
        let mut cache = AnswerCache::new();
        cache.record(&narrow, &narrow.eval(&t));
        assert_eq!(cache.len(), 1);
        // Recording the wider query replaces the narrower entry.
        cache.record(&wide, &wide.eval(&t));
        assert_eq!(cache.len(), 1);
        // Re-recording a subsumed query is a no-op.
        cache.record(&narrow, &narrow.eval(&t));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&narrow).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.lookup(&narrow).is_none());
    }
}
